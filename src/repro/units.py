"""Units helpers: cycles, seconds, frequencies, and data sizes.

The accelerator simulator works internally in integer *clock cycles* (at the
accelerator clock, 300 MHz in the paper).  The analysis layer reports results
in microseconds/milliseconds.  Keeping the conversions in one module avoids
scattered magic constants.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Number of bytes in one kibibyte / mebibyte.
KIB = 1024
MIB = 1024 * 1024

#: SI multipliers used for frequencies and bandwidths.
KILO = 1_000
MEGA = 1_000_000
GIGA = 1_000_000_000


@dataclass(frozen=True)
class Frequency:
    """A clock frequency in hertz.

    >>> Frequency.mhz(300).cycles_to_us(300)
    1.0
    """

    hz: float

    def __post_init__(self) -> None:
        if self.hz <= 0:
            raise ValueError(f"frequency must be positive, got {self.hz}")

    @classmethod
    def mhz(cls, value: float) -> "Frequency":
        return cls(value * MEGA)

    @classmethod
    def ghz(cls, value: float) -> "Frequency":
        return cls(value * GIGA)

    @property
    def period_s(self) -> float:
        """Length of one clock cycle in seconds."""
        return 1.0 / self.hz

    def cycles_to_s(self, cycles: float) -> float:
        return cycles / self.hz

    def cycles_to_us(self, cycles: float) -> float:
        return cycles * 1e6 / self.hz

    def cycles_to_ms(self, cycles: float) -> float:
        return cycles * 1e3 / self.hz

    def s_to_cycles(self, seconds: float) -> int:
        return int(round(seconds * self.hz))

    def us_to_cycles(self, microseconds: float) -> int:
        return int(round(microseconds * 1e-6 * self.hz))


def format_si_time(seconds: float) -> str:
    """Render a duration with an auto-selected SI unit.

    >>> format_si_time(3.2e-5)
    '32.000 us'
    """
    if seconds == 0:
        return "0 s"
    magnitude = abs(seconds)
    if magnitude >= 1.0:
        return f"{seconds:.3f} s"
    if magnitude >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    if magnitude >= 1e-6:
        return f"{seconds * 1e6:.3f} us"
    return f"{seconds * 1e9:.1f} ns"


def format_bytes(num_bytes: int) -> str:
    """Render a byte count with a binary unit.

    >>> format_bytes(2 * 1024 * 1024)
    '2.00 MiB'
    """
    if num_bytes < 0:
        raise ValueError(f"byte count must be non-negative, got {num_bytes}")
    if num_bytes >= MIB:
        return f"{num_bytes / MIB:.2f} MiB"
    if num_bytes >= KIB:
        return f"{num_bytes / KIB:.2f} KiB"
    return f"{num_bytes} B"


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division for tile/blob counting.

    >>> ceil_div(48, 16)
    3
    >>> ceil_div(49, 16)
    4
    """
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    return -(-numerator // denominator)
