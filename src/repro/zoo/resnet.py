"""ResNet family (He et al. 2016).

ResNet-101 is the backbone of the paper's place-recognition network (GeM) and
the workload used for the 12-position interrupt experiment (Fig. barresult(a)).
Batch-norm is assumed folded into the convolutions, as the deployment
quantizer does.
"""

from __future__ import annotations

from repro.nn import GraphBuilder, NetworkGraph, TensorShape

#: (block type, blocks per stage) for each variant.
_CONFIGS: dict[str, tuple[str, tuple[int, int, int, int]]] = {
    "resnet18": ("basic", (2, 2, 2, 2)),
    "resnet34": ("basic", (3, 4, 6, 3)),
    "resnet50": ("bottleneck", (3, 4, 6, 3)),
    "resnet101": ("bottleneck", (3, 4, 23, 3)),
    "resnet152": ("bottleneck", (3, 8, 36, 3)),
}

_STAGE_WIDTHS = (64, 128, 256, 512)


def _basic_block(
    builder: GraphBuilder, name: str, residual: str, width: int, stride: int
) -> str:
    """Two 3x3 convs + identity/projection shortcut. Returns the output name."""
    builder.conv(f"{name}_conv1", out_channels=width, kernel=3, stride=stride, padding=1, after=residual)
    main = builder.conv(f"{name}_conv2", out_channels=width, kernel=3, padding=1, relu=False)
    shortcut = _shortcut(builder, name, residual, width, stride)
    return builder.add(f"{name}_add", main, shortcut)


def _bottleneck_block(
    builder: GraphBuilder, name: str, residual: str, width: int, stride: int
) -> str:
    """1x1 reduce, 3x3, 1x1 expand (x4) + shortcut. Returns the output name."""
    builder.conv(f"{name}_conv1", out_channels=width, kernel=1, after=residual)
    builder.conv(f"{name}_conv2", out_channels=width, kernel=3, stride=stride, padding=1)
    main = builder.conv(f"{name}_conv3", out_channels=4 * width, kernel=1, relu=False)
    shortcut = _shortcut(builder, name, residual, 4 * width, stride)
    return builder.add(f"{name}_add", main, shortcut)


def _shortcut(builder: GraphBuilder, name: str, residual: str, out_channels: int, stride: int) -> str:
    """Projection shortcut when shape changes, identity otherwise."""
    needs_projection = stride != 1 or _channels_of(builder, residual) != out_channels
    if needs_projection:
        return builder.conv(
            f"{name}_proj",
            out_channels=out_channels,
            kernel=1,
            stride=stride,
            relu=False,
            after=residual,
        )
    return residual


def _channels_of(builder: GraphBuilder, name: str) -> int:
    """Peek at the (so-far) output channel count of a layer in the builder.

    Builders are append-only, so a partial build is enough to resolve shapes.
    """
    partial = NetworkGraph.from_layers("partial", list(builder._layers))
    return partial.shapes[name].channels


def build_resnet(
    variant: str = "resnet101",
    input_shape: TensorShape = TensorShape(224, 224, 3),
    include_head: bool = False,
    num_classes: int = 1000,
) -> NetworkGraph:
    """Build a ResNet backbone (optionally with GAP + classifier head).

    >>> len(build_resnet("resnet101").conv_layers())
    104
    """
    if variant not in _CONFIGS:
        raise ValueError(f"unknown ResNet variant {variant!r}; choose from {sorted(_CONFIGS)}")
    block_type, stage_blocks = _CONFIGS[variant]
    block_fn = _basic_block if block_type == "basic" else _bottleneck_block

    builder = GraphBuilder(variant, input_shape=input_shape)
    builder.conv("conv1", out_channels=64, kernel=7, stride=2, padding=3)
    residual = builder.pool("pool1", kernel=3, stride=2, padding=1)
    for stage_index, (width, num_blocks) in enumerate(zip(_STAGE_WIDTHS, stage_blocks), start=2):
        for block_index in range(num_blocks):
            stride = 2 if (stage_index > 2 and block_index == 0) else 1
            residual = block_fn(
                builder, f"res{stage_index}_{block_index}", residual, width, stride
            )
    if include_head:
        builder.global_pool("gap", mode="avg")
        builder.fc("logits", out_features=num_classes)
    return builder.build()


def build_resnet101(input_shape: TensorShape = TensorShape(480, 640, 3)) -> NetworkGraph:
    """ResNet-101 at the paper's PR input resolution (480x640x3)."""
    return build_resnet("resnet101", input_shape=input_shape)
