"""SuperPoint (DeTone et al. 2018) — the paper's feature-point extractor (FE).

SuperPoint is a VGG-style shared encoder followed by two heads:

* a *detector* head emitting a 65-channel keypoint heat-map (8x8 cells + dustbin),
* a *descriptor* head emitting a 256-channel semi-dense descriptor map.

The paper runs the backbone + heads on the CNN accelerator and the
post-processing (softmax over cells, NMS, descriptor sampling) on
dedicated logic / CPU; our equivalent of that post-processing lives in
:mod:`repro.dslam.frontend`.

A single 480x640 inference is ~39 GOPs per the SuperPoint paper, which
this model reproduces (within a few percent, since the released network's
exact head resolution varies with padding choices).
"""

from __future__ import annotations

from repro.nn import GraphBuilder, NetworkGraph, TensorShape

#: VGG-style encoder plan: conv channel counts with 2x2 pools between scales.
_ENCODER = ((64, 64), (64, 64), (128, 128), (128, 128))

#: Detector head: 65 = 8*8 cell positions + 1 "no keypoint" dustbin channel.
DETECTOR_CHANNELS = 65

#: Descriptor head output dimensionality.
DESCRIPTOR_DIM = 256


def build_superpoint(
    input_shape: TensorShape = TensorShape(480, 640, 1),
    head: str = "detector",
) -> NetworkGraph:
    """Build SuperPoint up to one head.

    The accelerator executes a single instruction stream per network, so the
    compiler treats the two heads as two networks sharing an encoder
    architecture; ``head`` picks which one ("detector", "descriptor", or
    "both" to keep the full two-head DAG for analysis).
    """
    if head not in ("detector", "descriptor", "both"):
        raise ValueError(f"head must be 'detector', 'descriptor' or 'both', got {head!r}")
    builder = GraphBuilder(f"superpoint_{head}", input_shape=input_shape)
    for scale, (width_a, width_b) in enumerate(_ENCODER, start=1):
        builder.conv(f"conv{scale}a", out_channels=width_a, kernel=3, padding=1)
        builder.conv(f"conv{scale}b", out_channels=width_b, kernel=3, padding=1)
        if scale < len(_ENCODER):
            builder.pool(f"pool{scale}", kernel=2, stride=2)
    encoder_out = builder.tail

    if head in ("detector", "both"):
        builder.conv("det_conv", out_channels=256, kernel=3, padding=1, after=encoder_out)
        builder.conv("det_logits", out_channels=DETECTOR_CHANNELS, kernel=1, relu=False)
    if head in ("descriptor", "both"):
        builder.conv("desc_conv", out_channels=256, kernel=3, padding=1, after=encoder_out)
        builder.conv("desc_raw", out_channels=DESCRIPTOR_DIM, kernel=1, relu=False)
    if head == "both":
        # Two sinks are fine for analysis but not for compilation; merge them
        # is deliberately NOT done — callers compile single-head variants.
        return NetworkGraph.from_layers(builder.name, list(builder._layers))
    return builder.build()


def superpoint_cell_size() -> int:
    """Down-sampling factor between image and detector-head cells (8)."""
    return 2 ** (len(_ENCODER) - 1)
