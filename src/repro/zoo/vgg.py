"""VGG family (Simonyan & Zisserman 2014).

The paper benchmarks interrupt latency on VGG (Fig. barresult(b)) and
SuperPoint's encoder is a VGG-style stack, so we provide the classic
configurations.  Classifier heads are optional: as a DSLAM backbone the
network is fully convolutional.
"""

from __future__ import annotations

from repro.nn import GraphBuilder, NetworkGraph, TensorShape

#: Layer plans: numbers are conv output channels, "M" is a 2x2 max pool.
_CONFIGS: dict[str, tuple[int | str, ...]] = {
    "vgg11": (64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"),
    "vgg13": (64, 64, "M", 128, 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"),
    "vgg16": (
        64, 64, "M", 128, 128, "M", 256, 256, 256, "M",
        512, 512, 512, "M", 512, 512, 512, "M",
    ),
    "vgg19": (
        64, 64, "M", 128, 128, "M", 256, 256, 256, 256, "M",
        512, 512, 512, 512, "M", 512, 512, 512, 512, "M",
    ),
}


def build_vgg(
    variant: str = "vgg16",
    input_shape: TensorShape = TensorShape(224, 224, 3),
    include_head: bool = False,
    num_classes: int = 1000,
) -> NetworkGraph:
    """Build a VGG feature extractor (optionally with the FC head).

    >>> build_vgg("vgg16").name
    'vgg16'
    """
    if variant not in _CONFIGS:
        raise ValueError(f"unknown VGG variant {variant!r}; choose from {sorted(_CONFIGS)}")
    builder = GraphBuilder(variant, input_shape=input_shape)
    block = 1
    conv_in_block = 0
    for entry in _CONFIGS[variant]:
        if entry == "M":
            builder.pool(f"pool{block}", kernel=2, stride=2)
            block += 1
            conv_in_block = 0
        else:
            conv_in_block += 1
            builder.conv(
                f"conv{block}_{conv_in_block}",
                out_channels=int(entry),
                kernel=3,
                padding=1,
            )
    if include_head:
        builder.global_pool("gap", mode="avg")
        builder.fc("fc1", out_features=4096, relu=True)
        builder.fc("fc2", out_features=4096, relu=True)
        builder.fc("logits", out_features=num_classes)
    return builder.build()


def build_vgg16(input_shape: TensorShape = TensorShape(224, 224, 3)) -> NetworkGraph:
    return build_vgg("vgg16", input_shape=input_shape)
