"""Model zoo: the paper's workloads plus small test networks."""

from repro.zoo.darknet import build_darknet19
from repro.zoo.gem import GEM_DESCRIPTOR_DIM, build_gem
from repro.zoo.mobilenet import build_mobilenet_v1
from repro.zoo.resnet import build_resnet, build_resnet101
from repro.zoo.superpoint import (
    DESCRIPTOR_DIM,
    DETECTOR_CHANNELS,
    build_superpoint,
    superpoint_cell_size,
)
from repro.zoo.tiny import (
    build_medium_layer_net,
    build_tiny_cnn,
    build_tiny_conv,
    build_tiny_residual,
)
from repro.zoo.vgg import build_vgg, build_vgg16

__all__ = [
    "GEM_DESCRIPTOR_DIM",
    "DESCRIPTOR_DIM",
    "DETECTOR_CHANNELS",
    "build_darknet19",
    "build_gem",
    "build_medium_layer_net",
    "build_mobilenet_v1",
    "build_resnet",
    "build_resnet101",
    "build_superpoint",
    "build_tiny_cnn",
    "build_tiny_conv",
    "build_tiny_residual",
    "build_vgg",
    "build_vgg16",
    "superpoint_cell_size",
]
