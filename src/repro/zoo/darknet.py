"""Darknet-19 (the YOLOv2 backbone).

The paper's introduction motivates INCA with robot perception workloads
beyond DSLAM — object detection among them.  Darknet-19 is the classic
embedded detector backbone and gives the benchmark suite a third network
family (besides VGG-style and residual) with its characteristic alternation
of 3x3 and 1x1 "bottleneck" convolutions.
"""

from __future__ import annotations

from repro.nn import GraphBuilder, NetworkGraph, TensorShape

#: Plan: integers are 3x3 conv channels, (c,) is a 1x1 conv, "M" a 2x2 pool.
_PLAN: tuple[object, ...] = (
    32, "M",
    64, "M",
    128, (64,), 128, "M",
    256, (128,), 256, "M",
    512, (256,), 512, (256,), 512, "M",
    1024, (512,), 1024, (512,), 1024,
)


def build_darknet19(
    input_shape: TensorShape = TensorShape(224, 224, 3),
    include_head: bool = False,
    num_classes: int = 1000,
) -> NetworkGraph:
    """Build Darknet-19 (19 conv layers with the head, 18 without).

    >>> len(build_darknet19().conv_layers())
    18
    """
    builder = GraphBuilder("darknet19", input_shape=input_shape)
    conv_index = 0
    pool_index = 0
    for entry in _PLAN:
        if entry == "M":
            pool_index += 1
            builder.pool(f"pool{pool_index}", kernel=2, stride=2)
        elif isinstance(entry, tuple):
            conv_index += 1
            builder.conv(f"conv{conv_index}", out_channels=entry[0], kernel=1)
        else:
            conv_index += 1
            builder.conv(
                f"conv{conv_index}", out_channels=int(entry), kernel=3, padding=1
            )
    if include_head:
        builder.conv("conv_logits", out_channels=num_classes, kernel=1, relu=False)
        builder.global_pool("gap", mode="avg")
    return builder.build()
