"""Small synthetic networks for tests and quick examples.

These run the full compile -> simulate -> verify pipeline in milliseconds,
so the bit-exactness property tests can afford hundreds of cases.
"""

from __future__ import annotations

from repro.nn import GraphBuilder, NetworkGraph, TensorShape


def build_tiny_conv(
    input_shape: TensorShape = TensorShape(16, 16, 8),
    out_channels: int = 16,
    kernel: int = 3,
    stride: int = 1,
) -> NetworkGraph:
    """A single conv layer — the smallest compilable network."""
    builder = GraphBuilder("tiny_conv", input_shape=input_shape)
    builder.conv(
        "conv1",
        out_channels=out_channels,
        kernel=kernel,
        stride=stride,
        padding=kernel // 2,
    )
    return builder.build()


def build_tiny_cnn(input_shape: TensorShape = TensorShape(32, 32, 3)) -> NetworkGraph:
    """Three convs with a pool — exercises multi-layer dependencies."""
    builder = GraphBuilder("tiny_cnn", input_shape=input_shape)
    builder.conv("conv1", out_channels=16, kernel=3, padding=1)
    builder.pool("pool1", kernel=2, stride=2)
    builder.conv("conv2", out_channels=32, kernel=3, padding=1)
    builder.conv("conv3", out_channels=32, kernel=1)
    return builder.build()


def build_tiny_residual(input_shape: TensorShape = TensorShape(16, 16, 16)) -> NetworkGraph:
    """One residual block — exercises Add lowering and two-consumer maps."""
    builder = GraphBuilder("tiny_residual", input_shape=input_shape)
    trunk = builder.tail
    builder.conv("conv1", out_channels=16, kernel=3, padding=1)
    main = builder.conv("conv2", out_channels=16, kernel=3, padding=1, relu=False)
    builder.add("add", main, trunk)
    return builder.build()


def build_medium_layer_net() -> NetworkGraph:
    """The paper's Section IV-C worked example: an 80x60 feature map with 48
    input channels convolved to 32 output channels (R_l example, Eq. 1)."""
    builder = GraphBuilder("medium_layer", input_shape=TensorShape(60, 80, 48))
    builder.conv("conv", out_channels=32, kernel=3, padding=1)
    return builder.build()
