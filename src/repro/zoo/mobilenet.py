"""MobileNet-V1 (Howard et al. 2017).

The paper uses MobileNet as the "lightweight network" in Fig. barresult(b):
layer-by-layer interrupt latency is already ~1 ms, and the VI method still
wins by 2-3 orders of magnitude.
"""

from __future__ import annotations

from repro.nn import GraphBuilder, NetworkGraph, TensorShape

#: (stride, output channels) of each depthwise-separable block.
_BLOCKS: tuple[tuple[int, int], ...] = (
    (1, 64),
    (2, 128),
    (1, 128),
    (2, 256),
    (1, 256),
    (2, 512),
    (1, 512),
    (1, 512),
    (1, 512),
    (1, 512),
    (1, 512),
    (2, 1024),
    (1, 1024),
)


def build_mobilenet_v1(
    input_shape: TensorShape = TensorShape(224, 224, 3),
    width_multiplier: float = 1.0,
    include_head: bool = False,
    num_classes: int = 1000,
) -> NetworkGraph:
    """Build MobileNet-V1 with an optional width multiplier.

    >>> build_mobilenet_v1().name
    'mobilenet_v1'
    """
    if width_multiplier <= 0:
        raise ValueError(f"width_multiplier must be positive, got {width_multiplier}")

    def scaled(channels: int) -> int:
        return max(8, int(channels * width_multiplier))

    builder = GraphBuilder("mobilenet_v1", input_shape=input_shape)
    builder.conv("conv1", out_channels=scaled(32), kernel=3, stride=2, padding=1)
    for index, (stride, channels) in enumerate(_BLOCKS, start=1):
        builder.depthwise(f"dw{index}", kernel=3, stride=stride, padding=1)
        builder.conv(f"pw{index}", out_channels=scaled(channels), kernel=1)
    if include_head:
        builder.global_pool("gap", mode="avg")
        builder.fc("logits", out_features=num_classes)
    return builder.build()
