"""GeM place-recognition network (Radenovic et al. 2018).

The paper's PR module: a ResNet-101 backbone followed by generalised-mean
(GeM) pooling and an FC whitening layer producing a compact global image
descriptor.  A single 480x640 inference is ~192 GOPs, dominated by the
backbone — which is exactly why PR is the *interruptible, low-priority*
task in the DSLAM deployment.
"""

from __future__ import annotations

from repro.nn import GraphBuilder, NetworkGraph, TensorShape
from repro.zoo.resnet import build_resnet

#: Dimensionality of the whitened GeM descriptor.
GEM_DESCRIPTOR_DIM = 2048

#: Default GeM pooling exponent from the paper's released models.
GEM_EXPONENT = 3.0


def build_gem(
    input_shape: TensorShape = TensorShape(480, 640, 3),
    backbone: str = "resnet101",
    descriptor_dim: int = GEM_DESCRIPTOR_DIM,
    p: float = GEM_EXPONENT,
) -> NetworkGraph:
    """Build the GeM retrieval network: backbone + GeM pool + whitening FC.

    >>> build_gem().output_shape.channels
    2048
    """
    base = build_resnet(backbone, input_shape=input_shape)
    builder = GraphBuilder(f"gem_{backbone}", input_shape=input_shape)
    # Re-emit the backbone layers into this builder (skipping its Input).
    for layer in base.layers[1:]:
        builder._layers.append(layer)
    builder._tail = base.output_layer.name
    builder.global_pool("gem_pool", mode="gem", p=p)
    builder.fc("whiten", out_features=descriptor_dim)
    return builder.build()
