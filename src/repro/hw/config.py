"""Accelerator hardware configuration.

The paper evaluates Angel-Eye on a ZU9 MPSoC at 300 MHz with parallelism
``Para_height=8, Para_in=16, Para_out=16`` (the "big" accelerator) and also
reports a "small accelerator with small parallelism".  The Section IV-C
worked example uses ``Para_in=8, Para_out=8, Para_height=4``.

All three are provided as named constructors so experiments can reference
them symbolically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import HardwareError
from repro.units import KIB, MIB, Frequency


@dataclass(frozen=True)
class DdrConfig:
    """External memory model parameters.

    ``bytes_per_cycle`` is the *effective* DMA bandwidth at the accelerator
    clock; ``burst_overhead_cycles`` is paid once per DMA descriptor, which
    reproduces the paper's small-transfer inefficiency (e.g. the first-layer
    backup costing half a convolution).
    """

    bytes_per_cycle: float = 8.0
    burst_overhead_cycles: int = 96

    def __post_init__(self) -> None:
        if self.bytes_per_cycle <= 0:
            raise HardwareError(f"bytes_per_cycle must be positive, got {self.bytes_per_cycle}")
        if self.burst_overhead_cycles < 0:
            raise HardwareError("burst_overhead_cycles must be non-negative")

    def transfer_cycles(self, num_bytes: int) -> int:
        """Cycles to move ``num_bytes`` over one DMA descriptor."""
        if num_bytes < 0:
            raise HardwareError(f"cannot transfer {num_bytes} bytes")
        if num_bytes == 0:
            return 0
        return self.burst_overhead_cycles + int(-(-num_bytes // self.bytes_per_cycle))


@dataclass(frozen=True)
class AcceleratorConfig:
    """Static parameters of one accelerator instance."""

    name: str
    para_in: int
    para_out: int
    para_height: int
    data_buffer_bytes: int
    weight_buffer_bytes: int
    output_buffer_bytes: int
    clock: Frequency = field(default_factory=lambda: Frequency.mhz(300))
    ddr: DdrConfig = field(default_factory=DdrConfig)
    #: Cycles the IAU spends fetching one 32-byte instruction word from DDR.
    instruction_fetch_cycles: int = 4
    #: Fixed pipeline fill/drain cycles per CALC instruction (calibrated so
    #: the paper's per-layer CALC timings, including 1x1 kernels, land within
    #: ~15 %).
    calc_overhead_cycles: int = 8
    #: Output-row stripes sharing one input-tile LOAD_D.  Small tiles keep
    #: individual DMA descriptors short (a LOAD_D is not interruptible), at
    #: the price of reloading halo rows — the streaming behaviour of the real
    #: accelerator.
    max_stripes_per_tile: int = 2
    #: Output-channel groups drained by one SAVE.  Bounds how much
    #: finalized-but-unsaved data a VIR_SAVE may need to back up (the paper's
    #: example drains two CALC_F per SAVE).
    max_groups_per_save: int = 2

    def __post_init__(self) -> None:
        for name in ("para_in", "para_out", "para_height"):
            if getattr(self, name) <= 0:
                raise HardwareError(f"{name} must be positive")
        for name in ("data_buffer_bytes", "weight_buffer_bytes", "output_buffer_bytes"):
            if getattr(self, name) <= 0:
                raise HardwareError(f"{name} must be positive")
        if self.instruction_fetch_cycles < 0 or self.calc_overhead_cycles < 0:
            raise HardwareError("cycle overheads must be non-negative")
        if self.max_stripes_per_tile <= 0:
            raise HardwareError("max_stripes_per_tile must be positive")
        if self.max_groups_per_save <= 0:
            raise HardwareError("max_groups_per_save must be positive")

    @property
    def macs_per_cycle(self) -> int:
        """MACs the array retires per cycle: Para_in x Para_out x Para_height."""
        return self.para_in * self.para_out * self.para_height

    @property
    def total_buffer_bytes(self) -> int:
        """Total on-chip cache the CPU-like interrupt must spill/restore."""
        return self.data_buffer_bytes + self.weight_buffer_bytes + self.output_buffer_bytes

    # -- named configurations ------------------------------------------------

    @classmethod
    def big(cls) -> "AcceleratorConfig":
        """The paper's evaluation accelerator: Para 16/16/8 on a ZU9-class
        part at 300 MHz with ~2.2 MiB of on-chip caches."""
        return cls(
            name="angel-eye-zu9",
            para_in=16,
            para_out=16,
            para_height=8,
            data_buffer_bytes=1 * MIB,
            weight_buffer_bytes=768 * KIB,
            output_buffer_bytes=512 * KIB,
        )

    @classmethod
    def small(cls) -> "AcceleratorConfig":
        """A small-parallelism accelerator (Fig. barresult(b)'s second device)."""
        return cls(
            name="angel-eye-small",
            para_in=8,
            para_out=8,
            para_height=4,
            # 384 KiB: the smallest data buffer that still fits one stripe of
            # a VGA-scale residual add (2 operands x 4 rows x 160 x 256).
            data_buffer_bytes=384 * KIB,
            weight_buffer_bytes=128 * KIB,
            output_buffer_bytes=128 * KIB,
            ddr=DdrConfig(bytes_per_cycle=4.0),
        )

    @classmethod
    def worked_example(cls) -> "AcceleratorConfig":
        """Section IV-C's example: Para_in=8, Para_out=8, Para_height=4."""
        return cls(
            name="worked-example",
            para_in=8,
            para_out=8,
            para_height=4,
            data_buffer_bytes=512 * KIB,
            weight_buffer_bytes=256 * KIB,
            output_buffer_bytes=256 * KIB,
        )
