"""Per-instruction timing model, calibrated against the paper.

The MAC array retires ``Para_in x Para_out x Para_height`` MACs per cycle.
One CALC instruction convolves ``Para_height`` output lines across the full
output width for one (input-channel group x output-channel group) pair, so

    cycles(CALC) = W_out * K_h * K_w  (+ fixed pipeline overhead)

which matches the paper's statement that a single CALC's time grows with the
feature-map width, and — at 300 MHz — reproduces the per-layer numbers in the
paper's backup-vs-convolution table (e.g. the 30x40x512->512 3x3 layer:
32 CALCs x 40 x 9 cycles = 38.4 us vs the paper's 39.36 us).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import HardwareError
from repro.hw.config import AcceleratorConfig
from repro.isa.opcodes import Opcode
from repro.units import ceil_div

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.compiler.layer_config import LayerConfig
    from repro.isa.instructions import Instruction


def calc_cycles(
    config: AcceleratorConfig,
    out_width: int,
    kernel: tuple[int, int],
) -> int:
    """Cycles of one CALC instruction (either CALC_I or CALC_F)."""
    if out_width <= 0:
        raise HardwareError(f"out_width must be positive, got {out_width}")
    kh, kw = kernel
    if kh <= 0 or kw <= 0:
        raise HardwareError(f"kernel must be positive, got {kernel}")
    return out_width * kh * kw + config.calc_overhead_cycles


def blob_calc_count(in_channels: int, para_in: int) -> int:
    """CALC instructions per CalcBlob: ceil(Ch_in / Para_in)."""
    return ceil_div(in_channels, para_in)


def blob_cycles(
    config: AcceleratorConfig,
    in_channels: int,
    out_width: int,
    kernel: tuple[int, int],
) -> int:
    """Worst-case wait to finish the in-flight CalcBlob (the VI method's t1)."""
    return blob_calc_count(in_channels, config.para_in) * calc_cycles(config, out_width, kernel)


def layer_calc_cycles(
    config: AcceleratorConfig,
    in_channels: int,
    out_channels: int,
    out_height: int,
    out_width: int,
    kernel: tuple[int, int],
) -> int:
    """Total CALC time of a whole convolution layer (the layer-by-layer t1
    upper bound): blobs = ceil(Cout/Para_out) x ceil(H/Para_height)."""
    blobs = ceil_div(out_channels, config.para_out) * ceil_div(out_height, config.para_height)
    return blobs * blob_cycles(config, in_channels, out_width, kernel)


def transfer_cycles(config: AcceleratorConfig, num_bytes: int) -> int:
    """Cycles of one DMA descriptor moving ``num_bytes`` between DDR and chip."""
    return config.ddr.transfer_cycles(num_bytes)


def instruction_cycles(
    config: AcceleratorConfig,
    instruction: "Instruction",
    layer: "LayerConfig",
) -> int:
    """Execution cycles of one instruction, excluding its fetch.

    This is the single source of truth the core's cycle accounting, the
    admission estimator and the horizon-batched fast path all agree on:
    LOAD/SAVE pay the DMA descriptor time, CALC pays MAC-array occupancy,
    and virtual instructions cost nothing here (on the uninterrupted path
    the IAU discards them after the fetch, which is charged separately).
    """
    if instruction.is_virtual:
        return 0
    opcode = instruction.opcode
    if opcode in (Opcode.LOAD_D, Opcode.LOAD_W):
        return transfer_cycles(config, instruction.length)
    if opcode == Opcode.SAVE:
        # A fully pre-saved SAVE (chs == 0) retires for free.
        return transfer_cycles(config, instruction.length) if instruction.chs else 0
    if opcode in (Opcode.CALC_I, Opcode.CALC_F):
        if layer.kind == "add":
            return calc_cycles(config, layer.out_shape.width, (1, 1))
        if layer.kind == "global":
            return (
                layer.in_shape.height * layer.in_shape.width
                + config.calc_overhead_cycles
            )
        # conv / depthwise / pool share the MAC-array formula.
        return calc_cycles(config, layer.out_shape.width, layer.kernel)
    raise HardwareError(f"no timing model for opcode {opcode.name}")


def fetch_cycles(config: AcceleratorConfig, num_instructions: int = 1) -> int:
    """Instruction-fetch cost the IAU pays, including for skipped virtual
    instructions — the source of the (<=0.3 %) multi-tasking degradation."""
    if num_instructions < 0:
        raise HardwareError("cannot fetch a negative number of instructions")
    return config.instruction_fetch_cycles * num_instructions
