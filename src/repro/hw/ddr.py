"""DDR model: named regions with numpy backing and a bump allocator.

The simulator addresses DDR through *regions* (feature maps, weight blobs,
instruction spaces).  Each region has a base address in one flat address
space — instructions carry the base address, exactly as the compiled
``instruction.bin`` would — and a numpy array holding its contents, so the
functional simulation reads and writes real data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import MemoryMapError

#: Alignment of every allocation (DMA burst friendly).
DDR_ALIGNMENT = 64


@dataclass
class DdrRegion:
    """One allocated region: a base address plus its backing array."""

    name: str
    base: int
    size: int
    array: np.ndarray

    @property
    def end(self) -> int:
        return self.base + self.size


@dataclass
class Ddr:
    """A flat DDR address space with named, non-overlapping regions."""

    capacity: int = 1 << 32
    base: int = 0
    _cursor: int = field(init=False)
    _regions: dict[str, DdrRegion] = field(init=False, default_factory=dict)
    _by_base: dict[int, DdrRegion] = field(init=False, default_factory=dict)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise MemoryMapError(f"DDR capacity must be positive, got {self.capacity}")
        self._cursor = self.base

    # -- allocation ----------------------------------------------------------

    def allocate(
        self,
        name: str,
        shape: tuple[int, ...],
        dtype: np.dtype | type = np.int8,
    ) -> DdrRegion:
        """Reserve an aligned region backed by a zeroed array of ``shape``."""
        if name in self._regions:
            raise MemoryMapError(f"region {name!r} already allocated")
        array = np.zeros(shape, dtype=dtype)
        size = _aligned(array.nbytes)
        if self._cursor + size > self.base + self.capacity:
            raise MemoryMapError(
                f"DDR exhausted allocating {name!r} "
                f"({size} bytes at {self._cursor:#x}, capacity {self.capacity:#x})"
            )
        region = DdrRegion(name=name, base=self._cursor, size=size, array=array)
        self._cursor += size
        self._regions[name] = region
        self._by_base[region.base] = region
        return region

    def adopt(self, region: DdrRegion) -> DdrRegion:
        """Register a region allocated by another :class:`Ddr` (multi-network
        composition: each compiled network brings its own regions)."""
        if region.name in self._regions:
            raise MemoryMapError(f"region {region.name!r} already present")
        for existing in self._regions.values():
            if region.base < existing.end and existing.base < region.end:
                raise MemoryMapError(
                    f"region {region.name!r} [{region.base:#x}, {region.end:#x}) "
                    f"overlaps {existing.name!r} [{existing.base:#x}, {existing.end:#x})"
                )
        self._regions[region.name] = region
        self._by_base[region.base] = region
        return region

    # -- lookup ----------------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return sum(region.size for region in self._regions.values())

    def region(self, name: str) -> DdrRegion:
        try:
            return self._regions[name]
        except KeyError:
            raise MemoryMapError(f"no DDR region named {name!r}") from None

    def region_at(self, base: int) -> DdrRegion:
        """Resolve an instruction's ``ddr_addr`` to its region (exact base)."""
        try:
            return self._by_base[base]
        except KeyError:
            raise MemoryMapError(f"no DDR region based at address {base:#x}") from None

    def regions(self) -> list[DdrRegion]:
        return sorted(self._regions.values(), key=lambda region: region.base)


def _aligned(num_bytes: int) -> int:
    remainder = num_bytes % DDR_ALIGNMENT
    if remainder == 0:
        return max(num_bytes, DDR_ALIGNMENT)
    return num_bytes + DDR_ALIGNMENT - remainder
