"""DDR model: named regions with numpy backing and a bump allocator.

The simulator addresses DDR through *regions* (feature maps, weight blobs,
instruction spaces).  Each region has a base address in one flat address
space — instructions carry the base address, exactly as the compiled
``instruction.bin`` would — and a numpy array holding its contents, so the
functional simulation reads and writes real data.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import EccError, MemoryMapError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults -> hw)
    from repro.faults.plan import FaultPlan
    from repro.obs.bus import EventBus

#: Alignment of every allocation (DMA burst friendly).
DDR_ALIGNMENT = 64


@dataclass
class DdrRegion:
    """One allocated region: a base address plus its backing array."""

    name: str
    base: int
    size: int
    array: np.ndarray

    @property
    def end(self) -> int:
        return self.base + self.size


@dataclass
class _PendingFlip:
    """One injected bit flip awaiting ECC detection at the next read."""

    region_name: str
    index: int
    original: int
    corrupted: int
    uncorrectable: bool


@dataclass
class Ddr:
    """A flat DDR address space with named, non-overlapping regions.

    When a :class:`~repro.faults.plan.FaultPlan` is attached (see
    :meth:`attach_faults`), every DMA burst becomes a fault-injection
    opportunity: bursts may stall, and reads may flip a bit in the touched
    region.  Detection models SECDED ECC — a single flipped bit is detected
    and corrected at the next read of its region (or by :meth:`scrub`), an
    uncorrectable flip raises :class:`~repro.errors.EccError`.  With no plan
    attached none of this code runs.
    """

    capacity: int = 1 << 32
    base: int = 0
    _cursor: int = field(init=False)
    _regions: dict[str, DdrRegion] = field(init=False, default_factory=dict)
    _by_base: dict[int, DdrRegion] = field(init=False, default_factory=dict)
    faults: "FaultPlan | None" = field(init=False, default=None)
    bus: "EventBus | None" = field(init=False, default=None)
    _pending_flips: list[_PendingFlip] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise MemoryMapError(f"DDR capacity must be positive, got {self.capacity}")
        self._cursor = self.base

    # -- allocation ----------------------------------------------------------

    def allocate(
        self,
        name: str,
        shape: tuple[int, ...],
        dtype: np.dtype | type = np.int8,
    ) -> DdrRegion:
        """Reserve an aligned region backed by a zeroed array of ``shape``."""
        if name in self._regions:
            raise MemoryMapError(f"region {name!r} already allocated")
        array = np.zeros(shape, dtype=dtype)
        size = _aligned(array.nbytes)
        if self._cursor + size > self.base + self.capacity:
            raise MemoryMapError(
                f"DDR exhausted allocating {name!r} "
                f"({size} bytes at {self._cursor:#x}, capacity {self.capacity:#x})"
            )
        region = DdrRegion(name=name, base=self._cursor, size=size, array=array)
        self._cursor += size
        self._regions[name] = region
        self._by_base[region.base] = region
        return region

    def adopt(self, region: DdrRegion) -> DdrRegion:
        """Register a region allocated by another :class:`Ddr` (multi-network
        composition: each compiled network brings its own regions)."""
        if region.name in self._regions:
            raise MemoryMapError(f"region {region.name!r} already present")
        for existing in self._regions.values():
            if region.base < existing.end and existing.base < region.end:
                raise MemoryMapError(
                    f"region {region.name!r} [{region.base:#x}, {region.end:#x}) "
                    f"overlaps {existing.name!r} [{existing.base:#x}, {existing.end:#x})"
                )
        self._regions[region.name] = region
        self._by_base[region.base] = region
        return region

    # -- lookup ----------------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return sum(region.size for region in self._regions.values())

    def region(self, name: str) -> DdrRegion:
        try:
            return self._regions[name]
        except KeyError:
            raise MemoryMapError(f"no DDR region named {name!r}") from None

    def region_at(self, base: int) -> DdrRegion:
        """Resolve an instruction's ``ddr_addr`` to its region (exact base)."""
        try:
            return self._by_base[base]
        except KeyError:
            raise MemoryMapError(f"no DDR region based at address {base:#x}") from None

    def regions(self) -> list[DdrRegion]:
        return sorted(self._regions.values(), key=lambda region: region.base)

    # -- snapshot/restore ------------------------------------------------------

    def capture_state(self) -> dict:
        """Picklable mid-run state: region contents + pending ECC flips.

        The region *layout* (names, bases, sizes) is structural — it is
        rebuilt by re-adopting the compiled networks and checked by the
        system-level snapshot fingerprint — so only the mutable payload is
        captured here.
        """
        return {
            "cursor": self._cursor,
            "regions": {
                name: region.array.copy() for name, region in self._regions.items()
            },
            "pending_flips": copy.deepcopy(self._pending_flips),
        }

    def restore_state(self, state: dict) -> None:
        """Overwrite region contents *in place* from a captured state.

        In-place writes matter: compiled networks keep references to the
        same backing arrays (``compiled.layout.ddr``), so both views of the
        address space observe the restore.
        """
        regions = state["regions"]
        if set(regions) != set(self._regions):
            raise MemoryMapError(
                f"snapshot regions {sorted(regions)} do not match this DDR's "
                f"{sorted(self._regions)}"
            )
        for name, array in regions.items():
            region = self._regions[name]
            if region.array.shape != array.shape or region.array.dtype != array.dtype:
                raise MemoryMapError(
                    f"snapshot region {name!r} has shape {array.shape} "
                    f"{array.dtype}, expected {region.array.shape} "
                    f"{region.array.dtype}"
                )
            region.array[...] = array
        self._cursor = state["cursor"]
        self._pending_flips = copy.deepcopy(state["pending_flips"])

    # -- fault injection (ECC model) -----------------------------------------

    def attach_faults(self, plan: "FaultPlan", bus: "EventBus | None" = None) -> None:
        """Arm the DDR injectors; ``bus`` receives the fault events."""
        self.faults = plan
        self.bus = bus

    def burst_faults(self, region_name: str, direction: str) -> int:
        """Fault hook for one DMA burst; returns extra stall cycles.

        Reads first pass the ECC check (pending flips in the region are
        detected, and corrected or escalated) — ECC runs before the data
        leaves DDR, so the hook must precede the functional read.  Then the
        burst may stall.  Write bursts may also deposit a fresh bit flip
        (the write lands first, then the disturbance); read-disturb flips
        are injected by :meth:`read_disturb` *after* the functional read,
        because disturbance corrupts the cell, not the data in flight.
        Called by the accelerator core only when a plan is attached.
        """
        from repro.faults.plan import FaultSite

        plan = self.faults
        if direction == "load":
            self._ecc_check(region_name)
        extra = 0
        if plan.fires(FaultSite.DDR_STALL):
            extra = plan.ddr_stall_cycles
            self._record_and_emit(
                FaultSite.DDR_STALL,
                region=region_name,
                direction=direction,
                stall_cycles=extra,
            )
        if direction != "load" and plan.fires(FaultSite.DDR_BIT_FLIP):
            self._inject_flip(region_name)
        return extra

    def note_write(self, region_name: str, row0: int, rows: int, ch0: int, chs: int) -> None:
        """A burst overwrote ``[row0:row0+rows, :, ch0:ch0+chs]`` of a region.

        A write recomputes the stored ECC code word, so pending flips under
        the write are retired *unconditionally* — comparing byte values
        instead would alias whenever the newly written byte happens to equal
        the corrupted value (common with small power-of-two activations)
        and "correct" legitimate data back to a stale original.
        """
        if not self._pending_flips:
            return
        array = self.region(region_name).array
        _, width, channels = array.shape
        itemsize = array.itemsize
        remaining: list[_PendingFlip] = []
        for flip in self._pending_flips:
            if flip.region_name == region_name:
                element = flip.index // itemsize
                row = element // (width * channels)
                channel = element % channels
                if row0 <= row < row0 + rows and ch0 <= channel < ch0 + chs:
                    continue  # the write refreshed this word's ECC code
            remaining.append(flip)
        self._pending_flips = remaining

    def read_disturb(self, region_name: str) -> None:
        """Post-read fault hook: a read burst may disturb a cell it touched.

        The flip lands *after* the functional read consumed correct data; it
        is detected (and corrected, or escalated) at the region's next ECC
        pass, exactly like a write-path flip.
        """
        from repro.faults.plan import FaultSite

        if self.faults.fires(FaultSite.DDR_BIT_FLIP):
            self._inject_flip(region_name)

    def _inject_flip(self, region_name: str) -> None:
        from repro.faults.plan import FaultSite

        plan = self.faults
        region = self.region(region_name)
        flat = region.array.reshape(-1).view(np.uint8)
        index = plan.draw_index(FaultSite.DDR_BIT_FLIP, flat.size)
        bit = 1 << plan.draw_index(FaultSite.DDR_BIT_FLIP, 8)
        original = int(flat[index])
        flat[index] = original ^ bit
        uncorrectable = plan.draw_uncorrectable()
        self._pending_flips.append(
            _PendingFlip(
                region_name=region_name,
                index=index,
                original=original,
                corrupted=original ^ bit,
                uncorrectable=uncorrectable,
            )
        )
        self._record_and_emit(
            FaultSite.DDR_BIT_FLIP,
            region=region_name,
            byte_index=index,
            bit=bit,
            uncorrectable=uncorrectable,
        )

    def _ecc_check(self, region_name: str) -> None:
        """Detect pending flips in ``region_name``: correct or escalate.

        A flip whose byte was overwritten since injection is silently
        retired — the write replaced the corrupted word (and its ECC code).
        """
        from repro.faults.plan import FaultSite

        remaining: list[_PendingFlip] = []
        for flip in self._pending_flips:
            if flip.region_name != region_name:
                remaining.append(flip)
                continue
            flat = self.region(region_name).array.reshape(-1).view(np.uint8)
            if int(flat[flip.index]) != flip.corrupted:
                continue  # overwritten since injection: nothing to correct
            self._emit_fault(
                "fault_detect",
                FaultSite.DDR_BIT_FLIP,
                region=region_name,
                byte_index=flip.index,
                uncorrectable=flip.uncorrectable,
            )
            if flip.uncorrectable:
                raise EccError(
                    f"uncorrectable DDR corruption in region {region_name!r} "
                    f"at byte {flip.index}"
                )
            flat[flip.index] = flip.original
            self._emit_fault(
                "fault_recover",
                FaultSite.DDR_BIT_FLIP,
                region=region_name,
                byte_index=flip.index,
                action="ecc_correct",
            )
        self._pending_flips = remaining

    def scrub(self) -> int:
        """End-of-run ECC scrubber: check every region with pending flips.

        Returns the number of corrections applied; raises
        :class:`~repro.errors.EccError` on an uncorrectable flip.  Run
        harnesses call this before reading results back so latent
        corruption can never masquerade as a valid output.
        """
        before = len(self._pending_flips)
        for name in {flip.region_name for flip in self._pending_flips}:
            self._ecc_check(name)
        return before - len(self._pending_flips)

    @property
    def pending_flip_count(self) -> int:
        return len(self._pending_flips)

    def _record_and_emit(self, site, **detail) -> None:
        cycle = self.bus.cycle if self.bus is not None else 0
        self.faults.record(site, cycle, **detail)
        self._emit_fault("fault_inject", site, **detail)

    def _emit_fault(self, kind_value: str, site, **detail) -> None:
        if self.bus is None:
            return
        from repro.obs.events import EventKind

        self.bus.emit(EventKind(kind_value), site=site.value, **detail)


def _aligned(num_bytes: int) -> int:
    remainder = num_bytes % DDR_ALIGNMENT
    if remainder == 0:
        return max(num_bytes, DDR_ALIGNMENT)
    return num_bytes + DDR_ALIGNMENT - remainder
