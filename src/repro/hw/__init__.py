"""Hardware models: configuration, DDR, on-chip buffers, timing, resources."""

from repro.hw.buffers import TaggedBuffer
from repro.hw.config import AcceleratorConfig, DdrConfig
from repro.hw.ddr import DDR_ALIGNMENT, Ddr, DdrRegion
from repro.hw.energy import (
    EnergyEstimate,
    EnergyModel,
    cpu_like_switch_energy,
    inference_energy,
    interrupt_energy_overhead,
)
from repro.hw.resources import (
    BRAM36_BYTES,
    ZU9_RESOURCES,
    ResourceEstimate,
    estimate_accelerator,
    estimate_fe_postprocessing,
    estimate_iau,
    resource_table,
)
from repro.hw.timing import (
    blob_calc_count,
    blob_cycles,
    calc_cycles,
    fetch_cycles,
    layer_calc_cycles,
    transfer_cycles,
)

__all__ = [
    "AcceleratorConfig",
    "BRAM36_BYTES",
    "DDR_ALIGNMENT",
    "Ddr",
    "DdrConfig",
    "DdrRegion",
    "EnergyEstimate",
    "EnergyModel",
    "ResourceEstimate",
    "cpu_like_switch_energy",
    "inference_energy",
    "interrupt_energy_overhead",
    "TaggedBuffer",
    "ZU9_RESOURCES",
    "blob_calc_count",
    "blob_cycles",
    "calc_cycles",
    "estimate_accelerator",
    "estimate_fe_postprocessing",
    "estimate_iau",
    "fetch_cycles",
    "layer_calc_cycles",
    "resource_table",
    "transfer_cycles",
]
