"""Energy model: per-inference and per-interrupt energy estimates.

The paper's motivation is energy-efficient CNN processing on embedded
robots, so the reproduction carries a first-order energy model in the style
of accelerator papers: per-operation energy coefficients (8-bit MAC, on-chip
SRAM access, DDR transfer) at 28 nm-class technology, plus static power.

Coefficients are defaults in :class:`EnergyModel` — swap them for measured
numbers if you have them.  The interesting *relative* results are robust to
the absolute values: the VI method's interrupt energy overhead is tiny
because it moves almost no extra data, while the CPU-like method pays a full
on-chip spill/restore in DRAM energy every switch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.hw.config import AcceleratorConfig

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids hw<->compiler cycle)
    from repro.compiler.compile import CompiledNetwork


@dataclass(frozen=True)
class EnergyModel:
    """First-order energy coefficients (joules)."""

    #: Energy of one 8-bit MAC (datapath + local registers), ~0.2 pJ @28nm.
    mac_j: float = 0.2e-12
    #: Energy per byte read/written to on-chip SRAM (~6 pJ/B for large BRAM).
    sram_byte_j: float = 6e-12
    #: Energy per byte moved over DDR (~80 pJ/B including PHY + DRAM core).
    ddr_byte_j: float = 80e-12
    #: Static (leakage + clocking) power of the accelerator domain, watts.
    static_w: float = 0.8


@dataclass(frozen=True)
class EnergyEstimate:
    """Energy breakdown of one execution."""

    label: str
    compute_j: float
    sram_j: float
    ddr_j: float
    static_j: float

    @property
    def total_j(self) -> float:
        return self.compute_j + self.sram_j + self.ddr_j + self.static_j

    @property
    def total_mj(self) -> float:
        return self.total_j * 1e3

    def format(self) -> str:
        parts = [
            f"energy of {self.label}: {self.total_mj:.2f} mJ",
            f"  compute : {self.compute_j * 1e3:.2f} mJ",
            f"  sram    : {self.sram_j * 1e3:.2f} mJ",
            f"  ddr     : {self.ddr_j * 1e3:.2f} mJ",
            f"  static  : {self.static_j * 1e3:.2f} mJ",
        ]
        return "\n".join(parts)


def inference_energy(
    compiled: CompiledNetwork,
    total_cycles: int,
    model: EnergyModel | None = None,
) -> EnergyEstimate:
    """Energy of one inference from its MAC count, DDR traffic and runtime.

    ``total_cycles`` should come from a simulation (it sets the static
    energy); traffic is read from the compiled program, MACs from the graph.
    """
    model = model or EnergyModel()
    macs = compiled.graph.total_macs()
    ddr_bytes = _program_traffic_bytes(compiled)
    # Every DDR byte also lands in (or leaves) an on-chip buffer, and each
    # MAC reads an activation + weight pair from SRAM banks (amortised by
    # the parallel broadcast across the array's lanes).
    broadcast = compiled.config.para_out
    sram_bytes = ddr_bytes + 2 * macs / max(broadcast, 1)
    seconds = compiled.config.clock.cycles_to_s(total_cycles)
    return EnergyEstimate(
        label=compiled.graph.name,
        compute_j=macs * model.mac_j,
        sram_j=sram_bytes * model.sram_byte_j,
        ddr_j=ddr_bytes * model.ddr_byte_j,
        static_j=seconds * model.static_w,
    )


def interrupt_energy_overhead(
    config: AcceleratorConfig,
    backup_bytes: int,
    restore_bytes: int,
    extra_cycles: int,
    model: EnergyModel | None = None,
) -> float:
    """Joules one interrupt adds: its extra DDR traffic + stretched runtime."""
    model = model or EnergyModel()
    traffic = (backup_bytes + restore_bytes) * (model.ddr_byte_j + model.sram_byte_j)
    static = config.clock.cycles_to_s(max(extra_cycles, 0)) * model.static_w
    return traffic + static


def cpu_like_switch_energy(config: AcceleratorConfig, model: EnergyModel | None = None) -> float:
    """Energy of one CPU-like context switch: spill + restore all caches."""
    model = model or EnergyModel()
    spill_bytes = 2 * config.total_buffer_bytes
    spill_cycles = 2 * config.ddr.transfer_cycles(config.total_buffer_bytes)
    return interrupt_energy_overhead(config, spill_bytes // 2, spill_bytes // 2, spill_cycles, model)


def _program_traffic_bytes(compiled: CompiledNetwork) -> int:
    from repro.isa.opcodes import Opcode

    return sum(
        instruction.length
        for instruction in compiled.programs["none"]
        if instruction.opcode in (Opcode.LOAD_D, Opcode.LOAD_W, Opcode.SAVE)
    )
