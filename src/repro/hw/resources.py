"""FPGA resource estimator (reproduces the paper's hardware table).

The paper reports post-implementation Vivado numbers on a ZCU102 (ZU9):

======================  =====  ======  ======  =====
block                   DSP    LUT     FF      BRAM
======================  =====  ======  ======  =====
On-board resource       2520   274080  548160  912
CNN accelerator         1282   74569   171416  499
IAU                     0      2268    4633    4
FE post-processing      25     17573   29115   10
======================  =====  ======  ======  =====

We model each block parametrically and calibrate the coefficients so the
paper's configuration lands on (close to) the published numbers; the point
the table makes — *the IAU costs <1 % of the accelerator it makes
interruptible* — is then checkable for any configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.config import AcceleratorConfig
from repro.units import ceil_div

#: Capacity of one BRAM36 block in bytes (36 Kib including parity -> 4.5 KiB).
BRAM36_BYTES = 4608

#: ZU9EG device totals (ZCU102 board).
ZU9_RESOURCES = {"dsp": 2520, "lut": 274080, "ff": 548160, "bram": 912}


@dataclass(frozen=True)
class ResourceEstimate:
    """Estimated FPGA utilisation of one block."""

    name: str
    dsp: int
    lut: int
    ff: int
    bram: int

    def utilisation(self, device: dict[str, int] = ZU9_RESOURCES) -> dict[str, float]:
        return {
            "dsp": self.dsp / device["dsp"],
            "lut": self.lut / device["lut"],
            "ff": self.ff / device["ff"],
            "bram": self.bram / device["bram"],
        }


def estimate_accelerator(config: AcceleratorConfig) -> ResourceEstimate:
    """CNN accelerator datapath + buffers.

    Two 8-bit MACs pack into one DSP48 (standard INT8 double-pumping); the
    accumulation/requantization tree adds ~2 DSPs per output lane.
    """
    lanes = config.para_out * config.para_height
    macs = config.macs_per_cycle
    dsp = macs // 2 + lanes * 2 + 2
    lut = 33 * macs + 7000
    ff = 80 * macs + 7576
    bram = ceil_div(config.total_buffer_bytes, BRAM36_BYTES)
    return ResourceEstimate("CNN accelerator", dsp=dsp, lut=lut, ff=ff, bram=bram)


def estimate_iau(num_tasks: int = 4) -> ResourceEstimate:
    """Instruction Arrangement Unit: per-task context registers
    (InstrAddr, InputOffset, OutputOffset, SaveID/SaveAddr/SaveLength),
    the VI-ISA decoder, and one small instruction FIFO per task.

    No DSPs — the IAU only rewrites instruction words.
    """
    if num_tasks <= 0:
        raise ValueError(f"num_tasks must be positive, got {num_tasks}")
    lut = 567 * num_tasks
    ff = 1158 * num_tasks + 1
    bram = num_tasks
    return ResourceEstimate("IAU", dsp=0, lut=lut, ff=ff, bram=bram)


def estimate_fe_postprocessing() -> ResourceEstimate:
    """SuperPoint post-processing block (cell softmax + NMS + sampling), a
    fixed-function unit in the paper's design running at 200 MHz."""
    return ResourceEstimate("FE post-processing", dsp=25, lut=17573, ff=29115, bram=10)


def resource_table(config: AcceleratorConfig, num_tasks: int = 4) -> list[ResourceEstimate]:
    """All rows of the paper's hardware-consumption table."""
    board = ResourceEstimate("On-Board resource", **ZU9_RESOURCES)
    return [
        board,
        estimate_accelerator(config),
        estimate_iau(num_tasks),
        estimate_fe_postprocessing(),
    ]
