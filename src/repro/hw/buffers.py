"""On-chip buffer models.

Each buffer tracks a *tag* describing what it currently holds (which layer,
which rows, which channels).  A read with a mismatched tag raises — this is
how the simulator catches incorrect interrupt recovery: if the IAU fails to
re-issue a load after a context switch, the consumer finds stale data and the
simulation fails loudly instead of silently producing garbage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import numpy as np

from repro.errors import ExecutionError, HardwareError


@dataclass
class TaggedBuffer:
    """A capacity-checked on-chip memory holding one tagged payload."""

    name: str
    capacity: int

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise HardwareError(f"buffer {self.name!r} capacity must be positive")
        self._tag: Hashable | None = None
        self._payload: object | None = None
        self._payload_bytes: int = 0

    # -- state ------------------------------------------------------------

    @property
    def tag(self) -> Hashable | None:
        return self._tag

    @property
    def occupied_bytes(self) -> int:
        return self._payload_bytes

    def fill(self, tag: Hashable, payload: object, num_bytes: int | None = None) -> None:
        """Replace the buffer contents. numpy payloads size themselves."""
        if num_bytes is None:
            if not isinstance(payload, np.ndarray):
                raise HardwareError(
                    f"buffer {self.name!r}: num_bytes required for non-array payloads"
                )
            num_bytes = payload.nbytes
        if num_bytes > self.capacity:
            raise ExecutionError(
                f"buffer {self.name!r}: payload {tag!r} needs {num_bytes} bytes, "
                f"capacity is {self.capacity}"
            )
        self._tag = tag
        self._payload = payload
        self._payload_bytes = num_bytes

    def read(self, expected_tag: Hashable) -> object:
        """Fetch the payload, verifying the tag matches what the consumer expects."""
        if self._tag != expected_tag:
            raise ExecutionError(
                f"buffer {self.name!r}: consumer expects {expected_tag!r} but buffer "
                f"holds {self._tag!r} — missing reload after a context switch?"
            )
        return self._payload

    def holds(self, tag: Hashable) -> bool:
        return self._tag == tag

    def invalidate(self) -> None:
        self._tag = None
        self._payload = None
        self._payload_bytes = 0

    # -- snapshots (CPU-like interrupt support) -----------------------------

    def snapshot(self) -> tuple[Hashable | None, object | None, int]:
        return (self._tag, self._payload, self._payload_bytes)

    def restore(self, state: tuple[Hashable | None, object | None, int]) -> None:
        self._tag, self._payload, self._payload_bytes = state
