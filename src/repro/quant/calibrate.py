"""Range calibration: choose fractional bits per tensor.

The deployment flow in the paper quantizes a trained Caffe model by analysing
the dynamic range of each layer's weights and activations.  We reproduce the
standard "max-abs" policy: pick the largest ``frac_bits`` whose representable
range still covers the observed values (optionally a high percentile of them,
which trades clipping for resolution).
"""

from __future__ import annotations

import numpy as np

from repro.errors import QuantizationError
from repro.quant.fixed_point import INT8_MAX, FixedPointFormat


def choose_format(
    values: np.ndarray,
    percentile: float = 100.0,
    max_frac_bits: int = 14,
) -> FixedPointFormat:
    """Pick the finest 8-bit format covering ``percentile`` % of ``values``.

    >>> choose_format(np.array([0.5, -0.25])).frac_bits
    7
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise QuantizationError("cannot calibrate an empty tensor")
    if not 0 < percentile <= 100:
        raise QuantizationError(f"percentile must be in (0, 100], got {percentile}")
    magnitude = float(np.percentile(np.abs(values), percentile))
    if magnitude == 0.0:
        return FixedPointFormat(max_frac_bits)
    # Finest format whose max representable value covers `magnitude`.
    frac_bits = int(np.floor(np.log2(INT8_MAX / magnitude)))
    return FixedPointFormat(max(min(frac_bits, max_frac_bits), -16))


def calibrate_tensor(values: np.ndarray, percentile: float = 100.0) -> FixedPointFormat:
    """Alias of :func:`choose_format` kept for API symmetry with layer-level
    calibration."""
    return choose_format(values, percentile=percentile)


def relative_rms_error(values: np.ndarray, fmt: FixedPointFormat) -> float:
    """Quantization RMS error relative to the tensor's RMS magnitude."""
    values = np.asarray(values, dtype=np.float64)
    rms = float(np.sqrt(np.mean(values**2)))
    if rms == 0.0:
        return 0.0
    return fmt.quantization_error(values) / rms
