"""8-bit fixed-point quantization: formats, calibration, reference ops."""

from repro.quant.calibrate import calibrate_tensor, choose_format, relative_rms_error
from repro.quant.float_ref import float_inference
from repro.quant.fixed_point import (
    ACC_BITS,
    DATA_BITS,
    INT8_MAX,
    INT8_MIN,
    FixedPointFormat,
    requantize_shift,
    saturating_shift,
)
from repro.quant.qops import (
    conv2d,
    depthwise_conv2d,
    eltwise_add,
    fully_connected,
    global_pool,
    pool2d,
)

__all__ = [
    "ACC_BITS",
    "DATA_BITS",
    "INT8_MAX",
    "INT8_MIN",
    "FixedPointFormat",
    "calibrate_tensor",
    "choose_format",
    "conv2d",
    "depthwise_conv2d",
    "eltwise_add",
    "float_inference",
    "fully_connected",
    "global_pool",
    "pool2d",
    "relative_rms_error",
    "requantize_shift",
    "saturating_shift",
]
