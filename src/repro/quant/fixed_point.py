"""8-bit fixed-point formats, Angel-Eye style.

Angel-Eye (the paper's host accelerator) uses 8-bit activations and weights
with a *per-tensor* binary point: a value ``v`` is stored as the signed
integer ``round(v * 2**frac_bits)`` clipped to ``[-128, 127]``.  Accumulation
happens in 32-bit, and requantization between layers is a single arithmetic
shift — which is what makes interrupted/resumed execution trivially
bit-exact as long as the integer state is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import QuantizationError

#: Storage width of activations and weights on the accelerator.
DATA_BITS = 8
INT8_MIN = -(2 ** (DATA_BITS - 1))
INT8_MAX = 2 ** (DATA_BITS - 1) - 1

#: Accumulator width inside the MAC array.
ACC_BITS = 32

#: Shared activation format across the deployment: Q3.4 (range +-7.94,
#: resolution 1/16).  Every feature map uses it, so a layer's requantization
#: shift equals its weight format's fractional bit count.
ACTIVATION_FRAC_BITS = 4


@dataclass(frozen=True)
class FixedPointFormat:
    """A signed 8-bit fixed-point format with ``frac_bits`` fractional bits."""

    frac_bits: int

    def __post_init__(self) -> None:
        if not -16 <= self.frac_bits <= 16:
            raise QuantizationError(
                f"frac_bits out of supported range [-16, 16]: {self.frac_bits}"
            )

    @property
    def scale(self) -> float:
        """Real value of the least significant bit."""
        return 2.0 ** (-self.frac_bits)

    @property
    def max_value(self) -> float:
        return INT8_MAX * self.scale

    @property
    def min_value(self) -> float:
        return INT8_MIN * self.scale

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Real -> int8 codes (round-to-nearest, saturating)."""
        codes = np.rint(np.asarray(values, dtype=np.float64) * 2.0**self.frac_bits)
        return np.clip(codes, INT8_MIN, INT8_MAX).astype(np.int8)

    def dequantize(self, codes: np.ndarray) -> np.ndarray:
        """int8 codes -> real values."""
        return np.asarray(codes, dtype=np.float64) * self.scale

    def quantization_error(self, values: np.ndarray) -> float:
        """RMS error of a quantize/dequantize round trip."""
        values = np.asarray(values, dtype=np.float64)
        round_trip = self.dequantize(self.quantize(values))
        return float(np.sqrt(np.mean((values - round_trip) ** 2)))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Q{DATA_BITS - 1 - self.frac_bits}.{self.frac_bits}"


def requantize_shift(
    input_format: FixedPointFormat,
    weight_format: FixedPointFormat,
    output_format: FixedPointFormat,
) -> int:
    """Right-shift that converts a conv accumulator to the output format.

    A product of ``fi``- and ``fw``-fraction inputs carries ``fi + fw``
    fractional bits; moving to ``fo`` needs a shift by ``fi + fw - fo``.
    """
    shift = input_format.frac_bits + weight_format.frac_bits - output_format.frac_bits
    if shift < 0:
        raise QuantizationError(
            "output format has more precision than the accumulator carries "
            f"(shift would be {shift}); pick a smaller output frac_bits"
        )
    return shift


def saturating_shift(acc: np.ndarray, shift: int) -> np.ndarray:
    """Round-half-up arithmetic right shift with int8 saturation.

    This is the exact datapath the simulator and the reference quantized ops
    share, so their results can be compared bit-for-bit.
    """
    acc = np.asarray(acc, dtype=np.int64)
    if shift > 0:
        acc = (acc + (1 << (shift - 1))) >> shift
    return np.clip(acc, INT8_MIN, INT8_MAX).astype(np.int8)
