"""Reference quantized operators (the "golden model").

These numpy implementations define the bit-exact semantics of every layer the
accelerator executes: int8 feature maps in HWC layout, int8 weights in
``(kh, kw, cin, cout)`` layout, int32/int64 accumulation, round-half-up
requantization shift, saturation, then ReLU.

The simulator in :mod:`repro.accel.functional` computes the *same* arithmetic
tile by tile; tests assert equality code-for-code, including across
interrupts.
"""

from __future__ import annotations

import numpy as np

from repro.errors import QuantizationError
from repro.quant.fixed_point import saturating_shift


def _check_feature_map(data: np.ndarray, name: str) -> np.ndarray:
    data = np.asarray(data)
    if data.ndim != 3:
        raise QuantizationError(f"{name} must be HWC (3-D), got shape {data.shape}")
    if data.dtype != np.int8:
        raise QuantizationError(f"{name} must be int8, got {data.dtype}")
    return data


def pad_hw(data: np.ndarray, padding: tuple[int, int]) -> np.ndarray:
    """Zero-pad the spatial dims of an HWC map."""
    ph, pw = padding
    if ph == 0 and pw == 0:
        return data
    return np.pad(data, ((ph, ph), (pw, pw), (0, 0)), mode="constant")


def conv2d(
    data: np.ndarray,
    weights: np.ndarray,
    bias: np.ndarray | None,
    stride: tuple[int, int],
    padding: tuple[int, int],
    shift: int,
    relu: bool,
) -> np.ndarray:
    """Quantized 2-D convolution.

    ``weights`` has shape ``(kh, kw, cin, cout)``; ``bias`` is int32 in
    accumulator scale (i.e. already shifted left by the requantization shift).
    Returns an int8 HWC map.
    """
    data = _check_feature_map(data, "conv input")
    weights = np.asarray(weights)
    if weights.ndim != 4:
        raise QuantizationError(f"conv weights must be (kh, kw, cin, cout), got {weights.shape}")
    kh, kw, cin, cout = weights.shape
    if cin != data.shape[2]:
        raise QuantizationError(
            f"conv weights expect {cin} input channels, feature map has {data.shape[2]}"
        )
    sh, sw = stride
    padded = pad_hw(data, padding)
    out_h = (padded.shape[0] - kh) // sh + 1
    out_w = (padded.shape[1] - kw) // sw + 1

    acc = np.zeros((out_h, out_w, cout), dtype=np.int64)
    w64 = weights.astype(np.int64)
    for dy in range(kh):
        for dx in range(kw):
            # Strided window of the padded input aligned to tap (dy, dx).
            window = padded[dy : dy + out_h * sh : sh, dx : dx + out_w * sw : sw, :]
            acc += np.tensordot(window.astype(np.int64), w64[dy, dx], axes=([2], [0]))
    if bias is not None:
        acc += np.asarray(bias, dtype=np.int64).reshape(1, 1, cout)
    out = saturating_shift(acc, shift)
    if relu:
        out = np.maximum(out, 0).astype(np.int8)
    return out


def depthwise_conv2d(
    data: np.ndarray,
    weights: np.ndarray,
    bias: np.ndarray | None,
    stride: tuple[int, int],
    padding: tuple[int, int],
    shift: int,
    relu: bool,
) -> np.ndarray:
    """Quantized depthwise convolution; ``weights`` has shape ``(kh, kw, c)``."""
    data = _check_feature_map(data, "depthwise input")
    weights = np.asarray(weights)
    if weights.ndim != 3:
        raise QuantizationError(f"depthwise weights must be (kh, kw, c), got {weights.shape}")
    kh, kw, channels = weights.shape
    if channels != data.shape[2]:
        raise QuantizationError(
            f"depthwise weights expect {channels} channels, feature map has {data.shape[2]}"
        )
    sh, sw = stride
    padded = pad_hw(data, padding)
    out_h = (padded.shape[0] - kh) // sh + 1
    out_w = (padded.shape[1] - kw) // sw + 1

    acc = np.zeros((out_h, out_w, channels), dtype=np.int64)
    w64 = weights.astype(np.int64)
    for dy in range(kh):
        for dx in range(kw):
            window = padded[dy : dy + out_h * sh : sh, dx : dx + out_w * sw : sw, :]
            acc += window.astype(np.int64) * w64[dy, dx].reshape(1, 1, channels)
    if bias is not None:
        acc += np.asarray(bias, dtype=np.int64).reshape(1, 1, channels)
    out = saturating_shift(acc, shift)
    if relu:
        out = np.maximum(out, 0).astype(np.int8)
    return out


def pool2d(
    data: np.ndarray,
    kernel: tuple[int, int],
    stride: tuple[int, int],
    padding: tuple[int, int],
    mode: str,
) -> np.ndarray:
    """Quantized max/average pooling (average truncates toward -inf, as a
    hardware shift-based divider does for power-of-two windows)."""
    data = _check_feature_map(data, "pool input")
    kh, kw = kernel
    sh, sw = stride
    if mode == "max":
        # Pad with the most negative code so padding never wins the max.
        ph, pw = padding
        padded = np.pad(
            data, ((ph, ph), (pw, pw), (0, 0)), mode="constant", constant_values=-128
        )
    elif mode == "avg":
        padded = pad_hw(data, padding)
    else:
        raise QuantizationError(f"pool mode must be 'max' or 'avg', got {mode!r}")
    out_h = (padded.shape[0] - kh) // sh + 1
    out_w = (padded.shape[1] - kw) // sw + 1

    stacked = np.stack(
        [
            padded[dy : dy + out_h * sh : sh, dx : dx + out_w * sw : sw, :]
            for dy in range(kh)
            for dx in range(kw)
        ],
        axis=0,
    )
    if mode == "max":
        return stacked.max(axis=0).astype(np.int8)
    total = stacked.astype(np.int64).sum(axis=0)
    return (total // (kh * kw)).astype(np.int8)


def eltwise_add(lhs: np.ndarray, rhs: np.ndarray, relu: bool) -> np.ndarray:
    """Quantized residual addition with int8 saturation."""
    lhs = _check_feature_map(lhs, "add lhs")
    rhs = _check_feature_map(rhs, "add rhs")
    if lhs.shape != rhs.shape:
        raise QuantizationError(f"add shapes differ: {lhs.shape} vs {rhs.shape}")
    total = lhs.astype(np.int64) + rhs.astype(np.int64)
    out = np.clip(total, -128, 127).astype(np.int8)
    if relu:
        out = np.maximum(out, 0).astype(np.int8)
    return out


def fully_connected(
    data: np.ndarray,
    weights: np.ndarray,
    bias: np.ndarray | None,
    shift: int,
    relu: bool,
) -> np.ndarray:
    """Quantized dense layer on a flattened HWC map; returns (1, 1, out)."""
    data = _check_feature_map(data, "fc input")
    weights = np.asarray(weights)
    if weights.ndim != 2:
        raise QuantizationError(f"fc weights must be (in, out), got {weights.shape}")
    flat = data.reshape(-1).astype(np.int64)
    if flat.shape[0] != weights.shape[0]:
        raise QuantizationError(
            f"fc expects {weights.shape[0]} inputs, feature map flattens to {flat.shape[0]}"
        )
    acc = flat @ weights.astype(np.int64)
    if bias is not None:
        acc = acc + np.asarray(bias, dtype=np.int64)
    out = saturating_shift(acc, shift)
    if relu:
        out = np.maximum(out, 0).astype(np.int8)
    return out.reshape(1, 1, -1)


def global_pool(data: np.ndarray, mode: str, p: float = 3.0) -> np.ndarray:
    """Global pooling to (1, 1, C).

    GeM pooling is evaluated in floating point (the paper runs it in
    post-processing, not on the CALC datapath) and re-quantized to int8 codes
    of the same format as the input.
    """
    data = _check_feature_map(data, "global pool input")
    if mode == "max":
        return data.max(axis=(0, 1), keepdims=True).astype(np.int8)
    if mode == "avg":
        total = data.astype(np.int64).sum(axis=(0, 1), keepdims=True)
        return (total // (data.shape[0] * data.shape[1])).astype(np.int8)
    if mode == "gem":
        real = np.maximum(data.astype(np.float64), 1e-6)
        pooled = np.power(np.mean(np.power(real, p), axis=(0, 1), keepdims=True), 1.0 / p)
        return np.clip(np.rint(pooled), -128, 127).astype(np.int8)
    raise QuantizationError(f"global pool mode must be max/avg/gem, got {mode!r}")
