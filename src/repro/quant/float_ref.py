"""Floating-point reference inference (the pre-quantization model).

The Angel-Eye deployment flow quantizes a trained float model; judging that
quantization needs the float model's outputs.  This module evaluates a
compiled network's layers in float64, using the *dequantized* weights (the
real values the int8 codes represent), so the int8 pipeline can be scored
against its own ideal — per-layer signal-to-noise ratios.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ExecutionError
from repro.quant.fixed_point import ACTIVATION_FRAC_BITS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.compiler.compile import CompiledNetwork


def float_inference(
    compiled: CompiledNetwork, input_map: np.ndarray
) -> dict[str, np.ndarray]:
    """Evaluate every layer in float; returns real-valued activations.

    ``input_map`` is the int8 feature map fed to the accelerator; its real
    value is ``codes * 2**-ACTIVATION_FRAC_BITS``.
    """
    input_map = np.asarray(input_map, dtype=np.int8)
    scale = 2.0**-ACTIVATION_FRAC_BITS
    ddr = compiled.layout.ddr
    outputs: dict[str, np.ndarray] = {
        compiled.graph.input_layer.name: input_map.astype(np.float64) * scale
    }
    by_name = {cfg.name: cfg for cfg in compiled.layer_configs}

    for layer in compiled.graph.layers[1:]:
        cfg = by_name[layer.name]
        sources = [outputs[src] for src in layer.inputs]
        if cfg.kind in ("conv", "depthwise"):
            quant = compiled.quantization.get(cfg.name)
            if quant is None:
                raise ExecutionError(
                    f"layer {cfg.name!r} has no quantization entry; compile with "
                    f"weights='random'"
                )
            weight_scale = quant.weight_format.scale
            weights = ddr.region(cfg.weight_region).array.astype(np.float64) * weight_scale
            bias_scale = 2.0 ** -(ACTIVATION_FRAC_BITS + quant.weight_format.frac_bits)
            bias = (
                ddr.region(cfg.bias_region).array.astype(np.float64) * bias_scale
                if cfg.bias
                else None
            )
            if cfg.kind == "conv":
                result = _float_conv(sources[0], weights, bias, cfg)
            else:
                result = _float_depthwise(sources[0], weights, bias, cfg)
            if cfg.relu:
                result = np.maximum(result, 0.0)
        elif cfg.kind == "pool":
            result = _float_pool(sources[0], cfg)
        elif cfg.kind == "add":
            result = sources[0] + sources[1]
            if cfg.relu:
                result = np.maximum(result, 0.0)
        elif cfg.kind == "global":
            result = _float_global(sources[0], cfg)
        else:  # pragma: no cover
            raise ExecutionError(f"no float op for kind {cfg.kind!r}")
        outputs[layer.name] = result
    return outputs


def _pad(data: np.ndarray, padding: tuple[int, int], value: float = 0.0) -> np.ndarray:
    ph, pw = padding
    if ph == 0 and pw == 0:
        return data
    return np.pad(data, ((ph, ph), (pw, pw), (0, 0)), constant_values=value)


def _float_conv(data, weights, bias, cfg) -> np.ndarray:
    kh, kw, _, cout = weights.shape
    sh, sw = cfg.stride
    padded = _pad(data, cfg.padding)
    out_h = (padded.shape[0] - kh) // sh + 1
    out_w = (padded.shape[1] - kw) // sw + 1
    acc = np.zeros((out_h, out_w, cout))
    for dy in range(kh):
        for dx in range(kw):
            window = padded[dy : dy + out_h * sh : sh, dx : dx + out_w * sw : sw, :]
            acc += np.tensordot(window, weights[dy, dx], axes=([2], [0]))
    if bias is not None:
        acc += bias.reshape(1, 1, -1)
    return acc


def _float_depthwise(data, weights, bias, cfg) -> np.ndarray:
    kh, kw, channels = weights.shape
    sh, sw = cfg.stride
    padded = _pad(data, cfg.padding)
    out_h = (padded.shape[0] - kh) // sh + 1
    out_w = (padded.shape[1] - kw) // sw + 1
    acc = np.zeros((out_h, out_w, channels))
    for dy in range(kh):
        for dx in range(kw):
            window = padded[dy : dy + out_h * sh : sh, dx : dx + out_w * sw : sw, :]
            acc += window * weights[dy, dx].reshape(1, 1, -1)
    if bias is not None:
        acc += bias.reshape(1, 1, -1)
    return acc


def _float_pool(data, cfg) -> np.ndarray:
    kh, kw = cfg.kernel
    sh, sw = cfg.stride
    pad_value = -np.inf if cfg.mode == "max" else 0.0
    padded = _pad(data, cfg.padding, value=pad_value)
    out_h = (padded.shape[0] - kh) // sh + 1
    out_w = (padded.shape[1] - kw) // sw + 1
    stacked = np.stack(
        [
            padded[dy : dy + out_h * sh : sh, dx : dx + out_w * sw : sw, :]
            for dy in range(kh)
            for dx in range(kw)
        ]
    )
    if cfg.mode == "max":
        return stacked.max(axis=0)
    return stacked.mean(axis=0)


def _float_global(data, cfg) -> np.ndarray:
    if cfg.mode == "max":
        return data.max(axis=(0, 1), keepdims=True)
    if cfg.mode == "avg":
        return data.mean(axis=(0, 1), keepdims=True)
    clipped = np.maximum(data, 1e-6)
    return np.power(
        np.mean(np.power(clipped, cfg.gem_p), axis=(0, 1), keepdims=True),
        1.0 / cfg.gem_p,
    )
