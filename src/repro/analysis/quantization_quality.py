"""Per-layer quantization quality: int8 pipeline vs float reference.

The Angel-Eye flow validates its 8-bit quantization by comparing quantized
activations against the float model layer by layer.  This report runs both
models on the same input and scores each layer's signal-to-quantization-
noise ratio (SQNR, dB) — where SQNR collapses, the layer needs a different
format.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accel.reference import golden_inference
from repro.analysis.tables import format_table
from repro.compiler.compile import CompiledNetwork
from repro.compiler.weights import ACTIVATION_FRAC_BITS
from repro.quant.float_ref import float_inference


@dataclass(frozen=True)
class LayerQuality:
    """Quantization fidelity of one layer's output."""

    name: str
    kind: str
    sqnr_db: float
    max_abs_error: float
    saturated_fraction: float


@dataclass(frozen=True)
class QuantizationReport:
    network: str
    layers: list[LayerQuality]

    def worst_layer(self) -> LayerQuality:
        return min(self.layers, key=lambda layer: layer.sqnr_db)

    def mean_sqnr_db(self) -> float:
        return float(np.mean([layer.sqnr_db for layer in self.layers]))

    def format(self) -> str:
        rows = [
            [
                layer.name,
                layer.kind,
                f"{layer.sqnr_db:.1f} dB",
                f"{layer.max_abs_error:.4f}",
                f"{layer.saturated_fraction * 100:.2f}%",
            ]
            for layer in self.layers
        ]
        return format_table(
            ["layer", "kind", "SQNR", "max |error|", "saturated"],
            rows,
            title=(
                f"quantization quality of {self.network}: "
                f"mean SQNR {self.mean_sqnr_db():.1f} dB, "
                f"worst layer {self.worst_layer().name!r}"
            ),
        )


def quantization_report(
    compiled: CompiledNetwork, input_map: np.ndarray
) -> QuantizationReport:
    """Run int8 (golden) and float models; score every layer."""
    quantized = golden_inference(compiled, input_map)
    real = float_inference(compiled, input_map)
    scale = 2.0**-ACTIVATION_FRAC_BITS

    layers = []
    for cfg in compiled.layer_configs:
        int8_values = quantized[cfg.name].astype(np.float64) * scale
        float_values = real[cfg.name]
        error = int8_values - float_values
        signal_power = float(np.mean(float_values**2))
        noise_power = float(np.mean(error**2))
        if noise_power == 0.0:
            sqnr = np.inf
        elif signal_power == 0.0:
            sqnr = -np.inf
        else:
            sqnr = 10.0 * np.log10(signal_power / noise_power)
        saturated = float(
            np.mean(np.abs(quantized[cfg.name].astype(np.int64)) >= 127)
        )
        layers.append(
            LayerQuality(
                name=cfg.name,
                kind=cfg.kind,
                sqnr_db=float(sqnr),
                max_abs_error=float(np.max(np.abs(error))),
                saturated_fraction=saturated,
            )
        )
    return QuantizationReport(network=compiled.graph.name, layers=layers)
