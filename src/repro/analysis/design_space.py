"""Hardware design-space exploration.

Sweeps accelerator configurations (parallelism, buffers, bandwidth) against
a workload and reports, per design point: throughput, VI interrupt latency,
FPGA resources, and energy per inference.  This is the study a deployment
team runs before committing an INCA configuration to silicon — and it shows
the reproduction's models composing: compiler, timing, latency profile,
resource estimator and energy model all feed one table.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analysis.latency import whole_program_profile
from repro.analysis.tables import format_table
from repro.compiler.compile import compile_network
from repro.errors import CompileError
from repro.hw.config import AcceleratorConfig
from repro.hw.energy import EnergyModel, inference_energy
from repro.hw.resources import estimate_accelerator
from repro.interrupt.base import VIRTUAL_INSTRUCTION
from repro.nn.graph import NetworkGraph


@dataclass(frozen=True)
class DesignPoint:
    """One explored configuration and its measured qualities."""

    config: AcceleratorConfig
    fps: float
    inference_ms: float
    vi_mean_latency_us: float
    dsp: int
    bram: int
    energy_mj: float

    @property
    def fps_per_dsp(self) -> float:
        return self.fps / max(self.dsp, 1)


@dataclass(frozen=True)
class DesignSpaceResult:
    network: str
    points: list[DesignPoint]

    def best_by_fps(self) -> DesignPoint:
        return max(self.points, key=lambda point: point.fps)

    def best_by_efficiency(self) -> DesignPoint:
        return max(self.points, key=lambda point: point.fps_per_dsp)

    def format(self) -> str:
        rows = [
            [
                point.config.name,
                f"{point.config.para_in}/{point.config.para_out}/{point.config.para_height}",
                f"{point.fps:.1f}",
                f"{point.inference_ms:.1f} ms",
                f"{point.vi_mean_latency_us:.1f} us",
                point.dsp,
                point.bram,
                f"{point.energy_mj:.1f} mJ",
                f"{point.fps_per_dsp * 1000:.1f}",
            ]
            for point in self.points
        ]
        return format_table(
            ["design", "Para i/o/h", "fps", "latency", "VI response", "DSP", "BRAM",
             "energy/inf", "fps/kDSP"],
            rows,
            title=f"design-space exploration on {self.network}",
        )


def default_design_grid() -> list[AcceleratorConfig]:
    """A small but representative grid around the paper's configurations."""
    big = AcceleratorConfig.big()
    small = AcceleratorConfig.small()
    double = replace(
        big,
        name="angel-eye-2x",
        para_in=32,
        para_out=16,
        para_height=8,
    )
    wide_bw = replace(big, name="angel-eye-hbw", ddr=replace(big.ddr, bytes_per_cycle=16.0))
    return [small, big, wide_bw, double]


def explore(
    graph: NetworkGraph,
    configs: list[AcceleratorConfig] | None = None,
    energy_model: EnergyModel | None = None,
) -> DesignSpaceResult:
    """Compile + evaluate ``graph`` on every configuration.

    Configurations whose buffers cannot fit the network are skipped (the
    compiler's capacity errors are the DSE's infeasibility oracle).
    """
    from repro.accel.runner import run_program

    configs = configs if configs is not None else default_design_grid()
    points = []
    for config in configs:
        try:
            compiled = compile_network(graph, config, weights="zeros", validate=False)
        except CompileError:
            continue  # infeasible design point
        run = run_program(compiled, vi_mode="vi", functional=False)
        profile = whole_program_profile(compiled, VIRTUAL_INSTRUCTION)
        resources = estimate_accelerator(config)
        energy = inference_energy(compiled, run.total_cycles, energy_model)
        milliseconds = config.clock.cycles_to_ms(run.total_cycles)
        points.append(
            DesignPoint(
                config=config,
                fps=1000.0 / milliseconds,
                inference_ms=milliseconds,
                vi_mean_latency_us=profile.mean_us(compiled),
                dsp=resources.dsp,
                bram=resources.bram,
                energy_mj=energy.total_mj,
            )
        )
    if not points:
        raise CompileError(f"no feasible design point for {graph.name!r}")
    return DesignSpaceResult(network=graph.name, points=points)
