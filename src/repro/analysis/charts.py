"""ASCII bar charts for experiment results (terminal-native "figures").

The paper's figures are bar charts; these helpers render the same data as
horizontal ASCII bars so the examples can show the *figure*, not just the
table.  Log-scale bars keep 3-orders-of-magnitude comparisons readable.
"""

from __future__ import annotations

import math
from typing import Sequence


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    title: str | None = None,
    width: int = 50,
    unit: str = "",
    log_scale: bool = False,
) -> str:
    """Horizontal bar chart; one row per (label, value)."""
    if len(labels) != len(values):
        raise ValueError(f"{len(labels)} labels vs {len(values)} values")
    if not values:
        raise ValueError("nothing to chart")
    if any(value < 0 for value in values):
        raise ValueError("bar values must be non-negative")

    if log_scale:
        floor = min(value for value in values if value > 0) / 2
        scaled = [math.log10(max(value, floor) / floor) for value in values]
    else:
        scaled = list(values)
    peak = max(scaled) or 1.0

    label_width = max(len(label) for label in labels)
    lines = []
    if title:
        lines.append(title)
    for label, value, magnitude in zip(labels, values, scaled):
        bar = "#" * max(1 if value > 0 else 0, round(width * magnitude / peak))
        rendered = _format_value(value)
        lines.append(f"{label.rjust(label_width)} |{bar.ljust(width)}| {rendered}{unit}")
    if log_scale:
        lines.append(" " * label_width + "  (log scale)")
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Sequence[str],
    series: dict[str, Sequence[float]],
    title: str | None = None,
    width: int = 50,
    unit: str = "",
    log_scale: bool = True,
) -> str:
    """One block per group, one bar per series — the Fig. barresult layout."""
    flat_labels = []
    flat_values = []
    for index, group in enumerate(groups):
        for name, values in series.items():
            if len(values) != len(groups):
                raise ValueError(
                    f"series {name!r} has {len(values)} values for {len(groups)} groups"
                )
            flat_labels.append(f"{group} / {name}")
            flat_values.append(values[index])
    return bar_chart(
        flat_labels, flat_values, title=title, width=width, unit=unit, log_scale=log_scale
    )


def _format_value(value: float) -> str:
    if value == 0:
        return "0"
    if value >= 1000:
        return f"{value:,.0f}"
    if value >= 10:
        return f"{value:.1f}"
    return f"{value:.2f}"
