"""Roofline-style bandwidth/compute analysis of compiled networks.

Classifies each layer as compute- or memory-bound on the configured
accelerator by comparing its CALC cycles against its DMA cycles, and
summarises where the network's time goes.  This is the analysis that
explains the overlap ablation (GeM's 1x1-heavy stages are memory-bound, so
perfect prefetch hides a quarter of the runtime) and guides hardware sizing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.compiler.compile import CompiledNetwork
from repro.hw.timing import calc_cycles, transfer_cycles
from repro.isa.opcodes import Opcode


@dataclass(frozen=True)
class LayerRoofline:
    """DMA vs compute cycles of one layer."""

    name: str
    kind: str
    calc_cycles: int
    dma_cycles: int

    @property
    def bound(self) -> str:
        return "memory" if self.dma_cycles > self.calc_cycles else "compute"

    @property
    def intensity(self) -> float:
        """Compute-to-traffic cycle ratio (>1 means compute-bound)."""
        return self.calc_cycles / max(self.dma_cycles, 1)


@dataclass(frozen=True)
class RooflineReport:
    network: str
    layers: list[LayerRoofline]

    def memory_bound_fraction(self) -> float:
        """Share of total cycles spent in memory-bound layers."""
        total = sum(layer.calc_cycles + layer.dma_cycles for layer in self.layers)
        bound = sum(
            layer.calc_cycles + layer.dma_cycles
            for layer in self.layers
            if layer.bound == "memory"
        )
        return bound / total if total else 0.0

    def total_calc_cycles(self) -> int:
        return sum(layer.calc_cycles for layer in self.layers)

    def total_dma_cycles(self) -> int:
        return sum(layer.dma_cycles for layer in self.layers)

    def format(self, top: int | None = 15) -> str:
        ordered = sorted(
            self.layers, key=lambda layer: -(layer.calc_cycles + layer.dma_cycles)
        )
        if top is not None:
            ordered = ordered[:top]
        rows = [
            [
                layer.name,
                layer.kind,
                layer.calc_cycles,
                layer.dma_cycles,
                f"{layer.intensity:.2f}",
                layer.bound,
            ]
            for layer in ordered
        ]
        title = (
            f"roofline of {self.network}: {self.total_calc_cycles()} calc / "
            f"{self.total_dma_cycles()} dma cycles, "
            f"{self.memory_bound_fraction() * 100:.0f}% of time in memory-bound layers"
        )
        return format_table(
            ["layer", "kind", "calc cycles", "dma cycles", "intensity", "bound"],
            rows,
            title=title,
        )


def roofline_report(compiled: CompiledNetwork) -> RooflineReport:
    """Accumulate per-layer CALC and DMA cycles from the compiled program."""
    config = compiled.config
    calc: dict[int, int] = {}
    dma: dict[int, int] = {}
    for instruction in compiled.programs["none"]:
        layer = compiled.layer_config(instruction.layer_id)
        if instruction.opcode in (Opcode.LOAD_D, Opcode.LOAD_W, Opcode.SAVE):
            dma[layer.layer_id] = dma.get(layer.layer_id, 0) + transfer_cycles(
                config, instruction.length
            )
        elif instruction.is_calc:
            if layer.kind == "global":
                cycles = layer.in_shape.height * layer.in_shape.width
            elif layer.kind == "add":
                cycles = calc_cycles(config, layer.out_shape.width, (1, 1))
            else:
                cycles = calc_cycles(config, layer.out_shape.width, layer.kernel)
            calc[layer.layer_id] = calc.get(layer.layer_id, 0) + cycles
    layers = [
        LayerRoofline(
            name=layer.name,
            kind=layer.kind,
            calc_cycles=calc.get(layer.layer_id, 0),
            dma_cycles=dma.get(layer.layer_id, 0),
        )
        for layer in compiled.layer_configs
    ]
    return RooflineReport(network=compiled.graph.name, layers=layers)
