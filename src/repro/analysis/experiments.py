"""Experiment drivers: one function per paper table/figure (E1-E9).

Each driver returns structured results and offers a formatted rendering, so
the benchmark suite, the examples and EXPERIMENTS.md all share one source of
truth.  The DSLAM experiment (E10) lives in :mod:`repro.dslam.system` since
it needs the ROS substrate.

Scale note: drivers accept the networks/configs to run on, so tests exercise
them with small models while the benchmarks run the paper's full workloads
(GeM/ResNet-101 480x640 interrupted by SuperPoint).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.latency import (
    LatencyProfile,
    layer_latency_profiles,
    whole_program_profile,
)
from repro.analysis.tables import format_table, format_us
from repro.compiler.compile import CompiledNetwork
from repro.hw.config import AcceleratorConfig
from repro.hw.resources import ResourceEstimate, resource_table
from repro.hw.timing import blob_cycles, transfer_cycles
from repro.interrupt.analytic import LayerGeometry, latency_reduction_ratio, measured_ratio
from repro.interrupt.base import (
    LAYER_BY_LAYER,
    METHODS,
    VIRTUAL_INSTRUCTION,
    InterruptMethod,
)
from repro.interrupt.measure import (
    InterruptMeasurement,
    measure_interrupt,
    run_alone,
    sample_positions,
)
from repro.isa.opcodes import INSTRUCTION_TABLE


# -- E1: interrupt latency & cost at sampled positions (Fig. barresult(a)) ----


@dataclass(frozen=True)
class PositionResult:
    """All methods' measurements for one interrupt position."""

    request_cycle: int
    measurements: dict[str, InterruptMeasurement]


@dataclass(frozen=True)
class E1Result:
    low_name: str
    high_name: str
    config: AcceleratorConfig
    positions: list[PositionResult]

    def mean_response_us(self, method: str) -> float:
        values = [
            position.measurements[method].response_us(self.config)
            for position in self.positions
        ]
        return sum(values) / len(values)

    def mean_cost_us(self, method: str) -> float:
        values = [
            position.measurements[method].extra_cost_us(self.config)
            for position in self.positions
        ]
        return sum(values) / len(values)

    def format(self) -> str:
        headers = ["position"] + [
            f"{method.name} {metric}"
            for method in METHODS
            for metric in ("latency", "cost")
        ]
        clock = self.config.clock.hz
        rows = []
        for position in self.positions:
            row: list[object] = [format_us(position.request_cycle, clock)]
            for method in METHODS:
                m = position.measurements[method.name]
                row.append(format_us(m.response_cycles, clock))
                row.append(format_us(max(m.extra_cost_cycles, 0), clock))
            rows.append(row)
        mean_row: list[object] = ["mean"]
        for method in METHODS:
            mean_row.append(f"{self.mean_response_us(method.name):.1f} us")
            mean_row.append(f"{max(self.mean_cost_us(method.name), 0.0):.1f} us")
        rows.append(mean_row)
        return format_table(
            headers,
            rows,
            title=(
                f"E1: interrupt response latency & extra cost — "
                f"{self.low_name} interrupted by {self.high_name} on {self.config.name}"
            ),
        )


def experiment_interrupt_positions(
    low: CompiledNetwork,
    high: CompiledNetwork,
    num_positions: int = 12,
    seed: int = 2020,
    methods: tuple[InterruptMethod, ...] = METHODS,
) -> E1Result:
    """Reproduce Fig. barresult(a): sample positions, measure every method."""
    alone_low = {method.name: run_alone(low, method) for method in methods}
    alone_high = {method.name: run_alone(high, method) for method in methods}
    cycles = sample_positions(
        min(alone_low.values()), count=num_positions, seed=seed
    )
    positions = []
    for request_cycle in cycles:
        measurements = {
            method.name: measure_interrupt(
                low,
                high,
                method,
                request_cycle,
                low_alone_cycles=alone_low[method.name],
                high_alone_cycles=alone_high[method.name],
            )
            for method in methods
        }
        positions.append(PositionResult(request_cycle, measurements))
    return E1Result(
        low_name=low.graph.name,
        high_name=high.graph.name,
        config=low.config,
        positions=positions,
    )


# -- E2: per-layer latency across networks and accelerators (Fig. barresult(b)) --


@dataclass(frozen=True)
class E2Row:
    network: str
    config: str
    method: str
    mean_layer_latency_us: float
    worst_layer_latency_us: float


@dataclass(frozen=True)
class E2Result:
    rows: list[E2Row]

    def row(self, network: str, config: str, method: str) -> E2Row:
        for candidate in self.rows:
            if (candidate.network, candidate.config, candidate.method) == (
                network,
                config,
                method,
            ):
                return candidate
        raise KeyError(f"no row for ({network}, {config}, {method})")

    def reduction_orders(self, network: str, config: str) -> float:
        """Orders of magnitude between layer-by-layer and VI mean latency."""
        import math

        lbl = self.row(network, config, LAYER_BY_LAYER.name).mean_layer_latency_us
        vi = self.row(network, config, VIRTUAL_INSTRUCTION.name).mean_layer_latency_us
        return math.log10(lbl / vi)

    def format(self) -> str:
        headers = ["network", "accelerator", "method", "mean latency", "worst latency"]
        rows = [
            [
                row.network,
                row.config,
                row.method,
                f"{row.mean_layer_latency_us:.1f} us",
                f"{row.worst_layer_latency_us:.1f} us",
            ]
            for row in self.rows
        ]
        return format_table(headers, rows, title="E2: per-layer interrupt latency")


def experiment_network_sweep(
    compiled_networks: list[CompiledNetwork],
    methods: tuple[InterruptMethod, ...] = (LAYER_BY_LAYER, VIRTUAL_INSTRUCTION),
) -> E2Result:
    """Reproduce Fig. barresult(b): mean per-layer latency for each network."""
    rows = []
    for compiled in compiled_networks:
        for method in methods:
            profiles = layer_latency_profiles(
                compiled, method, kinds=("conv", "depthwise")
            )
            mean_us = sum(p.mean_us(compiled) for p in profiles) / len(profiles)
            worst_us = max(p.worst_us(compiled) for p in profiles)
            rows.append(
                E2Row(
                    network=compiled.graph.name,
                    config=compiled.config.name,
                    method=method.name,
                    mean_layer_latency_us=mean_us,
                    worst_layer_latency_us=worst_us,
                )
            )
    return E2Result(rows=rows)


# -- E3: the instruction table (paper Table 1) ------------------------------------


def experiment_instruction_table() -> str:
    """Regenerate Table 1 from the ISA's own metadata."""
    rows = [
        [info.opcode.name, info.description, info.backup, info.recovery]
        for info in INSTRUCTION_TABLE
    ]
    return format_table(
        ["Type", "Description", "Backups", "Recovery"],
        rows,
        title="E3: basic instruction set (paper Table 1)",
    )


# -- E4: the worked example of Eq. 1 ------------------------------------------------


@dataclass(frozen=True)
class E4Result:
    analytic_ratio: float
    model_ratio: float

    def format(self) -> str:
        return (
            "E4: Eq. 1 worked example (80x60 map, 48->32 channels, Para 8/8/4)\n"
            f"  analytic R_l  = {self.analytic_ratio * 100:.2f} %  (paper: 1.7 %)\n"
            f"  cycle-model   = {self.model_ratio * 100:.2f} %"
        )


def experiment_worked_example() -> E4Result:
    config = AcceleratorConfig.worked_example()
    layer = LayerGeometry(in_channels=48, out_channels=32, out_height=60, out_width=80)
    return E4Result(
        analytic_ratio=latency_reduction_ratio(config, layer),
        model_ratio=measured_ratio(config, layer),
    )


# -- E5: t1 distribution inside one example layer ---------------------------------


@dataclass(frozen=True)
class E5Result:
    layer_name: str
    profiles: dict[str, LatencyProfile]
    clock_hz: float

    def reduction(self) -> float:
        vi = self.profiles[VIRTUAL_INSTRUCTION.name]
        lbl = self.profiles[LAYER_BY_LAYER.name]
        return vi.worst_cycles / lbl.worst_cycles

    def format(self) -> str:
        rows = [
            [
                name,
                format_us(profile.worst_cycles, self.clock_hz),
                format_us(profile.mean_cycles, self.clock_hz),
            ]
            for name, profile in self.profiles.items()
        ]
        return format_table(
            ["method", "worst t1", "mean t1"],
            rows,
            title=f"E5: waiting time in layer {self.layer_name!r} "
            f"(VI worst = {self.reduction() * 100:.1f}% of layer-by-layer)",
        )


def experiment_t1_distribution(compiled: CompiledNetwork, layer_name: str) -> E5Result:
    """Waiting-time profile for one convolution layer, both methods."""
    target = next(
        cfg for cfg in compiled.layer_configs if cfg.name == layer_name
    )
    profiles = {}
    for method in (LAYER_BY_LAYER, VIRTUAL_INSTRUCTION):
        layer_profiles = layer_latency_profiles(compiled, method, kinds=None)
        profiles[method.name] = next(
            profile for profile in layer_profiles if profile.label == target.name
        )
    return E5Result(
        layer_name=layer_name, profiles=profiles, clock_hz=compiled.config.clock.hz
    )


# -- E6: backup vs convolution time (commented paper table) -------------------------


#: The paper's five example layers: (H, W, Cin, Cout, K, stride).
E6_LAYERS = (
    (480, 640, 3, 64, 7, 2),
    (120, 160, 128, 128, 3, 1),
    (30, 40, 1024, 2048, 1, 1),
    (30, 40, 512, 512, 3, 1),
    (16, 20, 512, 512, 3, 1),
)

#: The paper's measured values for the same rows: (backup us, conv us).
E6_PAPER_VALUES = ((26.29, 52.38), (8.77, 41.18), (1.25, 8.75), (1.42, 39.36), (0.75, 20.16))


@dataclass(frozen=True)
class E6Row:
    height: int
    width: int
    in_channels: int
    out_channels: int
    kernel: int
    backup_us: float
    conv_us: float

    @property
    def ratio(self) -> float:
        return self.backup_us / self.conv_us


@dataclass(frozen=True)
class E6Result:
    rows: list[E6Row]

    def format(self) -> str:
        table_rows = []
        for row, (paper_backup, paper_conv) in zip(self.rows, E6_PAPER_VALUES):
            table_rows.append(
                [
                    f"{row.height}x{row.width}",
                    row.in_channels,
                    row.out_channels,
                    f"{row.kernel}x{row.kernel}",
                    f"{row.backup_us:.2f}",
                    f"{row.conv_us:.2f}",
                    f"{row.ratio * 100:.1f}%",
                    f"{paper_backup:.2f}/{paper_conv:.2f}",
                ]
            )
        return format_table(
            ["map", "Cin", "Cout", "kernel", "backup t2 (us)", "conv t1 (us)", "t2/t1", "paper t2/t1 (us)"],
            table_rows,
            title="E6: data backup vs calculation time",
        )


def experiment_backup_vs_conv(config: AcceleratorConfig | None = None) -> E6Result:
    """Reproduce the backup-vs-conv table: t1 = one CalcBlob, t2 = one
    output-channel group's stripe results."""
    config = config or AcceleratorConfig.big()
    rows = []
    for height, width, cin, cout, kernel, stride in E6_LAYERS:
        out_width = (width + 2 * (kernel // 2) - kernel) // stride + 1
        conv_cycles = blob_cycles(config, cin, out_width, (kernel, kernel))
        backup_bytes = config.para_height * out_width * config.para_out
        backup_cycles = transfer_cycles(config, backup_bytes)
        rows.append(
            E6Row(
                height=height,
                width=width,
                in_channels=cin,
                out_channels=cout,
                kernel=kernel,
                backup_us=config.clock.cycles_to_us(backup_cycles),
                conv_us=config.clock.cycles_to_us(conv_cycles),
            )
        )
    return E6Result(rows=rows)


# -- E7: FPGA resource table --------------------------------------------------------


@dataclass(frozen=True)
class E7Result:
    estimates: list[ResourceEstimate]

    def iau_fraction_of_accelerator(self) -> float:
        accel = next(e for e in self.estimates if e.name == "CNN accelerator")
        iau = next(e for e in self.estimates if e.name == "IAU")
        return iau.lut / accel.lut

    def format(self) -> str:
        rows = [[e.name, e.dsp, e.lut, e.ff, e.bram] for e in self.estimates]
        return format_table(
            ["block", "DSP", "LUT", "FF", "BRAM"],
            rows,
            title="E7: hardware consumption (ZU9 model)",
        )


def experiment_resource_table(config: AcceleratorConfig | None = None) -> E7Result:
    config = config or AcceleratorConfig.big()
    return E7Result(estimates=resource_table(config))


# -- E8: no-interrupt degradation of the VI-ISA ------------------------------------


@dataclass(frozen=True)
class E8Row:
    network: str
    baseline_cycles: int
    vi_cycles: int

    @property
    def degradation_percent(self) -> float:
        return 100.0 * (self.vi_cycles - self.baseline_cycles) / self.baseline_cycles


@dataclass(frozen=True)
class E8Result:
    rows: list[E8Row]

    def worst_degradation(self) -> float:
        return max(row.degradation_percent for row in self.rows)

    def format(self) -> str:
        table_rows = [
            [row.network, row.baseline_cycles, row.vi_cycles, f"{row.degradation_percent:.3f}%"]
            for row in self.rows
        ]
        return format_table(
            ["network", "original cycles", "VI-ISA cycles", "degradation"],
            table_rows,
            title="E8: multi-task support overhead with no interrupts (paper: <=0.3%)",
        )


def experiment_degradation(compiled_networks: list[CompiledNetwork]) -> E8Result:
    """Measure the pure cost of deploying the VI-ISA (extra virtual fetches)."""
    from repro.accel.runner import run_program

    rows = []
    for compiled in compiled_networks:
        baseline = run_program(compiled, vi_mode="none", functional=False).total_cycles
        vi = run_program(compiled, vi_mode="vi", functional=False).total_cycles
        rows.append(E8Row(compiled.graph.name, baseline, vi))
    return E8Result(rows=rows)


# -- E9: VI latency as a fraction of layer-by-layer --------------------------------


@dataclass(frozen=True)
class E9Result:
    network: str
    vi_mean_cycles: float
    layer_mean_cycles: float

    @property
    def ratio_percent(self) -> float:
        return 100.0 * self.vi_mean_cycles / self.layer_mean_cycles

    def format(self) -> str:
        return (
            f"E9: mean response latency over the whole {self.network} run\n"
            f"  layer-by-layer : {self.layer_mean_cycles:.0f} cycles\n"
            f"  VI method      : {self.vi_mean_cycles:.0f} cycles\n"
            f"  ratio          : {self.ratio_percent:.2f} %  (paper: ~2 %)"
        )


def experiment_latency_ratio(compiled: CompiledNetwork) -> E9Result:
    """Reproduce the abstract's headline: VI latency ~= 2% of layer-by-layer."""
    vi = whole_program_profile(compiled, VIRTUAL_INSTRUCTION)
    layer = whole_program_profile(compiled, LAYER_BY_LAYER)
    return E9Result(
        network=compiled.graph.name,
        vi_mean_cycles=vi.mean_cycles,
        layer_mean_cycles=layer.mean_cycles,
    )
