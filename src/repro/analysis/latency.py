"""Deterministic latency profiles computed from compiled programs.

For large networks (ResNet-101 has ~400k instructions) simulating an
interrupt at every layer is wasteful: with no interrupts in flight the
execution is straight-line, so per-instruction completion times are a prefix
sum.  A request arriving at time ``t`` is served at the first *switch
opportunity* at or after ``t`` plus that opportunity's backup cost:

* virtual-instruction method — opportunities are the VIR_SAVE / first
  recovery load / VIR_BARRIER points; VIR_SAVE pays its backup DMA;
* layer-by-layer — opportunities are the end-of-layer barriers, free;
* CPU-like — every instruction boundary, paying a full buffer spill.

The profiles here are exact under that straight-line model and are
cross-validated against full IAU simulations in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compiler.compile import CompiledNetwork
from repro.hw.timing import calc_cycles, fetch_cycles, transfer_cycles
from repro.interrupt.base import InterruptMethod
from repro.isa.opcodes import Opcode


@dataclass(frozen=True)
class LatencyProfile:
    """Interrupt response-latency statistics over an arrival window."""

    label: str
    method: str
    worst_cycles: float
    mean_cycles: float
    switch_points: int

    def worst_us(self, compiled: CompiledNetwork) -> float:
        return compiled.config.clock.cycles_to_us(self.worst_cycles)

    def mean_us(self, compiled: CompiledNetwork) -> float:
        return compiled.config.clock.cycles_to_us(self.mean_cycles)


def instruction_cycles(compiled: CompiledNetwork, vi_mode: str) -> np.ndarray:
    """Duration of each instruction in straight-line (no-interrupt) flow.

    Virtual instructions cost only their fetch; real instructions cost fetch
    plus execution, matching the IAU's accounting.
    """
    program = compiled.program_for(vi_mode)
    config = compiled.config
    fetch = fetch_cycles(config)
    durations = np.empty(len(program), dtype=np.int64)
    for index, instruction in enumerate(program):
        cycles = fetch
        if not instruction.is_virtual:
            if instruction.opcode in (Opcode.LOAD_D, Opcode.LOAD_W, Opcode.SAVE):
                cycles += transfer_cycles(config, instruction.length)
            else:
                layer = compiled.layer_config(instruction.layer_id)
                if layer.kind == "global":
                    cycles += (
                        layer.in_shape.height * layer.in_shape.width
                        + config.calc_overhead_cycles
                    )
                elif layer.kind == "add":
                    cycles += calc_cycles(config, layer.out_shape.width, (1, 1))
                else:
                    cycles += calc_cycles(config, layer.out_shape.width, layer.kernel)
        durations[index] = cycles
    return durations


def switch_events(
    compiled: CompiledNetwork, method: InterruptMethod
) -> tuple[np.ndarray, list[tuple[int, int]]]:
    """(per-instruction durations, [(opportunity time, backup cycles), ...]).

    Opportunity times are completion times along the straight-line schedule.
    """
    config = compiled.config
    durations = instruction_cycles(compiled, method.vi_mode)
    ends = np.cumsum(durations)
    program = compiled.program_for(method.vi_mode)

    events: list[tuple[int, int]] = []
    if method.iau_mode == "cpu":
        spill = transfer_cycles(config, config.total_buffer_bytes)
        events = [(int(end), spill) for end in ends]
    else:
        for index, instruction in enumerate(program):
            if instruction.is_virtual and instruction.is_switch_point:
                backup = 0
                if instruction.opcode == Opcode.VIR_SAVE:
                    backup = transfer_cycles(config, instruction.length)
                events.append((int(ends[index]), backup))
    # The end of the program is always a free opportunity (the task is done).
    events.append((int(ends[-1]), 0))
    return durations, events


def window_profile(
    label: str,
    method: InterruptMethod,
    events: list[tuple[int, int]],
    window: tuple[int, int],
) -> LatencyProfile:
    """Latency stats for arrivals uniform over ``window`` = [start, stop)."""
    start, stop = window
    if stop <= start:
        raise ValueError(f"empty arrival window [{start}, {stop})")
    total_area = 0.0
    worst = 0.0
    count = 0
    cursor = start
    for time, backup in events:
        if time < start:
            continue
        if cursor >= stop:
            break
        segment_end = min(time, stop)
        if segment_end > cursor:
            width = segment_end - cursor
            # Integral of (time - t + backup) for t in [cursor, segment_end).
            total_area += (time + backup) * width - (segment_end**2 - cursor**2) / 2.0
            worst = max(worst, time - cursor + backup)
            count += 1
        cursor = max(cursor, time)
    if cursor < stop:
        raise ValueError(
            f"no switch opportunity after cycle {cursor}; events end too early"
        )
    return LatencyProfile(
        label=label,
        method=method.name,
        worst_cycles=worst,
        mean_cycles=total_area / (stop - start),
        switch_points=count,
    )


def layer_windows(compiled: CompiledNetwork, vi_mode: str, durations: np.ndarray) -> dict[int, tuple[int, int]]:
    """layer_id -> (start, stop) cycle window along the straight-line run."""
    program = compiled.program_for(vi_mode)
    ends = np.cumsum(durations)
    starts = ends - durations
    windows: dict[int, tuple[int, int]] = {}
    for index, instruction in enumerate(program):
        lo, hi = windows.get(
            instruction.layer_id, (int(starts[index]), int(ends[index]))
        )
        windows[instruction.layer_id] = (
            min(lo, int(starts[index])),
            max(hi, int(ends[index])),
        )
    return windows


def layer_latency_profiles(
    compiled: CompiledNetwork, method: InterruptMethod, kinds: tuple[str, ...] | None = None
) -> list[LatencyProfile]:
    """Per-layer response-latency profiles (paper Fig. barresult(b) data)."""
    durations, events = switch_events(compiled, method)
    windows = layer_windows(compiled, method.vi_mode, durations)
    profiles = []
    for layer in compiled.layer_configs:
        if kinds is not None and layer.kind not in kinds:
            continue
        profiles.append(
            window_profile(layer.name, method, events, windows[layer.layer_id])
        )
    return profiles


def whole_program_profile(
    compiled: CompiledNetwork, method: InterruptMethod
) -> LatencyProfile:
    """Latency profile for arrivals anywhere in the network's execution."""
    durations, events = switch_events(compiled, method)
    total = int(np.sum(durations))
    return window_profile(compiled.graph.name, method, events, (0, total))


def response_at(
    compiled: CompiledNetwork, method: InterruptMethod, request_cycle: int
) -> int:
    """Predicted response latency for one arrival time (cross-validation)."""
    _, events = switch_events(compiled, method)
    for time, backup in events:
        if time >= request_cycle:
            return int(time - request_cycle + backup)
    raise ValueError(f"request at {request_cycle} falls after the program ends")
