"""Plain-text table rendering for experiment outputs.

The benchmark harness prints the same rows the paper's tables/figures report;
this module keeps the formatting in one place.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(f"row {row!r} has {len(row)} cells, expected {columns}")
    cells = [[_render(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[index]), *(len(row[index]) for row in cells)) if cells else len(headers[index])
        for index in range(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * width for width in widths))
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(columns)))
    return "\n".join(lines)


def _render(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    return str(cell)


def format_us(cycles: float, clock_hz: float) -> str:
    """Cycles -> microseconds/milliseconds string at a given clock."""
    micros = cycles * 1e6 / clock_hz
    if micros >= 1000:
        return f"{micros / 1000:.2f} ms"
    return f"{micros:.1f} us"
