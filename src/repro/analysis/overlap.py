"""DMA/compute overlap ablation (perfect double-buffering bound).

The reference simulator serialises LOAD / CALC / SAVE, which is why its VI
latency floor sits slightly above the paper's (~3 % vs ~2 % of
layer-by-layer, E9).  The real Angel-Eye double-buffers: a tile's DMA can be
prefetched behind the previous tile's computation.

This module computes the *perfect-prefetch* bound of that behaviour with a
credit model: compute cycles accrue "hiding credit", and each DMA descriptor
consumes credit before spending visible time.  Credit is banked only within
a layer (cross-layer prefetch would need the next layer's base addresses in
flight, which the instruction-driven front end doesn't do).

Used by the overlap ablation benchmark to show the latency floor moving
toward the paper's figure when overlap is granted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.latency import instruction_cycles, window_profile
from repro.compiler.compile import CompiledNetwork
from repro.hw.timing import transfer_cycles
from repro.interrupt.base import InterruptMethod
from repro.isa.opcodes import Opcode

_DMA_OPCODES = (Opcode.LOAD_D, Opcode.LOAD_W, Opcode.SAVE)


def overlapped_instruction_cycles(compiled: CompiledNetwork, vi_mode: str) -> np.ndarray:
    """Per-instruction *visible* durations under perfect intra-layer prefetch."""
    serial = instruction_cycles(compiled, vi_mode)
    program = compiled.program_for(vi_mode)
    fetch = compiled.config.instruction_fetch_cycles

    overlapped = serial.copy()
    credit = 0
    current_layer = -1
    for index, instruction in enumerate(program):
        if instruction.layer_id != current_layer:
            current_layer = instruction.layer_id
            credit = 0
        if instruction.is_virtual:
            continue
        if instruction.opcode in _DMA_OPCODES:
            dma = int(serial[index]) - fetch
            hidden = min(credit, dma)
            credit -= hidden
            overlapped[index] = fetch + (dma - hidden)
        else:
            credit += int(serial[index]) - fetch
    return overlapped


@dataclass(frozen=True)
class OverlapSummary:
    """Serial vs overlapped execution of one program."""

    network: str
    serial_cycles: int
    overlapped_cycles: int

    @property
    def speedup(self) -> float:
        return self.serial_cycles / self.overlapped_cycles

    @property
    def hidden_fraction(self) -> float:
        """Share of serial time hidden behind compute."""
        return 1.0 - self.overlapped_cycles / self.serial_cycles


def overlap_summary(compiled: CompiledNetwork, vi_mode: str = "vi") -> OverlapSummary:
    serial = int(np.sum(instruction_cycles(compiled, vi_mode)))
    overlapped = int(np.sum(overlapped_instruction_cycles(compiled, vi_mode)))
    return OverlapSummary(
        network=compiled.graph.name,
        serial_cycles=serial,
        overlapped_cycles=overlapped,
    )


def overlapped_mean_latency(
    compiled: CompiledNetwork, method: InterruptMethod
) -> float:
    """Mean response latency (cycles) over the whole run, with overlap.

    Mirrors :func:`repro.analysis.latency.whole_program_profile` but on the
    overlapped timeline.
    """
    durations = overlapped_instruction_cycles(compiled, method.vi_mode)
    ends = np.cumsum(durations)
    program = compiled.program_for(method.vi_mode)
    config = compiled.config

    events: list[tuple[int, int]] = []
    if method.iau_mode == "cpu":
        spill = transfer_cycles(config, config.total_buffer_bytes)
        events = [(int(end), spill) for end in ends]
    else:
        for index, instruction in enumerate(program):
            if instruction.is_virtual and instruction.is_switch_point:
                backup = 0
                if instruction.opcode == Opcode.VIR_SAVE:
                    backup = transfer_cycles(config, instruction.length)
                events.append((int(ends[index]), backup))
    events.append((int(ends[-1]), 0))
    total = int(np.sum(durations))
    profile = window_profile(compiled.graph.name, method, events, (0, total))
    return profile.mean_cycles
