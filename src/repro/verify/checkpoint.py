"""Checkpoint-coverage proof (CHK001-CHK004).

At every interrupt point the paper's guarantee is exact state transfer: the
VIR_SAVE must back up precisely the finalized-but-unsaved output resident at
that point, and the trailing recovery loads must restore precisely the
on-chip state the instructions after the point still consume.  This pass
*proves* that statically:

1. a :class:`~repro.verify.bufferflow.BufferSim` replays the uninterrupted
   path, so at each virtual instruction the abstract buffer state is exactly
   what the IAU would find on a preemption there;
2. a forward liveness query determines which resident tiles / weights are
   still read before being redefined — only those must be restored;
3. the VIR_SAVE window is compared against the resident output section, the
   recovery-load pack against the live resident tiles, and the VIR_SAVE /
   SAVE pairing against the exact arithmetic of the IAU's expansion
   (:meth:`Instruction.materialized` + ``with_channel_range`` in
   :meth:`repro.iau.unit.Iau._preempt_at` and ``_rewrite_save``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from repro.hw.config import AcceleratorConfig
from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.verify.bufferflow import AbstractTile, BufferSim
from repro.verify.diagnostics import Report, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (compiler -> isa)
    from repro.compiler.layer_config import LayerConfig

_PACK_OPS = (Opcode.VIR_LOAD_D, Opcode.VIR_LOAD_W)
_WEIGHTED_KINDS = ("conv", "depthwise")


class _CheckpointPass:
    def __init__(
        self,
        program: Program,
        report: Report,
        config: AcceleratorConfig,
        layers: Mapping[int, "LayerConfig"],
    ) -> None:
        self.program = program
        self.report = report
        self.layers = layers
        # The replay uses a scratch report: BUF findings belong to the
        # bufferflow pass; this pass only cares about the state itself.
        self.sim = BufferSim(program, config, layers, Report())
        self.paired_save = self._pair_saves()

    def _pair_saves(self) -> dict[int, int]:
        """VIR_SAVE index -> index of the next real SAVE with its save_id."""
        pending: dict[int, list[int]] = {}
        paired: dict[int, int] = {}
        for index, instruction in enumerate(self.program):
            if instruction.opcode == Opcode.VIR_SAVE:
                pending.setdefault(instruction.save_id, []).append(index)
            elif instruction.opcode == Opcode.SAVE:
                for vir_index in pending.pop(instruction.save_id, []):
                    paired[vir_index] = index
        return paired

    # -- driving -----------------------------------------------------------

    def run(self) -> None:
        consumed: set[int] = set()
        for index, instruction in enumerate(self.program):
            if not instruction.is_virtual:
                self.sim.step(index, instruction)
                continue
            if index in consumed:
                continue
            if instruction.opcode == Opcode.VIR_SAVE:
                self._check_vir_save(index, instruction)
                pack = self._collect_pack(index + 1)
                consumed.update(idx for idx, _ in pack)
                self._check_pack(index, pack)
            elif instruction.opcode == Opcode.VIR_BARRIER:
                self._check_barrier(index, instruction)
            elif instruction.opcode in _PACK_OPS:
                pack = self._collect_pack(index)
                consumed.update(idx for idx, _ in pack)
                if instruction.is_switch_point:
                    self._check_no_loose_state(index)
                    self._check_pack(index, pack)
                else:
                    self.report.add(
                        "CHK002",
                        f"{instruction.opcode.name} pack is unreachable: no "
                        f"switch point enters it",
                        program=self.program.name,
                        index=index,
                        severity=Severity.WARNING,
                        hint="recovery loads are replayed from their pack head; "
                        "a pack without an entry point is dead code",
                    )

    def _collect_pack(self, start: int) -> list[tuple[int, Instruction]]:
        pack: list[tuple[int, Instruction]] = []
        for index in range(start, len(self.program)):
            instruction = self.program[index]
            if instruction.opcode not in _PACK_OPS:
                break
            pack.append((index, instruction))
        return pack

    # -- checks -------------------------------------------------------------

    def _check_vir_save(self, index: int, instruction: Instruction) -> None:
        if self.sim.acc is not None:
            self._live_acc(index, instruction)
        section = self.sim.out
        key = (instruction.layer_id, instruction.row0, instruction.rows)
        if section is None or section.key != key:
            resident = "none" if section is None else str(section.key)
            self.report.add(
                "CHK001",
                f"VIR_SAVE backs up section {key} but the resident finalized "
                f"section is {resident}",
                program=self.program.name,
                index=index,
                hint="a preemption here would store the wrong (or no) data; the "
                "VIR_SAVE must describe the section its CALC_Fs finalized",
            )
        else:
            groups = sorted(section.groups, key=lambda group: group.ch0)
            lo, hi = instruction.ch0, instruction.ch0 + instruction.chs
            cursor = lo
            exact = bool(groups) and groups[0].ch0 == lo
            for group in groups:
                if group.ch0 != cursor:
                    exact = False
                    break
                cursor = group.ch0 + group.chs
            if cursor != hi:
                exact = False
            if not exact:
                spans = ", ".join(
                    f"[{group.ch0}, {group.ch0 + group.chs})" for group in groups
                ) or "none"
                self.report.add(
                    "CHK001",
                    f"VIR_SAVE window [{lo}, {hi}) does not equal the resident "
                    f"finalized groups ({spans})",
                    program=self.program.name,
                    index=index,
                    hint="backing up less loses data on preemption; backing up "
                    "more stores garbage over live DDR",
                )
        self._check_pairing(index, instruction)

    def _check_pairing(self, index: int, instruction: Instruction) -> None:
        save_index = self.paired_save.get(index)
        if save_index is None:
            return  # VI003 (structural) already reported the missing SAVE
        save = self.program[save_index]
        problems: list[str] = []
        if (instruction.layer_id, instruction.row0, instruction.rows) != (
            save.layer_id,
            save.row0,
            save.rows,
        ):
            problems.append("section (layer, row0, rows) differs from its SAVE")
        if instruction.ch0 != save.ch0:
            problems.append(
                f"ch0 {instruction.ch0} != SAVE ch0 {save.ch0} (backup must be "
                f"a prefix of the SAVE window)"
            )
        if instruction.chs > save.chs:
            problems.append(
                f"chs {instruction.chs} exceeds SAVE chs {save.chs}"
            )
        if save.chs <= 0 or save.length % save.chs != 0:
            problems.append(
                f"SAVE length {save.length} is not divisible by its chs {save.chs}"
            )
        else:
            bytes_per_channel = save.length // save.chs
            if instruction.length != bytes_per_channel * instruction.chs:
                problems.append(
                    f"length {instruction.length} != {bytes_per_channel} "
                    f"bytes/channel x {instruction.chs} channels"
                )
        for problem in problems:
            self.report.add(
                "CHK004",
                f"VIR_SAVE/SAVE (save_id={instruction.save_id}, "
                f"SAVE at [{save_index}]) expansion arithmetic broken: {problem}",
                program=self.program.name,
                index=index,
                hint="the IAU expands VIR_SAVE with materialized() + "
                "with_channel_range() and trims the SAVE by the channels "
                "already stored; both need the prefix/divisibility contract",
            )

    def _check_barrier(self, index: int, instruction: Instruction) -> None:
        self._check_no_loose_state(index)
        resume = index + 1
        live, weights_live = self._live_state(resume)
        for slot in (0, 1):
            if live.get(slot) and slot in self.sim.data_tiles:
                tile = self.sim.data_tiles[slot]
                self.report.add(
                    "CHK002",
                    f"free VIR_BARRIER but the slot-{slot} tile (layer "
                    f"{tile.layer_id}, rows [{tile.row0}, {tile.row0 + tile.rows})) "
                    f"is still consumed after it",
                    program=self.program.name,
                    index=index,
                    hint="a task switch here invalidates the buffers; a barrier "
                    "is only free where every tile is reloaded anyway",
                )
        if weights_live and self.sim.weights is not None:
            self.report.add(
                "CHK002",
                "free VIR_BARRIER but the resident weight chunk is still "
                "consumed after it",
                program=self.program.name,
                index=index,
            )

    def _check_no_loose_state(self, index: int) -> None:
        if self.sim.acc is not None:
            self._live_acc(index, self.program[index])
        section = self.sim.out
        if section is not None and section.groups:
            lo = min(group.ch0 for group in section.groups)
            hi = max(group.ch0 + group.chs for group in section.groups)
            self.report.add(
                "CHK001",
                f"switch point with finalized-but-unsaved output resident "
                f"(section {section.key}, channels [{lo}, {hi})) and no VIR_SAVE "
                f"to back it up",
                program=self.program.name,
                index=index,
                hint="preempting here drops the finalized groups; this point "
                "needs a VIR_SAVE (or must sit after the draining SAVE)",
            )

    def _live_acc(self, index: int, instruction: Instruction) -> None:
        acc = self.sim.acc
        assert acc is not None
        self.report.add(
            "CHK003",
            f"{instruction.opcode.name} exposes the in-flight CalcBlob "
            f"accumulator (layer {acc.layer_id}, channels [{acc.ch0}, "
            f"{acc.ch0 + acc.chs}), next in_ch {acc.next_in_ch0}) — partial "
            f"sums cannot be backed up",
            program=self.program.name,
            index=index,
            hint="interrupt points are only legal between CalcBlobs (after "
            "CALC_F or SAVE)",
        )

    def _check_pack(self, entry: int, pack: list[tuple[int, Instruction]]) -> None:
        """Recovery pack must restore exactly the live resident state."""
        resume = (pack[-1][0] + 1) if pack else entry + 1
        live, weights_live = self._live_state(resume)

        clones: dict[int, tuple[int, Instruction]] = {}
        weight_clone: tuple[int, Instruction] | None = None
        for index, clone in pack:
            if clone.opcode == Opcode.VIR_LOAD_D:
                clones[1 if clone.operand_b else 0] = (index, clone)
            else:
                weight_clone = (index, clone)

        for slot in (0, 1):
            tile = self.sim.data_tiles.get(slot)
            clone_entry = clones.get(slot)
            if live.get(slot) and tile is not None:
                if clone_entry is None:
                    self.report.add(
                        "CHK002",
                        f"recovery at [{entry}] does not restore the slot-{slot} "
                        f"tile (layer {tile.layer_id}, rows [{tile.row0}, "
                        f"{tile.row0 + tile.rows}), channels [{tile.ch0}, "
                        f"{tile.ch0 + tile.chs})) that later CALCs consume",
                        program=self.program.name,
                        index=entry,
                        hint="the pack needs a VIR_LOAD_D clone of the live "
                        "LOAD_D for this operand slot",
                    )
                elif not self._clone_matches(clone_entry[1], tile):
                    index, clone = clone_entry
                    self.report.add(
                        "CHK002",
                        f"recovery load restores rows [{clone.row0}, "
                        f"{clone.row0 + clone.rows}) channels [{clone.ch0}, "
                        f"{clone.ch0 + clone.chs}) ({clone.length} B) but the "
                        f"live slot-{slot} tile is rows [{tile.row0}, "
                        f"{tile.row0 + tile.rows}) channels [{tile.ch0}, "
                        f"{tile.ch0 + tile.chs}) ({tile.nbytes} B)",
                        program=self.program.name,
                        index=index,
                        hint="resuming would install the wrong data; the clone "
                        "must replicate the superseding LOAD_D exactly",
                    )
            elif clone_entry is not None:
                index, clone = clone_entry
                if tile is None:
                    self.report.add(
                        "CHK002",
                        f"recovery load installs a slot-{slot} tile that the "
                        f"uninterrupted path does not have resident here",
                        program=self.program.name,
                        index=index,
                        severity=Severity.WARNING,
                    )
                elif not self._clone_matches(clone, tile):
                    self.report.add(
                        "CHK002",
                        f"recovery load differs from the (dead) resident "
                        f"slot-{slot} tile — harmless but suspicious",
                        program=self.program.name,
                        index=index,
                        severity=Severity.WARNING,
                    )

        if weights_live and self.sim.weights is not None:
            weights = self.sim.weights
            matches = weight_clone is not None and (
                weight_clone[1].layer_id,
                weight_clone[1].ch0,
                weight_clone[1].chs,
                weight_clone[1].in_ch0,
                weight_clone[1].in_chs,
                weight_clone[1].length,
            ) == (
                weights.layer_id,
                weights.ch0,
                weights.chs,
                weights.in_ch0,
                weights.in_chs,
                weights.nbytes,
            )
            if not matches:
                self.report.add(
                    "CHK002",
                    f"recovery at [{entry}] does not restore the weight chunk "
                    f"(layer {weights.layer_id}, groups [{weights.ch0}, "
                    f"{weights.ch0 + weights.chs})) that the next CALC consumes",
                    program=self.program.name,
                    index=entry,
                    hint="either add a VIR_LOAD_W clone or schedule the point "
                    "before the blob's LOAD_W (the reference schedule reloads "
                    "weights at every blob)",
                )

    @staticmethod
    def _clone_matches(clone: Instruction, tile: AbstractTile) -> bool:
        return (
            clone.layer_id == tile.layer_id
            and clone.row0 == tile.row0
            and clone.rows == tile.rows
            and clone.ch0 == tile.ch0
            and clone.chs == tile.chs
            and clone.length == tile.nbytes
        )

    # -- liveness ------------------------------------------------------------

    def _live_state(self, start: int) -> tuple[dict[int, bool], bool]:
        """Which resident tiles / weights are read before redefinition.

        Scans forward over the *real* instructions from ``start``: a slot is
        live if a CALC consumes it before a LOAD_D redefines (same slot) or
        evicts (different layer) it; the weight chunk is live if a weighted
        CALC runs before the next LOAD_W.  The scan stops as soon as every
        resident item is resolved, so it is O(distance to the next blob) in
        compiler output, not O(n).
        """
        unresolved: dict[int, int] = {
            slot: tile.layer_id for slot, tile in self.sim.data_tiles.items()
        }
        weights_unresolved = self.sim.weights is not None
        live = {slot: False for slot in unresolved}
        weights_live = False
        for index in range(start, len(self.program)):
            if not unresolved and not weights_unresolved:
                break
            instruction = self.program[index]
            if instruction.is_virtual:
                continue
            opcode = instruction.opcode
            if opcode == Opcode.LOAD_D:
                slot = 1 if instruction.operand_b else 0
                for resolved in [
                    s
                    for s, layer_id in unresolved.items()
                    if s == slot or layer_id != instruction.layer_id
                ]:
                    del unresolved[resolved]
            elif opcode == Opcode.LOAD_W:
                weights_unresolved = False
            elif opcode in (Opcode.CALC_I, Opcode.CALC_F):
                layer = self.layers.get(instruction.layer_id)
                if 0 in unresolved:
                    live[0] = True
                    del unresolved[0]
                if layer is not None and layer.kind == "add" and 1 in unresolved:
                    live[1] = True
                    del unresolved[1]
                if weights_unresolved and layer is not None and (
                    layer.kind in _WEIGHTED_KINDS
                ):
                    weights_live = True
                    weights_unresolved = False
        return live, weights_live


def checkpoint_pass(
    program: Program,
    report: Report,
    config: AcceleratorConfig,
    layers: Mapping[int, "LayerConfig"],
) -> None:
    """Prove backup/recovery coverage at every virtual instruction."""
    _CheckpointPass(program, report, config, layers).run()
