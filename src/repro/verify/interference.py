"""Static interference analysis of armed-safe stretches (INT001-INT005).

The armed fast path (``Iau.run_batched`` with a fault plan and/or the
runtime :class:`~repro.qos.monitor.InvariantMonitor` attached) retires
whole spans of instructions at once instead of stepping them.  Its
bit-exactness contract rests on static claims about each program and the
:class:`~repro.iau.fastpath.ProgramMeta` precomputed from it; this pass
proves those claims per compiled variant:

* **INT001** — the meta's per-site *fault-opportunity* prefix sums account
  for exactly the Bernoulli draws the step-wise path performs on the
  uninterrupted armed path.  An under-count would let a batch sail past a
  fire; an over-count would desynchronize every later draw at that site.
* **INT002** — within every stretch the replayed monitor-visible event
  stream (``DDR_BURST``/``INSTR_RETIRE`` templates) is cycle-monotonic and
  every burst carries its region, so the monitor's batch-aggregate floor
  check is equivalent to per-event dispatch.
* **INT003** — every stretch ends at a *clean* boundary: no CalcBlob
  accumulator and no finalized-but-unsaved output section in flight, so a
  later ``step()`` resumes on exactly the state it expects.
* **INT004** — the per-instruction fault-surface classification is
  consistent with the instruction fields: checkpoint corruption only at a
  switch-point ``VIR_SAVE``, preemption glitches only at switch points,
  DDR faults only on real transfers, and every draw the armed step path
  performs stays inside the declared surface.
* **INT005** — the program keeps enough armed-stretch coverage for
  batching to pay off (a warning below the floor, never an error).

INT001 and INT003 re-derive their ground truth from the instruction
stream independently of :func:`~repro.iau.fastpath.build_program_meta`'s
own bookkeeping, so a drift between builder and runtime is caught here as
a named diagnostic instead of as a silent bit-divergence deep inside a
fault campaign.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.faults.plan import FaultSite
from repro.iau.fastpath import (
    BATCH_FAULT_SITES,
    MIN_BATCH,
    ProgramMeta,
    batch_draws,
    fault_surface,
)
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.verify.diagnostics import Report, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (compiler -> isa)
    from repro.compiler.compile import CompiledNetwork

#: Sites a DDR transfer hosts.
_DDR_SITES = (FaultSite.DDR_STALL, FaultSite.DDR_BIT_FLIP)

#: Sites that are never hosted by an instruction (they fire at switch-in or
#: above the IAU) and therefore must never appear in a fault surface.
_NEVER_HOSTED = (FaultSite.JOB_OVERRUN, FaultSite.ROS_DROP, FaultSite.ROS_DELAY)

#: Below this armed-stretch coverage, batching degenerates to stepping for
#: most of the program (INT005 warns; it never fails a build).
COVERAGE_FLOOR = 0.5


@dataclass(frozen=True)
class StretchCoverage:
    """Armed-stretch coverage statistics of one program variant."""

    program: str
    instructions: int
    stretches: int
    #: Stretches long enough for ``run_batched`` to engage (>= MIN_BATCH).
    batchable_stretches: int
    #: Instructions inside batchable stretches.
    covered_instructions: int
    #: Total armed-path Bernoulli draws per site value over the program.
    draws: dict[str, int]

    @property
    def coverage(self) -> float:
        """Fraction of instructions the armed fast path can batch."""
        if not self.instructions:
            return 1.0
        return self.covered_instructions / self.instructions

    def to_json(self) -> dict[str, Any]:
        return {
            "instructions": self.instructions,
            "stretches": self.stretches,
            "batchable_stretches": self.batchable_stretches,
            "covered_instructions": self.covered_instructions,
            "coverage": round(self.coverage, 4),
            "draws": dict(self.draws),
        }


def stretch_coverage(compiled: "CompiledNetwork", vi_mode: str = "vi") -> StretchCoverage:
    """Armed-stretch coverage of one variant of a compiled network."""
    program = compiled.program_for(vi_mode)
    meta = compiled.execution_meta(program)
    return _coverage(program, meta)


def interference_pass(compiled: "CompiledNetwork", report: Report) -> None:
    """Run INT001-INT005 over every program variant of ``compiled``."""
    for program in compiled.programs.values():
        meta = compiled.execution_meta(program)
        _opportunity_accounting(program, meta, report)
        _monitor_stream(program, meta, report)
        _boundaries(compiled, program, meta, report)
        _surfaces(program, report)
        _coverage_floor(program, meta, report)


# -- INT001: fault-opportunity accounting ------------------------------------


def _opportunity_accounting(program: Program, meta: ProgramMeta, report: Report) -> None:
    n = len(program)
    expected = {site.value for site in BATCH_FAULT_SITES}
    tracked = set(meta.opportunities)
    for value in sorted(tracked - expected):
        report.add(
            "INT001",
            f"opportunity table tracks {value!r}, which is not a batch-regime site",
            program=program.name,
            hint="BATCH_FAULT_SITES is the closed set the armed step path draws from",
        )
    for value in sorted(expected - tracked):
        report.add(
            "INT001",
            f"opportunity table is missing site {value!r} — a batch could sail "
            f"past one of its fires",
            program=program.name,
            hint="rebuild the ProgramMeta; stale caches are rejected by the "
            "compile-cache format version",
        )
    for value in sorted(expected & tracked):
        opp = meta.opportunities[value]
        site = FaultSite(value)
        if len(opp) != n + 1:
            report.add(
                "INT001",
                f"opportunity prefix sums for {value} have length {len(opp)}, "
                f"expected {n + 1}",
                program=program.name,
            )
            continue
        for index, instruction in enumerate(program):
            want = batch_draws(instruction).count(site)
            got = opp[index + 1] - opp[index]
            if got != want:
                report.add(
                    "INT001",
                    f"{instruction.opcode.name} draws {want}x {value} on the "
                    f"armed step path but the table accounts {got}",
                    program=program.name,
                    index=index,
                    hint="run_batched burns exactly the table's draws after a "
                    "batch; any mismatch desynchronizes the site's RNG stream",
                )
                break  # one finding per site localizes the drift


# -- INT002: monitor-visible stream inside a stretch -------------------------


def _monitor_stream(program: Program, meta: ProgramMeta, report: Report) -> None:
    for stretch in meta.stretches():
        floor: int | None = None
        for index in range(stretch.start, stretch.stop):
            spec = meta.events[index]
            if spec is None:
                continue  # a discarded virtual instruction emits nothing
            _layer, opcode_name, cycles, direction, region, _nbytes = spec
            cycle = meta.cum[index] + meta.fetch
            end = cycle + cycles
            if cycles < 0 or (floor is not None and end < floor):
                report.add(
                    "INT002",
                    f"{opcode_name} template ends at cycle {end}, behind the "
                    f"stretch floor {floor} — the monitor's aggregate floor "
                    f"would diverge from per-event dispatch",
                    program=program.name,
                    index=index,
                )
            if direction is not None and region is None:
                report.add(
                    "INT002",
                    f"{opcode_name} burst template carries no DDR region — "
                    f"region ownership could not be checked in aggregate",
                    program=program.name,
                    index=index,
                )
            floor = cycle if floor is None else max(floor, cycle)


# -- INT003: stretches end at clean boundaries -------------------------------


def _clean_indices(compiled: "CompiledNetwork", program: Program) -> set[int]:
    """Indices where the uninterrupted core holds no accumulator and no
    finalized-but-unsaved output section, re-derived from the instruction
    semantics (independently of ``build_program_meta``)."""
    clean = {0}
    acc_open = False
    section: tuple[int, int, int] | None = None
    groups: set[int] = set()  # ch0 of finalized-but-unsaved channel groups
    for index, instruction in enumerate(program):
        opcode = instruction.opcode
        if not instruction.is_virtual:
            if opcode in (Opcode.CALC_I, Opcode.CALC_F):
                layer = compiled.layer_config(instruction.layer_id)
                if layer.kind == "conv":
                    if instruction.in_ch0 == 0:
                        acc_open = True
                    finalize = opcode is Opcode.CALC_F
                else:
                    finalize = True  # non-conv kinds never hold an accumulator
                if finalize:
                    key = (instruction.layer_id, instruction.row0, instruction.rows)
                    if section != key:
                        section = key
                        groups = set()
                    groups.add(instruction.ch0)
                    if layer.kind == "conv":
                        acc_open = False
            elif opcode is Opcode.SAVE and instruction.chs:
                lo, hi = instruction.ch0, instruction.ch0 + instruction.chs
                groups = {ch0 for ch0 in groups if not lo <= ch0 < hi}
                if not groups:
                    section = None
        if not acc_open and section is None:
            clean.add(index + 1)
    return clean


def _boundaries(
    compiled: "CompiledNetwork", program: Program, meta: ProgramMeta, report: Report
) -> None:
    n = len(program)
    boundaries = meta.boundaries
    if boundaries != sorted(set(boundaries)):
        report.add(
            "INT003",
            "boundary table is not strictly increasing",
            program=program.name,
        )
        return
    clean = _clean_indices(compiled, program)
    for boundary in boundaries:
        if boundary not in clean:
            report.add(
                "INT003",
                f"stretch boundary at index {boundary} is not clean — an "
                f"accumulator or unsaved output section is in flight, so a "
                f"batch ending there would desynchronize the core",
                program=program.name,
                index=min(boundary, n - 1) if n else None,
            )
    for index in sorted(clean - set(boundaries)):
        report.add(
            "INT003",
            f"clean index {index} is missing from the boundary table — armed "
            f"batches end earlier than the program allows",
            severity=Severity.WARNING,
            program=program.name,
            index=min(index, n - 1) if n else None,
        )


# -- INT004: fault-site eligibility ------------------------------------------


def _surfaces(program: Program, report: Report) -> None:
    for index, instruction in enumerate(program):
        surface = fault_surface(instruction)
        draws = batch_draws(instruction)
        opcode = instruction.opcode

        outside = set(draws) - set(surface)
        if outside:
            report.add(
                "INT004",
                f"{opcode.name} draws at "
                f"{sorted(site.value for site in outside)} outside its "
                f"declared fault surface",
                program=program.name,
                index=index,
            )
        for site in _NEVER_HOSTED:
            if site in surface:
                report.add(
                    "INT004",
                    f"{site.value} is not instruction-hosted but appears in "
                    f"the surface of {opcode.name}",
                    program=program.name,
                    index=index,
                )

        is_transfer = opcode in (Opcode.LOAD_D, Opcode.LOAD_W) or (
            opcode is Opcode.SAVE and bool(instruction.chs)
        )
        for site in _DDR_SITES:
            if (site in surface) != is_transfer:
                report.add(
                    "INT004",
                    f"{opcode.name} {'is' if is_transfer else 'is not'} a DDR "
                    f"transfer but its surface "
                    f"{'omits' if is_transfer else 'includes'} {site.value}",
                    program=program.name,
                    index=index,
                )

        at_switch = instruction.is_virtual and instruction.is_switch_point
        for site in (FaultSite.IAU_DROP_PREEMPT, FaultSite.IAU_SPURIOUS_PREEMPT):
            if (site in surface) != at_switch:
                report.add(
                    "INT004",
                    f"{opcode.name} {'is' if at_switch else 'is not'} a switch "
                    f"point but its surface "
                    f"{'omits' if at_switch else 'includes'} {site.value}",
                    program=program.name,
                    index=index,
                )

        hosts_checkpoint = at_switch and opcode is Opcode.VIR_SAVE
        if (FaultSite.CHECKPOINT_CORRUPT in surface) != hosts_checkpoint:
            report.add(
                "INT004",
                f"checkpoint corruption can only occur at a switch-point "
                f"VIR_SAVE, but {opcode.name} "
                f"{'omits' if hosts_checkpoint else 'includes'} it",
                program=program.name,
                index=index,
            )


# -- INT005: armed-stretch coverage ------------------------------------------


def _coverage(program: Program, meta: ProgramMeta) -> StretchCoverage:
    n = len(program)
    stretches = 0
    batchable = 0
    covered = 0
    for stretch in meta.stretches():
        stretches += 1
        if stretch.length >= MIN_BATCH:
            batchable += 1
            covered += stretch.length
    return StretchCoverage(
        program=program.name,
        instructions=n,
        stretches=stretches,
        batchable_stretches=batchable,
        covered_instructions=covered,
        draws={value: opp[n] - opp[0] for value, opp in meta.opportunities.items()},
    )


def _coverage_floor(program: Program, meta: ProgramMeta, report: Report) -> None:
    coverage = _coverage(program, meta)
    if coverage.instructions and coverage.coverage < COVERAGE_FLOOR:
        report.add(
            "INT005",
            f"armed-stretch coverage {coverage.coverage:.0%} is below the "
            f"{COVERAGE_FLOOR:.0%} floor "
            f"({coverage.covered_instructions}/{coverage.instructions} "
            f"instructions in batchable stretches)",
            severity=Severity.WARNING,
            program=program.name,
            hint="most of this program steps instruction-by-instruction even "
            "when armed; check the schedule for long in-flight output sections",
        )
