"""Rule catalog of the static VI-ISA verifier.

Every diagnostic the engine can emit is declared here with the invariant it
protects and the paper mechanism that depends on it, so
``docs/static-analysis.md`` and the CLI can present the catalog without
duplicating prose.  Rule IDs are grouped by pass:

* ``PRG``/``VI`` — structural program shape (the historic ``validate_program``
  checks, now engine rules);
* ``BUF`` — abstract buffer-state dataflow over the on-chip buffers;
* ``DDR`` — DDR region addressing and cross-task aliasing;
* ``CHK`` — checkpoint coverage of the Vir_SAVE/Vir_LOAD expansion;
* ``WCL`` — static worst-case interrupt response latency (WCIRL);
* ``INT`` — static interference analysis of the armed-safe stretches the
  batched fast path retires under faults/QoS.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RuleInfo:
    """Documentation row for one verifier rule."""

    rule: str
    title: str
    invariant: str
    paper: str


_RULES: tuple[RuleInfo, ...] = (
    # -- structural ---------------------------------------------------------
    RuleInfo(
        "PRG001",
        "layer ordering",
        "layer_id is non-decreasing along the program (the schedule is layer-ordered).",
        "§IV-A instruction-driven execution model",
    ),
    RuleInfo(
        "PRG002",
        "transfer length",
        "every LOAD/SAVE (real or virtual) declares a positive byte length.",
        "Table 1 LOAD/SAVE semantics",
    ),
    RuleInfo(
        "PRG003",
        "CalcBlob pairing",
        "every CALC_I run is closed by a CALC_F over the same output-channel "
        "window before any SAVE, and no blob is left open at program end.",
        "§IV-C CalcBlob (interrupt only between blobs)",
    ),
    RuleInfo(
        "PRG004",
        "known layer",
        "every instruction's layer_id resolves in the compiled layer-config table.",
        "§IV-A per-layer configuration words",
    ),
    RuleInfo(
        "VI001",
        "virtual position",
        "virtual instructions sit only at legal interrupt points: immediately "
        "after a CALC_F, a SAVE, another virtual instruction, or a layer boundary.",
        "§IV-C interrupt positions (after SAVE or CALC_F)",
    ),
    RuleInfo(
        "VI002",
        "VIR_SAVE identity",
        "every VIR_SAVE carries a save_id (SAVE rewriting needs the pairing).",
        "§IV-C SAVE rewriting",
    ),
    RuleInfo(
        "VI003",
        "save_id pairing",
        "every VIR_SAVE's save_id is carried by a later real SAVE; otherwise "
        "the backup could never be credited and data would be saved twice or lost.",
        "§IV-C SAVE rewriting",
    ),
    # -- buffer-state dataflow ---------------------------------------------
    RuleInfo(
        "BUF001",
        "use before load",
        "every CALC finds its input tile(s) resident — covering rows and "
        "channels — and continues the in-flight accumulator chain.",
        "Table 1 CALC recovery set (weight / input data)",
    ),
    RuleInfo(
        "BUF002",
        "weights resident",
        "every weighted CALC finds a weight chunk resident matching its "
        "output-channel group and input-channel window.",
        "Table 1 CALC recovery set (weight / input data)",
    ),
    RuleInfo(
        "BUF003",
        "data buffer capacity",
        "a LOAD_D never overflows the data buffer given the tiles already resident.",
        "§IV-A on-chip data buffer",
    ),
    RuleInfo(
        "BUF004",
        "weight buffer capacity",
        "a LOAD_W never exceeds the weight buffer.",
        "§IV-A on-chip weight buffer",
    ),
    RuleInfo(
        "BUF005",
        "output buffer capacity",
        "finalized CalcBlob results never overflow the output buffer before "
        "their SAVE drains them.",
        "§IV-A on-chip output buffer",
    ),
    RuleInfo(
        "BUF006",
        "SAVE coverage",
        "a SAVE's channel range is fully covered by contiguous finalized "
        "groups of the resident output section.",
        "Table 1 SAVE semantics",
    ),
    RuleInfo(
        "BUF007",
        "unsaved output overwritten",
        "no finalized-but-unsaved output section is replaced by a new section "
        "or left resident at program end.",
        "§IV-C Vir_SAVE exists precisely to protect this data",
    ),
    # -- DDR regions --------------------------------------------------------
    RuleInfo(
        "DDR001",
        "region addressing",
        "every transfer's ddr_addr is the base of the region the layer "
        "config declares for that operand (input/input2/weights/output).",
        "§IV-A DDR-resident feature maps and parameters",
    ),
    RuleInfo(
        "DDR002",
        "cross-task aliasing",
        "DDR regions of different tasks never overlap — a preempting task "
        "cannot corrupt the preempted task's tensors (the static proof of "
        "what InvariantMonitor checks dynamically).",
        "§IV multi-task isolation",
    ),
    RuleInfo(
        "DDR003",
        "transfer bounds",
        "no transfer moves more bytes than its target region holds.",
        "§IV-A DMA descriptors",
    ),
    # -- checkpoint coverage -----------------------------------------------
    RuleInfo(
        "CHK001",
        "backup covers live output",
        "at an interrupt point, the VIR_SAVE window equals the finalized-but-"
        "unsaved groups resident there (a free barrier point must have none).",
        "§IV-C backup of finalized results",
    ),
    RuleInfo(
        "CHK002",
        "recovery restores live state",
        "the recovery loads at an interrupt point restore exactly the resident "
        "tiles (and weights) that later instructions still consume.",
        "§IV-C recovery loads (t_cost = t4)",
    ),
    RuleInfo(
        "CHK003",
        "no live accumulator",
        "no switch point exposes an in-flight CalcBlob accumulator — partial "
        "sums cannot be backed up.",
        "§IV-C interrupt only between CalcBlobs",
    ),
    RuleInfo(
        "CHK004",
        "expansion arithmetic",
        "each VIR_SAVE is a prefix of its paired SAVE (same section, same "
        "ch0, chs and bytes-per-channel divisible) so the IAU's expansion and "
        "SAVE rewriting are exact.",
        "§IV-C SAVE rewriting arithmetic",
    ),
    # -- WCIRL --------------------------------------------------------------
    RuleInfo(
        "WCL001",
        "interruptible program has switch points",
        "a program meant to be interruptible exposes at least one switch "
        "point, otherwise a pending request waits for the whole inference.",
        "§IV-B response latency comparison",
    ),
    RuleInfo(
        "WCL002",
        "WCIRL within budget",
        "the static worst-case interrupt response latency stays within the "
        "caller-supplied cycle budget.",
        "§V response-latency evaluation",
    ),
    # -- interference analysis (armed-safe stretches) ------------------------
    RuleInfo(
        "INT001",
        "fault-opportunity accounting",
        "the per-site fault-opportunity prefix sums account for exactly the "
        "Bernoulli draws the armed step path performs per instruction, so a "
        "batch never sails past a fire and never desynchronizes an RNG stream.",
        "§IV-C deterministic replay of the interrupt machinery",
    ),
    RuleInfo(
        "INT002",
        "monitor-visible stream monotonic",
        "within every stretch the replayed DDR_BURST/INSTR_RETIRE templates "
        "are cycle-monotonic and every burst carries its region, so the "
        "invariant monitor's batch-aggregate check equals per-event dispatch.",
        "§IV multi-task isolation (runtime monitor)",
    ),
    RuleInfo(
        "INT003",
        "stretches end at clean boundaries",
        "every stretch boundary carries no in-flight accumulator or unsaved "
        "output section, so a later step() resumes on exactly the state it "
        "expects (missing clean indices only cost coverage, a warning).",
        "§IV-C interrupt only between CalcBlobs",
    ),
    RuleInfo(
        "INT004",
        "fault-site eligibility",
        "checkpoint corruption only at a switch-point VIR_SAVE, preemption "
        "glitches only at switch points, DDR faults only on real transfers, "
        "and every armed-path draw stays inside the declared fault surface.",
        "§IV-C interrupt positions / Table 1 transfer semantics",
    ),
    RuleInfo(
        "INT005",
        "armed-stretch coverage",
        "enough of the program sits in batchable stretches for the armed fast "
        "path to pay off (a coverage warning, never an error).",
        "§V speedup evaluation",
    ),
)

RULES: dict[str, RuleInfo] = {info.rule: info for info in _RULES}


def rule_info(rule: str) -> RuleInfo:
    """Catalog entry for ``rule``; raises ``KeyError`` on unknown IDs."""
    return RULES[rule]
