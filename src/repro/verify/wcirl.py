"""Static worst-case interrupt response latency (WCL001-WCL002).

With no interrupt in flight the accelerator executes the program straight-
line, so per-instruction completion times are a prefix sum of the timing
model (:func:`repro.hw.timing.instruction_cycles` plus the per-instruction
fetch).  A request arriving at time ``t`` is served at the first switch
opportunity at or after ``t``, paying that opportunity's backup DMA; the
static WCIRL is therefore the maximum over opportunities of

    (gap since the previous opportunity) + (backup cost of this one).

This mirrors :func:`repro.analysis.latency.window_profile` over the whole
program exactly — the differential tests assert bound-equality against it
and bound-dominance against measured IAU preemptions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.hw.config import AcceleratorConfig
from repro.hw.timing import fetch_cycles, instruction_cycles, transfer_cycles
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.verify.diagnostics import Report

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (compiler -> isa)
    from repro.compiler.layer_config import LayerConfig


@dataclass(frozen=True)
class StaticWcirl:
    """The static worst-case interrupt response latency of one program."""

    program: str
    #: Straight-line execution time of the whole program.
    total_cycles: int
    #: Switch opportunities inside the program (program end not counted).
    switch_points: int
    #: Largest cycle gap between consecutive opportunities (no backup cost).
    worst_gap_cycles: int
    #: The WCIRL bound: worst gap-plus-backup over all opportunities.
    worst_response_cycles: int
    #: Instruction index of the worst opportunity (None = the program end).
    worst_index: int | None

    def worst_us(self, config: AcceleratorConfig) -> float:
        return config.clock.cycles_to_us(self.worst_response_cycles)


def wcirl_bound(
    program: Program,
    config: AcceleratorConfig,
    layers: Mapping[int, "LayerConfig"],
) -> StaticWcirl:
    """Compute the static WCIRL of ``program`` under ``config``'s timing."""
    fetch = fetch_cycles(config)
    time = 0
    # (completion time, backup cycles, instruction index or None for the end)
    events: list[tuple[int, int, int | None]] = []
    for index, instruction in enumerate(program):
        layer = layers.get(instruction.layer_id)
        if instruction.is_virtual:
            execute = 0
        elif (
            instruction.opcode in (Opcode.CALC_I, Opcode.CALC_F) and layer is None
        ):
            execute = 0  # unknown layer: PRG004 already reported; keep going
        else:
            execute = instruction_cycles(config, instruction, layer)  # type: ignore[arg-type]
        time += fetch + execute
        if instruction.is_virtual and instruction.is_switch_point:
            backup = 0
            if instruction.opcode == Opcode.VIR_SAVE:
                backup = transfer_cycles(config, instruction.length)
            events.append((time, backup, index))
    total = time
    switch_points = len(events)
    # The end of the program is always a free opportunity (the task is done).
    events.append((total, 0, None))

    cursor = 0
    worst_gap = 0
    worst_response = 0
    worst_index: int | None = None
    for event_time, backup, index in events:
        if event_time > cursor:
            gap = event_time - cursor
            response = gap + backup
            worst_gap = max(worst_gap, gap)
            if response > worst_response:
                worst_response = response
                worst_index = index
        cursor = max(cursor, event_time)
    return StaticWcirl(
        program=program.name,
        total_cycles=total,
        switch_points=switch_points,
        worst_gap_cycles=worst_gap,
        worst_response_cycles=worst_response,
        worst_index=worst_index,
    )


def wcirl_pass(
    program: Program,
    report: Report,
    config: AcceleratorConfig,
    layers: Mapping[int, "LayerConfig"],
    *,
    expect_interruptible: bool = False,
    max_response_cycles: int | None = None,
) -> StaticWcirl:
    """Compute the bound and check the WCL expectations against it."""
    bound = wcirl_bound(program, config, layers)
    if expect_interruptible and bound.switch_points == 0:
        report.add(
            "WCL001",
            f"program is expected to be interruptible but exposes no switch "
            f"point; a pending request waits the full {bound.total_cycles} "
            f"cycles",
            program=program.name,
            hint="run the VI pass (or the layer-by-layer fallback) so the IAU "
            "has somewhere to preempt",
        )
    if max_response_cycles is not None and (
        bound.worst_response_cycles > max_response_cycles
    ):
        where = (
            "the program end"
            if bound.worst_index is None
            else f"instruction [{bound.worst_index}]"
        )
        report.add(
            "WCL002",
            f"static WCIRL is {bound.worst_response_cycles} cycles (worst at "
            f"{where}) which exceeds the {max_response_cycles}-cycle budget",
            program=program.name,
            index=bound.worst_index,
            hint="add switch points inside the longest gap (smaller CalcBlobs "
            "or more VIR_SAVEs) or relax the response budget",
        )
    return bound
