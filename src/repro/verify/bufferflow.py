"""Abstract buffer-state dataflow (BUF001-BUF007).

A :class:`BufferSim` interprets the real (non-virtual) instruction stream
over an *abstract* copy of the accelerator's on-chip state — data-tile slots,
the weight tile, the CalcBlob accumulator and the finalized-output section —
mirroring :class:`repro.accel.core.AcceleratorCore` check for check, but
recording diagnostics instead of raising and then *recovering* so one run
surfaces every violation.

Beyond the dynamic checks, the abstract view also catches what the simulator
silently tolerates: an unfinished output section being replaced by a new one
(the core just starts a new section; the finalized data is gone) and unsaved
results left resident at program end — both :data:`BUF007`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.errors import IncaError
from repro.hw.config import AcceleratorConfig
from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.verify.diagnostics import Report

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (compiler -> isa)
    from repro.compiler.layer_config import LayerConfig


@dataclass
class AbstractTile:
    """Shape of a data-buffer operand slot (no payload, just coverage)."""

    layer_id: int
    row0: int
    rows: int
    ch0: int
    chs: int
    nbytes: int


@dataclass
class AbstractWeights:
    """Shape of the resident weight chunk."""

    layer_id: int
    ch0: int
    chs: int
    in_ch0: int
    in_chs: int
    nbytes: int


@dataclass
class AbstractAccumulator:
    """The in-flight CalcBlob chain (CALC_I ... CALC_F)."""

    layer_id: int
    row0: int
    rows: int
    ch0: int
    chs: int
    next_in_ch0: int


@dataclass
class AbstractGroup:
    """One finalized output-channel group awaiting SAVE."""

    ch0: int
    chs: int
    nbytes: int


@dataclass
class AbstractSection:
    """The finalized groups of the current output stripe section."""

    layer_id: int
    row0: int
    rows: int
    groups: list[AbstractGroup] = field(default_factory=list)

    @property
    def nbytes(self) -> int:
        return sum(group.nbytes for group in self.groups)

    @property
    def key(self) -> tuple[int, int, int]:
        return (self.layer_id, self.row0, self.rows)


class BufferSim:
    """Abstract interpreter over the on-chip buffer state.

    Feed it real instructions in program order via :meth:`step`; virtual
    instructions must be skipped by the caller (they do not touch buffers on
    the uninterrupted path).  State recovers after every finding so later
    instructions are still checked against a best-effort state.
    """

    def __init__(
        self,
        program: Program,
        config: AcceleratorConfig,
        layers: Mapping[int, "LayerConfig"],
        report: Report,
    ) -> None:
        self.program = program
        self.config = config
        self.layers = layers
        self.report = report
        self.data_tiles: dict[int, AbstractTile] = {}
        self.weights: AbstractWeights | None = None
        self.acc: AbstractAccumulator | None = None
        self.out: AbstractSection | None = None

    # -- driving -----------------------------------------------------------

    def step(self, index: int, instruction: Instruction) -> None:
        layer = self.layers.get(instruction.layer_id)
        if layer is None:
            return  # PRG004 already reported by the structural pass
        opcode = instruction.opcode
        if opcode == Opcode.LOAD_D:
            self._load_d(index, instruction)
        elif opcode == Opcode.LOAD_W:
            self._load_w(index, instruction)
        elif opcode in (Opcode.CALC_I, Opcode.CALC_F):
            self._calc(index, instruction, layer)
        elif opcode == Opcode.SAVE:
            self._save(index, instruction, layer)

    def finish(self, index: int) -> None:
        """End-of-program check: nothing finalized may be left unsaved."""
        if self.out is not None and self.out.groups:
            lo = min(group.ch0 for group in self.out.groups)
            hi = max(group.ch0 + group.chs for group in self.out.groups)
            self.report.add(
                "BUF007",
                f"program ends with finalized-but-unsaved output "
                f"(layer {self.out.layer_id}, rows [{self.out.row0}, "
                f"{self.out.row0 + self.out.rows}), channels [{lo}, {hi}))",
                program=self.program.name,
                index=index,
                hint="every finalized group must be drained by a SAVE before "
                "the program ends",
            )

    # -- loads --------------------------------------------------------------

    def _load_d(self, index: int, instruction: Instruction) -> None:
        slot = 1 if instruction.operand_b else 0
        # A load for a new layer implicitly retires the previous layer's tiles.
        stale = [
            key
            for key, tile in self.data_tiles.items()
            if tile.layer_id != instruction.layer_id
        ]
        for key in stale:
            del self.data_tiles[key]
        other_bytes = sum(
            tile.nbytes for key, tile in self.data_tiles.items() if key != slot
        )
        if other_bytes + instruction.length > self.config.data_buffer_bytes:
            self.report.add(
                "BUF003",
                f"LOAD_D of {instruction.length} bytes overflows the "
                f"{self.config.data_buffer_bytes}-byte data buffer "
                f"({other_bytes} bytes already resident)",
                program=self.program.name,
                index=index,
                hint="shrink the tile (more stripes) or compile for a larger "
                "data buffer",
            )
        self.data_tiles[slot] = AbstractTile(
            layer_id=instruction.layer_id,
            row0=instruction.row0,
            rows=instruction.rows,
            ch0=instruction.ch0,
            chs=instruction.chs,
            nbytes=instruction.length,
        )

    def _load_w(self, index: int, instruction: Instruction) -> None:
        if instruction.length > self.config.weight_buffer_bytes:
            self.report.add(
                "BUF004",
                f"LOAD_W of {instruction.length} bytes exceeds the "
                f"{self.config.weight_buffer_bytes}-byte weight buffer",
                program=self.program.name,
                index=index,
                hint="split the chunk over more input channels or output groups",
            )
        self.weights = AbstractWeights(
            layer_id=instruction.layer_id,
            ch0=instruction.ch0,
            chs=instruction.chs,
            in_ch0=instruction.in_ch0,
            in_chs=instruction.in_chs,
            nbytes=instruction.length,
        )

    # -- calc ----------------------------------------------------------------

    def _calc(self, index: int, instruction: Instruction, layer: "LayerConfig") -> None:
        self._require_tile(index, instruction, layer, slot=0)
        if layer.kind == "add":
            self._require_tile(index, instruction, layer, slot=1)
        if layer.kind in ("conv", "depthwise"):
            self._require_weights(index, instruction, layer)
        if layer.kind == "conv":
            self._calc_conv(index, instruction, layer)
        else:
            # depthwise / pool / add / global finalize in a single CALC.
            self._append_output(index, instruction, layer)

    def _require_tile(
        self, index: int, instruction: Instruction, layer: "LayerConfig", slot: int
    ) -> None:
        tile = self.data_tiles.get(slot)
        operand = "second operand" if slot else "input tile"
        if tile is None or tile.layer_id != instruction.layer_id:
            self.report.add(
                "BUF001",
                f"CALC with no {operand} resident (slot {slot}) — "
                f"missing LOAD_D",
                program=self.program.name,
                index=index,
                hint="every CALC consumes a tile a preceding LOAD_D of the same "
                "layer installed",
            )
            return
        try:
            in_row0, in_rows = layer.input_rows_for(instruction.row0, instruction.rows)
        except IncaError as exc:
            self.report.add(
                "BUF001",
                f"CALC output rows are unsatisfiable: {exc}",
                program=self.program.name,
                index=index,
            )
            return
        if slot == 1:
            # The add second operand is indexed like the output (1:1 rows).
            in_row0, in_rows = instruction.row0, instruction.rows
        if in_row0 < tile.row0 or in_row0 + in_rows > tile.row0 + tile.rows:
            self.report.add(
                "BUF001",
                f"CALC needs input rows [{in_row0}, {in_row0 + in_rows}) but "
                f"{operand} holds [{tile.row0}, {tile.row0 + tile.rows})",
                program=self.program.name,
                index=index,
                hint="the LOAD_D must cover the halo rows of every stripe it serves",
            )
        lo, hi = instruction.in_ch0, instruction.in_ch0 + instruction.in_chs
        if lo < tile.ch0 or hi > tile.ch0 + tile.chs:
            self.report.add(
                "BUF001",
                f"CALC needs input channels [{lo}, {hi}) but {operand} holds "
                f"[{tile.ch0}, {tile.ch0 + tile.chs})",
                program=self.program.name,
                index=index,
            )

    def _require_weights(
        self, index: int, instruction: Instruction, layer: "LayerConfig"
    ) -> None:
        weights = self.weights
        if (
            weights is None
            or weights.layer_id != instruction.layer_id
            or weights.ch0 != instruction.ch0
            or weights.chs != instruction.chs
        ):
            self.report.add(
                "BUF002",
                f"CALC group [{instruction.ch0}, {instruction.ch0 + instruction.chs}) "
                f"has no matching weights resident",
                program=self.program.name,
                index=index,
                hint="every CalcBlob begins with the LOAD_W of its own chunk",
            )
            return
        if layer.kind == "conv":
            lo, hi = instruction.in_ch0, instruction.in_ch0 + instruction.in_chs
            if lo < weights.in_ch0 or hi > weights.in_ch0 + weights.in_chs:
                self.report.add(
                    "BUF002",
                    f"CALC input channels [{lo}, {hi}) not in resident weight "
                    f"chunk [{weights.in_ch0}, {weights.in_ch0 + weights.in_chs})",
                    program=self.program.name,
                    index=index,
                )

    def _calc_conv(self, index: int, instruction: Instruction, layer: "LayerConfig") -> None:
        blob_key = (
            instruction.layer_id,
            instruction.row0,
            instruction.rows,
            instruction.ch0,
            instruction.chs,
        )
        if instruction.in_ch0 == 0:
            self.acc = AbstractAccumulator(*blob_key, next_in_ch0=0)
        acc = self.acc
        if (
            acc is None
            or (acc.layer_id, acc.row0, acc.rows, acc.ch0, acc.chs) != blob_key
            or acc.next_in_ch0 != instruction.in_ch0
        ):
            self.report.add(
                "BUF001",
                f"CALC at in_ch {instruction.in_ch0} does not continue the "
                f"in-flight accumulator chain",
                program=self.program.name,
                index=index,
                hint="a CalcBlob's CALCs must walk in_ch0 contiguously from 0",
            )
            # Recover: pretend the chain restarted here.
            self.acc = AbstractAccumulator(
                *blob_key, next_in_ch0=instruction.in_ch0 + instruction.in_chs
            )
        else:
            acc.next_in_ch0 = instruction.in_ch0 + instruction.in_chs
        if instruction.opcode == Opcode.CALC_F:
            self._append_output(index, instruction, layer)
            self.acc = None

    def _append_output(
        self, index: int, instruction: Instruction, layer: "LayerConfig"
    ) -> None:
        key = (instruction.layer_id, instruction.row0, instruction.rows)
        if self.out is not None and self.out.key != key and self.out.groups:
            lo = min(group.ch0 for group in self.out.groups)
            hi = max(group.ch0 + group.chs for group in self.out.groups)
            self.report.add(
                "BUF007",
                f"starting output section {key} overwrites unsaved section "
                f"{self.out.key} (channels [{lo}, {hi}) were finalized but "
                f"never saved)",
                program=self.program.name,
                index=index,
                hint="drain the previous section with a SAVE before finalizing "
                "results for a new one",
            )
        if self.out is None or self.out.key != key:
            self.out = AbstractSection(
                layer_id=instruction.layer_id,
                row0=instruction.row0,
                rows=instruction.rows,
            )
        nbytes = instruction.rows * layer.out_shape.width * instruction.chs
        if self.out.nbytes + nbytes > self.config.output_buffer_bytes:
            self.report.add(
                "BUF005",
                f"finalized results overflow the "
                f"{self.config.output_buffer_bytes}-byte output buffer "
                f"({self.out.nbytes} + {nbytes} bytes)",
                program=self.program.name,
                index=index,
                hint="drain groups with SAVEs more often (max_groups_per_save)",
            )
        self.out.groups.append(
            AbstractGroup(ch0=instruction.ch0, chs=instruction.chs, nbytes=nbytes)
        )

    # -- save ----------------------------------------------------------------

    def _save(self, index: int, instruction: Instruction, layer: "LayerConfig") -> None:
        if instruction.chs == 0:
            return  # fully pre-saved by a VIR_SAVE; retires for free
        section = self.out
        key = (instruction.layer_id, instruction.row0, instruction.rows)
        if section is None or section.key != key:
            self.report.add(
                "BUF006",
                f"SAVE rows [{instruction.row0}, "
                f"{instruction.row0 + instruction.rows}) but no matching "
                f"finalized section is resident",
                program=self.program.name,
                index=index,
                hint="a SAVE drains the section the preceding CALC_Fs finalized",
            )
            return
        lo, hi = instruction.ch0, instruction.ch0 + instruction.chs
        chosen = sorted(
            (group for group in section.groups if lo <= group.ch0 < hi),
            key=lambda group: group.ch0,
        )
        cursor = lo
        for group in chosen:
            if group.ch0 != cursor:
                self.report.add(
                    "BUF006",
                    f"SAVE range [{lo}, {hi}) has a gap at channel {cursor}",
                    program=self.program.name,
                    index=index,
                )
                break
            cursor = group.ch0 + group.chs
        else:
            if cursor != hi:
                self.report.add(
                    "BUF006",
                    f"SAVE range [{lo}, {hi}) only finalized up to channel {cursor}",
                    program=self.program.name,
                    index=index,
                    hint="the covering CALC_Fs must finalize every channel the "
                    "SAVE drains",
                )
        # Recover: drain whatever overlapped, like the core would have.
        for group in chosen:
            section.groups.remove(group)
        if not section.groups:
            self.out = None


def bufferflow_pass(
    program: Program,
    report: Report,
    config: AcceleratorConfig,
    layers: Mapping[int, "LayerConfig"],
) -> None:
    """Interpret the real-instruction stream, recording BUF diagnostics."""
    sim = BufferSim(program, config, layers, report)
    for index, instruction in enumerate(program):
        if instruction.is_virtual:
            continue
        sim.step(index, instruction)
    sim.finish(len(program) - 1)
