"""Verification engine: runs every applicable pass and collects a Report.

Three entry points, in increasing scope:

* :func:`verify_program` — one instruction stream.  Structural rules always
  run; the abstract-interpretation passes (buffer dataflow, checkpoint
  coverage), the DDR pass and the static WCIRL join in as the layer table /
  layout / hardware config are supplied.
* :func:`verify_network` — all three program variants of a
  :class:`~repro.compiler.compile.CompiledNetwork` with the right
  interruptibility expectations per variant, plus the armed-stretch
  interference analysis (``INT``) over the cached execution metadata.
* :func:`verify_task_set` — several compiled networks meant to share the
  accelerator, adding the cross-task DDR aliasing proof (DDR002).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Mapping

from repro.hw.config import AcceleratorConfig
from repro.isa.program import Program
from repro.verify.bufferflow import bufferflow_pass
from repro.verify.checkpoint import checkpoint_pass
from repro.verify.ddr import cross_task_aliasing, ddr_pass
from repro.verify.diagnostics import Report
from repro.verify.interference import interference_pass
from repro.verify.structural import structural_pass
from repro.verify.wcirl import wcirl_pass

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (compiler -> isa)
    from repro.compiler.allocator import NetworkLayout
    from repro.compiler.compile import CompiledNetwork
    from repro.compiler.layer_config import LayerConfig


def verify_program(
    program: Program,
    *,
    config: AcceleratorConfig | None = None,
    layers: Mapping[int, "LayerConfig"] | None = None,
    layout: "NetworkLayout | None" = None,
    expect_interruptible: bool | None = None,
    max_response_cycles: int | None = None,
) -> Report:
    """Verify one program with every pass its inputs allow.

    ``expect_interruptible=None`` auto-detects: a program carrying virtual
    instructions is held to the interruptibility rules (WCL001).
    """
    report = Report()
    structural_pass(program, report, layers)
    if config is not None and layers is not None:
        bufferflow_pass(program, report, config, layers)
        checkpoint_pass(program, report, config, layers)
    if layers is not None and layout is not None:
        ddr_pass(program, report, layers, layout)
    if config is not None and layers is not None:
        if expect_interruptible is None:
            expect_interruptible = program.num_virtual() > 0
        wcirl_pass(
            program,
            report,
            config,
            layers,
            expect_interruptible=expect_interruptible,
            max_response_cycles=max_response_cycles,
        )
    return report


def layer_table(compiled: "CompiledNetwork") -> dict[int, "LayerConfig"]:
    """layer_id -> config table of a compiled network."""
    return {layer.layer_id: layer for layer in compiled.layer_configs}


def verify_network(
    compiled: "CompiledNetwork", *, max_response_cycles: int | None = None
) -> Report:
    """Verify all program variants of one compiled network.

    The ``vi`` and ``layer`` variants must be interruptible (WCL001 and, if
    given, the ``max_response_cycles`` budget apply); the original-ISA
    ``none`` variant is exempt from the WCL expectations.
    """
    report = Report()
    layers = layer_table(compiled)
    for vi_mode, program in compiled.programs.items():
        interruptible = vi_mode in ("vi", "layer")
        report.extend(
            verify_program(
                program,
                config=compiled.config,
                layers=layers,
                layout=compiled.layout,
                expect_interruptible=interruptible,
                max_response_cycles=max_response_cycles if interruptible else None,
            )
        )
    # Armed-safe stretch analysis needs the compiled network (its cached
    # ProgramMeta is the artefact under test), so it runs at network scope.
    interference_pass(compiled, report)
    return report


def verify_task_set(
    compiled_networks: Iterable["CompiledNetwork"],
    *,
    max_response_cycles: int | None = None,
) -> Report:
    """Verify a set of networks meant to share the accelerator.

    Each network is verified on its own, then the layouts are proven
    pairwise disjoint in DDR (DDR002) — the static form of the runtime
    ``InvariantMonitor`` guarantee.
    """
    report = Report()
    layouts: dict[str, "NetworkLayout"] = {}
    for compiled in compiled_networks:
        report.extend(
            verify_network(compiled, max_response_cycles=max_response_cycles)
        )
        label = compiled.graph.name
        suffix = 2
        while label in layouts:  # same network compiled twice (e.g. two bases)
            label = f"{compiled.graph.name}#{suffix}"
            suffix += 1
        layouts[label] = compiled.layout
    cross_task_aliasing(layouts, report)
    return report
