"""Static-verifier command line.

Run the full diagnostics engine over compiled networks from the model zoo::

    python -m repro.verify --model resnet18            # one network
    python -m repro.verify --all                       # the whole zoo (CI gate)
    python -m repro.verify --all --format json         # machine-readable
    python -m repro.verify --model vgg16 --max-response-us 200

Exit status is 0 when every verified artefact is clean and 1 when any
ERROR-severity finding was recorded, so the command doubles as the CI
``verify-zoo`` gate.  Both formats include the per-variant static WCIRL
bounds and the armed-stretch coverage (what fraction of each program the
batched fast path can retire with faults/QoS armed) alongside the
diagnostics.
"""

from __future__ import annotations

import argparse
import json
from typing import Any

from repro.tools.report import CONFIGS, MODELS
from repro.verify.diagnostics import Report
from repro.verify.engine import layer_table, verify_network
from repro.verify.interference import StretchCoverage, stretch_coverage
from repro.verify.wcirl import wcirl_bound


def _verify_one(
    model: str, config_name: str, max_response_cycles: int | None
) -> tuple[Report, dict[str, Any], dict[str, StretchCoverage]]:
    from repro.compiler.compile import compile_network

    graph = MODELS[model]()
    config = CONFIGS[config_name]()
    compiled = compile_network(graph, config, weights="zeros", validate=False)
    report = verify_network(compiled, max_response_cycles=max_response_cycles)
    layers = layer_table(compiled)
    bounds: dict[str, Any] = {}
    coverage: dict[str, StretchCoverage] = {}
    for vi_mode, program in compiled.programs.items():
        bound = wcirl_bound(program, config, layers)
        bounds[vi_mode] = {
            "total_cycles": bound.total_cycles,
            "switch_points": bound.switch_points,
            "worst_gap_cycles": bound.worst_gap_cycles,
            "worst_response_cycles": bound.worst_response_cycles,
            "worst_response_us": bound.worst_us(config),
        }
        coverage[vi_mode] = stretch_coverage(compiled, vi_mode)
    return report, bounds, coverage


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify", description=__doc__
    )
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--model", choices=sorted(MODELS), default="tiny_cnn")
    group.add_argument(
        "--all", action="store_true", help="verify every model in the zoo"
    )
    parser.add_argument("--config", choices=sorted(CONFIGS), default="big")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument(
        "--max-response-us",
        type=float,
        default=None,
        help="fail (WCL002) if any interruptible variant's static WCIRL "
        "exceeds this budget",
    )
    args = parser.parse_args(argv)

    config = CONFIGS[args.config]()
    max_response_cycles = None
    if args.max_response_us is not None:
        max_response_cycles = int(config.clock.us_to_cycles(args.max_response_us))

    models = sorted(MODELS) if args.all else [args.model]
    payload: list[dict[str, Any]] = []
    any_errors = False
    for model in models:
        report, bounds, coverage = _verify_one(model, args.config, max_response_cycles)
        any_errors = any_errors or not report.ok
        if args.format == "json":
            payload.append(
                {
                    "model": model,
                    "config": args.config,
                    "wcirl": bounds,
                    "stretch_coverage": {
                        vi_mode: cov.to_json() for vi_mode, cov in coverage.items()
                    },
                    **report.to_json(),
                }
            )
        else:
            verdict = "ok" if report.ok else "FAILED"
            wcirl_us = bounds["vi"]["worst_response_us"]
            print(
                f"{model}/{args.config}: {verdict} "
                f"({len(report.errors)} error(s), {len(report.warnings)} "
                f"warning(s), static WCIRL {wcirl_us:.1f} us)"
            )
            stretches = ", ".join(
                f"{vi_mode} {cov.coverage:.0%} "
                f"({cov.covered_instructions}/{cov.instructions} instr, "
                f"{cov.batchable_stretches} stretches)"
                for vi_mode, cov in coverage.items()
            )
            print(f"  armed stretches: {stretches}")
            if report.diagnostics:
                for line in report.format().splitlines():
                    print(f"  {line}")
    if args.format == "json":
        print(json.dumps(payload, indent=2))
    return 1 if any_errors else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
