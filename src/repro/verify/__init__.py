"""Static VI-ISA verifier.

An abstract-interpretation diagnostics engine over compiled programs: typed
:class:`Diagnostic` findings with stable rule IDs, buffer-state dataflow,
DDR aliasing proofs, checkpoint-coverage proofs of the Vir_SAVE/Vir_LOAD
expansion, and a static worst-case interrupt response latency (WCIRL).

``python -m repro.verify`` runs the engine over the model zoo; the rule
catalog is documented in ``docs/static-analysis.md``.
"""

from repro.verify.bufferflow import BufferSim, bufferflow_pass
from repro.verify.checkpoint import checkpoint_pass
from repro.verify.ddr import cross_task_aliasing, ddr_pass
from repro.verify.diagnostics import Diagnostic, Report, Severity
from repro.verify.engine import (
    layer_table,
    verify_network,
    verify_program,
    verify_task_set,
)
from repro.verify.interference import (
    StretchCoverage,
    interference_pass,
    stretch_coverage,
)
from repro.verify.rules import RULES, RuleInfo, rule_info
from repro.verify.structural import structural_pass
from repro.verify.wcirl import StaticWcirl, wcirl_bound, wcirl_pass

__all__ = [
    "BufferSim",
    "Diagnostic",
    "Report",
    "RuleInfo",
    "RULES",
    "Severity",
    "StaticWcirl",
    "StretchCoverage",
    "bufferflow_pass",
    "checkpoint_pass",
    "cross_task_aliasing",
    "ddr_pass",
    "interference_pass",
    "layer_table",
    "rule_info",
    "stretch_coverage",
    "structural_pass",
    "verify_network",
    "verify_program",
    "verify_task_set",
    "wcirl_bound",
    "wcirl_pass",
]
