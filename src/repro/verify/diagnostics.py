"""Typed diagnostics the static verifier emits.

A :class:`Diagnostic` pins one violated invariant to a rule ID (``VI001``,
``BUF003``, ...), a severity, an instruction span inside the offending
program, and a fix hint.  A :class:`Report` collects *all* findings of a
verification run — unlike the historic ``validate_program``, which raised on
the first — so one compile surfaces every problem at once.  The raising
compatibility path is :meth:`Report.raise_if_errors`, which attaches the full
report to the :class:`~repro.errors.ProgramError` it raises.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.errors import ProgramError


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings make :meth:`Report.ok` false (and the CLI exit
    non-zero); ``WARNING`` marks suspicious-but-sound constructs (e.g. a
    recovery load restoring a tile nothing will read); ``INFO`` is advisory.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static verifier."""

    rule: str
    severity: Severity
    message: str
    program: str
    #: First instruction index the finding anchors to (None = whole program).
    index: int | None = None
    #: One-past-last index of the span; defaults to ``index + 1``.
    end_index: int | None = None
    hint: str | None = None

    @property
    def span(self) -> tuple[int, int] | None:
        """Instruction index range ``[first, last+1)``, or None."""
        if self.index is None:
            return None
        stop = self.end_index if self.end_index is not None else self.index + 1
        return (self.index, stop)

    def format(self) -> str:
        where = self.program
        span = self.span
        if span is not None:
            first, stop = span
            where += f"[{first}]" if stop == first + 1 else f"[{first}:{stop}]"
        text = f"{where}: {self.rule} {self.severity.value}: {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_json(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "program": self.program,
            "index": self.index,
            "end_index": self.end_index,
            "hint": self.hint,
        }


@dataclass
class Report:
    """All findings of one verification run."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(
        self,
        rule: str,
        message: str,
        *,
        program: str,
        index: int | None = None,
        end_index: int | None = None,
        severity: Severity = Severity.ERROR,
        hint: str | None = None,
    ) -> Diagnostic:
        diagnostic = Diagnostic(
            rule=rule,
            severity=severity,
            message=message,
            program=program,
            index=index,
            end_index=end_index,
            hint=hint,
        )
        self.diagnostics.append(diagnostic)
        return diagnostic

    def extend(self, other: "Report") -> None:
        self.diagnostics.extend(other.diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    # -- queries -----------------------------------------------------------

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when no ERROR-severity finding was recorded."""
        return not self.errors

    def rule_ids(self) -> set[str]:
        return {d.rule for d in self.diagnostics}

    def by_rule(self, rule: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule]

    # -- presentation --------------------------------------------------------

    def format(self, limit: int | None = None) -> str:
        """Human-readable listing, errors first; ``limit`` caps the lines."""
        if not self.diagnostics:
            return "verification passed: no findings"
        ordered = sorted(
            self.diagnostics,
            key=lambda d: (d.severity is not Severity.ERROR, d.program, d.index or 0),
        )
        shown: Iterable[Diagnostic] = ordered if limit is None else ordered[:limit]
        lines = [d.format() for d in shown]
        hidden = len(ordered) - len(lines)
        if hidden > 0:
            lines.append(f"... and {hidden} more finding(s)")
        return "\n".join(lines)

    def to_json(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "diagnostics": [d.to_json() for d in self.diagnostics],
        }

    def raise_if_errors(self, limit: int = 3) -> None:
        """Raise :class:`ProgramError` carrying this report if any error.

        The exception message pretty-prints the top ``limit`` findings; the
        full report rides along on the exception's ``report`` attribute.
        """
        errors = self.errors
        if not errors:
            return
        programs = sorted({d.program for d in errors})
        head = (
            f"{len(errors)} verifier error(s) in "
            + ", ".join(programs)
            + ":\n"
        )
        body = "\n".join(d.format() for d in errors[:limit])
        if len(errors) > limit:
            body += f"\n... and {len(errors) - limit} more error(s)"
        raise ProgramError(head + body, report=self)
