"""DDR region analysis (DDR001-DDR003).

The instruction stream addresses DDR by region base address while the layer
configs address it by region name; both must agree, every transfer must fit
inside its region, and — across a *task set* — no two tasks' regions may
alias.  The cross-task check is the static counterpart of the runtime
``InvariantMonitor``: instead of watching DMA bursts it proves, from the
layouts alone, that a preempting task can never corrupt the preempted task's
tensors.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Mapping

from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.verify.diagnostics import Report

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (compiler -> isa)
    from repro.compiler.allocator import NetworkLayout
    from repro.compiler.layer_config import LayerConfig
    from repro.hw.ddr import DdrRegion


def ddr_pass(
    program: Program,
    report: Report,
    layers: Mapping[int, "LayerConfig"],
    layout: "NetworkLayout",
) -> None:
    """Check every transfer's address and bounds against the layout."""
    for index, instruction in enumerate(program):
        layer = layers.get(instruction.layer_id)
        if layer is None:
            continue  # PRG004 (structural) already reported it
        region_name = _expected_region(instruction, layer)
        if region_name is _NOT_A_TRANSFER:
            continue
        if region_name is None:
            report.add(
                "DDR001",
                f"{instruction.opcode.name} for layer {layer.name!r} but the "
                f"layer config declares no region for that operand",
                program=program.name,
                index=index,
                hint="the layer-config table and the instruction stream must "
                "come from the same compile",
            )
            continue
        try:
            region = layout.ddr.region(region_name)
        except Exception:
            report.add(
                "DDR001",
                f"layer {layer.name!r} names region {region_name!r} which the "
                f"layout never allocated",
                program=program.name,
                index=index,
            )
            continue
        if instruction.ddr_addr != region.base:
            report.add(
                "DDR001",
                f"{instruction.opcode.name} addresses {instruction.ddr_addr:#x} "
                f"but region {region_name!r} is based at {region.base:#x}",
                program=program.name,
                index=index,
                hint="instructions carry region base addresses; a stale or "
                "relocated layout leaves dangling ddr_addr values",
            )
        limit = region.size
        extent = repr(region_name)
        if instruction.opcode in (Opcode.LOAD_W, Opcode.VIR_LOAD_W) and (
            layer.bias_region is not None
        ):
            # The first weight chunk of a biased layer bursts the bias words
            # too; the allocator places the bias region contiguously after
            # the weights, so the legal extent spans both.
            try:
                limit += layout.ddr.region(layer.bias_region).size
                extent = f"{region_name!r}+{layer.bias_region!r}"
            except Exception:
                pass  # unallocated bias region: bound against the weights alone
        if instruction.length > limit:
            report.add(
                "DDR003",
                f"{instruction.opcode.name} moves {instruction.length} bytes but "
                f"{extent} holds only {limit}",
                program=program.name,
                index=index,
                hint="an overlong DMA burst would spill into the neighbouring "
                "region",
            )


#: Sentinel distinguishing "not a DMA opcode" from "operand region missing".
_NOT_A_TRANSFER = "__not_a_transfer__"


def _expected_region(instruction: Instruction, layer: "LayerConfig") -> str | None:
    opcode = instruction.opcode
    if opcode in (Opcode.LOAD_D, Opcode.VIR_LOAD_D):
        return layer.input2_region if instruction.operand_b else layer.input_region
    if opcode in (Opcode.LOAD_W, Opcode.VIR_LOAD_W):
        return layer.weight_region
    if opcode in (Opcode.SAVE, Opcode.VIR_SAVE):
        if opcode == Opcode.SAVE and instruction.chs == 0:
            return _NOT_A_TRANSFER  # a free SAVE moves nothing
        return layer.output_region
    return _NOT_A_TRANSFER


def cross_task_aliasing(
    layouts: Mapping[str, "NetworkLayout"], report: Report
) -> None:
    """DDR002: prove the tasks' DDR regions are pairwise disjoint.

    ``layouts`` maps a task label (usually the network name) to its layout.
    Regions belonging to the *same* task never alias by construction (the
    bump allocator), so only cross-task pairs are compared.
    """
    intervals: list[tuple[str, "DdrRegion"]] = []
    for task, layout in layouts.items():
        for region in layout.ddr.regions():
            intervals.append((task, region))
    intervals.sort(key=lambda item: item[1].base)
    for i, (task_a, region_a) in enumerate(intervals):
        for task_b, region_b in intervals[i + 1 :]:
            if region_b.base >= region_a.end:
                break  # sorted by base: nothing later can overlap region_a
            if task_a == task_b:
                continue
            report.add(
                "DDR002",
                f"task {task_a!r} region {region_a.name!r} "
                f"[{region_a.base:#x}, {region_a.end:#x}) overlaps task "
                f"{task_b!r} region {region_b.name!r} "
                f"[{region_b.base:#x}, {region_b.end:#x})",
                program=task_a,
                hint="compile each task with a disjoint base_addr; a preempting "
                "task writing this range would corrupt the preempted task's "
                "tensors",
            )


def task_regions(layouts: Mapping[str, "NetworkLayout"]) -> Iterable[tuple[str, "DdrRegion"]]:
    """All (task, region) pairs of a task set, sorted by base address."""
    pairs = [
        (task, region)
        for task, layout in layouts.items()
        for region in layout.ddr.regions()
    ]
    return sorted(pairs, key=lambda item: item[1].base)
