"""Structural program-shape rules (PRG001-PRG004, VI001-VI003).

These are the historic :func:`repro.isa.validate.validate_program` checks
re-expressed as engine rules: instead of raising on the first violation they
record every one, so a malformed compile surfaces all of its problems at
once.  The raising behaviour lives on in the thin compatibility wrapper.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from repro.isa.instructions import NO_SAVE_ID, Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.verify.diagnostics import Report

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (compiler -> isa)
    from repro.compiler.layer_config import LayerConfig

#: Opcodes whose ``length`` field times a DMA descriptor.
_TRANSFER_OPS = (
    Opcode.LOAD_W,
    Opcode.LOAD_D,
    Opcode.SAVE,
    Opcode.VIR_SAVE,
    Opcode.VIR_LOAD_D,
    Opcode.VIR_LOAD_W,
)

#: Opcodes a virtual instruction may legally follow (besides a layer boundary).
_LEGAL_PREDECESSORS = (
    Opcode.CALC_F,
    Opcode.SAVE,
    Opcode.VIR_SAVE,
    Opcode.VIR_LOAD_D,
    Opcode.VIR_LOAD_W,
    Opcode.VIR_BARRIER,
)


def structural_pass(
    program: Program,
    report: Report,
    layers: Mapping[int, LayerConfig] | None = None,
) -> None:
    """Run all structural rules over ``program`` into ``report``."""
    _layer_ordering(program, report)
    _transfer_lengths(program, report)
    _calc_blobs(program, report)
    _virtual_positions(program, report)
    _save_id_pairing(program, report)
    if layers is not None:
        _known_layers(program, report, layers)


def _layer_ordering(program: Program, report: Report) -> None:
    previous = -1
    for index, instruction in enumerate(program):
        if instruction.layer_id < previous:
            report.add(
                "PRG001",
                f"layer_id {instruction.layer_id} after layer_id {previous} "
                f"— schedule must be layer-ordered",
                program=program.name,
                index=index,
                hint="the lowering emits layers in topological order; reorder the schedule",
            )
        previous = max(previous, instruction.layer_id)


def _transfer_lengths(program: Program, report: Report) -> None:
    for index, instruction in enumerate(program):
        if instruction.opcode in _TRANSFER_OPS and instruction.length <= 0:
            report.add(
                "PRG002",
                f"{instruction.opcode.name} with length {instruction.length}; "
                f"transfers must move at least one byte",
                program=program.name,
                index=index,
                hint="a zero-length DMA descriptor stalls the real DMA engine",
            )


def _calc_blobs(program: Program, report: Report) -> None:
    """CALC_I runs must end in a CALC_F on the same output-channel window."""
    open_window: tuple[int, int, int] | None = None  # (layer, ch0, chs)
    for index, instruction in enumerate(program):
        if instruction.opcode == Opcode.CALC_I:
            window = (instruction.layer_id, instruction.ch0, instruction.chs)
            if open_window is not None and open_window != window:
                report.add(
                    "PRG003",
                    f"CALC_I window {window} while blob {open_window} is still open",
                    program=program.name,
                    index=index,
                    hint="finish the open CalcBlob with a CALC_F before starting another",
                )
            open_window = window
        elif instruction.opcode == Opcode.CALC_F:
            window = (instruction.layer_id, instruction.ch0, instruction.chs)
            if open_window is not None and open_window != window:
                report.add(
                    "PRG003",
                    f"CALC_F window {window} does not close open blob {open_window}",
                    program=program.name,
                    index=index,
                    hint="CALC_F must cover the same (layer, ch0, chs) as its CALC_I run",
                )
            open_window = None
        elif instruction.opcode == Opcode.SAVE and open_window is not None:
            report.add(
                "PRG003",
                f"SAVE while CalcBlob {open_window} has no CALC_F — "
                f"intermediate results would be lost",
                program=program.name,
                index=index,
                hint="drain the blob with CALC_F before the SAVE",
            )
            open_window = None  # recover: keep later findings independent
    if open_window is not None:
        report.add(
            "PRG003",
            f"program ends with unterminated CalcBlob {open_window}",
            program=program.name,
            index=len(program) - 1,
            hint="the last CALC of every blob must be a CALC_F",
        )


def _virtual_positions(program: Program, report: Report) -> None:
    """Virtual instructions may only follow CALC_F / SAVE / virtual / layer start."""
    previous: Instruction | None = None
    for index, instruction in enumerate(program):
        if instruction.is_virtual:
            at_layer_boundary = (
                previous is None or previous.layer_id != instruction.layer_id
            )
            if not at_layer_boundary and previous is not None and (
                previous.opcode not in _LEGAL_PREDECESSORS
            ):
                report.add(
                    "VI001",
                    f"{instruction.opcode.name} after {previous.opcode.name} — "
                    f"interrupt points are only legal after CALC_F or SAVE",
                    program=program.name,
                    index=index,
                    hint="mid-blob and mid-load states cannot be backed up; move the "
                    "virtual instruction to the next CALC_F/SAVE boundary",
                )
        previous = instruction


def _save_id_pairing(program: Program, report: Report) -> None:
    pending: dict[int, int] = {}  # save_id -> index of the VIR_SAVE announcing it
    for index, instruction in enumerate(program):
        if instruction.opcode == Opcode.VIR_SAVE:
            if instruction.save_id == NO_SAVE_ID:
                report.add(
                    "VI002",
                    "VIR_SAVE without a save_id",
                    program=program.name,
                    index=index,
                    hint="SAVE rewriting credits the backup against the SAVE "
                    "carrying the same save_id",
                )
            else:
                pending[instruction.save_id] = index
        elif instruction.opcode == Opcode.SAVE and instruction.save_id != NO_SAVE_ID:
            pending.pop(instruction.save_id, None)
    for save_id, index in pending.items():
        report.add(
            "VI003",
            f"VIR_SAVE save_id={save_id} has no subsequent real SAVE to rewrite",
            program=program.name,
            index=index,
            hint="every VIR_SAVE must be consumed by a later SAVE with the same "
            "save_id, or its backup is never credited",
        )


def _known_layers(
    program: Program, report: Report, layers: Mapping[int, LayerConfig]
) -> None:
    seen: set[int] = set()
    for index, instruction in enumerate(program):
        layer_id = instruction.layer_id
        if layer_id not in layers and layer_id not in seen:
            seen.add(layer_id)
            report.add(
                "PRG004",
                f"layer_id {layer_id} has no entry in the layer-config table",
                program=program.name,
                index=index,
                hint="the layer-config table and the instruction stream must come "
                "from the same compile",
            )
