"""Multi-core multi-tasking for CNN accelerators (the paper's future work)."""

from repro.multicore.experiments import (
    ScalingResult,
    ScalingRow,
    compare_deployments,
    run_fe_pr_deployment,
)
from repro.multicore.system import PLACEMENTS, MultiCoreSystem

__all__ = [
    "MultiCoreSystem",
    "PLACEMENTS",
    "ScalingResult",
    "ScalingRow",
    "compare_deployments",
    "run_fe_pr_deployment",
]
