"""Multi-core multi-tasking (the paper's stated future work, §VI).

INCA's conclusion: "INCA currently focuses on interrupt support for
single-core multi-tasking. We plan to investigate the multi-core
multi-tasking for CNN accelerators as part of future work."

This module provides that investigation as a simulator: N accelerator cores
(each an unchanged core + IAU pair) sharing one DDR address space, with a
dispatcher placing jobs onto cores.  Two placement policies:

* ``static`` — each task is pinned to one core (spatial isolation);
* ``least-loaded`` — each *job* goes to the idle core with the smallest
  clock, falling back to the core with the fewest queued jobs; priorities
  still pre-empt within a core via the VI mechanism.

DDR bandwidth contention between cores is not modelled (each core sees the
configured bandwidth); the ablation benchmark documents this.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.accel.core import AcceleratorCore
from repro.compiler.compile import CompiledNetwork
from repro.errors import SchedulerError

if TYPE_CHECKING:
    from repro.faults.plan import FaultPlan
from repro.hw.config import AcceleratorConfig
from repro.hw.ddr import Ddr
from repro.iau.context import JobRecord
from repro.iau.unit import Iau
from repro.obs.bus import EventBus
from repro.obs.config import ObsConfig
from repro.runtime.system import ArrivalPolicy, SubmitSurface

PLACEMENTS = ("static", "least-loaded")


@dataclass(frozen=True, order=True)
class _Request:
    cycle: int
    sequence: int
    task_id: int


@dataclass
class _TaskBinding:
    compiled: CompiledNetwork
    vi_mode: str
    static_core: int | None


class MultiCoreSystem(SubmitSurface):
    """N independent (core, IAU) pairs behind one job dispatcher."""

    def __init__(
        self,
        config: AcceleratorConfig,
        num_cores: int,
        iau_mode: str = "virtual",
        placement: str = "static",
        *,
        obs: ObsConfig | None = None,
        faults: "FaultPlan | None" = None,
    ):
        if num_cores < 1:
            raise SchedulerError(f"num_cores must be >= 1, got {num_cores}")
        if placement not in PLACEMENTS:
            raise SchedulerError(f"placement must be one of {PLACEMENTS}")
        self.config = config
        self.placement = placement
        self.obs = obs if obs is not None else ObsConfig()
        # All cores share one bus; each IAU tags its events with a scope so
        # exporters can separate the per-core streams.
        self.bus: EventBus | None = (
            EventBus(record=self.obs.events, sinks=self.obs.sinks)
            if self.obs.enabled
            else None
        )
        self.ddr = Ddr()
        self.faults = faults
        # The plan is shared: one DDR, one set of per-site RNG streams.
        self.cores: list[Iau] = [
            Iau(
                AcceleratorCore(config, self.ddr, obs=self.obs),
                mode=iau_mode,
                bus=self.bus,
                obs_scope=f"core{index}",
                faults=faults,
            )
            for index in range(num_cores)
        ]
        self._bindings: dict[int, _TaskBinding] = {}
        self._requests: list[_Request] = []
        self._sequence = 0
        #: Undispatched requests per task (keeps NOW_IF_FREE O(cores)).
        self._pending: dict[int, int] = {}

    @property
    def num_cores(self) -> int:
        return len(self.cores)

    # -- setup ----------------------------------------------------------------

    def add_task(
        self,
        task_id: int,
        compiled: CompiledNetwork,
        vi_mode: str = "vi",
        core: int | None = None,
        *,
        deadline_cycles: int | None = None,
    ) -> None:
        """Bind a network to a priority slot; ``core`` pins it (static).

        With dynamic placement the task is attached to *every* core so any
        of them can run its jobs.
        """
        if task_id in self._bindings:
            raise SchedulerError(f"task {task_id} already attached")
        if self.placement == "static":
            if core is None:
                core = task_id % self.num_cores
            if not 0 <= core < self.num_cores:
                raise SchedulerError(f"core {core} out of range")
            targets = [core]
        else:
            if core is not None:
                raise SchedulerError("core pinning requires placement='static'")
            targets = list(range(self.num_cores))
        for region in compiled.layout.ddr.regions():
            if region.name not in {r.name for r in self.ddr.regions()}:
                self.ddr.adopt(region)
        for target in targets:
            self.cores[target].attach_task(
                task_id, compiled, vi_mode=vi_mode, deadline_cycles=deadline_cycles
            )
        self._bindings[task_id] = _TaskBinding(
            compiled=compiled, vi_mode=vi_mode, static_core=core
        )
        self._pending[task_id] = 0

    # -- request injection (submit() inherited from SubmitSurface) ------------
    #
    # Same ArrivalPolicy surface as the single-core MultiTaskSystem,
    # NOW_IF_FREE included: the dispatcher's "now" is the slowest core's
    # clock, and a task counts as busy while any core holds queued, active,
    # or undispatched work for it.

    def _has_task(self, task_id: int) -> bool:
        return task_id in self._bindings

    def _submit_clock(self) -> int:
        return min(core.clock for core in self.cores)

    def _task_busy(self, task_id: int) -> bool:
        if self._pending[task_id]:
            return True
        return any(
            core.contexts[task_id] is not None and core.contexts[task_id].runnable
            for core in self.cores
            if task_id < len(core.contexts)
        )

    def _schedule(self, task_id: int, at_cycle: int) -> None:
        # Same validation surface as the single-core MultiTaskSystem: the
        # dispatcher's "now" is the slowest core's clock — nothing can be
        # back-dated to before it.
        now = self._submit_clock()
        if at_cycle < now:
            raise SchedulerError(
                f"cannot submit in the past (at {at_cycle}, clock {now})"
            )
        heapq.heappush(self._requests, _Request(at_cycle, self._sequence, task_id))
        self._sequence += 1
        self._pending[task_id] += 1

    # -- dispatch ---------------------------------------------------------------

    def _advance_core_to(self, core: Iau, cycle: int, max_steps: int) -> None:
        steps = 0
        while not core.idle and core.clock < cycle:
            # Batch up to the dispatch horizon; falls back to step() at
            # every switch point or armed feature (cycle-exact either way).
            core.run_batched(cycle)
            steps += 1
            if steps > max_steps:
                raise SchedulerError("core failed to reach dispatch time")
        if core.idle:
            core.clock = max(core.clock, cycle)

    def _choose_core(self, task_id: int, cycle: int, max_steps: int) -> Iau:
        binding = self._bindings[task_id]
        if self.placement == "static":
            return self.cores[binding.static_core]
        # Bring every core's view up to the request time, then pick the
        # emptiest one (idle beats busy; fewer queued jobs beats more).
        for core in self.cores:
            self._advance_core_to(core, cycle, max_steps)

        def load(core: Iau) -> tuple[int, int, int]:
            pending = sum(
                (1 if context.active else 0) + len(context.queue)
                for context in core.contexts
                if context is not None
            )
            return (0 if core.idle else 1, pending, core.clock)

        return min(self.cores, key=load)

    def run(self, max_steps: int = 500_000_000) -> int:
        """Dispatch every request and drain every core; returns max clock."""
        while self._requests:
            request = heapq.heappop(self._requests)
            self._pending[request.task_id] -= 1
            core = self._choose_core(request.task_id, request.cycle, max_steps)
            self._advance_core_to(core, request.cycle, max_steps)
            core.request(request.task_id, at_cycle=request.cycle)
        steps = 0
        for core in self.cores:
            # No arrivals remain: drain each core with an unbounded horizon.
            while core.run_batched():
                steps += 1
                if steps > max_steps:
                    raise SchedulerError(f"drain exceeded {max_steps} steps")
        if self.faults is not None:
            self.ddr.scrub()
        return max(core.clock for core in self.cores)

    # -- results ---------------------------------------------------------------

    def jobs(self, task_id: int) -> list[JobRecord]:
        """All completed jobs of a task across cores, in request order."""
        collected: list[JobRecord] = []
        for core in self.cores:
            context = core.contexts[task_id] if task_id < len(core.contexts) else None
            if context is not None:
                collected.extend(context.completed)
        collected.sort(key=lambda job: job.request_cycle)
        return collected

    def summary(self) -> str:
        """Plain-text per-task observability summary (needs ``obs.events``)."""
        if self.bus is None:
            raise SchedulerError(
                "no events recorded: construct with obs=ObsConfig(events=True)"
            )
        from repro.obs.export import summarize

        return summarize(self.bus)

    def core_busy_cycles(self) -> list[int]:
        """Per-core busy time (for utilisation/balance analysis)."""
        return [
            sum(
                context.busy_cycles
                for context in core.contexts
                if context is not None
            )
            for core in self.cores
        ]

    def makespan(self) -> int:
        return max(core.clock for core in self.cores)
