"""Multi-core scaling experiments (the future-work ablation).

Compares the single-core pre-emptive deployment (the paper's system) against
spatial multi-core deployments on the same workload: a high-priority
periodic task (FE-like) plus a low-priority continuous task (PR-like).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.compiler.compile import CompiledNetwork
from repro.multicore.system import MultiCoreSystem
from repro.runtime.stats import summarize_jobs
from repro.runtime.system import ArrivalPolicy


@dataclass(frozen=True)
class ScalingRow:
    """One deployment's outcome."""

    label: str
    num_cores: int
    placement: str
    high_mean_response_cycles: float
    high_max_turnaround_cycles: int
    high_deadline_misses: int
    low_jobs_completed: int
    makespan_cycles: int
    core_busy_cycles: tuple[int, ...]

    def utilisation(self) -> float:
        return sum(self.core_busy_cycles) / (self.num_cores * self.makespan_cycles)


@dataclass(frozen=True)
class ScalingResult:
    rows: list[ScalingRow]
    clock_hz: float

    def row(self, label: str) -> ScalingRow:
        for candidate in self.rows:
            if candidate.label == label:
                return candidate
        raise KeyError(f"no deployment {label!r}")

    def format(self) -> str:
        table = []
        for row in self.rows:
            table.append(
                [
                    row.label,
                    row.num_cores,
                    row.placement,
                    f"{row.high_mean_response_cycles * 1e6 / self.clock_hz:.1f} us",
                    row.high_deadline_misses,
                    row.low_jobs_completed,
                    f"{row.makespan_cycles * 1e3 / self.clock_hz:.1f} ms",
                    f"{row.utilisation() * 100:.0f}%",
                ]
            )
        return format_table(
            ["deployment", "cores", "placement", "FE mean response", "FE misses",
             "PR jobs done", "makespan", "utilisation"],
            table,
            title="Multi-core multi-tasking (paper future work)",
        )


def run_fe_pr_deployment(
    high: CompiledNetwork,
    low: CompiledNetwork,
    num_cores: int,
    placement: str,
    label: str,
    high_period_cycles: int,
    high_count: int,
    low_count: int,
) -> ScalingRow:
    """One deployment: periodic high-priority jobs + queued low-priority jobs."""
    system = MultiCoreSystem(high.config, num_cores=num_cores, placement=placement)
    if placement == "static" and num_cores >= 2:
        system.add_task(0, high, core=0)
        system.add_task(1, low, core=1)
    elif placement == "static":
        system.add_task(0, high, core=0)
        system.add_task(1, low, core=0)
    else:
        system.add_task(0, high)
        system.add_task(1, low)
    system.submit(
        0,
        policy=ArrivalPolicy.PERIODIC,
        period_cycles=high_period_cycles,
        count=high_count,
    )
    for _ in range(low_count):
        system.submit(1, 0)
    makespan = system.run()
    high_stats = summarize_jobs(0, system.jobs(0), deadline_cycles=high_period_cycles)
    return ScalingRow(
        label=label,
        num_cores=num_cores,
        placement=placement,
        high_mean_response_cycles=high_stats.mean_response,
        high_max_turnaround_cycles=high_stats.max_turnaround,
        high_deadline_misses=high_stats.deadline_misses,
        low_jobs_completed=len(system.jobs(1)),
        makespan_cycles=makespan,
        core_busy_cycles=tuple(system.core_busy_cycles()),
    )


def compare_deployments(
    high: CompiledNetwork,
    low: CompiledNetwork,
    high_period_cycles: int,
    high_count: int = 20,
    low_count: int = 4,
) -> ScalingResult:
    """Single-core pre-emptive vs two-core spatial vs two-core dynamic."""
    rows = [
        run_fe_pr_deployment(
            high, low, 1, "static", "1-core (INCA, pre-emptive)",
            high_period_cycles, high_count, low_count,
        ),
        run_fe_pr_deployment(
            high, low, 2, "static", "2-core (spatial isolation)",
            high_period_cycles, high_count, low_count,
        ),
        run_fe_pr_deployment(
            high, low, 2, "least-loaded", "2-core (dynamic dispatch)",
            high_period_cycles, high_count, low_count,
        ),
    ]
    return ScalingResult(rows=rows, clock_hz=high.config.clock.hz)
