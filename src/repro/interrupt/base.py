"""Interrupt method descriptors.

The three disciplines the paper compares are configurations of the same
machinery (program variant x IAU mode):

==================  ===========  ==========  =========================
method              IAU mode     program     paper section
==================  ===========  ==========  =========================
cpu-like            ``cpu``      ``none``    §IV-B "CPU-Like"
layer-by-layer      ``virtual``  ``layer``   §IV-B "Layer-by-layer"
virtual-instruction ``virtual``  ``vi``      §IV-B/C (the contribution)
==================  ===========  ==========  =========================
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class InterruptMethod:
    """One interrupt discipline: how programs are compiled and arbitrated."""

    name: str
    iau_mode: str
    vi_mode: str
    description: str


CPU_LIKE = InterruptMethod(
    name="cpu-like",
    iau_mode="cpu",
    vi_mode="none",
    description="switch after any instruction; spill/restore all on-chip caches",
)

LAYER_BY_LAYER = InterruptMethod(
    name="layer-by-layer",
    iau_mode="virtual",
    vi_mode="layer",
    description="switch only at layer boundaries; no backup/recovery",
)

VIRTUAL_INSTRUCTION = InterruptMethod(
    name="virtual-instruction",
    iau_mode="virtual",
    vi_mode="vi",
    description="switch after SAVE/CALC_F via virtual instructions (INCA)",
)

#: All methods, in the order the paper's figures present them.
METHODS: tuple[InterruptMethod, ...] = (CPU_LIKE, LAYER_BY_LAYER, VIRTUAL_INSTRUCTION)


def method_by_name(name: str) -> InterruptMethod:
    for method in METHODS:
        if method.name == name:
            return method
    raise KeyError(f"unknown interrupt method {name!r}; choose from "
                   f"{[method.name for method in METHODS]}")
