"""Interrupt methods: descriptors, closed-form model, measurement drivers."""

from repro.interrupt.analytic import (
    LayerGeometry,
    latency_reduction_ratio,
    measured_ratio,
    worst_wait_layer_by_layer,
    worst_wait_virtual,
)
from repro.interrupt.base import (
    CPU_LIKE,
    LAYER_BY_LAYER,
    METHODS,
    VIRTUAL_INSTRUCTION,
    InterruptMethod,
    method_by_name,
)
from repro.interrupt.measure import (
    InterruptMeasurement,
    measure_interrupt,
    run_alone,
    sample_positions,
)

__all__ = [
    "CPU_LIKE",
    "InterruptMeasurement",
    "InterruptMethod",
    "LAYER_BY_LAYER",
    "LayerGeometry",
    "METHODS",
    "VIRTUAL_INSTRUCTION",
    "latency_reduction_ratio",
    "measure_interrupt",
    "measured_ratio",
    "method_by_name",
    "run_alone",
    "sample_positions",
    "worst_wait_layer_by_layer",
    "worst_wait_virtual",
]
