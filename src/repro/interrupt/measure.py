"""Measured interrupt experiments (full-system simulation).

``measure_interrupt`` reproduces the paper's measurement protocol: run the
low-priority network, inject a high-priority request at a chosen cycle, and
record

* **response latency** — request to first high-priority instruction
  (t_latency = t1 + t2),
* **extra cost** — total busy time minus the two tasks' stand-alone times
  (t_cost; captures backup + recovery + arbitration overhead).

Stand-alone times are measured on the *same* method configuration so the
cost isolates the interrupt itself, not the method's static fetch overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compiler.compile import CompiledNetwork
from repro.errors import SchedulerError
from repro.hw.config import AcceleratorConfig
from repro.interrupt.base import InterruptMethod
from repro.obs.config import ObsConfig
from repro.runtime.system import MultiTaskSystem


@dataclass(frozen=True)
class InterruptMeasurement:
    """Outcome of one interrupt experiment."""

    method: str
    request_cycle: int
    response_cycles: int
    extra_cost_cycles: int
    low_alone_cycles: int
    high_alone_cycles: int
    total_cycles: int

    def response_us(self, config: AcceleratorConfig) -> float:
        return config.clock.cycles_to_us(self.response_cycles)

    def extra_cost_us(self, config: AcceleratorConfig) -> float:
        return config.clock.cycles_to_us(self.extra_cost_cycles)


def run_alone(
    compiled: CompiledNetwork, method: InterruptMethod, functional: bool = False
) -> int:
    """Cycles for one inference on an otherwise-idle system of this method."""
    system = MultiTaskSystem(
        compiled.config, iau_mode=method.iau_mode, obs=ObsConfig(functional=functional)
    )
    system.add_task(0, compiled, vi_mode=method.vi_mode)
    system.submit(0, 0)
    return system.run()


def measure_interrupt(
    low: CompiledNetwork,
    high: CompiledNetwork,
    method: InterruptMethod,
    request_cycle: int,
    low_alone_cycles: int | None = None,
    high_alone_cycles: int | None = None,
    functional: bool = False,
) -> InterruptMeasurement:
    """Interrupt ``low`` (slot 1) with ``high`` (slot 0) at ``request_cycle``."""
    if low.config is not high.config and low.config != high.config:
        raise SchedulerError("both networks must be compiled for the same accelerator")
    if low_alone_cycles is None:
        low_alone_cycles = run_alone(low, method, functional)
    if high_alone_cycles is None:
        high_alone_cycles = run_alone(high, method, functional)
    if not 0 <= request_cycle:
        raise SchedulerError(f"request_cycle must be non-negative, got {request_cycle}")

    system = MultiTaskSystem(
        low.config, iau_mode=method.iau_mode, obs=ObsConfig(functional=functional)
    )
    system.add_task(0, high, vi_mode=method.vi_mode)
    system.add_task(1, low, vi_mode=method.vi_mode)
    system.submit(1, 0)
    system.submit(0, request_cycle)
    total = system.run()

    job = system.job(0)
    return InterruptMeasurement(
        method=method.name,
        request_cycle=request_cycle,
        response_cycles=job.response_cycles,
        extra_cost_cycles=total - low_alone_cycles - high_alone_cycles,
        low_alone_cycles=low_alone_cycles,
        high_alone_cycles=high_alone_cycles,
        total_cycles=total,
    )


def sample_positions(
    low_alone_cycles: int, count: int = 12, seed: int = 2020, margin: float = 0.02
) -> list[int]:
    """Uniformly sample interrupt-request cycles inside the low task's run.

    ``margin`` keeps samples away from the very start/end so every method has
    something to interrupt (the paper samples 12 random positions inside the
    ResNet-101 run).
    """
    rng = np.random.default_rng(seed)
    lo = int(low_alone_cycles * margin)
    hi = int(low_alone_cycles * (1.0 - margin))
    return sorted(int(cycle) for cycle in rng.integers(lo, hi, size=count))
