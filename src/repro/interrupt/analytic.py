"""Closed-form latency model (paper §IV-C, Eq. 1).

For an interrupt arriving at the start of a convolution layer:

* layer-by-layer waits for the whole layer:
  ``t1_layer = Ch_in*Ch_out*H / (Para_in*Para_out*Para_height) * t_instr(W)``
* the VI method waits for one CalcBlob:
  ``t1_VI = Ch_in / Para_in * t_instr(W)``

so the worst-case latency ratio is

  ``R_l = t1_VI / t1_layer = (Para_out * Para_height) / (Ch_out * H)``  (Eq. 1)

The paper's worked example (80x60 map, 48->32 channels, Para 8/8/4) gives
R_l = 8*4 / (32*60) = 1.7 %.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.config import AcceleratorConfig
from repro.hw.timing import blob_cycles, layer_calc_cycles


@dataclass(frozen=True)
class LayerGeometry:
    """The shape facts Eq. 1 needs about one convolution layer."""

    in_channels: int
    out_channels: int
    out_height: int
    out_width: int
    kernel: tuple[int, int] = (3, 3)


def worst_wait_layer_by_layer(config: AcceleratorConfig, layer: LayerGeometry) -> int:
    """t1 upper bound of the layer-by-layer method (cycles)."""
    return layer_calc_cycles(
        config,
        layer.in_channels,
        layer.out_channels,
        layer.out_height,
        layer.out_width,
        layer.kernel,
    )


def worst_wait_virtual(config: AcceleratorConfig, layer: LayerGeometry) -> int:
    """t1 upper bound of the VI method: one CalcBlob (cycles)."""
    return blob_cycles(config, layer.in_channels, layer.out_width, layer.kernel)


def latency_reduction_ratio(config: AcceleratorConfig, layer: LayerGeometry) -> float:
    """Eq. 1: R_l = (Para_out * Para_height) / (Ch_out * H).

    >>> from repro.hw.config import AcceleratorConfig
    >>> cfg = AcceleratorConfig.worked_example()
    >>> round(latency_reduction_ratio(cfg, LayerGeometry(48, 32, 60, 80)), 4)
    0.0167
    """
    return (config.para_out * config.para_height) / (layer.out_channels * layer.out_height)


def measured_ratio(config: AcceleratorConfig, layer: LayerGeometry) -> float:
    """t1_VI / t1_layer computed from the cycle model (should track Eq. 1)."""
    return worst_wait_virtual(config, layer) / worst_wait_layer_by_layer(config, layer)
