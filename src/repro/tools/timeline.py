"""ASCII timeline (Gantt) rendering of execution traces.

Turns an :class:`~repro.accel.trace.ExecutionTrace` into a per-task timeline
showing who held the accelerator when — the quickest way to *see* a
pre-emption:

    task 0 |                    HHHH                |
    task 1 | LLLLLLLLLLLLLLLLLLL....LLLLLLLLLLLLLLL |

Each column is one time bucket; a letter means the task executed during that
bucket ('L'oad, 'C'alc, 'S'ave by dominant opcode), '.' means it was
pre-empted while another task ran.
"""

from __future__ import annotations

from repro.accel.trace import ExecutionTrace
from repro.isa.opcodes import Opcode

_OPCODE_GLYPHS = {
    Opcode.LOAD_D: "L",
    Opcode.LOAD_W: "l",
    Opcode.CALC_I: "c",
    Opcode.CALC_F: "C",
    Opcode.SAVE: "S",
}


def render_timeline(trace: ExecutionTrace, width: int = 100) -> str:
    """Render one row per task over ``width`` time buckets."""
    if not trace.events:
        return "(empty trace)"
    total = trace.total_cycles()
    start = min(event.start_cycle for event in trace.events)
    span = max(total - start, 1)
    bucket = span / width

    task_ids = sorted({event.task_id for event in trace.events})
    rows = {task_id: [" "] * width for task_id in task_ids}
    busy = [False] * width

    for event in trace.events:
        glyph = _OPCODE_GLYPHS.get(event.opcode, "?")
        first = int((event.start_cycle - start) / bucket)
        last = int((event.end_cycle - 1 - start) / bucket)
        for column in range(max(first, 0), min(last, width - 1) + 1):
            rows[event.task_id][column] = glyph
            busy[column] = True

    # Mark pre-empted stretches: a task that ran both before and after a
    # stretch where another task held the core.
    for task_id in task_ids:
        row = rows[task_id]
        filled = [i for i, ch in enumerate(row) if ch != " "]
        if not filled:
            continue
        for column in range(filled[0], filled[-1] + 1):
            if row[column] == " " and busy[column]:
                row[column] = "."

    lines = [
        f"task {task_id} |{''.join(rows[task_id])}|" for task_id in task_ids
    ]
    clock_note = f"{span} cycles in {width} buckets (~{bucket:.0f} cycles each)"
    legend = "L/l load data/weights, c/C calc partial/final, S save, . pre-empted"
    return "\n".join(lines + [clock_note, legend])


def utilisation_report(trace: ExecutionTrace) -> str:
    """Per-task busy share of the traced span."""
    total = max(trace.total_cycles(), 1)
    lines = ["utilisation:"]
    for task_id in sorted({event.task_id for event in trace.events}):
        busy = trace.busy_cycles(task_id)
        lines.append(f"  task {task_id}: {busy} cycles ({100.0 * busy / total:.1f}%)")
    idle = total - trace.busy_cycles(None)
    lines.append(f"  idle/arbitration: {idle} cycles ({100.0 * idle / total:.1f}%)")
    return "\n".join(lines)
