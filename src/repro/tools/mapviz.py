"""ASCII map rendering: the world, trajectories, and merge results.

Renders the Fig. env story on a terminal: landmarks as ``*``, pillars
implied by their clusters, each agent's trajectory as digits, and (after a
merge) the second agent's trajectory re-plotted in the first agent's frame.
"""

from __future__ import annotations

import numpy as np

from repro.dslam.vo import Pose
from repro.dslam.world import World


def render_map(
    world: World,
    trajectories: dict[str, list[Pose]] | None = None,
    width: int = 78,
    height: int = 30,
) -> str:
    """World + trajectories on a ``width x height`` character grid."""
    grid = [[" "] * width for _ in range(height)]
    scale_x = (width - 1) / world.config.width
    scale_y = (height - 1) / world.config.height

    def plot(x: float, y: float, glyph: str) -> None:
        column = int(round(x * scale_x))
        row = height - 1 - int(round(y * scale_y))
        if 0 <= row < height and 0 <= column < width:
            grid[row][column] = glyph

    for landmark in world.landmarks.values():
        plot(landmark.x, landmark.y, "*")
    if trajectories:
        for index, (name, poses) in enumerate(sorted(trajectories.items())):
            glyph = str((index + 1) % 10)
            for x, y, _ in poses:
                plot(x, y, glyph)
            if poses:
                plot(poses[0][0], poses[0][1], "S")

    border = "+" + "-" * width + "+"
    lines = [border]
    lines.extend("|" + "".join(row) + "|" for row in grid)
    lines.append(border)
    if trajectories:
        legend = ", ".join(
            f"{str((index + 1) % 10)}={name}"
            for index, name in enumerate(sorted(trajectories))
        )
        lines.append(f"landmarks: *   start: S   trajectories: {legend}")
    return "\n".join(lines)


def render_merged(
    world: World,
    trajectory_a: list[Pose],
    trajectory_b_in_a: list[Pose],
    origin_a: Pose,
) -> str:
    """Both trajectories in world coordinates after a merge.

    ``trajectory_b_in_a`` is agent 2's trajectory expressed in agent 1's map
    frame (the merge output); ``origin_a`` places that frame in the world.
    """
    ox, oy, otheta = origin_a
    cos_o, sin_o = np.cos(otheta), np.sin(otheta)

    def to_world(poses: list[Pose]) -> list[Pose]:
        result = []
        for x, y, theta in poses:
            result.append(
                (
                    ox + cos_o * x - sin_o * y,
                    oy + sin_o * x + cos_o * y,
                    theta + otheta,
                )
            )
        return result

    return render_map(
        world,
        {
            "agent1": to_world(trajectory_a),
            "agent2 (merged)": to_world(trajectory_b_in_a),
        },
    )
