"""One-shot network report: compile + schedule + latency + roofline + energy.

The "tell me everything about deploying this model on this accelerator"
command::

    python -m repro.tools.report --model resnet18 --config big

Prints: compile summary, per-layer schedule shape, interrupt-latency profile
(VI vs layer-by-layer), roofline breakdown, and an energy estimate.
"""

from __future__ import annotations

import argparse

from repro.analysis.latency import whole_program_profile
from repro.analysis.roofline import roofline_report
from repro.compiler.compile import CompiledNetwork, compile_network
from repro.hw.config import AcceleratorConfig
from repro.hw.energy import inference_energy
from repro.interrupt.base import LAYER_BY_LAYER, VIRTUAL_INSTRUCTION
from repro.nn import TensorShape

#: Named model factories the CLI accepts.
MODELS = {
    "tiny_cnn": lambda: _zoo().build_tiny_cnn(),
    "tiny_residual": lambda: _zoo().build_tiny_residual(),
    "resnet18": lambda: _zoo().build_resnet("resnet18", TensorShape(120, 160, 3)),
    "resnet50": lambda: _zoo().build_resnet("resnet50", TensorShape(120, 160, 3)),
    "mobilenet": lambda: _zoo().build_mobilenet_v1(TensorShape(224, 224, 3)),
    "darknet19": lambda: _zoo().build_darknet19(TensorShape(224, 224, 3)),
    "superpoint": lambda: _zoo().build_superpoint(TensorShape(120, 160, 1)),
    "vgg16": lambda: _zoo().build_vgg("vgg16", TensorShape(120, 160, 3)),
}

CONFIGS = {
    "big": AcceleratorConfig.big,
    "small": AcceleratorConfig.small,
    "example": AcceleratorConfig.worked_example,
}


def _zoo():
    from repro import zoo

    return zoo


def network_report(compiled: CompiledNetwork) -> str:
    """The full multi-section report for one compiled network."""
    from repro.accel.runner import run_program

    sections = [compiled.report()]

    run = run_program(compiled, vi_mode="vi", functional=False)
    clock = compiled.config.clock
    sections.append(
        f"\nruntime: {run.total_cycles} cycles = "
        f"{clock.cycles_to_ms(run.total_cycles):.2f} ms per inference "
        f"({1000.0 / clock.cycles_to_ms(run.total_cycles):.1f} fps)"
    )

    vi = whole_program_profile(compiled, VIRTUAL_INSTRUCTION)
    layer = whole_program_profile(compiled, LAYER_BY_LAYER)
    sections.append(
        "\ninterrupt response latency (uniform arrival):\n"
        f"  virtual-instruction : mean {vi.mean_us(compiled):.1f} us, "
        f"worst {vi.worst_us(compiled):.1f} us\n"
        f"  layer-by-layer      : mean {layer.mean_us(compiled):.1f} us, "
        f"worst {layer.worst_us(compiled):.1f} us\n"
        f"  reduction           : {100 * vi.mean_cycles / layer.mean_cycles:.1f} % "
        f"of the layer-by-layer mean"
    )

    sections.append("\n" + roofline_report(compiled).format(top=10))
    sections.append("\n" + inference_energy(compiled, run.total_cycles).format())
    return "\n".join(sections)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", choices=sorted(MODELS), default="resnet18")
    parser.add_argument("--config", choices=sorted(CONFIGS), default="big")
    args = parser.parse_args(argv)

    graph = MODELS[args.model]()
    config = CONFIGS[args.config]()
    compiled = compile_network(graph, config, weights="zeros", validate=False)
    print(network_report(compiled))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
