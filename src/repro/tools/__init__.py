"""Developer tools: disassembler, trace timeline, and map rendering."""

from repro.tools.chrome_trace import trace_to_chrome_events, write_chrome_trace
from repro.tools.disasm import disassemble, format_instruction, layer_summary
from repro.tools.mapviz import render_map, render_merged
from repro.tools.report import network_report
from repro.tools.timeline import render_timeline, utilisation_report

__all__ = [
    "disassemble",
    "format_instruction",
    "layer_summary",
    "network_report",
    "render_map",
    "render_merged",
    "render_timeline",
    "trace_to_chrome_events",
    "utilisation_report",
    "write_chrome_trace",
]
