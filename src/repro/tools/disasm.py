"""Disassembler for ``instruction.bin`` files and in-memory programs.

Renders each instruction word with its operands, marks virtual instructions
and interrupt points, and summarises per-layer instruction mixes — the tool
you reach for when a compiled schedule looks wrong.

Usable as a library (:func:`disassemble`) or a CLI::

    python -m repro.tools.disasm instruction.bin [--limit N] [--layer K]
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.isa.opcodes import Opcode
from repro.isa.program import Program


def format_instruction(index: int, instruction) -> str:
    """One listing line: index, virtual marker, rendered word, annotations."""
    marker = "*" if instruction.is_virtual else " "
    annotations = []
    if instruction.is_virtual and instruction.is_switch_point:
        annotations.append("interrupt point")
    if instruction.opcode == Opcode.SAVE and instruction.is_last_save_of_layer:
        annotations.append("last save of layer")
    if instruction.operand_b:
        annotations.append("operand B")
    suffix = f"   ; {', '.join(annotations)}" if annotations else ""
    return f"{index:6d} {marker} {instruction}{suffix}"


def disassemble(
    program: Program,
    limit: int | None = None,
    layer_id: int | None = None,
) -> str:
    """Full listing of a program (optionally one layer / first N lines)."""
    lines = [f"; program {program.name}: {len(program)} instructions, "
             f"{program.num_virtual()} virtual"]
    emitted = 0
    for index, instruction in enumerate(program):
        if layer_id is not None and instruction.layer_id != layer_id:
            continue
        lines.append(format_instruction(index, instruction))
        emitted += 1
        if limit is not None and emitted >= limit:
            lines.append(f"; ... truncated at {limit} lines")
            break
    return "\n".join(lines)


def layer_summary(program: Program) -> str:
    """Per-layer instruction mix table."""
    per_layer: dict[int, dict[Opcode, int]] = {}
    for instruction in program:
        histogram = per_layer.setdefault(instruction.layer_id, {})
        histogram[instruction.opcode] = histogram.get(instruction.opcode, 0) + 1
    lines = ["; per-layer instruction mix"]
    for layer_id in sorted(per_layer):
        mix = ", ".join(
            f"{opcode.name}={count}"
            for opcode, count in sorted(per_layer[layer_id].items())
        )
        lines.append(f";   layer {layer_id:4d}: {mix}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path", type=Path, help="instruction.bin to disassemble")
    parser.add_argument("--limit", type=int, default=None, help="max lines")
    parser.add_argument("--layer", type=int, default=None, help="only this layer id")
    parser.add_argument("--summary", action="store_true", help="per-layer mix only")
    args = parser.parse_args(argv)

    program = Program.load(args.path)
    if args.summary:
        print(layer_summary(program))
    else:
        print(disassemble(program, limit=args.limit, layer_id=args.layer))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
