"""Chrome-tracing export of execution traces.

Writes the ``chrome://tracing`` / Perfetto JSON format so a pre-emption
schedule can be inspected interactively: one row per task, one duration
event per executed instruction, microsecond timestamps at the accelerator
clock.

:func:`write_chrome_trace` accepts the legacy :class:`ExecutionTrace`, an
:class:`~repro.obs.bus.EventBus`, or a plain list of
:class:`~repro.obs.events.Event`; the bus forms additionally carry
pre-emptions, VI expansions, DDR bursts, and job/ROS instants.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.accel.trace import ExecutionTrace
from repro.obs.bus import EventBus
from repro.obs.events import Event
from repro.obs.export import events_to_chrome
from repro.units import Frequency

#: Anything :func:`write_chrome_trace` can render.
TraceSource = ExecutionTrace | EventBus | Iterable[Event]


def trace_to_chrome_events(trace: ExecutionTrace, clock: Frequency) -> list[dict]:
    """Convert a legacy flat trace into Chrome 'X' (complete) events."""
    events = []
    for event in trace.events:
        events.append(
            {
                "name": event.opcode.name,
                "cat": f"layer{event.layer_id}",
                "ph": "X",
                "ts": clock.cycles_to_us(event.start_cycle),
                "dur": clock.cycles_to_us(event.cycles),
                "pid": 0,
                "tid": event.task_id,
                "args": {
                    "layer_id": event.layer_id,
                    "program_index": event.program_index,
                    "cycles": event.cycles,
                },
            }
        )
    return events


def _chrome_events(source: TraceSource, clock: Frequency) -> list[dict]:
    if isinstance(source, ExecutionTrace):
        return trace_to_chrome_events(source, clock)
    if isinstance(source, EventBus):
        return events_to_chrome(source.events, clock)
    return events_to_chrome(list(source), clock)


def write_chrome_trace(
    source: TraceSource, clock: Frequency, path: str | Path
) -> Path:
    """Write the trace file; open it in chrome://tracing or ui.perfetto.dev."""
    path = Path(path)
    payload = {
        "traceEvents": _chrome_events(source, clock),
        "displayTimeUnit": "ns",
        "metadata": {
            "tool": "repro (INCA reproduction)",
            "clock_hz": clock.hz,
        },
    }
    path.write_text(json.dumps(payload))
    return path
