"""Chrome-tracing export of execution traces.

Writes the ``chrome://tracing`` / Perfetto JSON format so a pre-emption
schedule can be inspected interactively: one row per task, one duration
event per executed instruction, microsecond timestamps at the accelerator
clock.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.accel.trace import ExecutionTrace
from repro.units import Frequency


def trace_to_chrome_events(trace: ExecutionTrace, clock: Frequency) -> list[dict]:
    """Convert a trace into Chrome 'X' (complete) events."""
    events = []
    for event in trace.events:
        events.append(
            {
                "name": event.opcode.name,
                "cat": f"layer{event.layer_id}",
                "ph": "X",
                "ts": clock.cycles_to_us(event.start_cycle),
                "dur": clock.cycles_to_us(event.cycles),
                "pid": 0,
                "tid": event.task_id,
                "args": {
                    "layer_id": event.layer_id,
                    "program_index": event.program_index,
                    "cycles": event.cycles,
                },
            }
        )
    return events


def write_chrome_trace(
    trace: ExecutionTrace, clock: Frequency, path: str | Path
) -> Path:
    """Write the trace file; open it in chrome://tracing or ui.perfetto.dev."""
    path = Path(path)
    payload = {
        "traceEvents": trace_to_chrome_events(trace, clock),
        "displayTimeUnit": "ns",
        "metadata": {
            "tool": "repro (INCA reproduction)",
            "clock_hz": clock.hz,
        },
    }
    path.write_text(json.dumps(payload))
    return path
