"""Seeded fault campaigns: many runs, one golden reference, typed verdicts.

A *campaign* executes a scenario ``N`` times, each with a fresh
:class:`~repro.faults.plan.FaultPlan` seeded ``base_seed + i``, and
classifies every run against a fault-free golden execution:

* ``SURVIVED`` — outputs match golden and nothing needed detecting (the
  faults were absorbed: stalls, dropped interrupt glitches, flips that
  were overwritten before any read);
* ``RECOVERED`` — outputs match golden *and* the tolerance machinery
  visibly acted (ECC corrections, checkpoint rollbacks, watchdog hits);
* ``DETECTED_FATAL`` — the run raised a typed :class:`~repro.errors.IncaError`
  (uncorrectable ECC, checkpoint retry budget exhausted);
* ``SILENT_CORRUPTION`` — outputs differ from golden (or jobs vanished)
  with no detection and no intentional degradation.  A healthy tolerance
  stack reports **zero** of these.

The scenario is any callable ``scenario(plan) -> ScenarioRun``; use
:func:`make_preemption_scenario` for the stock two-task preemption workload
whose interrupt lands on a Vir_SAVE (so the checkpoint path is exercised).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

import numpy as np

from repro.errors import CampaignError, IncaError
from repro.faults.plan import FaultPlan, FaultSite
from repro.obs.config import ObsConfig
from repro.obs.metrics import Metrics
from repro.qos.monitor import scan_events

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.compiler.compile import CompiledNetwork
    from repro.hw.config import AcceleratorConfig
    from repro.runtime.system import MultiTaskSystem

#: Event kinds that count as the tolerance machinery *acting*.
_DETECTION_KINDS = frozenset({"fault_detect", "fault_recover", "deadline_miss"})


class RunOutcome(enum.Enum):
    """Verdict for one campaign run, against the golden reference."""

    SURVIVED = "survived"
    RECOVERED = "recovered"
    DETECTED_FATAL = "detected_fatal"
    SILENT_CORRUPTION = "silent_corruption"


@dataclass
class ScenarioRun:
    """What one scenario execution reports back to the campaign."""

    #: Named output arrays (compared element-wise against golden).
    outputs: dict[str, np.ndarray]
    #: Completed-job counts per name (missing jobs need an explanation).
    jobs: dict[str, int]
    final_cycle: int
    #: Recorded bus events (kind values are scanned for detection evidence).
    events: list[Any] = field(default_factory=list)
    #: Requests intentionally shed by the degradation policy.
    shed: int = 0

    @classmethod
    def from_system(
        cls, system: "MultiTaskSystem", outputs: dict[str, np.ndarray]
    ) -> "ScenarioRun":
        """Distill a finished :class:`~repro.runtime.system.MultiTaskSystem`."""
        return cls(
            outputs=outputs,
            jobs={str(task_id): len(system.jobs(task_id)) for task_id in system._task_ids},
            final_cycle=system.iau.clock,
            events=list(system.bus.events) if system.bus is not None else [],
            shed=sum(system.shed.values()),
        )

    def detections(self) -> int:
        return sum(1 for event in self.events if event.kind.value in _DETECTION_KINDS)


@dataclass
class RunReport:
    """One classified campaign run."""

    seed: int
    outcome: RunOutcome
    injected: int
    sites: tuple[str, ...]
    #: Extra cycles vs golden, for RECOVERED runs (the recovery window).
    recovery_latency_cycles: int | None
    detail: str = ""
    #: Invariant-monitor findings from replaying the run's event stream
    #: (empty for a run whose telemetry is self-consistent).
    invariant_violations: tuple[str, ...] = ()


@dataclass
class CampaignReport:
    """Aggregate verdicts for a whole campaign."""

    golden_cycle: int
    runs: list[RunReport]

    def count(self, outcome: RunOutcome) -> int:
        return sum(1 for run in self.runs if run.outcome is outcome)

    def rate(self, outcome: RunOutcome) -> float:
        return self.count(outcome) / len(self.runs)

    @property
    def num_runs(self) -> int:
        return len(self.runs)

    @property
    def total_injected(self) -> int:
        return sum(run.injected for run in self.runs)

    @property
    def total_invariant_violations(self) -> int:
        return sum(len(run.invariant_violations) for run in self.runs)

    def sites_covered(self) -> set[FaultSite]:
        covered: set[FaultSite] = set()
        for run in self.runs:
            covered.update(FaultSite(site) for site in run.sites)
        return covered

    def mean_recovery_latency_cycles(self) -> float | None:
        """Mean extra cycles vs golden across RECOVERED runs (None if none)."""
        latencies = [
            run.recovery_latency_cycles
            for run in self.runs
            if run.outcome is RunOutcome.RECOVERED
            and run.recovery_latency_cycles is not None
        ]
        if not latencies:
            return None
        return sum(latencies) / len(latencies)

    def to_metrics(self, metrics: Metrics) -> None:
        """Publish the campaign verdicts as ``repro.obs`` counters."""
        for outcome in RunOutcome:
            metrics.counter("campaign_runs", outcome=outcome.value).inc(
                self.count(outcome)
            )
        site_counts: dict[str, int] = {}
        for run in self.runs:
            for site in run.sites:
                site_counts[site] = site_counts.get(site, 0) + 1
        for site, count in site_counts.items():
            metrics.counter("campaign_runs_with_site", site=site).inc(count)
        latency = self.mean_recovery_latency_cycles()
        if latency is not None:
            metrics.gauge("campaign_mean_recovery_latency_cycles").set(latency)

    def format(self) -> str:
        lines = [
            f"fault campaign: {self.num_runs} runs, "
            f"{self.total_injected} faults injected "
            f"across {len(self.sites_covered())} sites "
            f"(golden = {self.golden_cycle} cycles)",
        ]
        for outcome in RunOutcome:
            count = self.count(outcome)
            lines.append(
                f"  {outcome.value:<18} {count:>5}  ({100.0 * count / self.num_runs:5.1f}%)"
            )
        latency = self.mean_recovery_latency_cycles()
        if latency is not None:
            lines.append(f"  mean recovery latency: {latency:.0f} cycles")
        lines.append(
            f"  invariant violations: {self.total_invariant_violations}"
        )
        site_counts: dict[str, int] = {}
        for run in self.runs:
            for site in run.sites:
                site_counts[site] = site_counts.get(site, 0) + 1
        for site, count in sorted(site_counts.items()):
            lines.append(f"  site {site:<24} hit in {count} run(s)")
        return "\n".join(lines)


def default_rates() -> dict[FaultSite, float]:
    """Per-opportunity rates covering six sites at campaign-friendly odds.

    The ROS sites are deliberately excluded: a dropped message removes a
    job from the workload, which is degradation by construction rather
    than a corruption-detection question; exercise them with a dedicated
    scenario (see ``tests/test_fault_injection.py``).
    """
    return {
        FaultSite.DDR_BIT_FLIP: 0.01,
        FaultSite.DDR_STALL: 0.01,
        FaultSite.IAU_DROP_PREEMPT: 0.25,
        FaultSite.IAU_SPURIOUS_PREEMPT: 0.01,
        FaultSite.CHECKPOINT_CORRUPT: 0.35,
        FaultSite.JOB_OVERRUN: 0.1,
    }


def make_preemption_scenario(
    pair: "Sequence[CompiledNetwork] | None" = None,
    config: "AcceleratorConfig | None" = None,
    *,
    arrival_cycle: int = 8_000,
    deadline_cycles: int = 120_000,
    functional: bool = True,
    batched: bool = True,
) -> Callable[[FaultPlan | None], ScenarioRun]:
    """Stock campaign workload: low-priority job preempted at a Vir_SAVE.

    Task 1 (low priority) starts at cycle 0; task 0 arrives at
    ``arrival_cycle``, chosen so the interrupt lands on a VIR_SAVE and the
    checkpoint-CRC path is exercised.  Compilation happens once; DDR region
    contents are snapshotted and restored between runs so injected
    corruption can never leak across seeds.

    ``functional=False`` builds the timing-only variant (no array compute,
    empty ``outputs``) — the regime where the armed batched fast path can
    engage, which the armed differential suites pin bit-identical against
    stepping.  ``batched`` is forwarded to
    :meth:`~repro.runtime.system.MultiTaskSystem.run`; it only changes how
    the simulation advances, never what it computes.
    """
    from repro.hw.config import AcceleratorConfig
    from repro.runtime.system import MultiTaskSystem, compile_tasks
    from repro.zoo import build_tiny_cnn, build_tiny_residual

    if pair is None:
        if config is None:
            config = AcceleratorConfig.worked_example()
        pair = compile_tasks(
            [build_tiny_cnn(), build_tiny_residual()], config, weights="random", seed=4
        )
    else:
        config = pair[0].config
    pristine = [
        {region.name: region.array.copy() for region in compiled.layout.ddr.regions()}
        for compiled in pair
    ]
    rng = np.random.default_rng(7)
    inputs = [
        rng.integers(
            -8, 8, size=compiled.layout.ddr.region(compiled.input_region).array.shape
        ).astype(np.int8)
        for compiled in pair
    ]

    def scenario(plan: FaultPlan | None) -> ScenarioRun:
        for compiled, regions in zip(pair, pristine):
            for region in compiled.layout.ddr.regions():
                region.array[...] = regions[region.name]
        system = MultiTaskSystem(
            config,
            iau_mode="virtual",
            obs=ObsConfig(events=True, functional=functional),
            faults=plan,
        )
        system.add_task(0, pair[0])
        system.add_task(1, pair[1], deadline_cycles=deadline_cycles)
        for compiled, data in zip(pair, inputs):
            compiled.set_input(data)
        system.submit(1, 0)
        system.submit(0, arrival_cycle)
        system.run(batched=batched)
        outputs = (
            {
                f"task{index}": compiled.get_output()
                for index, compiled in enumerate(pair)
            }
            if functional
            else {}
        )
        return ScenarioRun.from_system(system, outputs)

    return scenario


def run_campaign(
    scenario: Callable[[FaultPlan | None], ScenarioRun],
    *,
    runs: int,
    rates: Mapping[FaultSite | str, float] | None = None,
    base_seed: int = 0,
    metrics: Metrics | None = None,
    invariants: bool = True,
    **plan_kwargs: Any,
) -> CampaignReport:
    """Execute ``runs`` seeded fault runs and classify each against golden.

    ``plan_kwargs`` are forwarded to every :class:`FaultPlan` (stall sizes,
    retry budgets, ``uncorrectable_share``...).  Pass ``metrics`` to publish
    the verdict counters through :mod:`repro.obs`.

    With ``invariants`` (the default) every completed run's event stream is
    additionally replayed through the :mod:`repro.qos` invariant monitor;
    findings land on each run's ``invariant_violations`` without changing
    the run's outcome classification.
    """
    if runs < 1:
        raise CampaignError(f"a campaign needs at least 1 run, got {runs}")
    effective_rates = dict(rates) if rates is not None else default_rates()
    golden = scenario(None)
    reports: list[RunReport] = []
    for index in range(runs):
        plan = FaultPlan(seed=base_seed + index, rates=effective_rates, **plan_kwargs)
        try:
            result = scenario(plan)
        except IncaError as exc:
            reports.append(
                RunReport(
                    seed=plan.seed,
                    outcome=RunOutcome.DETECTED_FATAL,
                    injected=plan.count(),
                    sites=tuple(sorted(site.value for site in plan.sites_injected())),
                    recovery_latency_cycles=None,
                    detail=f"{type(exc).__name__}: {exc}",
                )
            )
            continue
        classified = _classify(golden, result, plan)
        if invariants:
            classified.invariant_violations = tuple(
                str(violation) for violation in scan_events(result.events)
            )
        reports.append(classified)
    report = CampaignReport(golden_cycle=golden.final_cycle, runs=reports)
    if metrics is not None:
        report.to_metrics(metrics)
    return report


def _classify(golden: ScenarioRun, result: ScenarioRun, plan: FaultPlan) -> RunReport:
    sites = tuple(sorted(site.value for site in plan.sites_injected()))
    detections = result.detections()

    def report(
        outcome: RunOutcome, detail: str = "", latency: int | None = None
    ) -> RunReport:
        return RunReport(
            seed=plan.seed,
            outcome=outcome,
            injected=plan.count(),
            sites=sites,
            recovery_latency_cycles=latency,
            detail=detail,
        )

    missing = [name for name in golden.outputs if name not in result.outputs]
    short = [
        name
        for name, count in golden.jobs.items()
        if result.jobs.get(name, 0) < count
    ]
    if missing or short:
        if result.shed > 0 or plan.count(FaultSite.ROS_DROP) > 0:
            # The system intentionally dropped work to stay healthy.
            return report(
                RunOutcome.RECOVERED,
                detail=f"degraded: shed={result.shed}, missing={missing or short}",
                latency=max(0, result.final_cycle - golden.final_cycle),
            )
        return report(
            RunOutcome.SILENT_CORRUPTION,
            detail=f"jobs vanished without explanation: {missing or short}",
        )

    mismatched = [
        name
        for name, expected in golden.outputs.items()
        if not np.array_equal(expected, result.outputs[name])
    ]
    if mismatched:
        return report(
            RunOutcome.SILENT_CORRUPTION,
            detail=f"outputs differ from golden: {mismatched}",
        )
    if plan.count() == 0:
        return report(RunOutcome.SURVIVED, detail="no faults fired")
    if detections:
        return report(
            RunOutcome.RECOVERED,
            detail=f"{detections} detection/recovery event(s)",
            latency=max(0, result.final_cycle - golden.final_cycle),
        )
    return report(RunOutcome.SURVIVED, detail="faults absorbed without detection")
