"""Fault injection and fault tolerance (``repro.faults``).

Two halves, one seed:

* **Injection** — a :class:`FaultPlan` drives deterministic fault injectors
  threaded through the DDR model, the IAU, the runtime and the ROS layer.
* **Campaigns** — :func:`run_campaign` executes many seeded runs of a
  scenario, classifies each against a fault-free golden run, and reports
  survival / recovery rates.

The campaign half imports the full runtime stack, so it is loaded lazily
(module ``__getattr__``); importing :mod:`repro.faults` from low-level
modules (``repro.hw``, ``repro.iau``) stays cycle-free.
"""

from __future__ import annotations

from typing import Any

from repro.faults.plan import (
    ALL_SITES,
    DeadlineMissed,
    DegradationPolicy,
    FaultPlan,
    FaultSite,
    InjectedFault,
)

__all__ = [
    "ALL_SITES",
    "CampaignReport",
    "DeadlineMissed",
    "DegradationPolicy",
    "FaultPlan",
    "FaultSite",
    "InjectedFault",
    "RunOutcome",
    "RunReport",
    "ScenarioRun",
    "default_rates",
    "make_preemption_scenario",
    "run_campaign",
]

_CAMPAIGN_NAMES = frozenset(
    {
        "CampaignReport",
        "RunOutcome",
        "RunReport",
        "ScenarioRun",
        "default_rates",
        "make_preemption_scenario",
        "run_campaign",
    }
)


def __getattr__(name: str) -> Any:
    if name in _CAMPAIGN_NAMES:
        from repro.faults import campaign

        return getattr(campaign, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
