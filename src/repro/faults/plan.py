"""Seeded fault plans: *what* goes wrong, *where*, and *how often*.

A :class:`FaultPlan` is the single configuration object the injectors
threaded through the stack consult.  It owns one deterministic RNG stream
per :class:`FaultSite` (seeded from ``(seed, site)``, so adding a site or
re-ordering draws at one site never perturbs another) and records every
fault it fires as an :class:`InjectedFault` — the campaign runner's ground
truth when classifying a run.

The plan is pure configuration + bookkeeping; the components own the
mechanics:

* :class:`~repro.hw.ddr.Ddr` — bit flips and stalled bursts (ECC model);
* :class:`~repro.iau.unit.Iau` — dropped / spurious preemption requests,
  corrupted Vir_SAVE checkpoints, job overruns;
* :class:`~repro.runtime.system.MultiTaskSystem` — overload degradation;
* :class:`~repro.ros.executor.Executor` — dropped / delayed messages.

With no plan attached (``faults=None`` everywhere) none of the hooks run
and simulations are cycle-for-cycle identical to an unfaulted build.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import FaultError


class FaultSite(enum.Enum):
    """The closed set of injection sites threaded through the stack."""

    #: A DDR read disturbance flips one bit in a region (SECDED-correctable).
    DDR_BIT_FLIP = "ddr.bit_flip"
    #: A DDR burst stalls for :attr:`FaultPlan.ddr_stall_cycles` extra cycles.
    DDR_STALL = "ddr.stall"
    #: The interrupt line glitches low: a pending preemption is not seen at
    #: this switch point (it fires at the next one instead).
    IAU_DROP_PREEMPT = "iau.drop_preempt"
    #: The interrupt line glitches high: a preemption fires with no
    #: higher-priority work, paying backup + recovery for nothing.
    IAU_SPURIOUS_PREEMPT = "iau.spurious_preempt"
    #: The Vir_SAVE backup burst writes garbage: the checkpoint context in
    #: DDR no longer matches its CRC.
    CHECKPOINT_CORRUPT = "checkpoint.corrupt"
    #: A job hangs for :attr:`FaultPlan.overrun_cycles` at dispatch (runaway
    #: kernel / bus contention), tripping the per-job watchdog.
    JOB_OVERRUN = "job.overrun"
    #: A published ROS message is lost before delivery.
    ROS_DROP = "ros.drop"
    #: A published ROS message is delivered :attr:`FaultPlan.ros_delay_cycles`
    #: late.
    ROS_DELAY = "ros.delay"


#: Every site, in declaration order (campaign sweeps iterate this).
ALL_SITES: tuple[FaultSite, ...] = tuple(FaultSite)


@dataclass(frozen=True)
class InjectedFault:
    """One fault the plan actually fired (the campaign's ground truth)."""

    site: FaultSite
    cycle: int
    detail: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class DeadlineMissed:
    """Typed watchdog outcome attached to a job that overran its deadline."""

    task_id: int
    deadline_cycles: int
    turnaround_cycles: int
    request_cycle: int

    @property
    def overrun_cycles(self) -> int:
        return self.turnaround_cycles - self.deadline_cycles


@dataclass(frozen=True)
class DegradationPolicy:
    """How the runtime sheds load instead of missing FE deadlines.

    Applied to tasks with ``task_id >= min_task_id`` (priority 0, the
    safety-critical FE, is never degraded).  When a request arrives while
    the task already has ``max_pending`` jobs queued or running, the request
    is shed (dropped with a ``JOB_DEGRADED`` event).  When ``downtier_pending``
    is set and the backlog reaches it, subsequent jobs run the task's
    ``downtier_vi_mode`` program (fewer virtual instructions, lower fetch
    overhead) until the backlog drains below the threshold.
    """

    max_pending: int = 4
    min_task_id: int = 1
    downtier_pending: int | None = None
    downtier_vi_mode: str = "layer"

    def __post_init__(self) -> None:
        if self.max_pending < 1:
            raise FaultError(f"max_pending must be >= 1, got {self.max_pending}")
        if self.downtier_pending is not None and not (
            1 <= self.downtier_pending <= self.max_pending
        ):
            raise FaultError(
                f"downtier_pending must be in [1, max_pending], got {self.downtier_pending}"
            )


class FaultPlan:
    """Deterministic, seeded fault-injection schedule.

    ``rates`` maps sites (or their string values) to per-opportunity firing
    probabilities in [0, 1].  Two plans with equal seeds and rates inject
    the identical fault sequence into a deterministic simulation.
    """

    def __init__(
        self,
        seed: int = 0,
        rates: Mapping[FaultSite | str, float] | None = None,
        *,
        ddr_stall_cycles: int = 200,
        overrun_cycles: int = 20_000,
        ros_delay_cycles: int = 5_000,
        max_checkpoint_retries: int = 3,
        uncorrectable_share: float = 0.0,
    ) -> None:
        self.seed = seed
        self.ddr_stall_cycles = _positive("ddr_stall_cycles", ddr_stall_cycles)
        self.overrun_cycles = _positive("overrun_cycles", overrun_cycles)
        self.ros_delay_cycles = _positive("ros_delay_cycles", ros_delay_cycles)
        self.max_checkpoint_retries = _positive(
            "max_checkpoint_retries", max_checkpoint_retries
        )
        if not 0.0 <= uncorrectable_share <= 1.0:
            raise FaultError(
                f"uncorrectable_share must be in [0, 1], got {uncorrectable_share}"
            )
        self.uncorrectable_share = uncorrectable_share
        self._rates: dict[FaultSite, float] = {}
        for site, rate in (rates or {}).items():
            site = self._coerce_site(site)
            if not 0.0 <= rate <= 1.0:
                raise FaultError(f"rate for {site.value} must be in [0, 1], got {rate}")
            self._rates[site] = rate
        # One independent, deterministic stream per site.  ``random.Random``
        # seeds strings via SHA-512, so this is stable across processes
        # (unlike ``hash()``, which is salted).
        self._rngs: dict[FaultSite, random.Random] = {
            site: random.Random(f"{seed}:{site.value}") for site in FaultSite
        }
        #: Every fault fired so far, in injection order.
        self.injected: list[InjectedFault] = []
        # Fire-oracle cache: per site, how many upcoming draws are *known*
        # to not fire (a lower bound; maintained by ``safe_draws``/``burn``
        # and invalidated whenever the stream moves in any other way).
        self._safe_ahead: dict[FaultSite, int] = {}

    @staticmethod
    def _coerce_site(site: FaultSite | str) -> FaultSite:
        if isinstance(site, FaultSite):
            return site
        try:
            return FaultSite(site)
        except ValueError:
            raise FaultError(
                f"unknown fault site {site!r}; choose from "
                f"{[member.value for member in FaultSite]}"
            ) from None

    # -- draws ---------------------------------------------------------------

    def rate(self, site: FaultSite) -> float:
        return self._rates.get(site, 0.0)

    def fires(self, site: FaultSite) -> bool:
        """One Bernoulli draw from the site's stream (False at rate 0)."""
        rate = self._rates.get(site, 0.0)
        if rate <= 0.0:
            return False
        fired = self._rngs[site].random() < rate
        if fired:
            self._safe_ahead.pop(site, None)
        else:
            cached = self._safe_ahead.get(site)
            if cached is not None:
                self._safe_ahead[site] = max(0, cached - 1)
        return fired

    def draw_index(self, site: FaultSite, bound: int) -> int:
        """A uniform index in [0, bound) from the site's stream."""
        if bound <= 0:
            raise FaultError(f"draw_index bound must be positive, got {bound}")
        self._safe_ahead.pop(site, None)
        return self._rngs[site].randrange(bound)

    def draw_uncorrectable(self) -> bool:
        """Whether an injected DDR flip exceeds SECDED correction."""
        if self.uncorrectable_share <= 0.0:
            return False
        self._safe_ahead.pop(FaultSite.DDR_BIT_FLIP, None)
        return self._rngs[FaultSite.DDR_BIT_FLIP].random() < self.uncorrectable_share

    # -- fire oracle ---------------------------------------------------------

    def safe_draws(self, site: FaultSite, limit: int) -> int:
        """How many of the next ``limit`` draws at ``site`` provably miss.

        Peeks ahead on the site's private RNG stream *without perturbing it*
        (the stream state is saved and restored around the peek), returning
        the count of consecutive guaranteed non-fires from the current
        position, capped at ``limit``.  A rate-0 site never draws at all, so
        every opportunity is safe.  The result is a prefix: the caller may
        :meth:`burn` up to that many draws and is guaranteed none of them
        would have fired.
        """
        if limit <= 0:
            return 0
        rate = self._rates.get(site, 0.0)
        if rate <= 0.0:
            return limit
        cached = self._safe_ahead.get(site)
        if cached is not None and cached >= limit:
            return limit
        rng = self._rngs[site]
        state = rng.getstate()
        safe = 0
        while safe < limit:
            if rng.random() < rate:
                break
            safe += 1
        rng.setstate(state)
        self._safe_ahead[site] = safe
        return safe

    def burn(self, site: FaultSite, count: int) -> None:
        """Advance the site's stream past ``count`` known-safe draws.

        Replays exactly the RNG consumption ``count`` non-firing
        :meth:`fires` calls would have performed (none at rate 0 — ``fires``
        does not draw there), keeping a batched run's stream position
        bit-identical to the step-wise run it replaces.  Only call for draws
        :meth:`safe_draws` has vouched for.
        """
        if count <= 0:
            return
        rate = self._rates.get(site, 0.0)
        if rate <= 0.0:
            return
        rng = self._rngs[site]
        for _ in range(count):
            rng.random()
        cached = self._safe_ahead.get(site)
        if cached is not None:
            self._safe_ahead[site] = max(0, cached - count)

    # -- snapshot/restore ----------------------------------------------------

    def capture_state(self) -> dict[str, Any]:
        """Picklable mid-run state: per-site RNG positions + fired faults.

        Restoring the RNG states is what makes a resumed run draw the
        *identical* fault sequence an uninterrupted run would — the
        bit-exactness oracle for armed snapshots.
        """
        return {
            "rng_states": {
                site.value: rng.getstate() for site, rng in self._rngs.items()
            },
            "injected": list(self.injected),
        }

    def restore_state(self, state: Mapping[str, Any]) -> None:
        for value, rng_state in state["rng_states"].items():
            self._rngs[FaultSite(value)].setstate(rng_state)
        self.injected = list(state["injected"])
        self._safe_ahead.clear()

    # -- bookkeeping ---------------------------------------------------------

    def record(self, site: FaultSite, cycle: int, **detail: Any) -> InjectedFault:
        fault = InjectedFault(site=site, cycle=cycle, detail=detail)
        self.injected.append(fault)
        return fault

    def sites_injected(self) -> set[FaultSite]:
        return {fault.site for fault in self.injected}

    def count(self, site: FaultSite | None = None) -> int:
        if site is None:
            return len(self.injected)
        return sum(1 for fault in self.injected if fault.site == site)


def _positive(name: str, value: int) -> int:
    if value <= 0:
        raise FaultError(f"{name} must be positive, got {value}")
    return value
