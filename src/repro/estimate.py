"""The stable cycle-estimation API (v2.0).

Two consumers need to price work they have not run yet — the QoS admission
gate (:mod:`repro.qos.admission`) and the farm's predictive scheduler
(:mod:`repro.farm.scheduler`) — and both must agree with the simulator to
the cycle.  This module is the one documented estimator they share:

* :func:`estimate_job_cycles` — static cost of one *uninterrupted* job,
  computed instruction by instruction from the same
  :mod:`repro.hw.timing` model the core uses.  Exact on the
  no-interrupt path (equal to ``RunResult.total_cycles`` of
  :func:`~repro.accel.runner.run_program`).
* :class:`RemainingCycles` — the same prediction at every instruction
  boundary, backed by the fast path's cached
  :class:`~repro.iau.fastpath.ProgramMeta` prefix sums, so "how many
  cycles are left from here?" is one subtraction.  This is the PREMA-style
  remaining-cycle signal: because the timing model is deterministic, the
  prediction is *exact*, not a moving average.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import SchedulerError
from repro.hw.timing import fetch_cycles, instruction_cycles

if TYPE_CHECKING:
    from repro.compiler.compile import CompiledNetwork
    from repro.hw.config import AcceleratorConfig
    from repro.isa.program import Program


def estimate_job_cycles(
    config: "AcceleratorConfig", compiled: "CompiledNetwork", program: "Program"
) -> int:
    """Static cycle estimate of one uninterrupted job of ``program``.

    Mirrors the simulator's timing model instruction by instruction (fetch
    for everything, DMA transfer for LOAD/SAVE, MAC-array occupancy for
    CALC) without touching DDR, so a scheduler can price a job it has not
    run yet.  Virtual instructions cost their fetch only — exactly what
    they cost on the uninterrupted path.

    When the network already carries fast-path metadata for this program
    (built by a previous run, or primed by the on-disk compile cache), the
    answer is read off its prefix sums instead — same timing model, same
    value, O(1).
    """
    if config == compiled.config:
        meta = compiled.cached_execution_meta(program)
        if meta is not None:
            return meta.total_cycles
    total = fetch_cycles(config) * len(program)
    for instruction in program:
        if not instruction.is_virtual:
            total += instruction_cycles(
                config, instruction, compiled.layer_config(instruction.layer_id)
            )
    return total


def estimate_service_cycles(
    config: "AcceleratorConfig", compiled: "CompiledNetwork", vi_mode: str = "vi"
) -> int:
    """:func:`estimate_job_cycles` for a vi-mode, by name.

    Same value, but when the network came out of the on-disk compile cache
    the answer is read from the stored mode-keyed :class:`ProgramMeta`
    without materializing the program variant at all — a warm-started
    dispatcher prices every (node, service) pair in O(1) and leaves the
    instruction tuples compressed for its measure workers to hydrate.
    """
    if config == compiled.config:
        meta = compiled.cached_mode_meta(vi_mode)
        if meta is not None:
            return meta.total_cycles
    return estimate_job_cycles(config, compiled, compiled.program_for(vi_mode))


class RemainingCycles:
    """Exact remaining-cycle predictions over a program's prefix sums.

    Wraps the :class:`~repro.iau.fastpath.ProgramMeta` cached on the
    compiled network (built once per ``(network, program)`` pair), exposing
    the cumulative-cycle table as a prediction surface::

        predictor = RemainingCycles(compiled)           # the "vi" program
        predictor.total_cycles                          # one whole job
        predictor.remaining(context.instr_index)        # from a resume point
        predictor.completed_fraction(index)             # progress in [0, 1]

    All quantities assume the uninterrupted path — they are lower bounds
    under pre-emption (the pre-empting task's cycles and the VI
    backup/recovery transfers come on top), which is the standard
    PREMA-style scheduling signal.
    """

    def __init__(self, compiled: "CompiledNetwork", program: "Program | None" = None):
        self.compiled = compiled
        self.program = compiled.program if program is None else program
        self._meta = compiled.execution_meta(self.program)

    def __len__(self) -> int:
        return len(self.program)

    @property
    def total_cycles(self) -> int:
        """Cycles of one uninterrupted job (== :func:`estimate_job_cycles`)."""
        return self._meta.total_cycles

    def elapsed(self, instr_index: int) -> int:
        """Cycles spent when instruction ``instr_index`` is about to fetch."""
        if not 0 <= instr_index <= len(self.program):
            raise SchedulerError(
                f"instruction index {instr_index} outside [0, {len(self.program)}]"
            )
        return self._meta.cum[instr_index]

    def remaining(self, instr_index: int = 0) -> int:
        """Cycles left from instruction ``instr_index`` to job completion."""
        return self.total_cycles - self.elapsed(instr_index)

    def completed_fraction(self, instr_index: int) -> float:
        """Progress in ``[0, 1]`` at instruction ``instr_index``."""
        if self.total_cycles == 0:
            return 1.0
        return self.elapsed(instr_index) / self.total_cycles
