"""repro.serve: durable job gateway with journaled crash recovery.

The serving layer that survives ``kill -9``.  Jobs are journaled in SQLite
(WAL), executed in worker processes that checkpoint the *full simulator
state* — DDR, on-chip buffers, IAU task table, request heap, event stream,
fault-plan RNGs — to versioned CRC-checked snapshot files, and resumed
bit-exactly from the last snapshot when a worker (or the gateway itself)
dies.  See ``docs/serving-gateway.md``.
"""

from repro.serve.gateway import ServeGateway, classify_exit
from repro.serve.journal import JobJournal, JobState, JournalEvent, JournalRecord
from repro.serve.snapshot import (
    SnapshotInfo,
    probe_snapshot,
    read_snapshot,
    restore_system,
    snapshot_system,
    write_snapshot,
)
from repro.serve.worker import JobResult, JobSpec, execute_job, load_result

__all__ = [
    "JobJournal",
    "JobResult",
    "JobSpec",
    "JobState",
    "JournalEvent",
    "JournalRecord",
    "ServeGateway",
    "SnapshotInfo",
    "classify_exit",
    "execute_job",
    "load_result",
    "probe_snapshot",
    "read_snapshot",
    "restore_system",
    "snapshot_system",
    "write_snapshot",
]
