"""The serve worker: one journaled job executed (or resumed) in a process.

A job is a :class:`JobSpec` — a farm :class:`~repro.farm.node.NodeAssignment`
plus execution options.  :func:`execute_job` runs it the same way
:func:`~repro.farm.node.simulate_node` would, but in snapshot-bounded
chunks: every ``snapshot_every_cycles`` simulated cycles the full system
state is written through :func:`~repro.serve.snapshot.snapshot_system` and
recorded in the journal.  When the process hosting this function is killed
— ``kill -9``, OOM, power loss — the gateway notices the death, re-launches
the job, and :func:`execute_job` finds the journal's last snapshot and
resumes from it instead of replaying from cycle zero.  Because snapshots
capture the request heap, the event stream and every armed subsystem's
state, the resumed run is bit-identical to an uninterrupted one.

:func:`worker_main` is the ``spawn``-context process entry point; it owns
all journal writes a live worker can make (start/snapshot/complete/fail).
Deaths are necessarily journaled by the gateway — a SIGKILLed process
writes nothing.
"""

from __future__ import annotations

import os
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import ServeError, SnapshotError
from repro.farm.node import (
    NodeAssignment,
    NodeJobResult,
    build_node_system,
    collect_assignment,
    expected_per_slot,
    submit_assignment,
)
from repro.obs.config import ObsConfig
from repro.serve.journal import FAILED, SNAPSHOT_CORRUPT, JobJournal, JobState
from repro.serve.snapshot import restore_system, snapshot_system

#: Exit code of a worker that simulated a hard crash (test hook).
CRASH_EXIT_CODE = 113


@dataclass(frozen=True)
class JobSpec:
    """Everything one worker process needs (picklable, journal-stored)."""

    assignment: NodeAssignment
    #: Run real int8 arithmetic (enables :attr:`inputs` / output capture).
    functional: bool = False
    #: Record the structured event stream (returned in the result).
    events: bool = False
    #: Snapshot cadence in simulated cycles; 0 disables checkpointing.
    snapshot_every_cycles: int = 0
    #: ``(slot, HWC int8 array)`` inputs for functional jobs.
    inputs: tuple[tuple[int, Any], ...] = field(default_factory=tuple)
    #: Test hook: on the *first* attempt only, die like ``kill -9`` (no
    #: journal writes, ``os._exit``) after this many snapshots.
    crash_after_snapshots: int | None = None


@dataclass(frozen=True)
class JobResult:
    """What a completed job returns (pickled into the journal)."""

    job_id: str
    node: int
    records: tuple[NodeJobResult, ...]
    final_cycle: int
    #: ``(slot, output array)`` for functional jobs, else empty.
    outputs: tuple[tuple[int, Any], ...] = field(default_factory=tuple)
    #: Recorded event stream when :attr:`JobSpec.events` was set.
    events: tuple = field(default_factory=tuple)
    #: Cycle the executing attempt resumed from (0 = ran from scratch).
    resumed_from_cycle: int = 0
    snapshots_written: int = 0


def _build_system(spec: JobSpec):
    obs = ObsConfig(functional=spec.functional, events=spec.events)
    return build_node_system(
        spec.assignment.config,
        spec.assignment.services,
        spec.assignment.vi_mode,
        obs=obs,
    )


def _apply_inputs(system, spec: JobSpec) -> None:
    for slot, array in spec.inputs:
        system.iau.contexts[slot].compiled.set_input(array)


def _collect_outputs(system, spec: JobSpec) -> tuple[tuple[int, Any], ...]:
    if not spec.functional:
        return ()
    slots = sorted({slot for slot, _ in spec.inputs})
    return tuple(
        (slot, system.iau.contexts[slot].compiled.get_output()) for slot in slots
    )


def execute_job(
    job_id: str,
    spec: JobSpec,
    journal: JobJournal,
    snapshot_dir: str | Path,
    *,
    attempt: int = 1,
) -> JobResult:
    """Run (or resume) one job to completion; returns its result.

    Fresh start: build the node system, submit the dispatch plan, run.
    Resume: build the *same* system, restore the journal's last snapshot
    (which carries the pending request heap — the plan is NOT re-submitted),
    continue from the captured cycle.  A snapshot that fails to restore —
    truncated write, bit rot, poisoned by a chaos plan — is not fatal: the
    corruption is journaled (``snapshot_corrupt``), the snapshot is
    discarded from the journal, and the attempt falls back to a fresh
    start (exactness is preserved; only the resume shortcut is lost).
    Either way the run proceeds in ``snapshot_every_cycles`` chunks with a
    journaled snapshot at each boundary.
    """
    assignment = spec.assignment
    record = journal.get(job_id)
    system = _build_system(spec)

    resumed_from = 0
    resumed = False
    if record.snapshot_path and os.path.exists(record.snapshot_path):
        try:
            restore_system(system, record.snapshot_path)
        except SnapshotError as exc:
            journal.record_event(
                job_id,
                SNAPSHOT_CORRUPT,
                {
                    "attempt": attempt,
                    "path": record.snapshot_path,
                    "error": str(exc),
                },
            )
            journal.clear_snapshot(job_id)
            system = _build_system(spec)
        else:
            per_slot = expected_per_slot(assignment)
            resumed_from = system.clock
            resumed = True
    if not resumed:
        if spec.functional:
            _apply_inputs(system, spec)
        per_slot = submit_assignment(assignment, system)

    snapshot_path = Path(snapshot_dir) / f"{job_id}.snap"
    snapshots = 0
    if spec.snapshot_every_cycles > 0:
        while not system.done:
            system.run(until_cycle=system.clock + spec.snapshot_every_cycles)
            if system.done:
                break
            snapshot_system(
                system,
                snapshot_path,
                meta={"job_id": job_id, "attempt": attempt},
            )
            journal.record_snapshot(job_id, str(snapshot_path), system.clock)
            snapshots += 1
            if (
                spec.crash_after_snapshots is not None
                and attempt == 1
                and snapshots >= spec.crash_after_snapshots
            ):
                # Simulated kill -9: vanish without flushing anything.
                os._exit(CRASH_EXIT_CODE)
    else:
        system.run()

    records = collect_assignment(assignment, system, per_slot)
    events = ()
    if spec.events and system.bus is not None:
        events = tuple(system.bus.events)
    return JobResult(
        job_id=job_id,
        node=assignment.node,
        records=tuple(sorted(records, key=lambda r: r.job_id)),
        final_cycle=system.clock,
        outputs=_collect_outputs(system, spec),
        events=events,
        resumed_from_cycle=resumed_from,
        snapshots_written=snapshots,
    )


def worker_main(job_id: str, journal_path: str, snapshot_dir: str) -> None:
    """Process entry point: load the spec from the journal, run, journal
    the outcome.  Exit code 0 = completed, 1 = failed (journaled), negative
    (a signal) or :data:`CRASH_EXIT_CODE` = death the gateway must handle.
    """
    journal = JobJournal(journal_path)
    record = journal.get(job_id)
    resumed = bool(record.snapshot_path)
    attempt = journal.start_attempt(job_id, resumed=resumed)
    try:
        result = execute_job(
            job_id, record.spec, journal, snapshot_dir, attempt=attempt
        )
    except ServeError:
        raise
    except Exception as exc:  # journal, then die visibly
        journal.transition(
            job_id,
            JobState.FAILED,
            kind=FAILED,
            detail={"attempt": attempt, "error": repr(exc)},
            error="".join(
                traceback.format_exception_only(type(exc), exc)
            ).strip(),
        )
        raise SystemExit(1)
    journal.complete(job_id, result)


def load_result(journal: JobJournal, job_id: str) -> JobResult:
    """The completed job's :class:`JobResult` (typed accessor)."""
    record = journal.get(job_id)
    if record.state is not JobState.COMPLETED:
        raise ServeError(
            f"job {job_id!r} is {record.state.value}, not completed"
        )
    result = record.result
    if not isinstance(result, JobResult):
        raise ServeError(f"job {job_id!r} journaled a foreign result: {type(result)!r}")
    return result


__all__ = [
    "CRASH_EXIT_CODE",
    "JobResult",
    "JobSpec",
    "execute_job",
    "load_result",
    "worker_main",
]
