"""Persistent job journal: the gateway's single source of truth.

One SQLite database (WAL mode) records every job the gateway has ever
accepted, every state transition, every snapshot written, and every worker
death observed.  The journal — not gateway memory — defines what exists:
after the gateway process itself is killed and rebooted, :meth:`JobJournal.
orphaned` lists the jobs that were mid-flight and the recovery machinery
resumes them from their last recorded snapshot.

Design rules:

* **WAL journal mode** so the dispatcher thread, worker-observing code and
  status queries never block each other on reads.
* **A fresh connection per call.**  Connections are cheap against a local
  file, and it keeps every method usable from any thread or process
  without connection-object ownership games (sqlite3 connections are not
  shareable across threads by default).
* **Append-only events.**  The ``jobs`` row is the current state; the
  ``events`` table is the full history (used by tests and the recovery
  latency report).

Timestamps are ``time.monotonic()`` deltas where durations matter and
``time.time()`` epochs where wall-clock ordering matters; the journal
stores epochs.
"""

from __future__ import annotations

import json
import pickle
import sqlite3
import time
from dataclasses import dataclass
from enum import Enum
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.errors import ServeError

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    job_id        TEXT PRIMARY KEY,
    state         TEXT NOT NULL,
    spec          BLOB NOT NULL,
    attempts      INTEGER NOT NULL DEFAULT 0,
    max_attempts  INTEGER NOT NULL DEFAULT 1,
    deadline_s    REAL,
    submitted_at  REAL NOT NULL,
    updated_at    REAL NOT NULL,
    snapshot_path TEXT,
    snapshot_cycle INTEGER,
    result        BLOB,
    error         TEXT
);
CREATE TABLE IF NOT EXISTS events (
    id      INTEGER PRIMARY KEY AUTOINCREMENT,
    job_id  TEXT NOT NULL,
    kind    TEXT NOT NULL,
    at      REAL NOT NULL,
    detail  TEXT NOT NULL DEFAULT '{}'
);
CREATE INDEX IF NOT EXISTS events_by_job ON events (job_id, id);
"""


class JobState(str, Enum):
    """Lifecycle of one journaled job."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: Journal event kinds (free-form strings in the table; these are the
#: vocabulary the gateway writes).
SUBMITTED = "submitted"
STARTED = "started"
SNAPSHOT = "snapshot"
WORKER_DEATH = "worker_death"
SNAPSHOT_CORRUPT = "snapshot_corrupt"
SNAPSHOT_DISCARDED = "snapshot_discarded"
RESUMED = "resumed"
RETRY = "retry"
COMPLETED = "completed"
FAILED = "failed"
CANCELLED = "cancelled"


@dataclass(frozen=True)
class JournalRecord:
    """One ``jobs`` row, decoded."""

    job_id: str
    state: JobState
    spec: Any
    attempts: int
    max_attempts: int
    deadline_s: float | None
    submitted_at: float
    updated_at: float
    snapshot_path: str | None
    snapshot_cycle: int | None
    result: Any
    error: str | None


@dataclass(frozen=True)
class JournalEvent:
    """One ``events`` row, decoded."""

    id: int
    job_id: str
    kind: str
    at: float
    detail: Mapping[str, Any]


class JobJournal:
    """Durable job table + event log over one SQLite file."""

    def __init__(self, path: str | Path):
        self.path = str(path)
        with self._connect() as conn:
            conn.executescript(_SCHEMA)

    # -- connection plumbing ----------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path, timeout=30.0)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        return conn

    # -- writes ------------------------------------------------------------

    def submit(
        self,
        job_id: str,
        spec: Any,
        *,
        max_attempts: int = 1,
        deadline_s: float | None = None,
    ) -> None:
        now = time.time()
        blob = pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL)
        try:
            with self._connect() as conn:
                conn.execute(
                    "INSERT INTO jobs (job_id, state, spec, attempts, max_attempts,"
                    " deadline_s, submitted_at, updated_at)"
                    " VALUES (?, ?, ?, 0, ?, ?, ?, ?)",
                    (job_id, JobState.PENDING.value, blob, max_attempts,
                     deadline_s, now, now),
                )
                self._event(conn, job_id, SUBMITTED, {})
        except sqlite3.IntegrityError as exc:
            raise ServeError(f"job {job_id!r} already exists in the journal") from exc

    def transition(
        self,
        job_id: str,
        state: JobState,
        *,
        kind: str | None = None,
        detail: Mapping[str, Any] | None = None,
        error: str | None = None,
    ) -> None:
        """Move a job to ``state`` and append a matching event."""
        now = time.time()
        with self._connect() as conn:
            updated = conn.execute(
                "UPDATE jobs SET state = ?, updated_at = ?, error = ?"
                " WHERE job_id = ?",
                (state.value, now, error, job_id),
            )
            if updated.rowcount == 0:
                raise ServeError(f"unknown job {job_id!r}")
            self._event(conn, job_id, kind or state.value, dict(detail or {}))

    def start_attempt(self, job_id: str, *, resumed: bool = False) -> int:
        """Mark a job RUNNING, bump its attempt counter; returns the attempt."""
        now = time.time()
        with self._connect() as conn:
            updated = conn.execute(
                "UPDATE jobs SET state = ?, attempts = attempts + 1,"
                " updated_at = ? WHERE job_id = ?",
                (JobState.RUNNING.value, now, job_id),
            )
            if updated.rowcount == 0:
                raise ServeError(f"unknown job {job_id!r}")
            attempt = conn.execute(
                "SELECT attempts FROM jobs WHERE job_id = ?", (job_id,)
            ).fetchone()[0]
            self._event(
                conn,
                job_id,
                RESUMED if resumed else STARTED,
                {"attempt": attempt},
            )
        return attempt

    def record_snapshot(self, job_id: str, path: str, cycle: int) -> None:
        now = time.time()
        with self._connect() as conn:
            updated = conn.execute(
                "UPDATE jobs SET snapshot_path = ?, snapshot_cycle = ?,"
                " updated_at = ? WHERE job_id = ?",
                (path, cycle, now, job_id),
            )
            if updated.rowcount == 0:
                raise ServeError(f"unknown job {job_id!r}")
            self._event(conn, job_id, SNAPSHOT, {"path": path, "cycle": cycle})

    def clear_snapshot(self, job_id: str) -> None:
        """Forget a job's snapshot (it is corrupt or stale) — the next
        attempt starts from scratch instead of resuming."""
        now = time.time()
        with self._connect() as conn:
            updated = conn.execute(
                "UPDATE jobs SET snapshot_path = NULL, snapshot_cycle = NULL,"
                " updated_at = ? WHERE job_id = ?",
                (now, job_id),
            )
            if updated.rowcount == 0:
                raise ServeError(f"unknown job {job_id!r}")
            self._event(conn, job_id, SNAPSHOT_DISCARDED, {})

    def complete(self, job_id: str, result: Any) -> None:
        now = time.time()
        blob = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        with self._connect() as conn:
            updated = conn.execute(
                "UPDATE jobs SET state = ?, result = ?, updated_at = ?"
                " WHERE job_id = ?",
                (JobState.COMPLETED.value, blob, now, job_id),
            )
            if updated.rowcount == 0:
                raise ServeError(f"unknown job {job_id!r}")
            self._event(conn, job_id, COMPLETED, {})

    def record_event(
        self, job_id: str, kind: str, detail: Mapping[str, Any] | None = None
    ) -> None:
        with self._connect() as conn:
            self._event(conn, job_id, kind, dict(detail or {}))

    def _event(
        self, conn: sqlite3.Connection, job_id: str, kind: str, detail: dict
    ) -> None:
        conn.execute(
            "INSERT INTO events (job_id, kind, at, detail) VALUES (?, ?, ?, ?)",
            (job_id, kind, time.time(), json.dumps(detail, sort_keys=True)),
        )

    # -- reads -------------------------------------------------------------

    def get(self, job_id: str) -> JournalRecord:
        with self._connect() as conn:
            row = conn.execute(
                "SELECT job_id, state, spec, attempts, max_attempts, deadline_s,"
                " submitted_at, updated_at, snapshot_path, snapshot_cycle,"
                " result, error FROM jobs WHERE job_id = ?",
                (job_id,),
            ).fetchone()
        if row is None:
            raise ServeError(f"unknown job {job_id!r}")
        return self._decode(row)

    def jobs(self, state: JobState | None = None) -> list[JournalRecord]:
        query = (
            "SELECT job_id, state, spec, attempts, max_attempts, deadline_s,"
            " submitted_at, updated_at, snapshot_path, snapshot_cycle,"
            " result, error FROM jobs"
        )
        params: tuple = ()
        if state is not None:
            query += " WHERE state = ?"
            params = (state.value,)
        query += " ORDER BY submitted_at"
        with self._connect() as conn:
            rows = conn.execute(query, params).fetchall()
        return [self._decode(row) for row in rows]

    def orphaned(self) -> list[JournalRecord]:
        """Jobs the journal says were mid-flight when the gateway died."""
        return self.jobs(JobState.RUNNING) + self.jobs(JobState.PENDING)

    def events(self, job_id: str | None = None) -> Iterator[JournalEvent]:
        query = "SELECT id, job_id, kind, at, detail FROM events"
        params: tuple = ()
        if job_id is not None:
            query += " WHERE job_id = ?"
            params = (job_id,)
        query += " ORDER BY id"
        with self._connect() as conn:
            rows = conn.execute(query, params).fetchall()
        for row in rows:
            yield JournalEvent(
                id=row[0],
                job_id=row[1],
                kind=row[2],
                at=row[3],
                detail=json.loads(row[4]),
            )

    @staticmethod
    def _decode(row: tuple) -> JournalRecord:
        return JournalRecord(
            job_id=row[0],
            state=JobState(row[1]),
            spec=pickle.loads(row[2]),
            attempts=row[3],
            max_attempts=row[4],
            deadline_s=row[5],
            submitted_at=row[6],
            updated_at=row[7],
            snapshot_path=row[8],
            snapshot_cycle=row[9],
            result=pickle.loads(row[10]) if row[10] is not None else None,
            error=row[11],
        )
