"""The durable serving gateway: submit / status / cancel / result.

:class:`ServeGateway` accepts :class:`~repro.serve.worker.JobSpec` jobs,
journals them (:mod:`repro.serve.journal`), and executes each in its own
``spawn``-context process running :func:`~repro.serve.worker.worker_main`.
A dispatcher thread watches the worker processes:

* **clean exit** — the worker journaled its own result; nothing to do;
* **journaled failure** (exit 1) — the worker hit a Python exception and
  recorded it; the job is terminally FAILED (exceptions are deterministic,
  retrying replays them);
* **death** — negative exit code (a signal: ``kill -9`` shows up as
  ``-SIGKILL``) or any exit that left the journal mid-flight.  The gateway
  records a ``worker_death`` event and, attempts permitting, re-launches
  the job after an exponential backoff.  The relaunched worker finds the
  journal's last snapshot and resumes mid-replay instead of starting over.

Deadlines are wall-clock budgets measured from submission: a running job
that overruns is killed and FAILED; a backoff that cannot fit in the
remaining budget fails immediately instead of waiting.

Construction replays the journal: jobs a *previous* gateway process left
RUNNING (the gateway itself was killed) are treated as worker deaths and
resumed — durability holds across gateway reboots, not just worker crashes.

``inline=True`` executes jobs synchronously in-process — no threads, no
child processes — for deterministic unit tests of the journal/snapshot
machinery.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import threading
import time
import uuid
from collections import deque
from pathlib import Path

from repro.errors import ServeError
from repro.serve.journal import (
    CANCELLED,
    FAILED,
    RETRY,
    WORKER_DEATH,
    JobJournal,
    JobState,
    JournalRecord,
)
from repro.serve.worker import JobResult, JobSpec, execute_job, load_result, worker_main


def classify_exit(exitcode: int | None) -> str:
    """One taxonomy for worker deaths: ``signal N`` / ``exit code N``.

    Negative exit codes are deaths by signal (``kill -9`` → ``signal 9``);
    anything else is the raw exit status.  The gateway journals this string
    in ``worker_death`` events, and the farm's resilience layer
    (:meth:`repro.farm.resilience.NodeHealth.note_worker_death`) consumes
    the same strings — one vocabulary end to end.
    """
    if exitcode is not None and exitcode < 0:
        return f"signal {-exitcode}"
    return f"exit code {exitcode}"


class ServeGateway:
    """Durable async job gateway over one journal directory."""

    def __init__(
        self,
        root: str | Path,
        *,
        workers: int = 1,
        max_attempts: int = 3,
        backoff_s: float = 0.05,
        backoff_factor: float = 2.0,
        poll_s: float = 0.01,
        inline: bool = False,
    ):
        if workers < 1:
            raise ServeError("workers must be >= 1")
        if max_attempts < 1:
            raise ServeError("max_attempts must be >= 1")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.snapshot_dir = self.root / "snapshots"
        self.snapshot_dir.mkdir(exist_ok=True)
        self.journal = JobJournal(self.root / "journal.db")
        self.workers = workers
        self.max_attempts = max_attempts
        self.backoff_s = backoff_s
        self.backoff_factor = backoff_factor
        self.poll_s = poll_s
        self.inline = inline

        self._lock = threading.Lock()
        self._pending: deque[str] = deque()
        self._retry_at: list[tuple[float, str]] = []
        self._active: dict[str, multiprocessing.process.BaseProcess] = {}
        self._deadlines: dict[str, float] = {}  # job_id -> absolute deadline
        self._stop = threading.Event()
        self._mp = multiprocessing.get_context("spawn")
        self._dispatcher: threading.Thread | None = None

        self._recover()
        if not inline:
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop, name="serve-dispatcher", daemon=True
            )
            self._dispatcher.start()

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "ServeGateway":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Stop dispatching and terminate any still-running workers."""
        self._stop.set()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=10.0)
            self._dispatcher = None
        with self._lock:
            active = dict(self._active)
        for process in active.values():
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)

    def _recover(self) -> None:
        """Resume jobs a dead gateway left behind (journal is the truth)."""
        for record in self.journal.jobs(JobState.RUNNING):
            self.journal.record_event(
                record.job_id,
                WORKER_DEATH,
                {"reason": "gateway_reboot", "attempt": record.attempts},
            )
            with self._lock:
                self._track_deadline(record)
            self._handle_death(record, reason="gateway_reboot")
        for record in self.journal.jobs(JobState.PENDING):
            with self._lock:
                self._pending.append(record.job_id)
                self._track_deadline(record)

    # -- public API --------------------------------------------------------

    def submit(
        self,
        spec: JobSpec,
        *,
        job_id: str | None = None,
        max_attempts: int | None = None,
        deadline_s: float | None = None,
    ) -> str:
        """Journal a job and queue it; returns its id immediately."""
        if job_id is None:
            job_id = f"job-{uuid.uuid4().hex[:12]}"
        self.journal.submit(
            job_id,
            spec,
            max_attempts=max_attempts or self.max_attempts,
            deadline_s=deadline_s,
        )
        if self.inline:
            self._run_inline(job_id)
            return job_id
        with self._lock:
            self._pending.append(job_id)
            if deadline_s is not None:
                self._deadlines[job_id] = time.monotonic() + deadline_s
        return job_id

    def status(self, job_id: str) -> JournalRecord:
        return self.journal.get(job_id)

    def cancel(self, job_id: str) -> bool:
        """Stop a pending or running job.  True if the cancel took effect."""
        with self._lock:
            process = self._active.pop(job_id, None)
            try:
                self._pending.remove(job_id)
            except ValueError:
                pass
            self._retry_at = [
                entry for entry in self._retry_at if entry[1] != job_id
            ]
            self._deadlines.pop(job_id, None)
        if process is not None and process.is_alive():
            process.terminate()
            process.join(timeout=5.0)
        record = self.journal.get(job_id)
        if record.state in (JobState.COMPLETED, JobState.FAILED, JobState.CANCELLED):
            return False
        self.journal.transition(job_id, JobState.CANCELLED, kind=CANCELLED)
        return True

    def result(self, job_id: str, *, timeout: float | None = None) -> JobResult:
        """Block until the job settles; returns its result or raises."""
        limit = None if timeout is None else time.monotonic() + timeout
        while True:
            record = self.journal.get(job_id)
            if record.state is JobState.COMPLETED:
                return load_result(self.journal, job_id)
            if record.state is JobState.FAILED:
                raise ServeError(
                    f"job {job_id!r} failed: {record.error or 'unknown error'}"
                )
            if record.state is JobState.CANCELLED:
                raise ServeError(f"job {job_id!r} was cancelled")
            if limit is not None and time.monotonic() >= limit:
                raise ServeError(
                    f"timed out after {timeout}s waiting for job {job_id!r} "
                    f"(state {record.state.value})"
                )
            time.sleep(self.poll_s)

    async def result_async(
        self, job_id: str, *, timeout: float | None = None
    ) -> JobResult:
        """Awaitable :meth:`result` (runs the poll off the event loop)."""
        return await asyncio.to_thread(self.result, job_id, timeout=timeout)

    def worker_pid(self, job_id: str) -> int | None:
        """The live worker's pid (the crash-recovery benchmark's kill target)."""
        with self._lock:
            process = self._active.get(job_id)
        if process is None or not process.is_alive():
            return None
        return process.pid

    def recovery_events(self, job_id: str) -> list:
        """This job's death/resume history (for latency accounting)."""
        return [
            event
            for event in self.journal.events(job_id)
            if event.kind in (WORKER_DEATH, RETRY, "resumed", "started")
        ]

    # -- inline execution --------------------------------------------------

    def _run_inline(self, job_id: str) -> None:
        record = self.journal.get(job_id)
        while True:
            resumed = bool(record.snapshot_path)
            attempt = self.journal.start_attempt(job_id, resumed=resumed)
            try:
                result = execute_job(
                    job_id,
                    record.spec,
                    self.journal,
                    self.snapshot_dir,
                    attempt=attempt,
                )
            except Exception as exc:
                if attempt >= record.max_attempts:
                    self.journal.transition(
                        job_id,
                        JobState.FAILED,
                        kind=FAILED,
                        detail={"attempt": attempt},
                        error=repr(exc),
                    )
                    return
                self.journal.record_event(
                    job_id, RETRY, {"attempt": attempt, "error": repr(exc)}
                )
                record = self.journal.get(job_id)
                continue
            self.journal.complete(job_id, result)
            return

    # -- the dispatcher ----------------------------------------------------

    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            self._promote_retries()
            self._reap()
            self._enforce_deadlines()
            self._launch()
            time.sleep(self.poll_s)

    def _promote_retries(self) -> None:
        now = time.monotonic()
        with self._lock:
            due = [job_id for at, job_id in self._retry_at if at <= now]
            self._retry_at = [
                entry for entry in self._retry_at if entry[0] > now
            ]
            self._pending.extend(due)

    def _launch(self) -> None:
        while True:
            with self._lock:
                if len(self._active) >= self.workers or not self._pending:
                    return
                job_id = self._pending.popleft()
            process = self._mp.Process(
                target=worker_main,
                args=(job_id, str(self.journal.path), str(self.snapshot_dir)),
                daemon=True,
            )
            process.start()
            with self._lock:
                self._active[job_id] = process

    def _reap(self) -> None:
        with self._lock:
            finished = [
                (job_id, process)
                for job_id, process in self._active.items()
                if not process.is_alive()
            ]
            for job_id, _ in finished:
                del self._active[job_id]
        for job_id, process in finished:
            process.join()
            record = self.journal.get(job_id)
            if record.state in (
                JobState.COMPLETED,
                JobState.FAILED,
                JobState.CANCELLED,
            ):
                with self._lock:
                    self._deadlines.pop(job_id, None)
                continue
            # The worker died without journaling an outcome: a crash.
            exitcode = process.exitcode
            reason = classify_exit(exitcode)
            self.journal.record_event(
                job_id,
                WORKER_DEATH,
                {
                    "reason": reason,
                    "exitcode": exitcode,
                    "attempt": record.attempts,
                    "snapshot_cycle": record.snapshot_cycle,
                },
            )
            self._handle_death(record, reason=reason)

    def _handle_death(self, record: JournalRecord, *, reason: str) -> None:
        job_id = record.job_id
        if record.attempts >= record.max_attempts:
            self.journal.transition(
                job_id,
                JobState.FAILED,
                kind=FAILED,
                detail={"attempt": record.attempts, "reason": reason},
                error=f"worker died ({reason}) and the retry budget "
                f"({record.max_attempts}) is spent",
            )
            with self._lock:
                self._deadlines.pop(job_id, None)
            return
        delay = self.backoff_s * (self.backoff_factor ** max(0, record.attempts - 1))
        with self._lock:
            deadline = self._deadlines.get(job_id)
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._fail_deadline(job_id, record)
                return
            delay = min(delay, remaining)
        self.journal.record_event(
            job_id,
            RETRY,
            {
                "attempt": record.attempts,
                "delay_s": delay,
                "reason": reason,
                "from_snapshot_cycle": record.snapshot_cycle,
            },
        )
        with self._lock:
            self._retry_at.append((time.monotonic() + delay, job_id))

    def _enforce_deadlines(self) -> None:
        now = time.monotonic()
        with self._lock:
            overdue = [
                job_id
                for job_id, deadline in self._deadlines.items()
                if deadline <= now
            ]
        for job_id in overdue:
            with self._lock:
                process = self._active.pop(job_id, None)
                try:
                    self._pending.remove(job_id)
                except ValueError:
                    pass
                self._retry_at = [
                    entry for entry in self._retry_at if entry[1] != job_id
                ]
                self._deadlines.pop(job_id, None)
            if process is not None and process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
            record = self.journal.get(job_id)
            if record.state in (
                JobState.COMPLETED,
                JobState.FAILED,
                JobState.CANCELLED,
            ):
                continue
            self._fail_deadline(job_id, record)

    def _fail_deadline(self, job_id: str, record: JournalRecord) -> None:
        self.journal.transition(
            job_id,
            JobState.FAILED,
            kind=FAILED,
            detail={"attempt": record.attempts, "reason": "deadline"},
            error=f"deadline of {record.deadline_s}s exceeded",
        )
        with self._lock:
            self._deadlines.pop(job_id, None)

    def _track_deadline(self, record: JournalRecord) -> None:
        """Re-arm a recovered job's deadline from its original submit time."""
        if record.deadline_s is None:
            return
        elapsed = time.time() - record.submitted_at
        remaining = record.deadline_s - elapsed
        self._deadlines[record.job_id] = time.monotonic() + max(0.0, remaining)


__all__ = ["ServeGateway", "classify_exit"]
