"""Versioned, CRC-checked system snapshots on disk.

A snapshot file is the durable form of
:meth:`~repro.runtime.system.MultiTaskSystem.capture_state`: the full
mid-run state of one system (DDR contents, on-chip buffers, IAU task table,
scheduler bookkeeping, and — when armed — the event stream, metrics,
monitor, admission and fault-plan RNG states), written atomically so a
worker killed mid-write can never leave a half-snapshot that passes
validation.

Layout (big-endian)::

    offset  size  field
    ------  ----  --------------------------------------------------
    0       8     magic  b"INCASNAP"
    8       2     format version (this module's VERSION)
    10      2     flags (reserved, 0)
    12      4     CRC32 of the payload bytes
    16      8     payload length in bytes
    24      n     payload: pickle of {"meta": ..., "state": ...}

The CRC covers the pickled payload, so truncation, torn writes and bit rot
are all caught before unpickling; any validation failure raises a typed
:class:`~repro.errors.SnapshotError`.  ``meta`` is a small caller-owned
mapping (job id, cycle, attempt) readable without restoring anything.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

from repro.errors import SnapshotError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.system import MultiTaskSystem

MAGIC = b"INCASNAP"
VERSION = 1

_HEADER = struct.Struct(">8sHHIQ")


@dataclass(frozen=True)
class SnapshotInfo:
    """What :func:`write_snapshot` produced (and header probes return)."""

    path: str
    version: int
    crc: int
    payload_bytes: int
    meta: Mapping[str, Any]


def write_snapshot(
    path: str | Path,
    state: dict,
    *,
    meta: Mapping[str, Any] | None = None,
) -> SnapshotInfo:
    """Serialize ``state`` to ``path`` atomically (tmp file + rename).

    The rename is the commit point: a crash at any earlier moment leaves
    either the previous snapshot or a ``.tmp`` leftover, never a corrupt
    file under the final name.
    """
    path = Path(path)
    meta = dict(meta or {})
    try:
        payload = pickle.dumps(
            {"meta": meta, "state": state}, protocol=pickle.HIGHEST_PROTOCOL
        )
    except Exception as exc:
        raise SnapshotError(f"snapshot state is not picklable: {exc}") from exc
    crc = zlib.crc32(payload)
    header = _HEADER.pack(MAGIC, VERSION, 0, crc, len(payload))
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as handle:
            handle.write(header)
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError as exc:
        try:
            tmp.unlink(missing_ok=True)
        finally:
            pass
        raise SnapshotError(f"cannot write snapshot {path}: {exc}") from exc
    return SnapshotInfo(
        path=str(path), version=VERSION, crc=crc, payload_bytes=len(payload), meta=meta
    )


def read_snapshot(path: str | Path) -> tuple[Mapping[str, Any], dict]:
    """Validate and load one snapshot file → ``(meta, state)``.

    Every failure mode — missing file, short header, wrong magic, future
    version, truncated payload, CRC mismatch, unpicklable payload — raises
    :class:`~repro.errors.SnapshotError` with a message naming the cause.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    if len(raw) < _HEADER.size:
        raise SnapshotError(
            f"snapshot {path} is truncated: {len(raw)} bytes, "
            f"need at least the {_HEADER.size}-byte header"
        )
    magic, version, _flags, crc, length = _HEADER.unpack_from(raw)
    if magic != MAGIC:
        raise SnapshotError(f"snapshot {path} has bad magic {magic!r}")
    if version > VERSION:
        raise SnapshotError(
            f"snapshot {path} is format version {version}; this build reads "
            f"up to {VERSION}"
        )
    payload = raw[_HEADER.size :]
    if len(payload) != length:
        raise SnapshotError(
            f"snapshot {path} is truncated: header promises {length} payload "
            f"bytes, found {len(payload)}"
        )
    actual = zlib.crc32(payload)
    if actual != crc:
        raise SnapshotError(
            f"snapshot {path} failed CRC verification "
            f"(header {crc:#010x}, payload {actual:#010x})"
        )
    try:
        document = pickle.loads(payload)
    except Exception as exc:
        raise SnapshotError(f"snapshot {path} payload does not unpickle: {exc}") from exc
    if not isinstance(document, dict) or "state" not in document:
        raise SnapshotError(f"snapshot {path} payload has no state document")
    return document.get("meta", {}), document["state"]


def probe_snapshot(path: str | Path) -> SnapshotInfo:
    """Header + meta only (cheap validity check; the state stays on disk)."""
    meta, state = read_snapshot(path)
    raw_size = Path(path).stat().st_size
    magic, version, _flags, crc, length = _HEADER.unpack_from(
        Path(path).read_bytes()[: _HEADER.size]
    )
    del state, raw_size
    return SnapshotInfo(
        path=str(path),
        version=version,
        crc=crc,
        payload_bytes=length,
        meta=meta,
    )


def snapshot_system(
    system: "MultiTaskSystem",
    path: str | Path,
    *,
    meta: Mapping[str, Any] | None = None,
) -> SnapshotInfo:
    """Capture ``system`` and write it in one call."""
    meta = dict(meta or {})
    meta.setdefault("cycle", system.clock)
    return write_snapshot(path, system.capture_state(), meta=meta)


def restore_system(system: "MultiTaskSystem", path: str | Path) -> Mapping[str, Any]:
    """Load a snapshot into an identically-built ``system``; returns meta.

    Structural mismatches (different task set, config, or armed features)
    surface as :class:`~repro.errors.SnapshotError`.
    """
    from repro.errors import SchedulerError

    meta, state = read_snapshot(path)
    try:
        system.restore_state(state)
    except SchedulerError as exc:
        raise SnapshotError(str(exc)) from exc
    return meta
