"""Landmark map fusion and map-quality metrics.

After a merge, the two agents' landmark estimates describe one map; fusing
them (averaging estimates of the same landmark observed by both) is what
"the maps ... are merged" means concretely in Fig. env(c).  The quality
metric compares fused estimates against the ground-truth world.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dslam.map_merge import MergeResult
from repro.dslam.vo import Pose, transform_point
from repro.dslam.world import World
from repro.errors import DslamError


@dataclass
class LandmarkMap:
    """Point map: landmark id -> (estimate, observation count)."""

    estimates: dict[int, tuple[float, float]] = field(default_factory=dict)
    counts: dict[int, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.estimates)

    def insert(self, landmark_id: int, position: tuple[float, float]) -> None:
        """Running average of all observations of one landmark."""
        if landmark_id in self.estimates:
            count = self.counts[landmark_id]
            old_x, old_y = self.estimates[landmark_id]
            new_x = (old_x * count + position[0]) / (count + 1)
            new_y = (old_y * count + position[1]) / (count + 1)
            self.estimates[landmark_id] = (new_x, new_y)
            self.counts[landmark_id] = count + 1
        else:
            self.estimates[landmark_id] = (float(position[0]), float(position[1]))
            self.counts[landmark_id] = 1

    @classmethod
    def from_estimates(cls, estimates: dict[int, tuple[float, float]]) -> "LandmarkMap":
        built = cls()
        for landmark_id, position in estimates.items():
            built.insert(landmark_id, position)
        return built

    def transformed(self, transform: Pose) -> "LandmarkMap":
        """The same map expressed in another frame."""
        moved = LandmarkMap()
        for landmark_id, position in self.estimates.items():
            moved.estimates[landmark_id] = transform_point(transform, position)
            moved.counts[landmark_id] = self.counts[landmark_id]
        return moved


def fuse_maps(primary: LandmarkMap, secondary: LandmarkMap, merge: MergeResult) -> LandmarkMap:
    """Union of two agents' maps, the second brought into the first's frame.

    Landmarks seen by both agents are averaged with observation-count
    weights.
    """
    fused = LandmarkMap()
    for landmark_id, position in primary.estimates.items():
        fused.estimates[landmark_id] = position
        fused.counts[landmark_id] = primary.counts[landmark_id]
    moved = secondary.transformed(merge.transform)
    for landmark_id, position in moved.estimates.items():
        if landmark_id in fused.estimates:
            count_a = fused.counts[landmark_id]
            count_b = moved.counts[landmark_id]
            ax, ay = fused.estimates[landmark_id]
            bx, by = position
            total = count_a + count_b
            fused.estimates[landmark_id] = (
                (ax * count_a + bx * count_b) / total,
                (ay * count_a + by * count_b) / total,
            )
            fused.counts[landmark_id] = total
        else:
            fused.estimates[landmark_id] = position
            fused.counts[landmark_id] = moved.counts[landmark_id]
    return fused


def map_rmse(estimated: LandmarkMap, world: World, frame_origin: Pose) -> float:
    """RMS position error of landmark estimates vs the true world.

    ``frame_origin`` is the world pose of the map's origin (agent 1's start),
    used to express the ground truth in the map frame.
    """
    if not estimated.estimates:
        raise DslamError("empty landmark map")
    ox, oy, otheta = frame_origin
    cos_o, sin_o = np.cos(-otheta), np.sin(-otheta)
    errors = []
    for landmark_id, (ex, ey) in estimated.estimates.items():
        landmark = world.landmarks.get(landmark_id)
        if landmark is None:
            raise DslamError(f"estimate for unknown landmark {landmark_id}")
        dx, dy = landmark.x - ox, landmark.y - oy
        true_local = (cos_o * dx - sin_o * dy, sin_o * dx + cos_o * dy)
        errors.append((ex - true_local[0]) ** 2 + (ey - true_local[1]) ** 2)
    return float(np.sqrt(np.mean(errors)))


def shared_landmark_count(primary: LandmarkMap, secondary: LandmarkMap) -> int:
    return len(set(primary.estimates) & set(secondary.estimates))
