"""The full two-agent DSLAM experiment (paper §V-C, experiment E10).

Two robots explore the arena in opposite directions, each with its own
simulated Angel-Eye accelerator shared by FE (high priority) and PR (low
priority) through the IAU.  After both missions run, cross-agent place
matches are mined and the maps merged.  The result records everything the
paper reports: FE meeting its per-frame deadline, PR completing one frame
every 7~10 inputs, and the merged trajectory quality.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compiler.compile import CompiledNetwork
from repro.dslam.agent import (
    CameraNode,
    DslamAgent,
    FeNode,
    PrNode,
    VoNode,
)
from repro.dslam.camera import Camera, CameraConfig, frame_period_cycles, perimeter_trajectory
from repro.dslam.frontend import FeatureExtractor, FrontendConfig
from repro.dslam.loop_closure import LoopCloser
from repro.dslam.map_merge import MergeResult, merge_from_frames, merged_trajectories
from repro.dslam.pose_graph import close_loops
from repro.dslam.mapping import LandmarkMap, fuse_maps, map_rmse
from repro.dslam.metrics import absolute_trajectory_error, match_precision
from repro.dslam.place_recognition import PlaceDatabase, PlaceEncoder, PlaceMatch
from repro.dslam.vo import Pose
from repro.dslam.world import World, WorldConfig
from repro.errors import DslamError
from repro.faults.plan import FaultPlan
from repro.obs.config import ObsConfig
from repro.ros.executor import Executor
from repro.runtime.system import MultiTaskSystem


@dataclass(frozen=True)
class DslamScenario:
    """Experiment parameters."""

    num_frames: int = 60
    fps: float = 20.0
    speed: float = 1.5
    world: WorldConfig = WorldConfig()
    camera: CameraConfig = CameraConfig()
    match_threshold: float = 0.75
    min_shared_landmarks: int = 5
    seed: int = 11
    #: Feed PR outputs to an intra-agent loop closer and report the
    #: pose-graph-corrected ATE alongside the raw VO ATE.
    loop_closure: bool = True
    #: (loop start fraction, clockwise) per agent.  Agent 2 starts a little
    #: behind agent 1 on the same loop, so it re-visits agent 1's places a
    #: few seconds later — the place-recognition scenario of Fig. env.
    starts: tuple[tuple[float, bool], ...] = ((0.0, False), (0.985, False))
    #: Observability configuration for each agent's accelerator system
    #: (``None`` keeps instrumentation off, the fast path).
    obs: ObsConfig | None = None
    #: Fault-injection plan threaded through each agent's accelerator,
    #: IAU and ROS executor (``None`` = no fault code runs at all).
    faults: FaultPlan | None = None


@dataclass
class AgentOutcome:
    """Everything measured on one agent."""

    name: str
    final_cycle: int
    fe_jobs: int
    fe_deadline_misses: int
    fe_mean_response_cycles: float
    pr_outputs: int
    pr_frame_gaps: list[int]
    estimated_trajectory: list[Pose]
    true_trajectory: list[Pose]
    ate_meters: float
    #: Intra-agent loop closures detected by PR, and the corrected ATE
    #: (equals ate_meters when no closure fired).
    loop_closures: int = 0
    ate_optimized_meters: float | None = None


@dataclass
class E10Result:
    """The DSLAM experiment outcome."""

    agents: list[AgentOutcome]
    frame_period_cycles: int
    matches: list[PlaceMatch]
    match_precision: float
    merge: MergeResult | None
    merged_ate_meters: float | None
    #: Fused landmark map statistics (None when no merge happened).
    merged_map_landmarks: int | None = None
    merged_map_rmse_meters: float | None = None

    def mean_pr_gap(self) -> float:
        gaps = [gap for agent in self.agents for gap in agent.pr_frame_gaps]
        if not gaps:
            raise DslamError("no PR cadence data: PR produced fewer than 2 outputs")
        return sum(gaps) / len(gaps)

    def total_deadline_misses(self) -> int:
        return sum(agent.fe_deadline_misses for agent in self.agents)

    def format(self) -> str:
        lines = ["E10: ROS-based DSLAM on the interruptible accelerator"]
        for agent in self.agents:
            gaps = agent.pr_frame_gaps
            gap_text = f"{min(gaps)}..{max(gaps)}" if gaps else "n/a"
            closure_text = ""
            if agent.ate_optimized_meters is not None:
                closure_text = (
                    f" ({agent.loop_closures} loop closures -> "
                    f"{agent.ate_optimized_meters:.2f} m)"
                )
            lines.append(
                f"  {agent.name}: {agent.fe_jobs} FE frames "
                f"({agent.fe_deadline_misses} deadline misses), "
                f"{agent.pr_outputs} PR outputs (every {gap_text} frames), "
                f"ATE {agent.ate_meters:.2f} m{closure_text}"
            )
        lines.append(
            f"  mean PR cadence: one PR per {self.mean_pr_gap():.1f} input frames "
            f"(paper: 7~10)"
        )
        lines.append(
            f"  cross-agent matches: {len(self.matches)} "
            f"(precision {self.match_precision * 100:.0f}%)"
        )
        if self.merge is not None:
            lines.append(
                f"  map merge: {self.merge.shared_landmarks} shared landmarks, "
                f"residual {self.merge.residual_rms:.2f} m, "
                f"merged ATE {self.merged_ate_meters:.2f} m"
            )
            if self.merged_map_landmarks is not None:
                lines.append(
                    f"  fused map: {self.merged_map_landmarks} landmarks, "
                    f"RMSE {self.merged_map_rmse_meters:.2f} m"
                )
        else:
            lines.append("  map merge: no acceptable match found")
        return "\n".join(lines)


def build_agent(
    name: str,
    world: World,
    fe_compiled: CompiledNetwork,
    pr_compiled: CompiledNetwork,
    scenario: DslamScenario,
    start_fraction: float,
    clockwise: bool,
    seed: int,
) -> DslamAgent:
    """Wire one robot: accelerator system, executor, and the four nodes."""
    config = fe_compiled.config
    system = MultiTaskSystem(
        config,
        iau_mode="virtual",
        obs=scenario.obs if scenario.obs is not None else ObsConfig(),
        faults=scenario.faults,
    )
    system.add_task(0, fe_compiled, vi_mode="vi")
    system.add_task(1, pr_compiled, vi_mode="vi")
    executor = Executor(system)

    poses = perimeter_trajectory(
        world,
        scenario.num_frames,
        fps=scenario.fps,
        speed=scenario.speed,
        start_fraction=start_fraction,
        clockwise=clockwise,
    )
    period = frame_period_cycles(config.clock.hz, scenario.fps)
    camera = Camera(world, scenario.camera, seed=seed)
    camera_node = CameraNode(executor, camera, poses, period, agent_name=name)
    frontend_config = FrontendConfig()
    fe_shape = fe_compiled.graph.input_shape
    fe_node = FeNode(
        executor,
        FeatureExtractor(frontend_config),
        agent_name=name,
        postproc_cycles=frontend_config.postprocessing_cycles(
            fe_shape.height, fe_shape.width, config.clock.hz
        ),
    )
    vo_node = VoNode(executor, agent_name=name, start_pose=(0.0, 0.0, 0.0))
    loop_closer = LoopCloser() if scenario.loop_closure else None
    pr_node = PrNode(executor, PlaceEncoder(), agent_name=name, loop_closer=loop_closer)
    return DslamAgent(
        name=name,
        executor=executor,
        camera_node=camera_node,
        fe_node=fe_node,
        vo_node=vo_node,
        pr_node=pr_node,
        true_poses=poses,
    )


def run_dslam(
    fe_compiled: CompiledNetwork,
    pr_compiled: CompiledNetwork,
    scenario: DslamScenario | None = None,
) -> E10Result:
    """Run the full two-agent experiment and evaluate it."""
    scenario = scenario or DslamScenario()
    world = World.generate(scenario.world)
    period = frame_period_cycles(fe_compiled.config.clock.hz, scenario.fps)

    agents: list[DslamAgent] = []
    outcomes: list[AgentOutcome] = []
    for index, (start_fraction, clockwise) in enumerate(scenario.starts):
        agent = build_agent(
            f"agent{index + 1}",
            world,
            fe_compiled,
            pr_compiled,
            scenario,
            start_fraction=start_fraction,
            clockwise=clockwise,
            seed=scenario.seed + index,
        )
        final_cycle = agent.run()
        outcomes.append(_evaluate_agent(agent, final_cycle, period))
        agents.append(agent)

    database = PlaceDatabase()
    for agent in agents:
        for descriptor in agent.descriptors:
            database.add(descriptor)
    matches = database.cross_agent_matches(
        threshold=scenario.match_threshold,
        min_shared_landmarks=scenario.min_shared_landmarks,
    )
    quality = match_precision(matches)

    merge = None
    merged_ate = None
    map_landmarks = None
    map_error = None
    if matches:
        merge, merged_ate = _merge_and_score(agents, outcomes, matches[0])
        if merge is not None:
            map_landmarks, map_error = _fuse_and_score_maps(agents, world, merge, matches[0])
    return E10Result(
        agents=outcomes,
        frame_period_cycles=period,
        matches=matches,
        match_precision=quality.precision,
        merge=merge,
        merged_ate_meters=merged_ate,
        merged_map_landmarks=map_landmarks,
        merged_map_rmse_meters=map_error,
    )


def _evaluate_agent(agent: DslamAgent, final_cycle: int, period: int) -> AgentOutcome:
    fe_jobs = agent.fe_node.jobs
    responses = [job.response_cycles for job in fe_jobs]
    misses = sum(1 for job in fe_jobs if job.turnaround_cycles > period)
    estimated = agent.vo_node.vo.trajectory
    true_local = _to_local_frame(agent.true_poses)
    ate = absolute_trajectory_error(estimated, true_local[: len(estimated)])
    closures, ate_optimized = _apply_loop_closures(agent, estimated, true_local)
    return AgentOutcome(
        name=agent.name,
        final_cycle=final_cycle,
        fe_jobs=len(fe_jobs),
        fe_deadline_misses=misses,
        fe_mean_response_cycles=sum(responses) / len(responses) if responses else 0.0,
        pr_outputs=len(agent.pr_node.processed_seqs),
        pr_frame_gaps=agent.pr_frame_gaps(),
        estimated_trajectory=list(estimated),
        true_trajectory=true_local,
        ate_meters=ate,
        loop_closures=closures,
        ate_optimized_meters=ate_optimized,
    )


def _apply_loop_closures(
    agent: DslamAgent, estimated: list[Pose], true_local: list[Pose]
) -> tuple[int, float | None]:
    """Map PR loop closures into frame space and optimise the trajectory."""
    closer = agent.pr_node.loop_closer
    if closer is None or not closer.closures:
        return 0, None
    seqs = agent.pr_node.processed_seqs
    constraints = []
    for closure in closer.closures:
        frame_i = seqs[closure.i]
        frame_j = seqs[closure.j]
        if frame_j < len(estimated):
            constraints.append((frame_i, frame_j, closure.relative))
    if not constraints:
        return len(closer.closures), None
    optimized = close_loops(estimated, constraints, loop_weight=25.0)
    ate = absolute_trajectory_error(optimized, true_local[: len(optimized)])
    return len(closer.closures), ate


def _merge_and_score(
    agents: list[DslamAgent],
    outcomes: list[AgentOutcome],
    match: PlaceMatch,
) -> tuple[MergeResult | None, float | None]:
    """Merge through the best match; score the combined trajectory ATE."""
    by_name = {agent.name: agent for agent in agents}
    first = by_name[match.query.agent]
    second = by_name[match.candidate.agent]
    frame_a = first.camera_node.frames[match.query.header.seq]
    frame_b = second.camera_node.frames[match.candidate.header.seq]
    pose_a = first.vo_node.pose_by_frame.get(frame_a.header.seq)
    pose_b = second.vo_node.pose_by_frame.get(frame_b.header.seq)
    if pose_a is None or pose_b is None:
        return None, None
    try:
        merge = merge_from_frames(frame_a, pose_a, frame_b, pose_b)
    except DslamError:
        return None, None
    outcome_a = next(o for o in outcomes if o.name == first.name)
    outcome_b = next(o for o in outcomes if o.name == second.name)
    combined_est = merged_trajectories(
        outcome_a.estimated_trajectory, outcome_b.estimated_trajectory, merge
    )
    # Ground truth: both agents' true poses in agent A's local frame.
    truth_a = outcome_a.true_trajectory[: len(outcome_a.estimated_trajectory)]
    truth_b_global = second.true_poses[: len(outcome_b.estimated_trajectory)]
    truth_b = _reframe(truth_b_global, first.true_poses[0])
    ate = absolute_trajectory_error(combined_est, truth_a + truth_b)
    return merge, ate


def _fuse_and_score_maps(
    agents: list[DslamAgent],
    world: World,
    merge: MergeResult,
    match: PlaceMatch,
) -> tuple[int, float]:
    """Fuse both agents' landmark estimates into one map and score it."""
    by_name = {agent.name: agent for agent in agents}
    first = by_name[match.query.agent]
    second = by_name[match.candidate.agent]
    map_a = LandmarkMap.from_estimates(first.vo_node.vo.landmark_estimates)
    map_b = LandmarkMap.from_estimates(second.vo_node.vo.landmark_estimates)
    fused = fuse_maps(map_a, map_b, merge)
    error = map_rmse(fused, world, first.true_poses[0])
    return len(fused), error


def _to_local_frame(poses: list[Pose]) -> list[Pose]:
    """Express a global trajectory in the frame of its first pose."""
    return _reframe(poses, poses[0])


def _reframe(poses: list[Pose], origin: Pose) -> list[Pose]:
    ox, oy, otheta = origin
    cos_o, sin_o = np.cos(-otheta), np.sin(-otheta)
    result = []
    for x, y, theta in poses:
        dx, dy = x - ox, y - oy
        result.append(
            (
                cos_o * dx - sin_o * dy,
                sin_o * dx + cos_o * dy,
                float(np.arctan2(np.sin(theta - otheta), np.cos(theta - otheta))),
            )
        )
    return result
