"""Map merging: align two agents' maps through a place-recognition match.

When PR proposes that frame A (agent 1) and frame B (agent 2) show the same
place, the agents' maps are merged by estimating the SE(2) transform that
brings agent 2's map into agent 1's frame, using the landmarks both frames
observed (paper Fig. env(b)/(c): "the maps and the trajectories are merged
via the similar scene").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dslam.vo import Pose, estimate_rigid_2d, transform_point
from repro.errors import DslamError
from repro.ros.messages import CameraFrame


@dataclass(frozen=True)
class MergeResult:
    """The estimated frame-2 -> frame-1 map transform and its quality."""

    transform: Pose
    shared_landmarks: int
    residual_rms: float

    def apply(self, pose: Pose) -> Pose:
        """Map an agent-2 pose into agent 1's frame."""
        tx, ty, ttheta = self.transform
        x, y, theta = pose
        cos_t, sin_t = np.cos(ttheta), np.sin(ttheta)
        return (
            tx + cos_t * x - sin_t * y,
            ty + sin_t * x + cos_t * y,
            float(np.arctan2(np.sin(theta + ttheta), np.cos(theta + ttheta))),
        )

    def apply_trajectory(self, trajectory: list[Pose]) -> list[Pose]:
        return [self.apply(pose) for pose in trajectory]


def merge_from_frames(
    frame_a: CameraFrame,
    pose_a_estimate: Pose,
    frame_b: CameraFrame,
    pose_b_estimate: Pose,
    min_shared: int = 4,
) -> MergeResult:
    """Estimate agent 2's map transform from one matched frame pair.

    Both frames observed some common landmarks; expressing those observations
    in each agent's *estimated* map frame gives two point sets related by the
    inter-map transform.
    """
    shared = sorted(set(frame_a.observations) & set(frame_b.observations))
    if len(shared) < min_shared:
        raise DslamError(
            f"matched frames share only {len(shared)} landmarks (< {min_shared})"
        )
    points_a = np.array(
        [transform_point(pose_a_estimate, frame_a.observations[lid]) for lid in shared]
    )
    points_b = np.array(
        [transform_point(pose_b_estimate, frame_b.observations[lid]) for lid in shared]
    )
    rotation, translation = estimate_rigid_2d(points_b, points_a)
    residuals = np.linalg.norm(points_a - (points_b @ rotation.T + translation), axis=1)
    theta = float(np.arctan2(rotation[1, 0], rotation[0, 0]))
    return MergeResult(
        transform=(float(translation[0]), float(translation[1]), theta),
        shared_landmarks=len(shared),
        residual_rms=float(np.sqrt(np.mean(residuals**2))),
    )


def merged_trajectories(
    trajectory_a: list[Pose],
    trajectory_b: list[Pose],
    merge: MergeResult,
) -> list[Pose]:
    """Agent 1's trajectory followed by agent 2's, expressed in map 1."""
    return list(trajectory_a) + merge.apply_trajectory(trajectory_b)
