"""Visual odometry: frame-to-frame 2-D rigid motion from matched features.

VO matches features between consecutive frames by descriptor (nearest
neighbour with a ratio test — no identity leakage from the synthetic
landmark ids), estimates the rigid transform with a RANSAC-wrapped Kabsch
solve, and integrates the motion into a pose estimate.  Measurement noise
accumulates into drift, exactly the error a map merge must absorb.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DslamError
from repro.ros.messages import Feature

Pose = tuple[float, float, float]


def estimate_rigid_2d(
    source: np.ndarray, target: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Least-squares rotation R and translation t with target ~= R @ source + t.

    Standard 2-D Kabsch/Umeyama (without scale).
    """
    if source.shape != target.shape or source.ndim != 2 or source.shape[1] != 2:
        raise DslamError(f"point sets must both be (n, 2); got {source.shape} and {target.shape}")
    if source.shape[0] < 2:
        raise DslamError("rigid estimation needs at least 2 correspondences")
    source_mean = source.mean(axis=0)
    target_mean = target.mean(axis=0)
    covariance = (target - target_mean).T @ (source - source_mean)
    u, _, vt = np.linalg.svd(covariance)
    det = np.linalg.det(u @ vt)
    rotation = u @ np.diag([1.0, float(np.sign(det))]) @ vt
    translation = target_mean - rotation @ source_mean
    return rotation, translation


def match_features(
    previous: tuple[Feature, ...],
    current: tuple[Feature, ...],
    ratio: float = 0.8,
) -> list[tuple[Feature, Feature]]:
    """Descriptor nearest-neighbour matching with Lowe's ratio test."""
    if not previous or not current:
        return []
    prev_desc = np.stack([feature.descriptor for feature in previous])
    curr_desc = np.stack([feature.descriptor for feature in current])
    similarity = prev_desc @ curr_desc.T  # unit descriptors: cosine
    matches = []
    for row, feature in enumerate(previous):
        order = np.argsort(-similarity[row])
        best = order[0]
        if len(order) > 1:
            best_distance = 1.0 - similarity[row, best]
            second_distance = 1.0 - similarity[row, order[1]]
            if best_distance > ratio * second_distance and second_distance > 1e-9:
                continue
        matches.append((feature, current[best]))
    return matches


def ransac_rigid_2d(
    source: np.ndarray,
    target: np.ndarray,
    iterations: int = 32,
    inlier_threshold: float = 0.25,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(R, t, inlier mask) robust to mismatches."""
    count = source.shape[0]
    if count < 2:
        raise DslamError("RANSAC needs at least 2 correspondences")
    rng = np.random.default_rng(seed)
    best_mask = np.zeros(count, dtype=bool)
    for _ in range(iterations):
        pick = rng.choice(count, size=2, replace=False)
        if np.linalg.norm(source[pick[0]] - source[pick[1]]) < 1e-6:
            continue
        rotation, translation = estimate_rigid_2d(source[pick], target[pick])
        residuals = np.linalg.norm(target - (source @ rotation.T + translation), axis=1)
        mask = residuals < inlier_threshold
        if mask.sum() > best_mask.sum():
            best_mask = mask
    if best_mask.sum() < 2:
        best_mask = np.ones(count, dtype=bool)
    rotation, translation = estimate_rigid_2d(source[best_mask], target[best_mask])
    return rotation, translation, best_mask


def compose(pose: Pose, motion: Pose) -> Pose:
    """SE(2) composition: apply ``motion`` (in the robot frame) to ``pose``."""
    x, y, theta = pose
    dx, dy, dtheta = motion
    cos_t, sin_t = np.cos(theta), np.sin(theta)
    return (
        x + cos_t * dx - sin_t * dy,
        y + sin_t * dx + cos_t * dy,
        float(np.arctan2(np.sin(theta + dtheta), np.cos(theta + dtheta))),
    )


def transform_point(pose: Pose, point: tuple[float, float]) -> tuple[float, float]:
    """Robot-frame point -> world frame under ``pose``."""
    x, y, theta = pose
    px, py = point
    cos_t, sin_t = np.cos(theta), np.sin(theta)
    return (x + cos_t * px - sin_t * py, y + sin_t * px + cos_t * py)


@dataclass
class VisualOdometry:
    """Integrates frame-to-frame motion; keeps an estimated landmark map."""

    start_pose: Pose = (0.0, 0.0, 0.0)
    min_matches: int = 4
    pose: Pose = field(init=False)
    num_frames: int = field(init=False, default=0)
    trajectory: list[Pose] = field(init=False, default_factory=list)
    #: Estimated world positions keyed by the matched feature's landmark id
    #: (used only for map merging, as a stand-in for the local point map).
    landmark_estimates: dict[int, tuple[float, float]] = field(init=False, default_factory=dict)
    _previous: tuple[Feature, ...] | None = field(init=False, default=None)

    def __post_init__(self) -> None:
        self.pose = self.start_pose

    def update(self, features: tuple[Feature, ...]) -> tuple[Pose, int]:
        """Advance the estimate with one frame's features.

        Returns (pose estimate, inlier count).
        """
        inliers = 0
        if self._previous is not None and features:
            matches = match_features(self._previous, features)
            if len(matches) >= self.min_matches:
                current_points = np.array([[m[1].x, m[1].y] for m in matches])
                previous_points = np.array([[m[0].x, m[0].y] for m in matches])
                # Motion of the robot between frames: current-frame points map
                # onto previous-frame points under the forward motion.
                rotation, translation, mask = ransac_rigid_2d(
                    current_points, previous_points, seed=self.num_frames
                )
                inliers = int(mask.sum())
                dtheta = float(np.arctan2(rotation[1, 0], rotation[0, 0]))
                self.pose = compose(self.pose, (float(translation[0]), float(translation[1]), dtheta))
        self.num_frames += 1
        self.trajectory.append(self.pose)
        for feature in features:
            self.landmark_estimates[feature.landmark_id] = transform_point(
                self.pose, (feature.x, feature.y)
            )
        self._previous = features
        return self.pose, inliers
