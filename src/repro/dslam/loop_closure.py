"""Intra-agent loop closure: PR self-matches feeding the pose graph.

The two-agent system uses PR matches *across* robots to merge maps; the
same descriptors also close loops *within* one robot's trajectory when it
re-visits a place.  This module detects those self-matches (similarity above
threshold, enough shared landmarks, a minimum temporal gap so adjacent
frames don't trivially match) and turns them into pose-graph constraints
that bound VO drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dslam.pose_graph import close_loops
from repro.dslam.vo import Pose, estimate_rigid_2d
from repro.errors import DslamError
from repro.ros.messages import CameraFrame


@dataclass(frozen=True)
class LoopClosure:
    """One detected re-visit: frame ``j`` sees frame ``i``'s place again."""

    i: int
    j: int
    similarity: float
    relative: tuple[float, float, float]
    shared_landmarks: int


@dataclass
class LoopCloser:
    """Detects self-matches among a growing sequence of (frame, code) pairs."""

    similarity_threshold: float = 0.8
    min_frame_gap: int = 15
    min_shared_landmarks: int = 5
    _frames: list[CameraFrame] = field(default_factory=list)
    _codes: list[np.ndarray] = field(default_factory=list)
    closures: list[LoopClosure] = field(default_factory=list)

    def observe(self, frame: CameraFrame, code: np.ndarray) -> LoopClosure | None:
        """Add a frame; returns a closure if it re-visits an old place."""
        best: tuple[int, float] | None = None
        for index in range(len(self._codes) - self.min_frame_gap + 1):
            similarity = float(self._codes[index] @ code)
            if similarity < self.similarity_threshold:
                continue
            if best is None or similarity > best[1]:
                best = (index, similarity)
        self._frames.append(frame)
        self._codes.append(code)
        current = len(self._frames) - 1
        if best is None:
            return None
        index, similarity = best
        try:
            relative = _relative_from_frames(self._frames[index], frame)
        except DslamError:
            return None
        shared = len(
            set(self._frames[index].observations) & set(frame.observations)
        )
        if shared < self.min_shared_landmarks:
            return None
        closure = LoopClosure(
            i=index,
            j=current,
            similarity=similarity,
            relative=relative,
            shared_landmarks=shared,
        )
        self.closures.append(closure)
        return closure

    def optimize(self, trajectory: list[Pose], loop_weight: float = 25.0) -> list[Pose]:
        """Correct a trajectory against all detected closures."""
        if not self.closures:
            return list(trajectory)
        constraints = [
            (closure.i, closure.j, closure.relative)
            for closure in self.closures
            if closure.j < len(trajectory)
        ]
        if not constraints:
            return list(trajectory)
        return close_loops(trajectory, constraints, loop_weight=loop_weight)


def _relative_from_frames(
    frame_i: CameraFrame, frame_j: CameraFrame
) -> tuple[float, float, float]:
    """Relative pose of frame j's camera in frame i's camera frame, from the
    landmarks both frames observed."""
    shared = sorted(set(frame_i.observations) & set(frame_j.observations))
    if len(shared) < 3:
        raise DslamError(f"only {len(shared)} shared landmarks; need >= 3")
    points_i = np.array([frame_i.observations[lid] for lid in shared])
    points_j = np.array([frame_j.observations[lid] for lid in shared])
    # Points in frame j map onto points in frame i under the relative pose.
    rotation, translation = estimate_rigid_2d(points_j, points_i)
    theta = float(np.arctan2(rotation[1, 0], rotation[0, 0]))
    return (float(translation[0]), float(translation[1]), theta)
