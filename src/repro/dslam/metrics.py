"""Evaluation metrics: trajectory error and place-recognition quality."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dslam.place_recognition import PlaceMatch
from repro.dslam.vo import Pose, estimate_rigid_2d
from repro.errors import DslamError


def absolute_trajectory_error(
    estimated: list[Pose], ground_truth: list[Pose], align: bool = True
) -> float:
    """RMS position error, optionally after a best rigid alignment (ATE)."""
    if len(estimated) != len(ground_truth):
        raise DslamError(
            f"trajectory lengths differ: {len(estimated)} vs {len(ground_truth)}"
        )
    if not estimated:
        raise DslamError("empty trajectories")
    est = np.array([[pose[0], pose[1]] for pose in estimated])
    truth = np.array([[pose[0], pose[1]] for pose in ground_truth])
    if align and len(estimated) >= 2:
        rotation, translation = estimate_rigid_2d(est, truth)
        est = est @ rotation.T + translation
    return float(np.sqrt(np.mean(np.sum((est - truth) ** 2, axis=1))))


@dataclass(frozen=True)
class MatchQuality:
    """Precision/recall of proposed place matches against ground truth."""

    proposed: int
    true_positives: int
    distance_threshold: float

    @property
    def precision(self) -> float:
        return self.true_positives / self.proposed if self.proposed else 0.0


def match_precision(
    matches: list[PlaceMatch], distance_threshold: float = 4.0
) -> MatchQuality:
    """A proposed match is correct if the two true poses are nearby."""
    true_positives = 0
    for match in matches:
        ax, ay, _ = match.query.true_pose
        bx, by, _ = match.candidate.true_pose
        if np.hypot(ax - bx, ay - by) <= distance_threshold:
            true_positives += 1
    return MatchQuality(
        proposed=len(matches),
        true_positives=true_positives,
        distance_threshold=distance_threshold,
    )
