"""Camera model and agent trajectories.

The camera "renders" a frame by projecting visible landmarks into the robot
frame with measurement noise — the geometric content a real FE network would
recover from pixels.  Trajectories walk the arena perimeter (the two agents
go opposite ways, so they revisit each other's places, which is what gives
the PR module something to match).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dslam.world import World
from repro.errors import DslamError
from repro.ros.messages import CameraFrame, Header

Pose = tuple[float, float, float]


@dataclass(frozen=True)
class CameraConfig:
    """Sensor parameters."""

    fov: float = np.pi * 2 / 3
    max_range: float = 14.0
    position_noise: float = 0.03
    descriptor_noise: float = 0.05
    fps: float = 20.0


class Camera:
    """Projects world landmarks into noisy robot-frame observations."""

    def __init__(self, world: World, config: CameraConfig | None = None, seed: int = 0):
        self.world = world
        self.config = config or CameraConfig()
        self._rng = np.random.default_rng(seed)

    def capture(self, pose: Pose, seq: int, stamp_cycles: int, frame_id: str = "") -> CameraFrame:
        """One frame: every visible landmark observed in the robot frame."""
        visible = self.world.visible_from(pose, self.config.max_range, self.config.fov)
        observations: dict[int, tuple[float, float]] = {}
        descriptors: dict[int, np.ndarray] = {}
        x, y, theta = pose
        cos_t, sin_t = np.cos(theta), np.sin(theta)
        for landmark in visible:
            dx = landmark.x - x
            dy = landmark.y - y
            local_x = cos_t * dx + sin_t * dy + self._rng.normal(0, self.config.position_noise)
            local_y = -sin_t * dx + cos_t * dy + self._rng.normal(0, self.config.position_noise)
            observations[landmark.landmark_id] = (float(local_x), float(local_y))
            noisy = landmark.descriptor + self._rng.normal(
                0, self.config.descriptor_noise, size=landmark.descriptor.shape
            )
            descriptors[landmark.landmark_id] = noisy / np.linalg.norm(noisy)
        return CameraFrame(
            header=Header(seq=seq, stamp_cycles=stamp_cycles, frame_id=frame_id),
            observations=observations,
            descriptors=descriptors,
            true_pose=pose,
        )


def perimeter_trajectory(
    world: World,
    num_frames: int,
    fps: float = 20.0,
    speed: float = 1.5,
    inset: float = 4.0,
    start_fraction: float = 0.0,
    clockwise: bool = False,
) -> list[Pose]:
    """Per-frame poses walking a rectangular loop inset from the walls.

    ``start_fraction`` offsets the starting point along the loop;
    ``clockwise`` reverses direction (the second agent uses both so the two
    robots traverse the same places at different times).
    """
    if num_frames <= 0:
        raise DslamError("trajectory needs at least one frame")
    width = world.config.width - 2 * inset
    height = world.config.height - 2 * inset
    if width <= 0 or height <= 0:
        raise DslamError("inset leaves no room to drive")
    perimeter = 2 * (width + height)
    step = speed / fps
    poses: list[Pose] = []
    for frame in range(num_frames):
        distance = (start_fraction * perimeter + frame * step) % perimeter
        if clockwise:
            distance = perimeter - distance
        x, y, heading = _loop_point(distance, width, height)
        if clockwise:
            heading += np.pi
        poses.append((x + inset, y + inset, float(np.arctan2(np.sin(heading), np.cos(heading)))))
    return poses


def _loop_point(distance: float, width: float, height: float) -> tuple[float, float, float]:
    """Position + heading at arc length ``distance`` along the CCW loop."""
    if distance < width:
        return distance, 0.0, 0.0
    distance -= width
    if distance < height:
        return width, distance, np.pi / 2
    distance -= height
    if distance < width:
        return width - distance, height, np.pi
    distance -= width
    return 0.0, height - distance, -np.pi / 2


def frame_period_cycles(clock_hz: float, fps: float) -> int:
    """Camera frame period expressed in accelerator cycles."""
    if fps <= 0:
        raise DslamError("fps must be positive")
    return int(round(clock_hz / fps))
