"""Place recognition (PR): the GeM-equivalent global descriptor + database.

The paper's PR module runs GeM (ResNet-101 backbone + generalised-mean
pooling) to produce a compact code per frame; codes from different robots
are matched to propose loop closures for map merging.  Here the backbone's
*timing* comes from the compiled GeM program on the simulated accelerator;
this module supplies the *content*: a GeM-pooled embedding of the frame's
observed appearance vectors, so that views of the same place produce nearby
codes and views of different places do not.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dslam.world import LANDMARK_DESCRIPTOR_DIM
from repro.errors import DslamError
from repro.ros.messages import CameraFrame, PlaceDescriptor


@dataclass(frozen=True)
class PlaceEncoderConfig:
    """Embedding parameters."""

    code_dim: int = 32
    gem_p: float = 3.0
    projection_seed: int = 7


class PlaceEncoder:
    """GeM pooling over a fixed random feature projection of the frame."""

    def __init__(self, config: PlaceEncoderConfig | None = None):
        self.config = config or PlaceEncoderConfig()
        rng = np.random.default_rng(self.config.projection_seed)
        self._projection = rng.normal(
            0, 1.0 / np.sqrt(LANDMARK_DESCRIPTOR_DIM),
            size=(LANDMARK_DESCRIPTOR_DIM, self.config.code_dim),
        )

    def encode(self, frame: CameraFrame) -> np.ndarray:
        """Frame -> L2-normalised place code."""
        if not frame.descriptors:
            return np.zeros(self.config.code_dim)
        stacked = np.stack(list(frame.descriptors.values()))
        # "Conv features": a fixed projection of each observation.  The
        # pooling is a signed generalised mean (odd exponent preserves sign),
        # which keeps codes spread over the whole sphere instead of the
        # positive orthant — mirroring GeM-after-whitening discrimination.
        features = stacked @ self._projection
        p = self.config.gem_p
        pooled_p = np.mean(np.sign(features) * np.power(np.abs(features), p), axis=0)
        pooled = np.sign(pooled_p) * np.power(np.abs(pooled_p), 1.0 / p)
        norm = float(np.linalg.norm(pooled))
        if norm < 1e-12:
            return np.zeros(self.config.code_dim)
        return pooled / norm


@dataclass(frozen=True)
class PlaceMatch:
    """A proposed loop closure between two agents' frames."""

    query: PlaceDescriptor
    candidate: PlaceDescriptor
    similarity: float


@dataclass
class PlaceDatabase:
    """All published place descriptors, queryable across agents."""

    descriptors: list[PlaceDescriptor] = field(default_factory=list)

    def add(self, descriptor: PlaceDescriptor) -> None:
        self.descriptors.append(descriptor)

    def __len__(self) -> int:
        return len(self.descriptors)

    def query(
        self,
        descriptor: PlaceDescriptor,
        threshold: float = 0.90,
        exclude_agent: str | None = None,
    ) -> PlaceMatch | None:
        """Best cross-agent match above ``threshold`` (cosine similarity)."""
        exclude_agent = exclude_agent or descriptor.agent
        best: PlaceMatch | None = None
        for candidate in self.descriptors:
            if candidate.agent == exclude_agent:
                continue
            similarity = float(np.dot(descriptor.code, candidate.code))
            if similarity < threshold:
                continue
            if best is None or similarity > best.similarity:
                best = PlaceMatch(descriptor, candidate, similarity)
        return best

    def cross_agent_matches(
        self, threshold: float = 0.90, min_shared_landmarks: int = 4
    ) -> list[PlaceMatch]:
        """All cross-agent pairs above ``threshold`` with enough shared
        landmarks to attempt a geometric merge, best first."""
        matches = []
        for index, query in enumerate(self.descriptors):
            for candidate in self.descriptors[index + 1 :]:
                if candidate.agent == query.agent:
                    continue
                similarity = float(np.dot(query.code, candidate.code))
                if similarity < threshold:
                    continue
                shared = query.landmark_ids & candidate.landmark_ids
                if len(shared) < min_shared_landmarks:
                    continue
                matches.append(PlaceMatch(query, candidate, similarity))
        matches.sort(key=lambda match: -match.similarity)
        return matches


def pairwise_similarity(database: PlaceDatabase) -> np.ndarray:
    """Dense similarity matrix over all stored codes (analysis helper)."""
    if not database.descriptors:
        raise DslamError("place database is empty")
    codes = np.stack([descriptor.code for descriptor in database.descriptors])
    return codes @ codes.T
