"""Distributed SLAM on the interruptible accelerator (the paper's §V-C)."""

from repro.dslam.agent import (
    CAMERA_TOPIC,
    FEATURE_TOPIC,
    FE_TASK,
    ODOMETRY_TOPIC,
    PLACE_TOPIC,
    PR_TASK,
    CameraNode,
    DslamAgent,
    FeNode,
    PrNode,
    VoNode,
)
from repro.dslam.camera import (
    Camera,
    CameraConfig,
    frame_period_cycles,
    perimeter_trajectory,
)
from repro.dslam.frontend import FeatureExtractor, FrontendConfig
from repro.dslam.detector import (
    DETECTION_TOPIC,
    DETECTOR_TASK,
    Detection,
    DetectionArray,
    DetectorNode,
    ObjectClassifier,
)
from repro.dslam.evaluation import PrCurve, ThresholdPoint, evaluate_place_recognition
from repro.dslam.loop_closure import LoopCloser, LoopClosure
from repro.dslam.map_merge import MergeResult, merge_from_frames, merged_trajectories
from repro.dslam.mapping import (
    LandmarkMap,
    fuse_maps,
    map_rmse,
    shared_landmark_count,
)
from repro.dslam.metrics import MatchQuality, absolute_trajectory_error, match_precision
from repro.dslam.pose_graph import PoseEdge, PoseGraph, close_loops, relative_pose
from repro.dslam.place_recognition import (
    PlaceDatabase,
    PlaceEncoder,
    PlaceEncoderConfig,
    PlaceMatch,
    pairwise_similarity,
)
from repro.dslam.system import AgentOutcome, DslamScenario, E10Result, build_agent, run_dslam
from repro.dslam.vo import (
    VisualOdometry,
    compose,
    estimate_rigid_2d,
    match_features,
    ransac_rigid_2d,
    transform_point,
)
from repro.dslam.world import LANDMARK_DESCRIPTOR_DIM, Landmark, World, WorldConfig

__all__ = [
    "AgentOutcome",
    "CAMERA_TOPIC",
    "Camera",
    "CameraConfig",
    "CameraNode",
    "DETECTION_TOPIC",
    "DETECTOR_TASK",
    "Detection",
    "DetectionArray",
    "DetectorNode",
    "DslamAgent",
    "DslamScenario",
    "E10Result",
    "ObjectClassifier",
    "FEATURE_TOPIC",
    "FE_TASK",
    "FeNode",
    "FeatureExtractor",
    "FrontendConfig",
    "LANDMARK_DESCRIPTOR_DIM",
    "Landmark",
    "LandmarkMap",
    "LoopCloser",
    "LoopClosure",
    "PoseEdge",
    "PoseGraph",
    "PrCurve",
    "ThresholdPoint",
    "evaluate_place_recognition",
    "MatchQuality",
    "MergeResult",
    "ODOMETRY_TOPIC",
    "PLACE_TOPIC",
    "PR_TASK",
    "PlaceDatabase",
    "PlaceEncoder",
    "PlaceEncoderConfig",
    "PlaceMatch",
    "PrNode",
    "VisualOdometry",
    "VoNode",
    "World",
    "WorldConfig",
    "absolute_trajectory_error",
    "build_agent",
    "close_loops",
    "compose",
    "estimate_rigid_2d",
    "frame_period_cycles",
    "fuse_maps",
    "map_rmse",
    "relative_pose",
    "shared_landmark_count",
    "match_features",
    "match_precision",
    "merge_from_frames",
    "merged_trajectories",
    "pairwise_similarity",
    "perimeter_trajectory",
    "ransac_rigid_2d",
    "run_dslam",
    "transform_point",
]
