"""Object detection as a third accelerator tenant.

The paper's pitch is that *many* independent ROS components need the CNN
accelerator — perception beyond DSLAM includes object detection.  This node
adds a Darknet-style detector at priority 2: below FE (safety) and PR
(efficiency), processed purely opportunistically.  Its content pipeline
classifies the visible landmark clusters (the arena's chairs vs pillars vs
walls) — the synthetic stand-in for boxes on pixels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dslam.world import World
from repro.iau.context import JobRecord
from repro.ros.executor import Executor
from repro.ros.messages import CameraFrame, Header
from repro.ros.node import Node

#: Priority slot for the detector (below FE=0 and PR=1).
DETECTOR_TASK = 2

DETECTION_TOPIC = "detector/objects"


@dataclass(frozen=True)
class Detection:
    """One detected object: a class label and its observed extent."""

    label: str
    center: tuple[float, float]
    extent: float
    landmark_ids: frozenset[int]


@dataclass(frozen=True)
class DetectionArray:
    header: Header
    detections: tuple[Detection, ...]
    true_pose: tuple[float, float, float]


class ObjectClassifier:
    """Clusters a frame's observations and labels each cluster.

    The synthetic world builds chairs as a tight central cluster and pillars
    as four small rings; walls form the sparse hull.  A greedy radius
    clustering plus size heuristics recovers those classes.
    """

    def __init__(self, cluster_radius: float = 2.5, min_cluster: int = 3):
        self.cluster_radius = cluster_radius
        self.min_cluster = min_cluster

    def detect(self, frame: CameraFrame) -> tuple[Detection, ...]:
        observations = list(frame.observations.items())
        if not observations:
            return ()
        ids = [landmark_id for landmark_id, _ in observations]
        points = np.array([position for _, position in observations])
        unassigned = set(range(len(ids)))
        detections = []
        while unassigned:
            seed_index = min(unassigned)
            cluster = {seed_index}
            frontier = [seed_index]
            while frontier:
                current = frontier.pop()
                for candidate in list(unassigned - cluster):
                    if np.linalg.norm(points[candidate] - points[current]) <= self.cluster_radius:
                        cluster.add(candidate)
                        frontier.append(candidate)
            unassigned -= cluster
            if len(cluster) < self.min_cluster:
                continue
            members = sorted(cluster)
            center = points[members].mean(axis=0)
            extent = float(
                np.max(np.linalg.norm(points[members] - center, axis=1))
            )
            label = self._label(len(members), extent)
            detections.append(
                Detection(
                    label=label,
                    center=(float(center[0]), float(center[1])),
                    extent=extent,
                    landmark_ids=frozenset(ids[m] for m in members),
                )
            )
        return tuple(detections)

    def _label(self, size: int, extent: float) -> str:
        if extent < 1.2:
            return "pillar"
        if size >= 6 and extent < 4.0:
            return "chairs"
        return "structure"


class DetectorNode(Node):
    """Priority-2 tenant: detect objects whenever the accelerator frees up."""

    def __init__(self, executor: Executor, classifier: ObjectClassifier, agent_name: str):
        super().__init__(f"{agent_name}/detector", executor)
        self.classifier = classifier
        self.busy = False
        self.skipped = 0
        self.jobs: list[JobRecord] = []
        self.processed_seqs: list[int] = []
        self.subscribe("camera/frames", self._on_frame)

    def _on_frame(self, frame: CameraFrame) -> None:
        if self.busy:
            self.skipped += 1
            return
        self.busy = True

        def on_done(job: JobRecord) -> None:
            self.jobs.append(job)
            self.processed_seqs.append(frame.header.seq)
            detections = self.classifier.detect(frame)
            self.publish(
                DETECTION_TOPIC,
                DetectionArray(
                    header=Header(frame.header.seq, self.now, frame.header.frame_id),
                    detections=detections,
                    true_pose=frame.true_pose,
                ),
            )
            self.busy = False

        self.executor.submit_job(DETECTOR_TASK, on_done)


def ground_truth_objects(world: World) -> dict[str, int]:
    """How many pillars/chair-clusters the arena actually contains."""
    return {"pillar": 4, "chairs": 1}
