"""DSLAM agent: the ROS nodes sharing one interruptible accelerator.

Per agent (paper Fig. 1(a)):

* **CameraNode** publishes frames at 20 fps,
* **FeNode** (task slot 0, highest priority) runs the SuperPoint backbone on
  the accelerator for every frame and publishes features — it pre-empts PR,
* **VoNode** integrates features into a pose estimate on the CPU,
* **PrNode** (task slot 1, interruptible) runs the GeM backbone whenever the
  previous PR inference has finished, skipping frames in between — which is
  what yields the paper's "one PR frame every 7~10 input frames".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dslam.camera import Camera, Pose
from repro.dslam.frontend import FeatureExtractor
from repro.dslam.place_recognition import PlaceEncoder
from repro.dslam.vo import VisualOdometry
from repro.iau.context import JobRecord
from repro.ros.executor import Executor
from repro.ros.messages import CameraFrame, FeatureArray, Header, Odometry, PlaceDescriptor
from repro.ros.node import Node

#: Task slots, by priority (paper: FE must pre-empt PR).
FE_TASK = 0
PR_TASK = 1

CAMERA_TOPIC = "camera/frames"
FEATURE_TOPIC = "fe/features"
ODOMETRY_TOPIC = "vo/odometry"
PLACE_TOPIC = "pr/descriptors"


class CameraNode(Node):
    """Publishes one frame per period from a precomputed trajectory."""

    def __init__(
        self,
        executor: Executor,
        camera: Camera,
        poses: list[Pose],
        period_cycles: int,
        agent_name: str,
    ):
        super().__init__(f"{agent_name}/camera", executor)
        self.camera = camera
        self.poses = poses
        self.agent_name = agent_name
        self.frames: dict[int, CameraFrame] = {}
        for seq, pose in enumerate(poses):
            self.executor.schedule(seq * period_cycles, self._make_capture(seq, pose))

    def _make_capture(self, seq: int, pose: Pose):
        def capture() -> None:
            frame = self.camera.capture(
                pose, seq=seq, stamp_cycles=self.now, frame_id=self.agent_name
            )
            self.frames[seq] = frame
            self.publish(CAMERA_TOPIC, frame)

        return capture


class FeNode(Node):
    """Feature extraction: one accelerator job per frame, highest priority.

    The CNN backbone runs on the accelerator; the detector post-processing
    (cell softmax + NMS) runs on the dedicated 200 MHz block, modelled as a
    fixed delay between job completion and feature publication.
    """

    def __init__(
        self,
        executor: Executor,
        extractor: FeatureExtractor,
        agent_name: str,
        postproc_cycles: int = 0,
    ):
        super().__init__(f"{agent_name}/fe", executor)
        self.extractor = extractor
        self.postproc_cycles = postproc_cycles
        self.jobs: list[JobRecord] = []
        self.subscribe(CAMERA_TOPIC, self._on_frame)

    def _on_frame(self, frame: CameraFrame) -> None:
        def publish_features() -> None:
            features = self.extractor.extract(frame)
            self.publish(
                FEATURE_TOPIC,
                FeatureArray(
                    header=Header(self.next_seq(), self.now, frame.header.frame_id),
                    features=features,
                    true_pose=frame.true_pose,
                    inference_cycles=self.jobs[-1].turnaround_cycles,
                ),
            )

        def on_done(job: JobRecord) -> None:
            self.jobs.append(job)
            if self.postproc_cycles:
                self.executor.schedule_after(self.postproc_cycles, publish_features)
            else:
                publish_features()

        self.executor.submit_job(FE_TASK, on_done)


class VoNode(Node):
    """Visual odometry on the CPU side, fed by FE."""

    def __init__(self, executor: Executor, agent_name: str, start_pose: Pose = (0.0, 0.0, 0.0)):
        super().__init__(f"{agent_name}/vo", executor)
        self.vo = VisualOdometry(start_pose=start_pose)
        self.pose_by_frame: dict[int, Pose] = {}
        self._frame_seq = 0
        self.subscribe(FEATURE_TOPIC, self._on_features)

    def _on_features(self, message: FeatureArray) -> None:
        pose, inliers = self.vo.update(message.features)
        self.pose_by_frame[self._frame_seq] = pose
        self._frame_seq += 1
        self.publish(
            ODOMETRY_TOPIC,
            Odometry(
                header=Header(self.next_seq(), self.now, message.header.frame_id),
                pose=pose,
                num_inliers=inliers,
            ),
        )


class PrNode(Node):
    """Place recognition: low priority, processes a frame when free.

    Besides publishing descriptors for cross-agent matching, PR outputs feed
    an optional intra-agent :class:`~repro.dslam.loop_closure.LoopCloser`
    so re-visits bound the agent's own VO drift.
    """

    def __init__(
        self,
        executor: Executor,
        encoder: PlaceEncoder,
        agent_name: str,
        loop_closer=None,
    ):
        super().__init__(f"{agent_name}/pr", executor)
        self.encoder = encoder
        self.agent_name = agent_name
        self.loop_closer = loop_closer
        self.busy = False
        self.processed_seqs: list[int] = []
        self.skipped = 0
        self.jobs: list[JobRecord] = []
        self.subscribe(CAMERA_TOPIC, self._on_frame)

    def _on_frame(self, frame: CameraFrame) -> None:
        if self.busy:
            self.skipped += 1
            return
        self.busy = True

        def on_done(job: JobRecord) -> None:
            self.jobs.append(job)
            self.processed_seqs.append(frame.header.seq)
            code = self.encoder.encode(frame)
            if self.loop_closer is not None:
                self.loop_closer.observe(frame, code)
            self.publish(
                PLACE_TOPIC,
                PlaceDescriptor(
                    # header.seq carries the *camera frame* sequence so the
                    # merge step can recover the source frame.
                    header=Header(frame.header.seq, self.now, frame.header.frame_id),
                    agent=self.agent_name,
                    code=code,
                    true_pose=frame.true_pose,
                    landmark_ids=frozenset(frame.observations),
                ),
            )
            self.busy = False

        self.executor.submit_job(PR_TASK, on_done)


@dataclass
class DslamAgent:
    """One robot: executor + accelerator + the four nodes."""

    name: str
    executor: Executor
    camera_node: CameraNode
    fe_node: FeNode
    vo_node: VoNode
    pr_node: PrNode
    true_poses: list[Pose]
    descriptors: list[PlaceDescriptor] = field(default_factory=list)

    def run(self) -> int:
        """Simulate this agent's full mission; returns the final cycle."""
        self.executor.subscribe(PLACE_TOPIC, self.descriptors.append)
        return self.executor.run()

    def pr_frame_gaps(self) -> list[int]:
        """Input frames between consecutive PR outputs (paper: 7~10)."""
        seqs = self.pr_node.processed_seqs
        return [later - earlier for earlier, later in zip(seqs, seqs[1:])]
