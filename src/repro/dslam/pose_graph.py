"""2-D pose-graph optimisation (the SLAM back end).

VO integrates relative motions, so its error grows without bound; place
recognition supplies loop-closure constraints that a pose-graph optimiser
uses to pull the trajectory back into shape.  This is the standard back end
of every modern SLAM system (the paper's DSLAM stack includes it implicitly
— map merging only works because drift is bounded).

The implementation is a dense Gauss-Newton solver on SE(2):

* nodes: poses (x, y, theta), node 0 anchored (gauge freedom),
* edges: relative-pose measurements with scalar information weights,
* residual per edge: difference between the measured relative pose and the
  current estimate's relative pose, angle wrapped.

Small (hundreds of poses) and dependency-free by design — the trajectories
here are tens to hundreds of frames.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dslam.vo import Pose
from repro.errors import DslamError


@dataclass(frozen=True)
class PoseEdge:
    """A relative-pose constraint: pose_j ~= pose_i (+) measurement."""

    i: int
    j: int
    dx: float
    dy: float
    dtheta: float
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.i == self.j:
            raise DslamError(f"self-edge on node {self.i}")
        if self.weight <= 0:
            raise DslamError(f"edge ({self.i},{self.j}) weight must be positive")


@dataclass
class PoseGraph:
    """Nodes + constraints + the Gauss-Newton solver."""

    poses: list[Pose] = field(default_factory=list)
    edges: list[PoseEdge] = field(default_factory=list)

    def add_pose(self, pose: Pose) -> int:
        self.poses.append(pose)
        return len(self.poses) - 1

    def add_edge(self, edge: PoseEdge) -> None:
        count = len(self.poses)
        if not (0 <= edge.i < count and 0 <= edge.j < count):
            raise DslamError(
                f"edge ({edge.i},{edge.j}) references missing nodes (have {count})"
            )
        self.edges.append(edge)

    def add_odometry_chain(self, trajectory: list[Pose], weight: float = 1.0) -> None:
        """Seed the graph with a VO trajectory and its frame-to-frame edges."""
        offset = len(self.poses)
        for pose in trajectory:
            self.add_pose(pose)
        for index in range(len(trajectory) - 1):
            measurement = relative_pose(trajectory[index], trajectory[index + 1])
            self.add_edge(
                PoseEdge(offset + index, offset + index + 1, *measurement, weight=weight)
            )

    # -- solving -------------------------------------------------------------

    def error(self) -> float:
        """Sum of squared weighted residuals."""
        total = 0.0
        for edge in self.edges:
            residual = _edge_residual(self.poses[edge.i], self.poses[edge.j], edge)
            total += edge.weight * float(residual @ residual)
        return total

    def optimize(self, iterations: int = 20, damping: float = 1e-6, tol: float = 1e-9) -> int:
        """Gauss-Newton with node 0 anchored; returns iterations executed."""
        if len(self.poses) < 2 or not self.edges:
            return 0
        for iteration in range(iterations):
            previous = self.error()
            self._gauss_newton_step(damping)
            if previous - self.error() < tol * max(previous, 1.0):
                return iteration + 1
        return iterations

    def _gauss_newton_step(self, damping: float) -> None:
        count = len(self.poses)
        dims = 3 * count
        hessian = np.zeros((dims, dims))
        gradient = np.zeros(dims)
        for edge in self.edges:
            pose_i = self.poses[edge.i]
            pose_j = self.poses[edge.j]
            residual = _edge_residual(pose_i, pose_j, edge)
            jac_i, jac_j = _edge_jacobians(pose_i, pose_j)
            si, sj = 3 * edge.i, 3 * edge.j
            weight = edge.weight
            hessian[si : si + 3, si : si + 3] += weight * jac_i.T @ jac_i
            hessian[sj : sj + 3, sj : sj + 3] += weight * jac_j.T @ jac_j
            hessian[si : si + 3, sj : sj + 3] += weight * jac_i.T @ jac_j
            hessian[sj : sj + 3, si : si + 3] += weight * jac_j.T @ jac_i
            gradient[si : si + 3] += weight * jac_i.T @ residual
            gradient[sj : sj + 3] += weight * jac_j.T @ residual

        # Anchor node 0 (remove gauge freedom).
        hessian[:3, :] = 0.0
        hessian[:, :3] = 0.0
        hessian[:3, :3] = np.eye(3)
        gradient[:3] = 0.0
        hessian += damping * np.eye(dims)

        try:
            delta = np.linalg.solve(hessian, -gradient)
        except np.linalg.LinAlgError as exc:  # pragma: no cover - singularities
            raise DslamError("pose graph normal equations are singular") from exc
        for index in range(count):
            x, y, theta = self.poses[index]
            dx, dy, dtheta = delta[3 * index : 3 * index + 3]
            self.poses[index] = (x + dx, y + dy, _wrap(theta + dtheta))


def relative_pose(pose_i: Pose, pose_j: Pose) -> tuple[float, float, float]:
    """pose_j expressed in pose_i's frame."""
    xi, yi, ti = pose_i
    xj, yj, tj = pose_j
    cos_t, sin_t = np.cos(ti), np.sin(ti)
    dx = cos_t * (xj - xi) + sin_t * (yj - yi)
    dy = -sin_t * (xj - xi) + cos_t * (yj - yi)
    return (float(dx), float(dy), _wrap(tj - ti))


def _edge_residual(pose_i: Pose, pose_j: Pose, edge: PoseEdge) -> np.ndarray:
    actual = relative_pose(pose_i, pose_j)
    return np.array(
        [
            actual[0] - edge.dx,
            actual[1] - edge.dy,
            _wrap(actual[2] - edge.dtheta),
        ]
    )


def _edge_jacobians(pose_i: Pose, pose_j: Pose) -> tuple[np.ndarray, np.ndarray]:
    """d(residual)/d(pose_i), d(residual)/d(pose_j)."""
    xi, yi, ti = pose_i
    xj, yj, _ = pose_j
    cos_t, sin_t = np.cos(ti), np.sin(ti)
    dx, dy = xj - xi, yj - yi
    jac_i = np.array(
        [
            [-cos_t, -sin_t, -sin_t * dx + cos_t * dy],
            [sin_t, -cos_t, -cos_t * dx - sin_t * dy],
            [0.0, 0.0, -1.0],
        ]
    )
    jac_j = np.array(
        [
            [cos_t, sin_t, 0.0],
            [-sin_t, cos_t, 0.0],
            [0.0, 0.0, 1.0],
        ]
    )
    return jac_i, jac_j


def _wrap(angle: float) -> float:
    return float(np.arctan2(np.sin(angle), np.cos(angle)))


def close_loops(
    trajectory: list[Pose],
    loop_constraints: list[tuple[int, int, tuple[float, float, float]]],
    odometry_weight: float = 1.0,
    loop_weight: float = 10.0,
    iterations: int = 20,
) -> list[Pose]:
    """Optimise a VO trajectory against loop-closure constraints.

    ``loop_constraints`` entries are ``(i, j, relative pose of j in i)`` —
    typically produced by PR matches between re-visits.
    """
    graph = PoseGraph()
    graph.add_odometry_chain(trajectory, weight=odometry_weight)
    for i, j, measurement in loop_constraints:
        graph.add_edge(PoseEdge(i, j, *measurement, weight=loop_weight))
    graph.optimize(iterations=iterations)
    return list(graph.poses)
