"""Synthetic exploration world (the AirSim substitute).

The paper's hardware-in-the-loop setup renders "a simple rectangle area with
four different pillars, and some chairs at the center" in AirSim.  This
module builds the same scene abstractly: a rectangular arena whose walls,
pillars and central furniture carry visual *landmarks* — points with an
appearance descriptor.  The camera model projects whichever landmarks are in
view; everything downstream (FE, VO, PR, map merge) consumes only those
projections, which is exactly what the real pipeline extracts from pixels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DslamError

#: Dimensionality of a landmark's appearance descriptor.
LANDMARK_DESCRIPTOR_DIM = 16


@dataclass(frozen=True)
class Landmark:
    """One visual landmark: a world position plus an appearance vector."""

    landmark_id: int
    x: float
    y: float
    descriptor: np.ndarray

    @property
    def position(self) -> np.ndarray:
        return np.array([self.x, self.y])


@dataclass(frozen=True)
class WorldConfig:
    """Scene parameters (a 40 x 30 m arena like the paper's test area)."""

    width: float = 40.0
    height: float = 30.0
    wall_landmarks: int = 120
    pillar_landmarks: int = 12
    chair_landmarks: int = 24
    seed: int = 2020

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise DslamError("world dimensions must be positive")


@dataclass
class World:
    """The landmark map of the arena."""

    config: WorldConfig
    landmarks: dict[int, Landmark] = field(default_factory=dict)

    @classmethod
    def generate(cls, config: WorldConfig | None = None) -> "World":
        """Build the arena: wall points, four corner pillars, central chairs."""
        config = config or WorldConfig()
        rng = np.random.default_rng(config.seed)
        world = cls(config=config)
        width, height = config.width, config.height

        # Wall landmarks: evenly spread along the rectangle's perimeter.
        perimeter = 2 * (width + height)
        for index in range(config.wall_landmarks):
            distance = perimeter * index / config.wall_landmarks
            world._add(rng, *_perimeter_point(distance, width, height))

        # Four pillars near the corners (the "four different pillars").
        pillar_centers = [
            (width * 0.2, height * 0.2),
            (width * 0.8, height * 0.2),
            (width * 0.8, height * 0.8),
            (width * 0.2, height * 0.8),
        ]
        per_pillar = max(1, config.pillar_landmarks // 4)
        for cx, cy in pillar_centers:
            for _ in range(per_pillar):
                angle = rng.uniform(0, 2 * np.pi)
                world._add(rng, cx + 0.5 * np.cos(angle), cy + 0.5 * np.sin(angle))

        # Chairs at the center (the white-box cluster).
        for _ in range(config.chair_landmarks):
            world._add(
                rng,
                width * 0.5 + rng.normal(0, 1.5),
                height * 0.5 + rng.normal(0, 1.5),
            )
        return world

    def _add(self, rng: np.random.Generator, x: float, y: float) -> None:
        descriptor = rng.normal(size=LANDMARK_DESCRIPTOR_DIM)
        descriptor /= np.linalg.norm(descriptor)
        landmark_id = len(self.landmarks)
        self.landmarks[landmark_id] = Landmark(landmark_id, float(x), float(y), descriptor)

    def __len__(self) -> int:
        return len(self.landmarks)

    def visible_from(
        self,
        pose: tuple[float, float, float],
        max_range: float,
        fov: float,
    ) -> list[Landmark]:
        """Landmarks within range and field of view of ``pose`` = (x, y, theta)."""
        x, y, theta = pose
        visible = []
        for landmark in self.landmarks.values():
            dx = landmark.x - x
            dy = landmark.y - y
            distance = float(np.hypot(dx, dy))
            if distance > max_range or distance < 1e-6:
                continue
            bearing = np.arctan2(dy, dx) - theta
            bearing = np.arctan2(np.sin(bearing), np.cos(bearing))
            if abs(bearing) <= fov / 2:
                visible.append(landmark)
        return visible


def _perimeter_point(distance: float, width: float, height: float) -> tuple[float, float]:
    """Point at arc-length ``distance`` along the rectangle perimeter (CCW)."""
    if distance < width:
        return distance, 0.0
    distance -= width
    if distance < height:
        return width, distance
    distance -= height
    if distance < width:
        return width - distance, height
    distance -= width
    return 0.0, height - distance
