"""Place-recognition quality evaluation: precision/recall over thresholds.

Builds a labelled benchmark of place-descriptor pairs from the world model
(positive = the two frames' true poses are within ``positive_distance``) and
sweeps the match threshold, producing the precision/recall curve that
justifies the operating point the DSLAM system uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.tables import format_table
from repro.dslam.camera import Camera, CameraConfig, perimeter_trajectory
from repro.dslam.place_recognition import PlaceEncoder
from repro.dslam.world import World
from repro.errors import DslamError


@dataclass(frozen=True)
class ThresholdPoint:
    """Precision/recall at one similarity threshold."""

    threshold: float
    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        proposed = self.true_positives + self.false_positives
        return self.true_positives / proposed if proposed else 1.0

    @property
    def recall(self) -> float:
        actual = self.true_positives + self.false_negatives
        return self.true_positives / actual if actual else 1.0

    @property
    def f1(self) -> float:
        denominator = self.precision + self.recall
        return 2 * self.precision * self.recall / denominator if denominator else 0.0


@dataclass(frozen=True)
class PrCurve:
    """The full sweep plus the benchmark's composition."""

    points: list[ThresholdPoint]
    num_pairs: int
    num_positive_pairs: int

    def best_f1(self) -> ThresholdPoint:
        return max(self.points, key=lambda point: point.f1)

    def operating_point(self, threshold: float) -> ThresholdPoint:
        candidates = [p for p in self.points if p.threshold <= threshold]
        if not candidates:
            raise DslamError(f"no sweep point at or below threshold {threshold}")
        return max(candidates, key=lambda point: point.threshold)

    def format(self) -> str:
        rows = [
            [
                f"{point.threshold:.2f}",
                f"{point.precision * 100:.1f}%",
                f"{point.recall * 100:.1f}%",
                f"{point.f1:.3f}",
            ]
            for point in self.points
        ]
        return format_table(
            ["threshold", "precision", "recall", "F1"],
            rows,
            title=(
                f"place-recognition sweep over {self.num_pairs} cross-agent pairs "
                f"({self.num_positive_pairs} positives)"
            ),
        )


def evaluate_place_recognition(
    world: World,
    num_frames: int = 60,
    positive_distance: float = 3.0,
    thresholds: tuple[float, ...] = (0.5, 0.6, 0.7, 0.75, 0.8, 0.9),
    camera: CameraConfig | None = None,
    seed: int = 0,
) -> PrCurve:
    """Two synthetic passes over the arena; score all cross-pass pairs."""
    camera = camera or CameraConfig()
    encoder = PlaceEncoder()
    passes = []
    for pass_index in range(2):
        cam = Camera(world, camera, seed=seed + pass_index)
        poses = perimeter_trajectory(
            world,
            num_frames,
            speed=2 * (world.config.width + world.config.height) * 20.0 / num_frames / 2,
            start_fraction=0.01 * pass_index,
        )
        entries = []
        for seq, pose in enumerate(poses):
            frame = cam.capture(pose, seq, 0)
            entries.append((pose, encoder.encode(frame)))
        passes.append(entries)

    pairs = []
    for pose_a, code_a in passes[0]:
        for pose_b, code_b in passes[1]:
            distance = float(np.hypot(pose_a[0] - pose_b[0], pose_a[1] - pose_b[1]))
            similarity = float(code_a @ code_b)
            pairs.append((distance <= positive_distance, similarity))
    positives = sum(1 for is_positive, _ in pairs if is_positive)
    if positives == 0:
        raise DslamError("benchmark contains no positive pairs; lengthen the passes")

    points = []
    for threshold in sorted(thresholds):
        true_positives = sum(
            1 for is_positive, s in pairs if is_positive and s >= threshold
        )
        false_positives = sum(
            1 for is_positive, s in pairs if not is_positive and s >= threshold
        )
        false_negatives = positives - true_positives
        points.append(
            ThresholdPoint(
                threshold=threshold,
                true_positives=true_positives,
                false_positives=false_positives,
                false_negatives=false_negatives,
            )
        )
    return PrCurve(points=points, num_pairs=len(pairs), num_positive_pairs=positives)
