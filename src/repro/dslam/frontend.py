"""Feature extraction (FE): the SuperPoint-equivalent front end.

In the paper, SuperPoint's CNN backbone runs on the accelerator and the
post-processing (cell softmax, non-maximum suppression, descriptor sampling)
runs on a dedicated FPGA block.  Here the *timing* of the backbone comes from
the compiled SuperPoint program on the simulated accelerator (driven by the
FE node); this module supplies the *content* pipeline: keypoint scoring and
NMS over the frame's landmark observations, yielding the features VO
consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ros.messages import CameraFrame, Feature


@dataclass(frozen=True)
class FrontendConfig:
    """Post-processing parameters (the SuperPoint defaults, scaled to meters).

    The timing fields model the paper's dedicated FE post-processing block
    (cell softmax + NMS + descriptor sampling) running at 200 MHz on the PL
    side — a few microseconds per frame, i.e. negligible next to the CNN.
    """

    max_features: int = 120
    nms_radius: float = 0.6
    min_score: float = 0.05
    #: Detector-head cell size (image pixels per cell, SuperPoint: 8).
    cell_size: int = 8
    #: Post-processing block cycles spent per detector cell.
    cycles_per_cell: int = 6
    #: Clock of the post-processing block (paper: 200 MHz).
    postproc_clock_hz: float = 200e6

    def postprocessing_cycles(self, image_h: int, image_w: int, accel_clock_hz: float) -> int:
        """Post-processing latency expressed in *accelerator* clock cycles."""
        cells = max(1, (image_h // self.cell_size) * (image_w // self.cell_size))
        seconds = cells * self.cycles_per_cell / self.postproc_clock_hz
        return int(round(seconds * accel_clock_hz))


class FeatureExtractor:
    """Score + NMS over a frame's observations (SuperPoint post-processing)."""

    def __init__(self, config: FrontendConfig | None = None):
        self.config = config or FrontendConfig()

    def extract(self, frame: CameraFrame) -> tuple[Feature, ...]:
        """Detect up to ``max_features`` well-separated keypoints."""
        candidates = []
        for landmark_id, (x, y) in frame.observations.items():
            score = _keypoint_score(landmark_id, frame.header.seq)
            if score < self.config.min_score:
                continue
            candidates.append(
                Feature(
                    landmark_id=landmark_id,
                    x=x,
                    y=y,
                    score=score,
                    descriptor=frame.descriptors[landmark_id],
                )
            )
        kept = _non_maximum_suppression(candidates, self.config.nms_radius)
        kept.sort(key=lambda feature: -feature.score)
        return tuple(kept[: self.config.max_features])


def _keypoint_score(landmark_id: int, seq: int) -> float:
    """Deterministic per-(landmark, frame) detector confidence in [0, 1).

    A small integer hash stands in for the detector head's cell softmax; it
    varies across frames so NMS outcomes are not frozen, but is reproducible.
    """
    state = (landmark_id * 2654435761 + seq * 40503) & 0xFFFFFFFF
    state ^= state >> 16
    state = (state * 2246822519) & 0xFFFFFFFF
    state ^= state >> 13
    return (state & 0xFFFF) / 65536.0


def _non_maximum_suppression(candidates: list[Feature], radius: float) -> list[Feature]:
    """Greedy NMS: keep the strongest feature within each ``radius`` ball."""
    ordered = sorted(candidates, key=lambda feature: -feature.score)
    kept: list[Feature] = []
    if not ordered:
        return kept
    positions = np.empty((0, 2))
    for feature in ordered:
        point = np.array([feature.x, feature.y])
        if positions.shape[0]:
            distances = np.linalg.norm(positions - point, axis=1)
            if float(distances.min()) < radius:
                continue
        kept.append(feature)
        positions = np.vstack([positions, point])
    return kept
