"""INCA: INterruptible CNN Accelerator for Multi-tasking in Robots.

Full-system Python reproduction of the DAC 2020 paper: network IR and model
zoo, 8-bit quantization, the original and virtual-instruction ISAs, a
cycle-approximate Angel-Eye-style accelerator simulator, the Instruction
Arrangement Unit (IAU), three interrupt methods (CPU-like, layer-by-layer,
virtual-instruction), a preemptive multi-task runtime, a ROS-like
discrete-event middleware, a synthetic two-agent DSLAM application, the
paper's future-work multi-core extension, and a multi-tenant accelerator
farm (``repro.farm``: heterogeneous nodes, seeded tenant traffic, and a
PREMA-style predictive scheduler vs FCFS/static-partition baselines), and
a durable serving gateway (``repro.serve``: journaled jobs, full-system
snapshot/restore, and kill-9 crash recovery).

Quickstart::

    from repro import AcceleratorConfig, MultiTaskSystem, ObsConfig, compile_tasks
    from repro import summarize
    from repro.zoo import build_tiny_cnn, build_tiny_residual

    config = AcceleratorConfig.big()
    low, high = compile_tasks([build_tiny_cnn(), build_tiny_residual()], config)
    system = MultiTaskSystem(config, obs=ObsConfig(events=True, metrics=True))
    system.add_task(0, high)          # priority 0: never interrupted
    system.add_task(1, low)           # priority 1: interruptible
    system.submit(1, at_cycle=0)
    system.submit(0, at_cycle=2_000)  # pre-empts mid-inference
    system.run()
    print(system.spans(0)[0].format())  # per-job span tree (layers, VI, preemptions)
    print(system.summary())             # per-task table: jobs, latency, DDR, preempts

Instrumentation is off by default (``obs=None``) and costs nothing when
disabled; ``ObsConfig`` selects event recording, the legacy flat trace, and
the metrics registry independently.
"""

from repro.accel.reference import golden_inference, golden_output
from repro.accel.runner import RunResult, run_program
from repro.compiler import (
    CACHE_ENV_VAR,
    CompileCache,
    CompiledNetwork,
    ViPolicy,
    compile_network,
)
from repro.errors import CheckpointError, EccError, FaultError, ServeError, SnapshotError
from repro.faults import (
    DeadlineMissed,
    DegradationPolicy,
    FaultPlan,
    FaultSite,
    run_campaign,
)
from repro.hw import AcceleratorConfig
from repro.interrupt import (
    CPU_LIKE,
    LAYER_BY_LAYER,
    VIRTUAL_INSTRUCTION,
    measure_interrupt,
)
from repro.errors import InvariantViolation, QosError
from repro.estimate import (
    RemainingCycles,
    estimate_job_cycles,
    estimate_service_cycles,
)
from repro.nn import GraphBuilder, NetworkGraph, TensorShape
from repro.obs import EventBus, Metrics, ObsConfig, summarize
from repro.qos import (
    AdmissionDenied,
    AdmissionPolicy,
    BackpressureProfile,
    InvariantMonitor,
    QosConfig,
    QueuePolicy,
    scan_events,
)
from repro.runtime import ArrivalPolicy, MultiTaskSystem, compile_tasks
from repro.verify import (
    Diagnostic,
    Report,
    Severity,
    StaticWcirl,
    verify_network,
    verify_program,
    verify_task_set,
    wcirl_bound,
)

__version__ = "2.2.0"

__all__ = [
    "AcceleratorConfig",
    "AdmissionDenied",
    "AdmissionPolicy",
    "ArrivalPolicy",
    "BackpressureProfile",
    "CACHE_ENV_VAR",
    "CPU_LIKE",
    "CheckpointError",
    "CompileCache",
    "CompiledNetwork",
    "DeadlineMissed",
    "DegradationPolicy",
    "Diagnostic",
    "EccError",
    "EventBus",
    "FaultError",
    "FaultPlan",
    "FaultSite",
    "GraphBuilder",
    "InvariantMonitor",
    "InvariantViolation",
    "LAYER_BY_LAYER",
    "Metrics",
    "MultiTaskSystem",
    "NetworkGraph",
    "ObsConfig",
    "QosConfig",
    "QosError",
    "QueuePolicy",
    "RemainingCycles",
    "Report",
    "RunResult",
    "ServeError",
    "Severity",
    "SnapshotError",
    "StaticWcirl",
    "TensorShape",
    "VIRTUAL_INSTRUCTION",
    "ViPolicy",
    "__version__",
    "compile_network",
    "compile_tasks",
    "estimate_job_cycles",
    "estimate_service_cycles",
    "golden_inference",
    "golden_output",
    "measure_interrupt",
    "run_campaign",
    "run_program",
    "scan_events",
    "summarize",
    "verify_network",
    "verify_program",
    "verify_task_set",
    "wcirl_bound",
]
