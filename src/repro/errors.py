"""Exception hierarchy for the INCA reproduction.

Every error raised by this package derives from :class:`IncaError` so that
callers can catch the whole family with a single ``except`` clause while the
sub-classes keep failure modes distinguishable in tests and logs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only (verify imports errors)
    from repro.verify.diagnostics import Report


class IncaError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class GraphError(IncaError):
    """A network graph is malformed (bad wiring, shape mismatch, cycles)."""


class QuantizationError(IncaError):
    """A tensor cannot be represented in the requested fixed-point format."""


class IsaError(IncaError):
    """An instruction is malformed or cannot be encoded/decoded."""


class ProgramError(IncaError):
    """An instruction *sequence* violates a program-level invariant.

    When raised by the static verifier, the full
    :class:`~repro.verify.diagnostics.Report` rides along on :attr:`report`
    (the message pretty-prints only the top findings).
    """

    def __init__(self, message: str, *, report: "Report | None" = None) -> None:
        super().__init__(message)
        self.report = report


class CompileError(IncaError):
    """The compiler cannot lower a network onto the configured hardware."""


class HardwareError(IncaError):
    """A hardware configuration is invalid (e.g. buffer too small to tile)."""


class MemoryMapError(IncaError):
    """A DDR allocation failed or an access fell outside its region."""


class ExecutionError(IncaError):
    """The accelerator simulator hit an illegal state at runtime."""


class IauError(IncaError):
    """The instruction arrangement unit was driven illegally."""


class SchedulerError(IncaError):
    """The multi-task runtime was misused (bad priority, double submit...)."""


class RosError(IncaError):
    """The ROS-like middleware was misused (unknown topic, bad node...)."""


class FaultError(IncaError):
    """Base class for failures surfaced by the fault-tolerance machinery."""


class CheckpointError(FaultError):
    """A Vir_SAVE checkpoint failed CRC verification beyond the retry budget.

    :attr:`attempts` carries how many verifications were tried before giving
    up (the budget plus the final failing one).
    """

    def __init__(self, message: str, *, attempts: int = 0) -> None:
        super().__init__(message)
        self.attempts = attempts


class EccError(FaultError):
    """DDR corruption the modelled ECC can detect but not correct."""


class CampaignError(FaultError):
    """A fault-injection campaign was misconfigured or misused."""


class QosError(IncaError):
    """A QoS policy object was misconfigured (bad depth, bad profile...)."""


class InvariantViolation(IncaError):
    """The online invariant monitor caught the runtime lying to itself.

    Raised immediately in ``mode="raise"``; in ``mode="report"`` violations
    are collected on the monitor instead (see
    :class:`~repro.qos.monitor.InvariantMonitor`).
    """


class DslamError(IncaError):
    """A DSLAM component failed (no landmarks in view, bad trajectory...)."""


class ServeError(IncaError):
    """The durable serving gateway was misused or a job failed terminally."""


class SnapshotError(ServeError):
    """A system snapshot could not be written, read, or restored."""
