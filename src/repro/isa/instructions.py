"""Instruction word of the (VI-)ISA.

All opcodes share one fixed 32-byte word with opcode-dependent field use,
mirroring how real instruction-driven accelerators pack their words:

====================  =======================================================
field                 meaning
====================  =======================================================
``layer_id``          index into the compiled network's layer-config table
``save_id``           identity linking a VIR_SAVE to the real SAVE it may
                      pre-empt (SAVE rewriting); ``NO_SAVE_ID`` elsewhere
``ddr_addr``          base address of the DDR region touched
``length``            transfer size in bytes (LOAD/SAVE timing)
``row0, rows``        spatial row range — input rows for LOAD_D, output rows
                      for CALC/SAVE
``ch0, chs``          channel range — output channels for LOAD_W/CALC/SAVE,
                      feature-map channels for LOAD_D
``in_ch0, in_chs``    input-channel range consumed by a CALC / weight chunk
``shift``             requantization right-shift applied by CALC_F
``flags``             bit 0 ReLU, bit 1 bias add, bit 2 last-save-of-layer
====================  =======================================================
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import IsaError
from repro.isa.opcodes import Opcode, is_calc, is_load, is_virtual

#: ``save_id`` value meaning "not participating in SAVE rewriting".
NO_SAVE_ID = 0xFFFF

FLAG_RELU = 1 << 0
FLAG_BIAS = 1 << 1
FLAG_LAST_SAVE_OF_LAYER = 1 << 2
#: LOAD_D loads the second operand of an element-wise layer (residual add).
FLAG_OPERAND_B = 1 << 3
#: This virtual instruction is a legal task-switch point.  Recovery loads
#: that merely trail a VIR_SAVE are *not* switch points themselves: switching
#: there would skip the backup that VIR_SAVE encodes.
FLAG_SWITCH_POINT = 1 << 4

_U16 = 0xFFFF
_U32 = 0xFFFFFFFF


@dataclass(frozen=True)
class Instruction:
    """One 32-byte (VI-)ISA instruction word."""

    opcode: Opcode
    layer_id: int = 0
    save_id: int = NO_SAVE_ID
    ddr_addr: int = 0
    length: int = 0
    row0: int = 0
    rows: int = 0
    ch0: int = 0
    chs: int = 0
    in_ch0: int = 0
    in_chs: int = 0
    shift: int = 0
    flags: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.opcode, Opcode):
            raise IsaError(f"opcode must be an Opcode, got {self.opcode!r}")
        for name, limit in (
            ("layer_id", _U16),
            ("save_id", _U16),
            ("row0", _U16),
            ("rows", _U16),
            ("ch0", _U16),
            ("chs", _U16),
            ("in_ch0", _U16),
            ("in_chs", _U16),
            ("flags", _U16),
        ):
            value = getattr(self, name)
            if not 0 <= value <= limit:
                raise IsaError(f"{name}={value} outside [0, {limit}]")
        for name in ("ddr_addr", "length"):
            value = getattr(self, name)
            if not 0 <= value <= _U32:
                raise IsaError(f"{name}={value} outside u32 range")
        if not -(1 << 15) <= self.shift < (1 << 15):
            raise IsaError(f"shift={self.shift} outside i16 range")

    # -- classification ----------------------------------------------------

    @property
    def is_virtual(self) -> bool:
        return is_virtual(self.opcode)

    @property
    def is_calc(self) -> bool:
        return is_calc(self.opcode)

    @property
    def is_load(self) -> bool:
        return is_load(self.opcode)

    @property
    def relu(self) -> bool:
        return bool(self.flags & FLAG_RELU)

    @property
    def bias(self) -> bool:
        return bool(self.flags & FLAG_BIAS)

    @property
    def is_last_save_of_layer(self) -> bool:
        return bool(self.flags & FLAG_LAST_SAVE_OF_LAYER)

    @property
    def operand_b(self) -> bool:
        return bool(self.flags & FLAG_OPERAND_B)

    @property
    def is_switch_point(self) -> bool:
        return bool(self.flags & FLAG_SWITCH_POINT)

    # -- helpers -----------------------------------------------------------

    def with_channel_range(self, ch0: int, chs: int, length: int) -> "Instruction":
        """Copy with a rewritten channel window (IAU SAVE rewriting)."""
        return replace(self, ch0=ch0, chs=chs, length=length)

    def materialized(self) -> "Instruction":
        """Real counterpart of a virtual instruction (IAU expansion)."""
        mapping = {
            Opcode.VIR_SAVE: Opcode.SAVE,
            Opcode.VIR_LOAD_D: Opcode.LOAD_D,
            Opcode.VIR_LOAD_W: Opcode.LOAD_W,
        }
        if self.opcode not in mapping:
            raise IsaError(f"{self.opcode.name} has no real counterpart")
        return replace(self, opcode=mapping[self.opcode])

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [f"{self.opcode.name:<11} L{self.layer_id}"]
        if self.rows:
            parts.append(f"rows[{self.row0}:{self.row0 + self.rows})")
        if self.chs:
            parts.append(f"ch[{self.ch0}:{self.ch0 + self.chs})")
        if self.in_chs:
            parts.append(f"in_ch[{self.in_ch0}:{self.in_ch0 + self.in_chs})")
        if self.length:
            parts.append(f"{self.length}B")
        if self.save_id != NO_SAVE_ID:
            parts.append(f"sid={self.save_id}")
        return " ".join(parts)
