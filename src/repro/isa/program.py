"""Program container and ``instruction.bin`` serialization.

A :class:`Program` is an ordered instruction sequence for one network, as
dumped by the compiler and loaded into the FPGA's DDR instruction space in
the paper's flow.  The on-disk format is a small header followed by packed
32-byte instruction words.
"""

from __future__ import annotations

import struct
import zlib
from collections.abc import Iterator
from dataclasses import dataclass
from functools import cached_property
from pathlib import Path

from repro.errors import ProgramError
from repro.isa.encoding import INSTRUCTION_BYTES, decode_stream, encode_stream
from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode

_MAGIC = b"INCA"
#: v2 adds a CRC32 of the body so any corruption of a stored
#: ``instruction.bin`` is caught at load time, before decode.
_VERSION = 2
_HEADER = struct.Struct("<4sHHII")  # magic, version, reserved, count, body crc32


@dataclass(frozen=True)
class Program:
    """An immutable instruction sequence plus its identity."""

    name: str
    instructions: tuple[Instruction, ...]

    def __post_init__(self) -> None:
        if not self.instructions:
            raise ProgramError(f"program {self.name!r} is empty")

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    # -- queries -----------------------------------------------------------

    def opcode_histogram(self) -> dict[Opcode, int]:
        counts: dict[Opcode, int] = {}
        for instruction in self.instructions:
            counts[instruction.opcode] = counts.get(instruction.opcode, 0) + 1
        return counts

    @cached_property
    def virtual_indices(self) -> tuple[int, ...]:
        """Indices of all virtual instructions (computed once, cached)."""
        return tuple(
            index
            for index, instruction in enumerate(self.instructions)
            if instruction.is_virtual
        )

    @cached_property
    def switch_point_indices(self) -> tuple[int, ...]:
        """Indices at which a pending pre-emption may actually fire.

        A subset of :attr:`virtual_indices`: recovery loads trailing a
        VIR_SAVE carry no switch-point flag (switching there would skip the
        backup the VIR_SAVE encodes).
        """
        return tuple(
            index
            for index in self.virtual_indices
            if self.instructions[index].is_switch_point
        )

    def num_virtual(self) -> int:
        return len(self.virtual_indices)

    def interrupt_points(self) -> list[int]:
        """Indices at which the IAU may switch tasks (virtual instructions)."""
        return list(self.virtual_indices)

    def layer_span(self, layer_id: int) -> tuple[int, int]:
        """(first, last+1) instruction indices belonging to ``layer_id``."""
        indices = [
            index
            for index, instruction in enumerate(self.instructions)
            if instruction.layer_id == layer_id
        ]
        if not indices:
            raise ProgramError(f"program {self.name!r} has no layer {layer_id}")
        return indices[0], indices[-1] + 1

    def without_virtual(self) -> "Program":
        """The original-ISA view of this program (virtual instructions dropped)."""
        real = tuple(
            instruction for instruction in self.instructions if not instruction.is_virtual
        )
        if not real:
            raise ProgramError(f"program {self.name!r} has no real instructions")
        return Program(name=self.name, instructions=real)

    # -- serialization -------------------------------------------------------

    def to_bytes(self) -> bytes:
        body = encode_stream(self.instructions)
        header = _HEADER.pack(
            _MAGIC, _VERSION, 0, len(self.instructions), zlib.crc32(body)
        )
        return header + body

    @classmethod
    def from_bytes(cls, blob: bytes, name: str = "loaded") -> "Program":
        if len(blob) < _HEADER.size:
            raise ProgramError("blob too short to hold a program header")
        magic, version, reserved, count, crc = _HEADER.unpack_from(blob, 0)
        if magic != _MAGIC:
            raise ProgramError(f"bad magic {magic!r}; not an instruction.bin")
        if version != _VERSION:
            raise ProgramError(f"unsupported instruction.bin version {version}")
        if reserved != 0:
            # Every header bit is load-bearing: a flipped reserved field means
            # the blob did not come out of this serializer intact.
            raise ProgramError(f"reserved header field must be 0, got {reserved:#x}")
        body = blob[_HEADER.size :]
        expected = count * INSTRUCTION_BYTES
        if len(body) != expected:
            raise ProgramError(
                f"instruction.bin declares {count} instructions ({expected} bytes), "
                f"body has {len(body)} bytes"
            )
        actual = zlib.crc32(body)
        if actual != crc:
            raise ProgramError(
                f"instruction.bin body CRC mismatch "
                f"(header {crc:#010x}, computed {actual:#010x}): corrupted blob"
            )
        return cls(name=name, instructions=tuple(decode_stream(body)))

    def dump(self, path: str | Path) -> Path:
        """Write ``instruction.bin`` to disk; returns the path."""
        path = Path(path)
        path.write_bytes(self.to_bytes())
        return path

    @classmethod
    def load(cls, path: str | Path) -> "Program":
        path = Path(path)
        return cls.from_bytes(path.read_bytes(), name=path.stem)
