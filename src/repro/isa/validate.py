"""Static validation of instruction programs.

The validator enforces the invariants the IAU and accelerator rely on, so a
malformed compile fails loudly *before* simulation:

* layer ids are non-decreasing (the schedule is layer-ordered);
* within a layer, every CALC_I run is terminated by a CALC_F over the same
  output-channel window (the CalcBlob contract);
* a CALC is preceded (within its layer) by at least one LOAD_D and — for
  weighted layers — a LOAD_W covering its channels;
* every VIR_SAVE carries a ``save_id`` that a later real SAVE in the same
  layer also carries (otherwise SAVE rewriting could drop data);
* virtual instructions sit only at legal interrupt points: immediately after
  a CALC_F, a SAVE, another virtual instruction, or a layer boundary;
* transfers declare positive lengths.
"""

from __future__ import annotations

from repro.errors import ProgramError
from repro.isa.instructions import NO_SAVE_ID, Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program


def validate_program(program: Program) -> None:
    """Raise :class:`ProgramError` on the first violated invariant."""
    _check_layer_ordering(program)
    _check_transfer_lengths(program)
    _check_calc_blobs(program)
    _check_virtual_positions(program)
    _check_save_id_pairing(program)


def _check_layer_ordering(program: Program) -> None:
    previous = -1
    for index, instruction in enumerate(program):
        if instruction.layer_id < previous:
            raise ProgramError(
                f"{program.name}[{index}]: layer_id {instruction.layer_id} "
                f"after layer_id {previous} — schedule must be layer-ordered"
            )
        previous = instruction.layer_id


def _check_transfer_lengths(program: Program) -> None:
    transfer_ops = (Opcode.LOAD_W, Opcode.LOAD_D, Opcode.SAVE, Opcode.VIR_SAVE, Opcode.VIR_LOAD_D)
    for index, instruction in enumerate(program):
        if instruction.opcode in transfer_ops and instruction.length <= 0:
            raise ProgramError(
                f"{program.name}[{index}]: {instruction.opcode.name} with length "
                f"{instruction.length}; transfers must move at least one byte"
            )


def _check_calc_blobs(program: Program) -> None:
    """CALC_I runs must end in a CALC_F on the same output-channel window."""
    open_window: tuple[int, int, int] | None = None  # (layer, ch0, chs)
    for index, instruction in enumerate(program):
        if instruction.opcode == Opcode.CALC_I:
            window = (instruction.layer_id, instruction.ch0, instruction.chs)
            if open_window is not None and open_window != window:
                raise ProgramError(
                    f"{program.name}[{index}]: CALC_I window {window} while blob "
                    f"{open_window} is still open"
                )
            open_window = window
        elif instruction.opcode == Opcode.CALC_F:
            window = (instruction.layer_id, instruction.ch0, instruction.chs)
            if open_window is not None and open_window != window:
                raise ProgramError(
                    f"{program.name}[{index}]: CALC_F window {window} does not close "
                    f"open blob {open_window}"
                )
            open_window = None
        elif instruction.opcode == Opcode.SAVE and open_window is not None:
            raise ProgramError(
                f"{program.name}[{index}]: SAVE while CalcBlob {open_window} has "
                f"no CALC_F — intermediate results would be lost"
            )
    if open_window is not None:
        raise ProgramError(
            f"{program.name}: program ends with unterminated CalcBlob {open_window}"
        )


def _check_virtual_positions(program: Program) -> None:
    """Virtual instructions may only follow CALC_F / SAVE / virtual / layer start."""
    legal_predecessors = (
        Opcode.CALC_F,
        Opcode.SAVE,
        Opcode.VIR_SAVE,
        Opcode.VIR_LOAD_D,
        Opcode.VIR_LOAD_W,
        Opcode.VIR_BARRIER,
    )
    previous: Instruction | None = None
    for index, instruction in enumerate(program):
        if instruction.is_virtual:
            at_layer_boundary = previous is None or previous.layer_id != instruction.layer_id
            if not at_layer_boundary and previous.opcode not in legal_predecessors:
                raise ProgramError(
                    f"{program.name}[{index}]: {instruction.opcode.name} after "
                    f"{previous.opcode.name} — interrupt points are only legal "
                    f"after CALC_F or SAVE"
                )
        previous = instruction


def _check_save_id_pairing(program: Program) -> None:
    pending: dict[int, int] = {}  # save_id -> index of the VIR_SAVE announcing it
    for index, instruction in enumerate(program):
        if instruction.opcode == Opcode.VIR_SAVE:
            if instruction.save_id == NO_SAVE_ID:
                raise ProgramError(
                    f"{program.name}[{index}]: VIR_SAVE without a save_id"
                )
            pending[instruction.save_id] = index
        elif instruction.opcode == Opcode.SAVE and instruction.save_id != NO_SAVE_ID:
            pending.pop(instruction.save_id, None)
    if pending:
        save_id, index = next(iter(pending.items()))
        raise ProgramError(
            f"{program.name}[{index}]: VIR_SAVE save_id={save_id} has no "
            f"subsequent real SAVE to rewrite"
        )
