"""Static validation of instruction programs (compatibility wrapper).

Historically this module implemented the structural checks itself and raised
on the first violation.  They now live in the :mod:`repro.verify` engine as
rules (``PRG001``-``PRG004``, ``VI001``-``VI003``) that report *every*
violation; this wrapper keeps the raising contract for callers that just
want a pass/fail gate — the raised :class:`~repro.errors.ProgramError`
carries the full report on its ``report`` attribute.
"""

from __future__ import annotations

from repro.isa.program import Program


def validate_program(program: Program) -> None:
    """Raise :class:`~repro.errors.ProgramError` if ``program`` violates any
    structural invariant; the exception's ``report`` lists all findings."""
    # Imported here, not at module top: repro.verify pulls in hw/timing
    # modules, and importing them while ``repro.isa`` is still initializing
    # would cycle (isa -> verify -> hw -> ... -> isa).
    from repro.verify.engine import verify_program

    verify_program(program).raise_if_errors()
