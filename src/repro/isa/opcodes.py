"""Opcodes of the original ISA and the virtual-instruction extension (VI-ISA).

The original ISA is the paper's Table 1: three categories — LOAD (LOAD_W /
LOAD_D), CALC (CALC_I / CALC_F), SAVE — shared by instruction-driven
accelerators such as Angel-Eye and the DPU.

The VI-ISA adds *virtual* instructions that the Instruction Arrangement Unit
(IAU) consumes: they are skipped (discarded) when no interrupt is pending and
expanded into real backup/recovery transfers when one is.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Opcode(enum.IntEnum):
    """Instruction opcodes. Values are stable — they are the binary encoding."""

    LOAD_W = 0x01
    LOAD_D = 0x02
    CALC_I = 0x03
    CALC_F = 0x04
    SAVE = 0x05
    #: Virtual: on interrupt, back up finalized-but-unsaved results.
    VIR_SAVE = 0x11
    #: Virtual: on resume, restore the input feature-map tile.
    VIR_LOAD_D = 0x12
    #: Virtual: on resume, restore a weight tile (defined for completeness;
    #: the reference schedule never needs it because every CalcBlob begins
    #: with its own LOAD_W).
    VIR_LOAD_W = 0x13
    #: Virtual: a zero-cost interrupt point (used at layer boundaries by the
    #: layer-by-layer baseline — nothing to back up, nothing to recover).
    VIR_BARRIER = 0x14


#: Opcodes the original (non-interruptible) accelerator understands.
ORIGINAL_OPCODES = frozenset(
    {Opcode.LOAD_W, Opcode.LOAD_D, Opcode.CALC_I, Opcode.CALC_F, Opcode.SAVE}
)

#: Opcodes only the IAU understands.
VIRTUAL_OPCODES = frozenset(
    {Opcode.VIR_SAVE, Opcode.VIR_LOAD_D, Opcode.VIR_LOAD_W, Opcode.VIR_BARRIER}
)


def is_virtual(opcode: Opcode) -> bool:
    return opcode in VIRTUAL_OPCODES


def is_calc(opcode: Opcode) -> bool:
    return opcode in (Opcode.CALC_I, Opcode.CALC_F)


def is_load(opcode: Opcode) -> bool:
    return opcode in (Opcode.LOAD_W, Opcode.LOAD_D)


@dataclass(frozen=True)
class OpcodeInfo:
    """Documentation row for one opcode — reproduces the paper's Table 1."""

    opcode: Opcode
    description: str
    backup: str
    recovery: str


#: The paper's Table 1 ("Description for the basic instructions"), kept as
#: data so the E3 benchmark can regenerate the table from the ISA itself.
INSTRUCTION_TABLE: tuple[OpcodeInfo, ...] = (
    OpcodeInfo(
        Opcode.LOAD_W,
        "Load weights/bias from DDR to on-chip weight buffer.",
        "-",
        "Weight / Input data",
    ),
    OpcodeInfo(
        Opcode.LOAD_D,
        "Load input feature maps from DDR to on-chip data buffer.",
        "-",
        "Weight / Input data",
    ),
    OpcodeInfo(
        Opcode.CALC_I,
        "Calculate intermediate results for some output channels from partial input channels.",
        "Previous final results / Intermediate data",
        "Weight / Input data / Intermediate data",
    ),
    OpcodeInfo(
        Opcode.CALC_F,
        "Calculate the results for some output channels from all input channels.",
        "Final results",
        "Weight / Input data",
    ),
    OpcodeInfo(
        Opcode.SAVE,
        "Save the results from on-chip data buffer to DDR.",
        "-",
        "Weight / Input data",
    ),
)
