"""Binary encoding of instruction words (the ``instruction.bin`` format).

Each instruction encodes to exactly :data:`INSTRUCTION_BYTES` bytes,
little-endian.  The layout matches the field table in
:mod:`repro.isa.instructions`; two reserved u16 fields pad the word to a
power-of-two size, as a DMA-friendly hardware instruction fetcher wants.
"""

from __future__ import annotations

import struct

from repro.errors import IsaError
from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode

#: struct layout: opcode, flags(u8), layer, save_id, shift(i16), addr, length,
#: row0, rows, ch0, chs, in_ch0, in_chs, reserved x2 -> 32 bytes.
_WORD = struct.Struct("<BBHHhIIHHHHHHHH")

INSTRUCTION_BYTES = _WORD.size
assert INSTRUCTION_BYTES == 32


def encode_instruction(instruction: Instruction) -> bytes:
    """Encode one instruction to its 32-byte word."""
    if instruction.flags > 0xFF:
        raise IsaError(f"flags={instruction.flags:#x} exceed the encoded u8 field")
    return _WORD.pack(
        int(instruction.opcode),
        instruction.flags,
        instruction.layer_id,
        instruction.save_id,
        instruction.shift,
        instruction.ddr_addr,
        instruction.length,
        instruction.row0,
        instruction.rows,
        instruction.ch0,
        instruction.chs,
        instruction.in_ch0,
        instruction.in_chs,
        0,
        0,
    )


def decode_instruction(word: bytes) -> Instruction:
    """Decode one 32-byte word back into an :class:`Instruction`."""
    if len(word) != INSTRUCTION_BYTES:
        raise IsaError(f"instruction word must be {INSTRUCTION_BYTES} bytes, got {len(word)}")
    (
        opcode_value,
        flags,
        layer_id,
        save_id,
        shift,
        ddr_addr,
        length,
        row0,
        rows,
        ch0,
        chs,
        in_ch0,
        in_chs,
        _reserved0,
        _reserved1,
    ) = _WORD.unpack(word)
    try:
        opcode = Opcode(opcode_value)
    except ValueError as exc:
        raise IsaError(f"unknown opcode byte {opcode_value:#04x}") from exc
    return Instruction(
        opcode=opcode,
        layer_id=layer_id,
        save_id=save_id,
        ddr_addr=ddr_addr,
        length=length,
        row0=row0,
        rows=rows,
        ch0=ch0,
        chs=chs,
        in_ch0=in_ch0,
        in_chs=in_chs,
        shift=shift,
        flags=flags,
    )


def encode_stream(instructions: list[Instruction] | tuple[Instruction, ...]) -> bytes:
    """Concatenate the encodings of a whole instruction sequence."""
    return b"".join(encode_instruction(instruction) for instruction in instructions)


def decode_stream(blob: bytes) -> list[Instruction]:
    """Decode a concatenated instruction stream."""
    if len(blob) % INSTRUCTION_BYTES != 0:
        raise IsaError(
            f"stream length {len(blob)} is not a multiple of {INSTRUCTION_BYTES}"
        )
    return [
        decode_instruction(blob[offset : offset + INSTRUCTION_BYTES])
        for offset in range(0, len(blob), INSTRUCTION_BYTES)
    ]
