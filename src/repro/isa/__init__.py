"""Original ISA + virtual-instruction extension (VI-ISA)."""

from repro.isa.encoding import (
    INSTRUCTION_BYTES,
    decode_instruction,
    decode_stream,
    encode_instruction,
    encode_stream,
)
from repro.isa.instructions import (
    FLAG_BIAS,
    FLAG_LAST_SAVE_OF_LAYER,
    FLAG_RELU,
    NO_SAVE_ID,
    Instruction,
)
from repro.isa.opcodes import (
    INSTRUCTION_TABLE,
    ORIGINAL_OPCODES,
    VIRTUAL_OPCODES,
    Opcode,
    OpcodeInfo,
    is_calc,
    is_load,
    is_virtual,
)
from repro.isa.program import Program
from repro.isa.validate import validate_program

__all__ = [
    "FLAG_BIAS",
    "FLAG_LAST_SAVE_OF_LAYER",
    "FLAG_RELU",
    "INSTRUCTION_BYTES",
    "INSTRUCTION_TABLE",
    "Instruction",
    "NO_SAVE_ID",
    "ORIGINAL_OPCODES",
    "Opcode",
    "OpcodeInfo",
    "Program",
    "VIRTUAL_OPCODES",
    "decode_instruction",
    "decode_stream",
    "encode_instruction",
    "encode_stream",
    "is_calc",
    "is_load",
    "is_virtual",
    "validate_program",
]
