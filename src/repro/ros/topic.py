"""Topics: named pub/sub channels with recorded history and optional QoS.

A topic with no :class:`~repro.qos.config.BackpressureProfile` keeps the
original fire-and-forget semantics.  Attaching a profile (via
``Executor.set_qos``) bounds the in-flight queue and, for reliable
profiles, arms acknowledged delivery with retries — each publish then
returns a :class:`Delivery` record tracking the message's fate.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import RosError
from repro.qos.config import BackpressureProfile

#: A subscriber callback: receives the message object.
Callback = Callable[[object], None]


@dataclass
class Delivery:
    """Fate of one message published on a QoS-profiled topic.

    ``status`` walks ``pending`` -> one of ``delivered`` (reached the
    subscribers), ``dropped`` (evicted by the bounded queue or lost on an
    unreliable topic), or ``failed`` (reliable retries exhausted / timed
    out).
    """

    topic: str
    message: object
    enqueued_cycle: int
    status: str = "pending"
    attempts: int = 0
    delivered_cycle: int | None = None

    @property
    def done(self) -> bool:
        return self.status != "pending"


@dataclass
class Topic:
    """One named channel."""

    name: str
    subscribers: list[Callback] = field(default_factory=list)
    history: list[object] = field(default_factory=list)
    record: bool = True
    #: Backpressure profile; None keeps legacy fire-and-forget publishes.
    qos: BackpressureProfile | None = None
    #: Deliveries enqueued but not yet resolved (bounded by ``qos.depth``).
    pending: deque[Delivery] = field(default_factory=deque)
    #: Messages evicted by the bounded queue (both drop policies).
    dropped: int = 0

    def subscribe(self, callback: Callback) -> None:
        self.subscribers.append(callback)

    def deliver(
        self, message: object, observer: Callable[[Callback], None] | None = None
    ) -> None:
        """Fan out to all subscribers; ``observer`` is called once per
        subscriber just before its callback (observability hook)."""
        if self.record:
            self.history.append(message)
        for callback in list(self.subscribers):
            if observer is not None:
                observer(callback)
            callback(message)


class TopicRegistry:
    """All topics of one middleware instance."""

    def __init__(self) -> None:
        self._topics: dict[str, Topic] = {}

    def topic(self, name: str) -> Topic:
        if not name:
            raise RosError("topic name must be non-empty")
        if name not in self._topics:
            self._topics[name] = Topic(name)
        return self._topics[name]

    def names(self) -> list[str]:
        return sorted(self._topics)
