"""Topics: named pub/sub channels with recorded history."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import RosError

#: A subscriber callback: receives the message object.
Callback = Callable[[object], None]


@dataclass
class Topic:
    """One named channel."""

    name: str
    subscribers: list[Callback] = field(default_factory=list)
    history: list[object] = field(default_factory=list)
    record: bool = True

    def subscribe(self, callback: Callback) -> None:
        self.subscribers.append(callback)

    def deliver(
        self, message: object, observer: Callable[[Callback], None] | None = None
    ) -> None:
        """Fan out to all subscribers; ``observer`` is called once per
        subscriber just before its callback (observability hook)."""
        if self.record:
            self.history.append(message)
        for callback in list(self.subscribers):
            if observer is not None:
                observer(callback)
            callback(message)


class TopicRegistry:
    """All topics of one middleware instance."""

    def __init__(self) -> None:
        self._topics: dict[str, Topic] = {}

    def topic(self, name: str) -> Topic:
        if not name:
            raise RosError("topic name must be non-empty")
        if name not in self._topics:
            self._topics[name] = Topic(name)
        return self._topics[name]

    def names(self) -> list[str]:
        return sorted(self._topics)
