"""Discrete-event executor co-simulating ROS callbacks with the accelerator.

Time is the accelerator's cycle counter.  The executor interleaves:

* dispatching due scheduled callbacks (timers, delayed work), which may
  publish messages and submit accelerator jobs, and
* stepping the :class:`~repro.runtime.system.MultiTaskSystem`'s IAU, whose
  job-completion hook schedules the corresponding node callbacks.

This reproduces the property INCA needs from ROS — independent threads
issuing accelerator requests at unpredictable times — with a deterministic,
repeatable timeline.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import RosError
from repro.faults.plan import FaultPlan, FaultSite
from repro.iau.context import JobRecord
from repro.obs.bus import EventBus
from repro.obs.events import EventKind
from repro.ros.topic import TopicRegistry
from repro.runtime.system import MultiTaskSystem


@dataclass(order=True)
class _Event:
    cycle: int
    sequence: int
    callback: Callable[[], None] = field(compare=False)


class Executor:
    """One agent's event loop, bound to that agent's accelerator system.

    When the attached system records observability events (or an explicit
    ``bus`` is given), the executor reports every publish and per-subscriber
    delivery on the same bus, stamped at the executor clock.
    """

    def __init__(
        self,
        system: MultiTaskSystem | None = None,
        *,
        bus: EventBus | None = None,
        faults: FaultPlan | None = None,
    ):
        self.system = system
        self.bus = bus if bus is not None else getattr(system, "bus", None)
        #: Message-level fault injection; defaults to the attached system's
        #: plan so one FaultPlan covers the whole agent.
        self.faults = faults if faults is not None else getattr(system, "faults", None)
        self.topics = TopicRegistry()
        self._events: list[_Event] = []
        self._sequence = 0
        self.clock = 0
        #: While dispatching an event, its scheduled cycle — job requests
        #: issued from the callback are back-dated to this (the accelerator
        #: may have been mid-instruction when the event "really" fired).
        self._dispatch_cycle: int | None = None
        self._completion_handlers: dict[int, list[Callable[[JobRecord], None]]] = {}
        if system is not None:
            system.iau.on_complete = self._job_completed

    # -- scheduling --------------------------------------------------------

    def schedule(self, at_cycle: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` at ``at_cycle`` (>= now)."""
        if at_cycle < self.clock:
            raise RosError(
                f"cannot schedule in the past (at {at_cycle}, now {self.clock})"
            )
        heapq.heappush(self._events, _Event(at_cycle, self._sequence, callback))
        self._sequence += 1

    def schedule_after(self, delay_cycles: int, callback: Callable[[], None]) -> None:
        self.schedule(self.clock + delay_cycles, callback)

    def create_timer(
        self, period_cycles: int, callback: Callable[[], None], count: int, offset: int = 0
    ) -> None:
        """Fire ``callback`` ``count`` times, ``period_cycles`` apart."""
        if period_cycles <= 0:
            raise RosError(f"timer period must be positive, got {period_cycles}")
        for index in range(count):
            self.schedule(offset + index * period_cycles, callback)

    # -- pub/sub ----------------------------------------------------------------

    def publish(self, topic_name: str, message: object) -> None:
        """Deliver a message to all subscribers immediately (same timestamp).

        With a fault plan attached, a publish may be dropped (the message is
        lost before delivery) or delayed (delivered ``ros_delay_cycles``
        late); both are recorded with the plan and mirrored on the bus.
        """
        if self.faults is not None:
            if self.faults.fires(FaultSite.ROS_DROP):
                self._inject(FaultSite.ROS_DROP, topic=topic_name)
                return
            if self.faults.fires(FaultSite.ROS_DELAY):
                delay = self.faults.ros_delay_cycles
                self._inject(FaultSite.ROS_DELAY, topic=topic_name, delay_cycles=delay)
                self.schedule(
                    self.clock + delay, lambda: self._deliver(topic_name, message)
                )
                return
        self._deliver(topic_name, message)

    def _deliver(self, topic_name: str, message: object) -> None:
        topic = self.topics.topic(topic_name)
        if self.bus is None:
            topic.deliver(message)
            return
        self.bus.advance(self.clock)
        self.bus.emit(
            EventKind.ROS_PUBLISH,
            cycle=self.clock,
            topic=topic_name,
            message=type(message).__name__,
            subscribers=len(topic.subscribers),
        )
        topic.deliver(
            message,
            observer=lambda callback: self.bus.emit(
                EventKind.ROS_DELIVER,
                cycle=self.clock,
                topic=topic_name,
                subscriber=getattr(callback, "__qualname__", repr(callback)),
            ),
        )

    def _inject(self, site: FaultSite, **detail) -> None:
        self.faults.record(site, self.clock, **detail)
        if self.bus is not None:
            self.bus.emit(EventKind.FAULT_INJECT, cycle=self.clock, site=site.value, **detail)

    def subscribe(self, topic_name: str, callback) -> None:
        self.topics.topic(topic_name).subscribe(callback)

    # -- accelerator integration ----------------------------------------------------

    def submit_job(
        self, task_id: int, on_done: Callable[[JobRecord], None] | None = None
    ) -> None:
        """Submit one inference on the agent's accelerator, now."""
        if self.system is None:
            raise RosError("this executor has no accelerator system attached")
        if on_done is not None:
            self._completion_handlers.setdefault(task_id, []).append(on_done)
        iau = self.system.iau
        if iau.idle:
            iau.clock = max(iau.clock, self.clock)
        arrival = self._dispatch_cycle if self._dispatch_cycle is not None else self.clock
        iau.request(task_id, at_cycle=arrival)

    def _job_completed(self, task_id: int, job: JobRecord) -> None:
        handlers = self._completion_handlers.get(task_id)
        if handlers:
            handler = handlers.pop(0)
            # Completion callbacks run at the completion timestamp.
            self.schedule(max(self.clock, job.complete_cycle), lambda: handler(job))

    # -- main loop --------------------------------------------------------------------

    def run(self, until_cycle: int | None = None, max_steps: int = 500_000_000) -> int:
        """Run events + accelerator until both are drained (or ``until_cycle``)."""
        steps = 0
        while True:
            steps += 1
            if steps > max_steps:
                raise RosError(f"executor did not finish within {max_steps} steps")
            next_event = self._events[0].cycle if self._events else None
            if until_cycle is not None and next_event is not None:
                next_event = min(next_event, until_cycle)

            if self.system is not None and not self.system.iau.idle:
                # Advance the accelerator; it may complete jobs that schedule
                # new events, so re-evaluate after every step.
                if next_event is None or self.system.iau.clock < next_event:
                    self.system.iau.step()
                    self.clock = max(self.clock, self.system.iau.clock)
                    continue

            if not self._events:
                break
            event = self._events[0]
            if until_cycle is not None and event.cycle > until_cycle:
                break
            heapq.heappop(self._events)
            self.clock = max(self.clock, event.cycle)
            if self.system is not None and self.system.iau.idle:
                self.system.iau.clock = max(self.system.iau.clock, self.clock)
            self._dispatch_cycle = event.cycle
            try:
                event.callback()
            finally:
                self._dispatch_cycle = None
        if until_cycle is not None:
            self.clock = max(self.clock, until_cycle)
        if self.system is not None and self.system.faults is not None:
            # The executor drives the IAU directly, bypassing the system's
            # run(); scrub latent DDR corruption here too.
            self.system.ddr.scrub()
        return self.clock
