"""Discrete-event executor co-simulating ROS callbacks with the accelerator.

Time is the accelerator's cycle counter.  The executor interleaves:

* dispatching due scheduled callbacks (timers, delayed work), which may
  publish messages and submit accelerator jobs, and
* stepping the :class:`~repro.runtime.system.MultiTaskSystem`'s IAU, whose
  job-completion hook schedules the corresponding node callbacks.

This reproduces the property INCA needs from ROS — independent threads
issuing accelerator requests at unpredictable times — with a deterministic,
repeatable timeline.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import RosError
from repro.faults.plan import FaultPlan, FaultSite
from repro.iau.context import JobRecord
from repro.obs.bus import EventBus
from repro.obs.events import EventKind
from repro.qos.config import BackpressureProfile, QueuePolicy
from repro.ros.topic import Delivery, Topic, TopicRegistry
from repro.runtime.system import MultiTaskSystem


@dataclass(order=True)
class _Event:
    cycle: int
    sequence: int
    callback: Callable[[], None] = field(compare=False)


class Executor:
    """One agent's event loop, bound to that agent's accelerator system.

    When the attached system records observability events (or an explicit
    ``bus`` is given), the executor reports every publish and per-subscriber
    delivery on the same bus, stamped at the executor clock.
    """

    def __init__(
        self,
        system: MultiTaskSystem | None = None,
        *,
        bus: EventBus | None = None,
        faults: FaultPlan | None = None,
    ):
        self.system = system
        self.bus = bus if bus is not None else getattr(system, "bus", None)
        #: Message-level fault injection; defaults to the attached system's
        #: plan so one FaultPlan covers the whole agent.
        self.faults = faults if faults is not None else getattr(system, "faults", None)
        self.topics = TopicRegistry()
        self._events: list[_Event] = []
        self._sequence = 0
        self.clock = 0
        #: While dispatching an event, its scheduled cycle — job requests
        #: issued from the callback are back-dated to this (the accelerator
        #: may have been mid-instruction when the event "really" fired).
        self._dispatch_cycle: int | None = None
        self._completion_handlers: dict[int, list[Callable[[JobRecord], None]]] = {}
        if system is not None:
            system.iau.on_complete = self._job_completed

    # -- scheduling --------------------------------------------------------

    def schedule(self, at_cycle: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` at ``at_cycle`` (>= now)."""
        if at_cycle < self.clock:
            raise RosError(
                f"cannot schedule in the past (at {at_cycle}, now {self.clock})"
            )
        heapq.heappush(self._events, _Event(at_cycle, self._sequence, callback))
        self._sequence += 1

    def schedule_after(self, delay_cycles: int, callback: Callable[[], None]) -> None:
        self.schedule(self.clock + delay_cycles, callback)

    def create_timer(
        self, period_cycles: int, callback: Callable[[], None], count: int, offset: int = 0
    ) -> None:
        """Fire ``callback`` ``count`` times, ``period_cycles`` apart.

        ``offset`` is relative to the current clock (the first firing lands
        ``offset`` cycles from now), matching :meth:`schedule_after`.
        """
        if period_cycles <= 0:
            raise RosError(f"timer period must be positive, got {period_cycles}")
        for index in range(count):
            self.schedule(self.clock + offset + index * period_cycles, callback)

    # -- pub/sub ----------------------------------------------------------------

    def set_qos(self, topic_name: str, profile: BackpressureProfile | None) -> None:
        """Attach (or clear) a backpressure profile on a topic.

        Profiled topics bound their in-flight queue and report each
        publish's fate as a :class:`~repro.ros.topic.Delivery`; reliable
        profiles additionally retry dropped transmissions with exponential
        backoff and acknowledge successful ones on the bus.
        """
        self.topics.topic(topic_name).qos = profile

    def publish(self, topic_name: str, message: object) -> Delivery | None:
        """Deliver a message to all subscribers immediately (same timestamp).

        With a fault plan attached, a publish may be dropped (the message is
        lost before delivery) or delayed (delivered ``ros_delay_cycles``
        late); both are recorded with the plan and mirrored on the bus.

        On a topic with a backpressure profile (see :meth:`set_qos`) the
        publish instead goes through the bounded queue and returns a
        :class:`~repro.ros.topic.Delivery`; unprofiled topics keep the
        legacy fire-and-forget path and return ``None``.
        """
        topic = self.topics.topic(topic_name)
        if topic.qos is not None:
            return self._publish_qos(topic, message)
        if self.faults is not None:
            if self.faults.fires(FaultSite.ROS_DROP):
                self._inject(FaultSite.ROS_DROP, topic=topic_name)
                return None
            if self.faults.fires(FaultSite.ROS_DELAY):
                delay = self.faults.ros_delay_cycles
                self._inject(FaultSite.ROS_DELAY, topic=topic_name, delay_cycles=delay)
                # Measure the delay from the dispatching event's logical
                # time, not the (possibly further advanced) wall clock.
                base = (
                    self._dispatch_cycle
                    if self._dispatch_cycle is not None
                    else self.clock
                )
                self.schedule(
                    max(base + delay, self.clock),
                    lambda: self._deliver(topic_name, message),
                )
                return None
        self._deliver(topic_name, message)
        return None

    # -- backpressure ------------------------------------------------------

    def _publish_qos(self, topic: Topic, message: object) -> Delivery:
        profile = topic.qos
        delivery = Delivery(
            topic=topic.name, message=message, enqueued_cycle=self.clock
        )
        if len(topic.pending) >= profile.depth:
            if profile.policy is QueuePolicy.DROP_NEWEST:
                delivery.status = "dropped"
                topic.dropped += 1
                self._emit_qos(
                    EventKind.ROS_QUEUE_DROP,
                    topic=topic.name,
                    policy=profile.policy.value,
                    depth=len(topic.pending),
                )
                return delivery
            victim = topic.pending.popleft()
            victim.status = "dropped"
            topic.dropped += 1
            self._emit_qos(
                EventKind.ROS_QUEUE_DROP,
                topic=topic.name,
                policy=profile.policy.value,
                depth=len(topic.pending) + 1,
            )
        topic.pending.append(delivery)
        self._attempt(topic, delivery)
        return delivery

    def _attempt(self, topic: Topic, delivery: Delivery) -> None:
        if delivery.status != "pending":
            return  # evicted while a retry was in flight
        profile = topic.qos
        delivery.attempts += 1
        if self.faults is not None and self.faults.fires(FaultSite.ROS_DROP):
            self._inject(FaultSite.ROS_DROP, topic=topic.name)
            if profile.reliable:
                self._schedule_retry(topic, delivery)
            else:
                self._finish(topic, delivery, "dropped")
            return
        delay = 0
        if self.faults is not None and self.faults.fires(FaultSite.ROS_DELAY):
            delay = self.faults.ros_delay_cycles
            self._inject(
                FaultSite.ROS_DELAY, topic=topic.name, delay_cycles=delay
            )
        if delay:
            base = (
                self._dispatch_cycle if self._dispatch_cycle is not None else self.clock
            )
            self.schedule(
                max(base + delay, self.clock),
                lambda: self._complete_delivery(topic, delivery),
            )
        else:
            self._complete_delivery(topic, delivery)

    def _complete_delivery(self, topic: Topic, delivery: Delivery) -> None:
        if delivery.status != "pending":
            return
        self._deliver(topic.name, delivery.message)
        delivery.delivered_cycle = self.clock
        self._finish(topic, delivery, "delivered")
        if topic.qos is not None and topic.qos.reliable:
            self._emit_qos(
                EventKind.ROS_ACK,
                topic=topic.name,
                attempts=delivery.attempts,
                latency_cycles=self.clock - delivery.enqueued_cycle,
            )

    def _schedule_retry(self, topic: Topic, delivery: Delivery) -> None:
        profile = topic.qos
        waited = self.clock - delivery.enqueued_cycle
        if (
            delivery.attempts > profile.max_retries
            or waited >= profile.retry_timeout_cycles
        ):
            self._finish(topic, delivery, "failed")
            return
        backoff = profile.retry_base_cycles * (2 ** (delivery.attempts - 1))
        self._emit_qos(
            EventKind.ROS_RETRY,
            topic=topic.name,
            attempt=delivery.attempts,
            backoff_cycles=backoff,
        )
        self.schedule(self.clock + backoff, lambda: self._attempt(topic, delivery))

    def _finish(self, topic: Topic, delivery: Delivery, status: str) -> None:
        delivery.status = status
        try:
            topic.pending.remove(delivery)
        except ValueError:
            pass  # already evicted from the bounded queue

    def _emit_qos(self, kind: EventKind, **data) -> None:
        if self.bus is not None:
            self.bus.emit(kind, cycle=self.clock, **data)

    def _deliver(self, topic_name: str, message: object) -> None:
        topic = self.topics.topic(topic_name)
        if self.bus is None:
            topic.deliver(message)
            return
        self.bus.advance(self.clock)
        self.bus.emit(
            EventKind.ROS_PUBLISH,
            cycle=self.clock,
            topic=topic_name,
            message=type(message).__name__,
            subscribers=len(topic.subscribers),
        )
        topic.deliver(
            message,
            observer=lambda callback: self.bus.emit(
                EventKind.ROS_DELIVER,
                cycle=self.clock,
                topic=topic_name,
                subscriber=getattr(callback, "__qualname__", repr(callback)),
            ),
        )

    def _inject(self, site: FaultSite, **detail) -> None:
        self.faults.record(site, self.clock, **detail)
        if self.bus is not None:
            self.bus.emit(EventKind.FAULT_INJECT, cycle=self.clock, site=site.value, **detail)

    def subscribe(self, topic_name: str, callback) -> None:
        self.topics.topic(topic_name).subscribe(callback)

    # -- accelerator integration ----------------------------------------------------

    def submit_job(
        self, task_id: int, on_done: Callable[[JobRecord], None] | None = None
    ) -> None:
        """Submit one inference on the agent's accelerator, now."""
        if self.system is None:
            raise RosError("this executor has no accelerator system attached")
        if on_done is not None:
            self._completion_handlers.setdefault(task_id, []).append(on_done)
        iau = self.system.iau
        if iau.idle:
            iau.clock = max(iau.clock, self.clock)
        arrival = self._dispatch_cycle if self._dispatch_cycle is not None else self.clock
        iau.request(task_id, at_cycle=arrival)

    def _job_completed(self, task_id: int, job: JobRecord) -> None:
        handlers = self._completion_handlers.get(task_id)
        if handlers:
            handler = handlers.pop(0)
            # Completion callbacks run at the completion timestamp.
            self.schedule(max(self.clock, job.complete_cycle), lambda: handler(job))

    # -- main loop --------------------------------------------------------------------

    def run(self, until_cycle: int | None = None, max_steps: int = 500_000_000) -> int:
        """Run events + accelerator until both are drained (or ``until_cycle``)."""
        steps = 0
        while True:
            steps += 1
            if steps > max_steps:
                raise RosError(f"executor did not finish within {max_steps} steps")
            next_event = self._events[0].cycle if self._events else None
            if until_cycle is not None and next_event is not None:
                next_event = min(next_event, until_cycle)

            if self.system is not None and not self.system.iau.idle:
                # Advance the accelerator; it may complete jobs that schedule
                # new events, so re-evaluate after every step.
                if next_event is None or self.system.iau.clock < next_event:
                    self.system.iau.step()
                    self.clock = max(self.clock, self.system.iau.clock)
                    continue

            if not self._events:
                break
            event = self._events[0]
            if until_cycle is not None and event.cycle > until_cycle:
                break
            heapq.heappop(self._events)
            self.clock = max(self.clock, event.cycle)
            if self.system is not None and self.system.iau.idle:
                self.system.iau.clock = max(self.system.iau.clock, self.clock)
            self._dispatch_cycle = event.cycle
            try:
                event.callback()
            finally:
                self._dispatch_cycle = None
        if until_cycle is not None:
            self.clock = max(self.clock, until_cycle)
        if self.system is not None and self.system.faults is not None:
            # The executor drives the IAU directly, bypassing the system's
            # run(); scrub latent DDR corruption here too.
            self.system.ddr.scrub()
        return self.clock
