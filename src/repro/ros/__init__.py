"""ROS-like discrete-event middleware: topics, nodes, executor, messages."""

from repro.ros.executor import Executor
from repro.ros.messages import (
    CameraFrame,
    Feature,
    FeatureArray,
    Header,
    Odometry,
    PlaceDescriptor,
)
from repro.ros.node import Node
from repro.ros.topic import Delivery, Topic, TopicRegistry

__all__ = [
    "CameraFrame",
    "Delivery",
    "Executor",
    "Feature",
    "FeatureArray",
    "Header",
    "Node",
    "Odometry",
    "PlaceDescriptor",
    "Topic",
    "TopicRegistry",
]
