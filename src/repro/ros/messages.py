"""Message types of the ROS-like middleware.

Messages carry a :class:`Header` (sequence number + timestamp in accelerator
cycles) and a typed payload.  The DSLAM message vocabulary (camera frames,
feature arrays, place descriptors, odometry) lives here because the paper's
point is exactly that independent ROS nodes exchange these while sharing one
accelerator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class Header:
    """Standard message header."""

    seq: int
    stamp_cycles: int
    frame_id: str = ""


@dataclass(frozen=True)
class CameraFrame:
    """One synthetic camera frame: the landmarks visible from a pose.

    ``observations`` maps landmark id -> (x, y) in the camera frame with
    measurement noise applied; ``descriptors`` maps landmark id -> the
    landmark's appearance vector as observed (noisy).  ``true_pose`` is
    carried for evaluation only — no estimator reads it.
    """

    header: Header
    observations: dict[int, tuple[float, float]]
    descriptors: dict[int, np.ndarray]
    true_pose: tuple[float, float, float]


@dataclass(frozen=True)
class Feature:
    """One extracted feature point."""

    landmark_id: int
    x: float
    y: float
    score: float
    descriptor: np.ndarray


@dataclass(frozen=True)
class FeatureArray:
    """Output of the feature-extraction (FE) node for one frame."""

    header: Header
    features: tuple[Feature, ...]
    true_pose: tuple[float, float, float]
    #: Accelerator cycles the CNN inference took (for deadline accounting).
    inference_cycles: int = 0


@dataclass(frozen=True)
class PlaceDescriptor:
    """Output of the place-recognition (PR) node: a global image code."""

    header: Header
    agent: str
    code: np.ndarray
    true_pose: tuple[float, float, float]
    landmark_ids: frozenset[int] = field(default_factory=frozenset)


@dataclass(frozen=True)
class Odometry:
    """Output of the visual-odometry (VO) node: the integrated pose estimate."""

    header: Header
    pose: tuple[float, float, float]
    num_inliers: int
