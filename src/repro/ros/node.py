"""Nodes: named participants wiring subscriptions, timers and publications.

A node corresponds to one independent component/thread in ROS — the paper's
motivating scenario is that FE and PR live in different nodes written by
different developers, both needing the accelerator.
"""

from __future__ import annotations

from repro.errors import RosError
from repro.ros.executor import Executor


class Node:
    """Base class for middleware participants."""

    def __init__(self, name: str, executor: Executor):
        if not name:
            raise RosError("node name must be non-empty")
        self.name = name
        self.executor = executor
        self._seq = 0

    def next_seq(self) -> int:
        self._seq += 1
        return self._seq

    @property
    def now(self) -> int:
        """Current simulation time in accelerator cycles."""
        return self.executor.clock

    def subscribe(self, topic: str, callback) -> None:
        self.executor.subscribe(topic, callback)

    def publish(self, topic: str, message: object) -> None:
        self.executor.publish(topic, message)

    def create_timer(self, period_cycles: int, callback, count: int, offset: int = 0) -> None:
        self.executor.create_timer(period_cycles, callback, count, offset)
