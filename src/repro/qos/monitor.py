"""Online invariant monitor: the runtime watching itself on the event bus.

The monitor is an :class:`~repro.obs.bus.EventBus` sink that replays the
stack's own telemetry against invariants the simulator must hold no matter
what the arrival pattern or fault plan does:

* **cycle monotonicity** — no event may end before the latest stamp already
  seen (back-dated span events end at the emitter's clock, so a genuine
  clock regression is the only way to trip this);
* **preemption pairing** — ``PREEMPT_BEGIN``/``PREEMPT_END`` alternate per
  task, and a job never completes while its task is still marked preempted
  (a missing restore);
* **queue-depth bounds** — submitted-minus-started never goes negative,
  and never exceeds a declared per-task bound (admission control's promise);
* **DDR region ownership** — DMA bursts between a task's preemption and its
  resume must not touch that task's regions from another task's
  instructions (requires the region-owner map the runtime registers);
* **deadline bookkeeping** — ``JOB_COMPLETE`` arithmetic is consistent, a
  ``DEADLINE_MISS`` really overran, and a declared deadline that was
  overrun is never missing its event.

``mode="raise"`` raises :class:`~repro.errors.InvariantViolation` at the
offending event; ``mode="report"`` collects :class:`Violation` records (and
mirrors them as ``INVARIANT_VIOLATION`` bus events when attached to a bus)
so campaigns can count them.  :func:`scan_events` replays a recorded stream
offline — every seeded fault-campaign run is checked this way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.errors import InvariantViolation, QosError
from repro.obs.events import Event, EventKind


@dataclass(frozen=True)
class Violation:
    """One invariant that did not hold."""

    check: str
    cycle: int
    task_id: int | None
    detail: str

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        task = f" task {self.task_id}" if self.task_id is not None else ""
        return f"[{self.check}]{task} @ {self.cycle}: {self.detail}"


class InvariantMonitor:
    """Event-bus sink checking runtime invariants as they stream past."""

    def __init__(
        self,
        *,
        mode: str = "raise",
        queue_bounds: Mapping[int, int] | None = None,
        deadlines: Mapping[int, int] | None = None,
        region_owners: Mapping[str, int] | None = None,
        bus=None,
    ):
        if mode not in ("raise", "report"):
            raise QosError(f"mode must be 'raise' or 'report', got {mode!r}")
        self.mode = mode
        self.queue_bounds = dict(queue_bounds or {})
        self.deadlines = dict(deadlines or {})
        self.region_owners = dict(region_owners or {})
        self.bus = bus
        self.violations: list[Violation] = []
        self._floor = 0
        self._preempted: set[int] = set()
        self._queued: dict[int, int] = {}
        self._missed: dict[int, int] = {}  # task -> DEADLINE_MISS events seen
        self._burst_regions: list[tuple[str, int]] = []  # (region, cycle) buffer
        #: Batched-stretch buffer (None = normal per-event dispatch).  Only
        #: live inside one ``Iau._replay_events`` call, never across steps
        #: or snapshots.
        self._stretch: list[Event] | None = None

    # -- wiring ------------------------------------------------------------

    def expect_queue_bound(self, task_id: int, depth: int) -> None:
        self.queue_bounds[task_id] = depth

    def expect_deadline(self, task_id: int, deadline_cycles: int | None) -> None:
        if deadline_cycles is None:
            self.deadlines.pop(task_id, None)
        else:
            self.deadlines[task_id] = deadline_cycles

    def own_region(self, region_name: str, task_id: int) -> None:
        self.region_owners[region_name] = task_id

    @property
    def ok(self) -> bool:
        return not self.violations

    # -- snapshot/restore --------------------------------------------------

    def capture_state(self) -> dict:
        """Picklable *runtime* state (the expectation maps — bounds,
        deadlines, region owners — are wiring, re-registered by whoever
        rebuilds the system's task set)."""
        return {
            "violations": list(self.violations),
            "floor": self._floor,
            "preempted": set(self._preempted),
            "queued": dict(self._queued),
            "missed": dict(self._missed),
            "burst_regions": list(self._burst_regions),
        }

    def restore_state(self, state: dict) -> None:
        self.violations = list(state["violations"])
        self._floor = state["floor"]
        self._preempted = set(state["preempted"])
        self._queued = dict(state["queued"])
        self._missed = dict(state["missed"])
        self._burst_regions = list(state["burst_regions"])

    # -- sink protocol -----------------------------------------------------

    def handle(self, event: Event) -> None:
        if self._stretch is not None:
            # Inside a batched stretch: defer everything to exit_stretch().
            self._stretch.append(event)
            return
        if event.kind is EventKind.INVARIANT_VIOLATION:
            return  # our own mirror events; never re-check them
        if event.data.get("scope") is not None:
            return  # multi-core scoped streams interleave clocks; skip
        self._check_monotonic(event)
        kind = event.kind
        if kind is EventKind.DDR_BURST:
            region = event.data.get("region")
            if region is not None:
                self._burst_regions.append((region, event.cycle))
        elif kind in (EventKind.INSTR_RETIRE, EventKind.VI_EXPAND):
            self._check_burst_ownership(event)
        elif kind is EventKind.PREEMPT_BEGIN:
            self._check_preempt_begin(event)
        elif kind is EventKind.PREEMPT_END:
            self._check_preempt_end(event)
        elif kind is EventKind.JOB_SUBMIT:
            self._track_submit(event)
        elif kind is EventKind.JOB_START:
            self._track_start(event)
        elif kind is EventKind.ADMISSION_DENY:
            # Shed policies evict a job that already counted as submitted.
            if event.data.get("reason") in ("shed_oldest", "shed_newest"):
                task = event.task_id
                self._queued[task] = self._queued.get(task, 0) - 1
        elif kind is EventKind.DEADLINE_MISS:
            self._check_deadline_miss(event)
        elif kind is EventKind.JOB_COMPLETE:
            self._check_complete(event)

    # -- batched stretches ---------------------------------------------------

    def enter_stretch(self) -> None:
        """Start buffering events for one batched fast-path stretch.

        The fast path replays a provably-uninterruptible instruction span as
        one event burst; the monitor checks it with a single aggregate pass
        on :meth:`exit_stretch` instead of full per-event dispatch.  The
        aggregate path is *proven equivalent*: it engages only when one
        cheap scan shows the per-event replay could not have tripped any
        check and every state update it would make is reproduced exactly;
        anything else falls back to replaying the buffer per event.
        """
        self._stretch = []

    def exit_stretch(self) -> None:
        """Flush the buffered stretch: aggregate check, or exact fallback."""
        events = self._stretch
        self._stretch = None
        if not events:
            return
        floor = self._aggregate_floor(events)
        if floor is None:
            for event in events:
                self.handle(event)
            return
        # Per-event this stretch would (a) record no violation and (b)
        # change no state but the monotonic high-water mark — apply that.
        self._floor = floor

    def _aggregate_floor(self, events: list[Event]) -> int | None:
        """The post-stretch high-water mark, or None when aggregation is unsound.

        A stretch aggregates only when it has the exact shape the fast-path
        replay produces — unscoped ``DDR_BURST``/``INSTR_RETIRE`` events,
        one task, each burst immediately popped by its retire — and the
        replayed ``_check_monotonic``/``_check_burst_ownership`` sequence
        provably records nothing.  Each condition below mirrors one way the
        per-event path could diverge from "floor update only".
        """
        if self._burst_regions:
            return None  # a pre-stretch burst would be popped mid-stretch
        run_floor = self._floor
        task_id: int | None = None
        burst_pending = False
        regions: list[str] = []
        for event in events:
            if event.data.get("scope") is not None:
                return None  # scoped streams are skipped per event
            kind = event.kind
            if kind is EventKind.DDR_BURST:
                if burst_pending:
                    return None  # two bursts before a retire: not replay-shaped
                region = event.data.get("region")
                if region is not None:
                    burst_pending = True
                    regions.append(region)
            elif kind is EventKind.INSTR_RETIRE:
                if task_id is None:
                    task_id = event.task_id
                elif event.task_id != task_id:
                    return None
                burst_pending = False
            else:
                return None
            # Mirror _check_monotonic exactly.
            if event.end_cycle < run_floor:
                return None
            if event.cycle > run_floor:
                run_floor = event.cycle
        if burst_pending:
            return None  # a trailing unpopped burst would stay buffered
        if task_id is not None and self.region_owners:
            for region in regions:
                owner = self.region_owners.get(region)
                if owner is not None and owner != task_id:
                    return None  # per-event would record a ddr_ownership violation
        return run_floor

    # -- individual checks -------------------------------------------------

    def _fail(self, check: str, event: Event, detail: str) -> None:
        violation = Violation(
            check=check, cycle=event.cycle, task_id=event.task_id, detail=detail
        )
        if self.mode == "raise":
            raise InvariantViolation(str(violation))
        self.violations.append(violation)
        if self.bus is not None:
            self.bus.emit(
                EventKind.INVARIANT_VIOLATION,
                cycle=event.cycle,
                task_id=event.task_id,
                check=check,
                detail=detail,
            )

    def _check_monotonic(self, event: Event) -> None:
        if event.end_cycle < self._floor:
            self._fail(
                "cycle_monotonic",
                event,
                f"{event.kind.value} ends at {event.end_cycle}, "
                f"before the stream's high-water mark {self._floor}",
            )
        if event.cycle > self._floor:
            self._floor = event.cycle

    def _check_preempt_begin(self, event: Event) -> None:
        task = event.task_id
        if task in self._preempted:
            self._fail(
                "preempt_pairing",
                event,
                "PREEMPT_BEGIN while already preempted (no intervening END)",
            )
            return
        self._preempted.add(task)

    def _check_preempt_end(self, event: Event) -> None:
        task = event.task_id
        if task not in self._preempted:
            self._fail(
                "preempt_pairing", event, "PREEMPT_END without a matching BEGIN"
            )
            return
        self._preempted.discard(task)

    def _track_submit(self, event: Event) -> None:
        task = event.task_id
        depth = self._queued.get(task, 0) + 1
        self._queued[task] = depth
        bound = self.queue_bounds.get(task)
        if bound is not None and depth > bound:
            self._fail(
                "queue_bound",
                event,
                f"queue depth {depth} exceeds admission bound {bound}",
            )

    def _track_start(self, event: Event) -> None:
        task = event.task_id
        depth = self._queued.get(task, 0) - 1
        self._queued[task] = depth
        if depth < 0:
            self._fail(
                "queue_accounting", event, "JOB_START without a matching JOB_SUBMIT"
            )

    def _check_burst_ownership(self, event: Event) -> None:
        bursts, self._burst_regions = self._burst_regions, []
        if event.task_id is None or not self.region_owners:
            return
        for region, cycle in bursts:
            owner = self.region_owners.get(region)
            if owner is not None and owner != event.task_id:
                self._fail(
                    "ddr_ownership",
                    event,
                    f"task {event.task_id} burst touched region {region!r} "
                    f"owned by task {owner} (burst at {cycle})",
                )

    def _check_deadline_miss(self, event: Event) -> None:
        task = event.task_id
        self._missed[task] = self._missed.get(task, 0) + 1
        deadline = event.data.get("deadline_cycles")
        turnaround = event.data.get("turnaround_cycles")
        if deadline is not None and turnaround is not None and turnaround <= deadline:
            self._fail(
                "deadline_bookkeeping",
                event,
                f"DEADLINE_MISS with turnaround {turnaround} <= deadline {deadline}",
            )

    def _check_complete(self, event: Event) -> None:
        request = event.data.get("request_cycle")
        response = event.data.get("response_cycles")
        turnaround = event.data.get("turnaround_cycles")
        task = event.task_id
        if task in self._preempted:
            self._fail(
                "preempt_pairing",
                event,
                "JOB_COMPLETE while the task is still marked preempted",
            )
        if request is not None and turnaround is not None:
            if event.cycle - request != turnaround:
                self._fail(
                    "deadline_bookkeeping",
                    event,
                    f"turnaround {turnaround} != complete {event.cycle} - "
                    f"request {request}",
                )
        if response is not None and turnaround is not None and response > turnaround:
            self._fail(
                "deadline_bookkeeping",
                event,
                f"response {response} exceeds turnaround {turnaround}",
            )
        deadline = self.deadlines.get(task)
        if (
            deadline is not None
            and turnaround is not None
            and turnaround > deadline
            and self._missed.get(task, 0) < 1
        ):
            self._fail(
                "deadline_bookkeeping",
                event,
                f"turnaround {turnaround} overran deadline {deadline} "
                "with no DEADLINE_MISS event",
            )
        if deadline is not None and turnaround is not None and turnaround > deadline:
            # Consume one recorded miss so a later unreported overrun still trips.
            self._missed[task] = max(0, self._missed.get(task, 0) - 1)


def scan_events(
    events: Iterable[Event],
    *,
    queue_bounds: Mapping[int, int] | None = None,
    deadlines: Mapping[int, int] | None = None,
    region_owners: Mapping[str, int] | None = None,
) -> list[Violation]:
    """Replay a recorded event stream through a report-mode monitor."""
    monitor = InvariantMonitor(
        mode="report",
        queue_bounds=queue_bounds,
        deadlines=deadlines,
        region_owners=region_owners,
    )
    for event in events:
        monitor.handle(event)
    return monitor.violations
