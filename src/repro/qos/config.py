"""QoS policy objects: admission, backpressure and monitor configuration.

Everything here is pure, frozen configuration.  A default-constructed
:class:`QosConfig` arms *nothing*: every field that changes behaviour is off,
so ``MultiTaskSystem(config, qos=QosConfig())`` is cycle-for-cycle identical
to ``qos=None`` (enforced by ``benchmarks/test_overload_qos.py``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import QosError


class AdmissionPolicy(enum.Enum):
    """What a full task queue does with the next arriving request."""

    #: Deny the incoming request (typed ``AdmissionDenied`` outcome).
    REJECT = "reject"
    #: Drop the oldest *queued* (not running) job to admit the new one —
    #: the freshest-data discipline sensor pipelines want.
    SHED_OLDEST = "shed_oldest"
    #: Drop the newest queued job and admit the incoming one in its place.
    SHED_NEWEST = "shed_newest"
    #: Park the request and admit it when a queue slot frees; its latency
    #: clock keeps running from the original arrival cycle.
    BLOCK = "block"


class QueuePolicy(enum.Enum):
    """Per-topic overflow discipline for backpressured ROS topics."""

    #: Evict the oldest pending message (ROS ``KEEP_LAST`` depth semantics).
    DROP_OLDEST = "drop_oldest"
    #: Refuse the incoming message, keep the backlog.
    DROP_NEWEST = "drop_newest"


@dataclass(frozen=True)
class BackpressureProfile:
    """ROS-like QoS profile for one topic.

    ``depth`` bounds the pending (published-but-undelivered) messages;
    overflow follows ``policy``.  ``reliable`` turns fault-injected drops
    into retries with exponential backoff (``retry_base_cycles * 2**n``)
    until ``max_retries`` or ``retry_timeout_cycles`` past publish, after
    which the message is declared undelivered (never silently lost).
    """

    depth: int = 8
    policy: QueuePolicy = QueuePolicy.DROP_OLDEST
    reliable: bool = False
    retry_base_cycles: int = 1_000
    max_retries: int = 3
    retry_timeout_cycles: int = 100_000

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise QosError(f"depth must be >= 1, got {self.depth}")
        if self.retry_base_cycles < 1:
            raise QosError(
                f"retry_base_cycles must be >= 1, got {self.retry_base_cycles}"
            )
        if self.max_retries < 0:
            raise QosError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.retry_timeout_cycles < 1:
            raise QosError(
                f"retry_timeout_cycles must be >= 1, got {self.retry_timeout_cycles}"
            )


@dataclass(frozen=True)
class ModeSwitchPolicy:
    """MESC-style criticality mode switch for a degraded farm.

    Criticality here is distinct from priority: a job's SLO *rank* orders
    pre-emption on a node, while this policy decides which classes the
    cluster keeps serving at all when capacity drops.  When the surviving
    nodes' aggregate throughput falls below ``capacity_threshold`` of the
    healthy farm's, the runtime switches to degraded mode and sheds every
    not-yet-dispatched job whose class rank is ``>= shed_min_rank`` (shed
    jobs stay accounted — they are reported, never lost).  With
    ``restore=True`` the switch is reversible: capacity recovering above
    the threshold (a hung node healing) returns the farm to normal mode.
    """

    capacity_threshold: float = 0.75
    shed_min_rank: int = 2
    restore: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.capacity_threshold <= 1.0:
            raise QosError(
                f"capacity_threshold must be in (0, 1], got "
                f"{self.capacity_threshold}"
            )
        if self.shed_min_rank < 0:
            raise QosError(
                f"shed_min_rank must be >= 0, got {self.shed_min_rank}"
            )


@dataclass(frozen=True)
class QosConfig:
    """One options object arming the runtime's overload defences.

    * ``admission`` + ``queue_depth`` — bounded per-task queues at the IAU
      (tasks with ``task_id >= min_task_id``; priority 0 is never gated);
    * ``slack_admission`` — deny requests whose projected completion
      (static program-cycle estimate x backlog) already overruns their
      declared deadline;
    * ``edf_tiebreak`` — order equal-priority runnable tasks by absolute
      deadline (earliest first) instead of slot index;
    * ``detect_inversion`` — emit ``PRIORITY_INVERSION`` events when a
      lower-criticality job holds the core past a waiting higher-criticality
      job's slack;
    * ``monitor`` — attach an online :class:`~repro.qos.monitor.InvariantMonitor`
      to the system's event bus (``monitor_mode`` picks raise vs report).
    """

    admission: AdmissionPolicy | None = None
    queue_depth: int | None = None
    slack_admission: bool = False
    min_task_id: int = 1
    edf_tiebreak: bool = False
    detect_inversion: bool = False
    monitor: bool = False
    monitor_mode: str = "raise"

    def __post_init__(self) -> None:
        if self.queue_depth is not None and self.queue_depth < 1:
            raise QosError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.admission is not None and self.queue_depth is None:
            raise QosError("admission policy needs queue_depth")
        if self.monitor_mode not in ("raise", "report"):
            raise QosError(
                f"monitor_mode must be 'raise' or 'report', got {self.monitor_mode!r}"
            )
        if self.min_task_id < 0:
            raise QosError(f"min_task_id must be >= 0, got {self.min_task_id}")

    @property
    def wants_admission(self) -> bool:
        return self.admission is not None or self.slack_admission

    @property
    def armed(self) -> bool:
        """True when any field changes runtime behaviour."""
        return (
            self.wants_admission
            or self.edf_tiebreak
            or self.detect_inversion
            or self.monitor
        )
