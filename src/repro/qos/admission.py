"""Admission control: bounded per-task queues with slack awareness.

The controller sits inside :meth:`repro.iau.unit.Iau.request` — the single
funnel every inference request passes through, whether it came from
:meth:`MultiTaskSystem.submit`, the ROS executor, or a test poking the IAU
directly.  It enforces two independent gates:

* a **depth gate** — at most ``queue_depth`` queued jobs per task, with the
  configured :class:`~repro.qos.config.AdmissionPolicy` deciding who loses
  when the queue is full;
* a **slack gate** — a request whose projected completion (static
  program-cycle estimate x backlog, measured against the declared deadline)
  is already hopeless is denied up front instead of wasting core cycles.

Every denial produces a typed :class:`AdmissionDenied` outcome attached to
the losing job's record, a per-task counter, and an ``ADMISSION_DENY`` bus
event — overload never manifests as a silently growing queue.
"""

from __future__ import annotations

import copy
from collections import deque
from dataclasses import dataclass

from repro.estimate import estimate_job_cycles
from repro.obs.events import EventKind
from repro.qos.config import AdmissionPolicy, QosConfig

__all__ = ["AdmissionController", "AdmissionDenied", "estimate_job_cycles"]


@dataclass(frozen=True)
class AdmissionDenied:
    """Typed outcome attached to a request the admission gate turned away."""

    task_id: int
    #: ``"queue_full"``, ``"shed_oldest"``, ``"shed_newest"`` or ``"no_slack"``.
    reason: str
    request_cycle: int
    queue_depth: int
    #: Projected completion overrun in cycles (slack denials only).
    projected_overrun_cycles: int | None = None


class AdmissionController:
    """Bounded-queue + slack admission for the IAU's task slots."""

    def __init__(self, config: QosConfig, bus=None):
        self.config = config
        self.bus = bus
        #: Requests denied (rejected, shed, or slack-gated), per task.
        self.denied: dict[int, int] = {}
        #: Typed outcomes, in denial order (the audit trail).
        self.outcomes: list[AdmissionDenied] = []
        self._estimates: dict[int, int] = {}
        #: BLOCK-policy requests waiting for a queue slot (JobRecords, FIFO).
        self._parked: dict[int, deque] = {}

    # -- estimates ---------------------------------------------------------

    def estimate(self, context) -> int:
        """Cached static cycle estimate of one job on ``context``'s program."""
        cached = self._estimates.get(context.task_id)
        if cached is None:
            cached = estimate_job_cycles(
                context.compiled.config, context.compiled, context.base_program
            )
            self._estimates[context.task_id] = cached
        return cached

    # -- the gate ----------------------------------------------------------

    def admit(self, context, record, clock: int) -> bool:
        """Decide one arriving request.  True admits ``record``.

        May mutate the context's queue (shed policies evict a queued job)
        or park the record (BLOCK policy); every loser gets a typed
        :class:`AdmissionDenied` outcome and an ``ADMISSION_DENY`` event.
        """
        if context.task_id < self.config.min_task_id:
            return True
        if self.config.slack_admission and not self._has_slack(
            context, record, clock
        ):
            return False
        policy = self.config.admission
        if policy is None or len(context.queue) < self.config.queue_depth:
            return True
        if policy is AdmissionPolicy.REJECT:
            self._deny(context, record, "queue_full", clock)
            return False
        if policy is AdmissionPolicy.SHED_OLDEST:
            self._deny(context, context.queue.popleft(), "shed_oldest", clock)
            return True
        if policy is AdmissionPolicy.SHED_NEWEST:
            self._deny(context, context.queue.pop(), "shed_newest", clock)
            return True
        if policy is AdmissionPolicy.BLOCK:
            self._parked.setdefault(context.task_id, deque()).append(record)
            if self.bus is not None:
                self.bus.emit(
                    EventKind.ADMISSION_DENY,
                    cycle=clock,
                    task_id=context.task_id,
                    reason="parked",
                    policy=policy.value,
                    queue_depth=len(context.queue),
                )
            return False
        raise AssertionError(f"unhandled admission policy {policy!r}")  # pragma: no cover

    def release_parked(self, context):
        """A queue slot freed: the oldest parked request, if any (FIFO)."""
        parked = self._parked.get(context.task_id)
        if not parked:
            return None
        if (
            self.config.queue_depth is not None
            and len(context.queue) >= self.config.queue_depth
        ):
            return None
        return parked.popleft()

    def parked_count(self, task_id: int) -> int:
        return len(self._parked.get(task_id, ()))

    # -- snapshot/restore --------------------------------------------------

    def capture_state(self) -> dict:
        """Picklable mid-run state: denials, estimates, parked requests."""
        return {
            "denied": dict(self.denied),
            "outcomes": list(self.outcomes),
            "estimates": dict(self._estimates),
            "parked": copy.deepcopy(
                {task_id: list(queue) for task_id, queue in self._parked.items()}
            ),
        }

    def restore_state(self, state: dict) -> None:
        self.denied = dict(state["denied"])
        self.outcomes = list(state["outcomes"])
        self._estimates = dict(state["estimates"])
        self._parked = {
            task_id: deque(records)
            for task_id, records in copy.deepcopy(state["parked"]).items()
        }

    # -- internals ---------------------------------------------------------

    def _has_slack(self, context, record, clock: int) -> bool:
        if context.deadline_cycles is None:
            return True
        estimate = self.estimate(context)
        backlog = context.pending_jobs
        projected = clock + (backlog + 1) * estimate
        absolute_deadline = record.request_cycle + context.deadline_cycles
        if projected <= absolute_deadline:
            return True
        self._deny(
            context,
            record,
            "no_slack",
            clock,
            projected_overrun_cycles=projected - absolute_deadline,
        )
        return False

    def _deny(
        self,
        context,
        record,
        reason: str,
        clock: int,
        *,
        projected_overrun_cycles: int | None = None,
    ) -> None:
        outcome = AdmissionDenied(
            task_id=context.task_id,
            reason=reason,
            request_cycle=record.request_cycle,
            queue_depth=len(context.queue),
            projected_overrun_cycles=projected_overrun_cycles,
        )
        record.outcome = outcome
        self.outcomes.append(outcome)
        self.denied[context.task_id] = self.denied.get(context.task_id, 0) + 1
        if self.bus is not None:
            self.bus.emit(
                EventKind.ADMISSION_DENY,
                cycle=clock,
                task_id=context.task_id,
                reason=reason,
                queue_depth=outcome.queue_depth,
                request_cycle=record.request_cycle,
            )
