"""Overload-robust QoS runtime (``repro.qos``).

Three defences against sustained overload, all off by default and all
cycle-neutral when disarmed:

* **Admission control** (:mod:`repro.qos.admission`) — bounded per-task
  queues at the IAU with reject / shed-oldest / shed-newest / block
  policies plus slack-based admission against declared deadlines;
* **Backpressure profiles** (:class:`BackpressureProfile`, applied by the
  ROS executor) — per-topic bounded queues with drop/oldest/latest
  semantics, delivery acknowledgements and reliable retry with exponential
  backoff;
* **Invariant monitoring** (:mod:`repro.qos.monitor`) — an event-bus sink
  that checks cycle monotonicity, preemption pairing, queue bounds, DDR
  region ownership and deadline bookkeeping, raising
  :class:`~repro.errors.InvariantViolation` (or counting, in report mode).

Arm them with one :class:`QosConfig`::

    system = MultiTaskSystem(
        config,
        obs=ObsConfig(events=True),
        qos=QosConfig(
            admission=AdmissionPolicy.SHED_OLDEST,
            queue_depth=2,
            monitor=True,
        ),
    )
"""

from repro.qos.admission import (
    AdmissionController,
    AdmissionDenied,
    estimate_job_cycles,
)
from repro.qos.config import (
    AdmissionPolicy,
    BackpressureProfile,
    ModeSwitchPolicy,
    QosConfig,
    QueuePolicy,
)
from repro.qos.monitor import InvariantMonitor, Violation, scan_events

__all__ = [
    "AdmissionController",
    "AdmissionDenied",
    "AdmissionPolicy",
    "BackpressureProfile",
    "InvariantMonitor",
    "ModeSwitchPolicy",
    "QosConfig",
    "QueuePolicy",
    "Violation",
    "estimate_job_cycles",
    "scan_events",
]
