"""Instruction Arrangement Unit: VI-ISA -> original-ISA translation with
per-task contexts, interrupt capture, and SAVE rewriting."""

from repro.iau.context import JobRecord, TaskContext
from repro.iau.unit import IAU_MODES, MAX_TASKS, Iau

__all__ = ["IAU_MODES", "Iau", "JobRecord", "MAX_TASKS", "TaskContext"]
