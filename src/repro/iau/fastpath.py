"""Horizon-batched fast-path metadata for the IAU dispatch loop.

Timing-only experiments spend almost all their wall time in
``Iau.step()``'s per-instruction Python loop, even though on the
uninterrupted path every quantity that loop computes is a pure function of
the program: the cycle cost of each instruction, the DDR bursts it would
report, and the on-chip buffer bookkeeping it would leave behind.

:func:`build_program_meta` precomputes all of it once per
``(CompiledNetwork, Program)`` pair — cached on the compiled network, so
thousands of simulated runs over the same workload (interrupt-latency
sweeps, overload campaigns, design-space exploration) pay the O(n) walk a
single time:

* per-instruction cycle costs and their prefix sums (``cum``), so a whole
  stretch of instructions can be retired with one subtraction and the
  stop index found with one bisect against the arrival horizon;
* per-instruction event templates, so an armed :class:`~repro.obs.bus.EventBus`
  can be replayed the *identical* ``DDR_BURST``/``INSTR_RETIRE`` stream the
  step-wise path would have emitted;
* :class:`~repro.accel.core.CoreStats` prefix sums, so the aggregate counters
  advance exactly;
* *clean boundaries* — indices where the replayed core holds no in-flight
  accumulator or un-saved output section — with the data/weight tiles
  resident there, so the core's buffer bookkeeping can be fast-forwarded to
  any boundary and the step-wise path resumed seamlessly;
* per-:class:`~repro.faults.plan.FaultSite` *fault-opportunity prefix sums*
  (the static half of armed batching): how many Bernoulli draws the
  step-wise path performs at each site over any instruction span, so
  :meth:`ProgramMeta.stop_for_faults` can intersect a batch with the fault
  plan's fire oracle and :meth:`ProgramMeta.opportunity_counts` can burn the
  skipped non-firing draws afterwards (see ``docs/static-analysis.md``, the
  INT rule family).

``Iau.run_batched`` consumes this metadata; the equivalence contract
(cycle-exact and event-exact against ``step()``) is enforced by
``tests/test_fastpath.py`` and, with faults/QoS armed, by
``tests/test_fastpath_armed.py``.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, NamedTuple

from repro.accel.core import DataTile, WeightTile
from repro.faults.plan import FaultSite
from repro.hw.timing import fetch_cycles, instruction_cycles
from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.compiler.compile import CompiledNetwork
    from repro.faults.plan import FaultPlan
    from repro.isa.program import Program

#: The fault sites whose draws are a pure function of the instruction
#: stream on the uninterrupted path — the ones armed batching must account
#: for.  Transfers draw one DDR stall and one DDR bit-flip check each;
#: switch-point virtuals draw one spurious-preempt check when no preemption
#: is pending (the batch regime).  The remaining sites only draw under
#: control flow the fast path already excludes: drop-preempt and
#: checkpoint-corrupt need a pending preemption, job-overrun fires at
#: switch-in (outside any batch), and the ROS sites live above the IAU.
BATCH_FAULT_SITES: tuple[FaultSite, ...] = (
    FaultSite.DDR_STALL,
    FaultSite.DDR_BIT_FLIP,
    FaultSite.IAU_SPURIOUS_PREEMPT,
)

#: Stretches shorter than this are not worth the batching overhead —
#: ``Iau.run_batched`` falls back to ``step()`` below it, and the coverage
#: statistics (INT005, ``stretch_coverage``) count only stretches at or
#: above it as batchable.
MIN_BATCH = 2

#: Event template of one real instruction: (layer_id, opcode name, exec
#: cycles, burst direction or None, burst region or None, burst bytes).
_EventSpec = tuple[int, str, int, str | None, str | None, int]

#: Resident-tile snapshot at a clean boundary.
_DataSpec = tuple[int, int, int, int, int, int]  # layer, row0, rows, ch0, chs, nbytes
_WeightSpec = tuple[int, int, int, int, int, int]  # layer, ch0, chs, in_ch0, in_chs, nbytes


class Stretch(NamedTuple):
    """One armed-safe stretch: the span between two adjacent clean boundaries.

    Within ``[start, stop)`` the only armed-feature interference is
    oracle-guarded fault draws (``opportunities``, keyed by
    :class:`FaultSite` value) — no preemption can engage, no checkpoint is
    taken, and every monitor-visible event template is cycle-monotonic, so
    a batch proven draw-free by the fire oracle retires the span with
    behaviour bit-identical to ``step()``.
    """

    start: int
    stop: int
    opportunities: dict[str, int]

    @property
    def length(self) -> int:
        return self.stop - self.start


def fault_surface(instruction: Instruction) -> tuple[FaultSite, ...]:
    """The :class:`FaultSite`\\ s that can host a fault at ``instruction``.

    The static interference classification (rule ``INT004``): DDR stalls and
    bit flips only on transfer instructions, dropped/spurious preemptions
    only at switch points, checkpoint corruption only at a switch-point
    ``VIR_SAVE``.  Job overruns (switch-in) and the ROS sites are not
    instruction-hosted and never appear here.
    """
    if instruction.is_virtual:
        if not instruction.is_switch_point:
            return ()
        if instruction.opcode is Opcode.VIR_SAVE:
            return (
                FaultSite.IAU_DROP_PREEMPT,
                FaultSite.IAU_SPURIOUS_PREEMPT,
                FaultSite.CHECKPOINT_CORRUPT,
            )
        return (FaultSite.IAU_DROP_PREEMPT, FaultSite.IAU_SPURIOUS_PREEMPT)
    if instruction.opcode in (Opcode.LOAD_D, Opcode.LOAD_W):
        return (FaultSite.DDR_STALL, FaultSite.DDR_BIT_FLIP)
    if instruction.opcode is Opcode.SAVE and instruction.chs:
        return (FaultSite.DDR_STALL, FaultSite.DDR_BIT_FLIP)
    return ()


def batch_draws(instruction: Instruction) -> tuple[FaultSite, ...]:
    """The Bernoulli draws ``step()`` performs at ``instruction`` on the
    *uninterrupted armed* path (the batch regime: no preemption pending, no
    recovery replay).

    Transfers draw one DDR-stall and one DDR-bit-flip check; a switch-point
    virtual draws one spurious-preempt check (``can_switch`` is false with
    no pending preemption, so the drop-preempt stream is never touched).
    This is the per-instruction term behind
    :attr:`ProgramMeta.opportunities`.
    """
    if instruction.is_virtual:
        if instruction.is_switch_point:
            return (FaultSite.IAU_SPURIOUS_PREEMPT,)
        return ()
    if instruction.opcode in (Opcode.LOAD_D, Opcode.LOAD_W):
        return (FaultSite.DDR_STALL, FaultSite.DDR_BIT_FLIP)
    if instruction.opcode is Opcode.SAVE and instruction.chs:
        return (FaultSite.DDR_STALL, FaultSite.DDR_BIT_FLIP)
    return ()


@dataclass
class _StatsPrefix:
    """Prefix sums of every :class:`CoreStats` counter (length n+1 each)."""

    instructions: list[int]
    cycles: list[int]
    load_cycles: list[int]
    calc_cycles: list[int]
    save_cycles: list[int]
    bytes_loaded: list[int]
    bytes_saved: list[int]


class ProgramMeta:
    """Precomputed execution metadata of one program on one accelerator."""

    def __init__(
        self,
        fetch: int,
        cum: list[int],
        stats: _StatsPrefix,
        events: list[_EventSpec | None],
        boundaries: list[int],
        boundary_tiles: dict[int, tuple[tuple[tuple[int, _DataSpec], ...], _WeightSpec | None]],
        opportunities: dict[str, list[int]],
    ) -> None:
        self.fetch = fetch
        #: ``cum[j]`` — cycles elapsed (fetch + execute of instructions
        #: ``[0, j)``) when instruction ``j`` is about to be fetched.
        self.cum = cum
        self.stats = stats
        self.events = events
        #: Sorted indices where the core holds no accumulator / output
        #: section; a batch may end at any of them.
        self.boundaries = boundaries
        self._boundary_tiles = boundary_tiles
        #: Per-:class:`FaultSite` (keyed by ``site.value``) prefix sums of
        #: the Bernoulli draws ``step()`` performs on the uninterrupted
        #: armed path: ``opportunities[site][j]`` draws happen over
        #: instructions ``[0, j)``.  Length n+1 each, like :attr:`cum`.
        self.opportunities = opportunities

    @property
    def total_cycles(self) -> int:
        """Cycles of one uninterrupted job (== the admission estimate)."""
        return self.cum[-1]

    def stop_for_horizon(self, start: int, base: int, horizon: int | None) -> int:
        """First index ``>= start`` whose loop-top clock reaches ``horizon``.

        ``base`` is the absolute clock minus ``cum[start]``; with no horizon
        the whole remaining program is batchable.
        """
        n = len(self.cum) - 1
        if horizon is None:
            return n
        return bisect_left(self.cum, horizon - base, start, n)

    def boundary_at_or_before(self, index: int) -> int:
        """Largest clean boundary ``<= index`` (-1 when there is none)."""
        pos = bisect_right(self.boundaries, index) - 1
        return self.boundaries[pos] if pos >= 0 else -1

    def stop_for_faults(self, start: int, plan: "FaultPlan") -> int:
        """Largest stop index from ``start`` provably free of fault fires.

        For every armed batch-regime site, asks the plan's fire oracle how
        many upcoming draws are guaranteed non-fires and converts that draw
        budget back to an instruction index via the opportunity prefix sums:
        a batch ``[start, stop)`` consumes ``opp[stop] - opp[start]`` draws
        at each site, so the instruction hosting the first possible fire is
        excluded.  Sites at rate 0 never constrain (the oracle returns the
        full limit without peeking).
        """
        n = len(self.cum) - 1
        stop = n
        for value, opp in self.opportunities.items():
            limit = opp[n] - opp[start]
            if limit <= 0:
                continue
            safe = plan.safe_draws(FaultSite(value), limit)
            if safe >= limit:
                continue
            # Largest index whose prefix count stays within the safe budget.
            stop = min(stop, bisect_right(opp, opp[start] + safe) - 1)
        return stop

    def opportunity_counts(self, start: int, stop: int) -> dict[FaultSite, int]:
        """Per-site draw counts of the batch ``[start, stop)``.

        ``Iau.run_batched`` burns exactly these (known-safe) draws after an
        armed batch so every site's RNG stream lands on the position the
        step-wise path would have reached.
        """
        return {
            FaultSite(value): opp[stop] - opp[start]
            for value, opp in self.opportunities.items()
        }

    def stretches(self) -> Iterator[Stretch]:
        """The armed-safe stretch table: adjacent clean-boundary spans.

        Every span is free of preemption-capable control flow by
        construction (a batch never crosses a fire or an arrival, and no
        task switch can engage mid-span), so the only interference left
        inside is the per-site draw counts reported on each
        :class:`Stretch`.
        """
        for start, stop in zip(self.boundaries, self.boundaries[1:]):
            yield Stretch(
                start=start,
                stop=stop,
                opportunities={
                    value: opp[stop] - opp[start]
                    for value, opp in self.opportunities.items()
                },
            )

    def batch_stats(self, start: int, stop: int) -> dict[str, int]:
        """Aggregate :class:`CoreStats` deltas over ``[start, stop)``."""
        s = self.stats
        return {
            "instructions": s.instructions[stop] - s.instructions[start],
            "cycles": s.cycles[stop] - s.cycles[start],
            "load_cycles": s.load_cycles[stop] - s.load_cycles[start],
            "calc_cycles": s.calc_cycles[stop] - s.calc_cycles[start],
            "save_cycles": s.save_cycles[stop] - s.save_cycles[start],
            "bytes_loaded": s.bytes_loaded[stop] - s.bytes_loaded[start],
            "bytes_saved": s.bytes_saved[stop] - s.bytes_saved[start],
        }

    def tiles_at(self, boundary: int) -> tuple[dict[int, DataTile], WeightTile | None]:
        """Fresh timing-only tile objects resident at a clean boundary."""
        data_specs, weight_spec = self._boundary_tiles[boundary]
        data_tiles = {
            slot: DataTile(
                layer_id=spec[0],
                row0=spec[1],
                rows=spec[2],
                ch0=spec[3],
                chs=spec[4],
                nbytes=spec[5],
                array=None,
            )
            for slot, spec in data_specs
        }
        weight_tile = None
        if weight_spec is not None:
            weight_tile = WeightTile(
                layer_id=weight_spec[0],
                ch0=weight_spec[1],
                chs=weight_spec[2],
                in_ch0=weight_spec[3],
                in_chs=weight_spec[4],
                nbytes=weight_spec[5],
                array=None,
            )
        return data_tiles, weight_tile


def build_program_meta(compiled: "CompiledNetwork", program: "Program") -> ProgramMeta:
    """Walk ``program`` once, mirroring the step-wise timing/bookkeeping.

    The replay assumes the uninterrupted path (virtual instructions are
    discarded after their fetch) — exactly the regime ``run_batched``
    restricts itself to.
    """
    config = compiled.config
    fetch = fetch_cycles(config)
    n = len(program)

    cum = [0] * (n + 1)
    stats = _StatsPrefix(*([0] * (n + 1) for _ in range(7)))
    events: list[_EventSpec | None] = [None] * n
    boundaries: list[int] = []
    boundary_tiles: dict[
        int, tuple[tuple[tuple[int, _DataSpec], ...], _WeightSpec | None]
    ] = {}
    opportunities: dict[str, list[int]] = {
        site.value: [0] * (n + 1) for site in BATCH_FAULT_SITES
    }

    # Replayed on-chip bookkeeping (timing-only: descriptors, no arrays).
    data_tiles: dict[int, _DataSpec] = {}
    weight: _WeightSpec | None = None
    # (layer, row0, rows, ch0, chs); next_in_ch0 untracked
    acc: tuple[int, int, int, int, int] | None = None
    # (layer, row0, rows, [groups (ch0, chs, nbytes)])
    out: tuple[int, int, int, list[tuple[int, int, int]]] | None = None

    def snapshot(index: int) -> None:
        boundaries.append(index)
        boundary_tiles[index] = (
            tuple(sorted(data_tiles.items())),
            weight,
        )

    snapshot(0)
    clock = 0
    for j, instruction in enumerate(program):
        layer = compiled.layer_config(instruction.layer_id)
        cycles = instruction_cycles(config, instruction, layer)
        clock += fetch + cycles
        cum[j + 1] = clock

        opcode = instruction.opcode
        for prefix in (
            stats.instructions,
            stats.cycles,
            stats.load_cycles,
            stats.calc_cycles,
            stats.save_cycles,
            stats.bytes_loaded,
            stats.bytes_saved,
        ):
            prefix[j + 1] = prefix[j]
        for opp in opportunities.values():
            opp[j + 1] = opp[j]
        for site in batch_draws(instruction):
            opportunities[site.value][j + 1] += 1

        if not instruction.is_virtual:
            stats.instructions[j + 1] += 1
            stats.cycles[j + 1] += cycles

        if opcode == Opcode.LOAD_D:
            slot = 1 if instruction.operand_b else 0
            for key in [k for k, t in data_tiles.items() if t[0] != instruction.layer_id]:
                del data_tiles[key]
            data_tiles[slot] = (
                instruction.layer_id,
                instruction.row0,
                instruction.rows,
                instruction.ch0,
                instruction.chs,
                instruction.length,
            )
            stats.load_cycles[j + 1] += cycles
            stats.bytes_loaded[j + 1] += instruction.length
            region = layer.input2_region if instruction.operand_b else layer.input_region
            events[j] = (
                instruction.layer_id, opcode.name, cycles, "load", region, instruction.length,
            )
        elif opcode == Opcode.LOAD_W:
            weight = (
                instruction.layer_id,
                instruction.ch0,
                instruction.chs,
                instruction.in_ch0,
                instruction.in_chs,
                instruction.length,
            )
            stats.load_cycles[j + 1] += cycles
            stats.bytes_loaded[j + 1] += instruction.length
            events[j] = (
                instruction.layer_id, opcode.name, cycles, "load",
                layer.weight_region, instruction.length,
            )
        elif opcode in (Opcode.CALC_I, Opcode.CALC_F):
            blob_key = (
                instruction.layer_id,
                instruction.row0,
                instruction.rows,
                instruction.ch0,
                instruction.chs,
            )
            if layer.kind == "conv":
                if instruction.in_ch0 == 0:
                    acc = blob_key
                finalize = opcode == Opcode.CALC_F
            else:
                finalize = True  # non-conv kinds never hold an accumulator
            if finalize:
                section_key = (instruction.layer_id, instruction.row0, instruction.rows)
                if out is None or out[:3] != section_key:
                    out = (*section_key, [])
                out[3].append(
                    (
                        instruction.ch0,
                        instruction.chs,
                        instruction.rows * layer.out_shape.width * instruction.chs,
                    )
                )
                if layer.kind == "conv":
                    acc = None
            stats.calc_cycles[j + 1] += cycles
            events[j] = (instruction.layer_id, opcode.name, cycles, None, None, 0)
        elif opcode == Opcode.SAVE:
            if instruction.chs:
                lo, hi = instruction.ch0, instruction.ch0 + instruction.chs
                if out is not None:
                    remaining = [g for g in out[3] if not (lo <= g[0] < hi)]
                    out = (*out[:3], remaining) if remaining else None
                stats.save_cycles[j + 1] += cycles
                stats.bytes_saved[j + 1] += instruction.length
                events[j] = (
                    instruction.layer_id, opcode.name, cycles, "save",
                    layer.output_region, instruction.length,
                )
            else:
                events[j] = (instruction.layer_id, opcode.name, 0, None, None, 0)
        # Virtual instructions: discarded after their fetch — no event, no
        # stats, no bookkeeping.

        if acc is None and out is None:
            snapshot(j + 1)

    return ProgramMeta(
        fetch, cum, stats, events, boundaries, boundary_tiles, opportunities
    )
