"""The Instruction Arrangement Unit (IAU).

The IAU sits between the instruction spaces in DDR and the (unchanged)
accelerator core.  Each cycle chunk it fetches the next VI-ISA instruction of
the highest-priority runnable task and either

* **forwards** it to the core (real instructions; SAVEs may first be
  rewritten against the ``SaveID``/``SaveLength`` registers to skip bytes a
  VIR_SAVE already stored),
* **discards** it (virtual instruction, no pre-emption pending),
* **expands** it (virtual instruction, pre-emption pending: perform the
  backup it encodes, record the interrupt status, and switch tasks), or
* **re-executes** it (virtual recovery loads, while resuming a task).

Two interrupt disciplines are modelled on top of the same task table:

* ``mode="virtual"`` — the paper's method (also used for the layer-by-layer
  baseline, whose programs simply carry fewer interrupt points);
* ``mode="cpu"`` — the CPU-like baseline: switch after *any* instruction by
  spilling/restoring every on-chip buffer (paper §IV-B).
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.accel.core import AcceleratorCore
from repro.accel.trace import ExecutionTrace
from repro.compiler.compile import CompiledNetwork
from repro.errors import CheckpointError, IauError
from repro.faults.plan import DeadlineMissed, FaultPlan, FaultSite
from repro.hw.timing import fetch_cycles, transfer_cycles
from repro.iau.context import Checkpoint, JobRecord, TaskContext
from repro.isa.instructions import NO_SAVE_ID, Instruction
from repro.isa.opcodes import Opcode
from repro.obs.bus import EventBus
from repro.obs.events import EventKind
from repro.qos.admission import AdmissionController
from repro.qos.config import QosConfig
from repro.qos.monitor import InvariantMonitor

from repro.iau.fastpath import MIN_BATCH

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.iau.fastpath import ProgramMeta

#: Number of task slots in the hardware (paper's Fig. IAU).
MAX_TASKS = 4

#: Interrupt disciplines.
IAU_MODES = ("virtual", "cpu")


class Iau:
    """Behavioural model of the Instruction Arrangement Unit."""

    def __init__(
        self,
        core: AcceleratorCore,
        mode: str = "virtual",
        trace: ExecutionTrace | None = None,
        *,
        bus: EventBus | None = None,
        obs_scope: str | None = None,
        faults: FaultPlan | None = None,
        qos: QosConfig | None = None,
        admission: AdmissionController | None = None,
        monitor: InvariantMonitor | None = None,
    ) -> None:
        if mode not in IAU_MODES:
            raise IauError(f"mode must be one of {IAU_MODES}, got {mode!r}")
        self.core = core
        self.config = core.config
        self.mode = mode
        # A legacy ExecutionTrace rides the bus as a sink; create a private,
        # non-recording bus for it when the caller didn't provide one.
        if trace is not None:
            if bus is None:
                bus = EventBus(record=False)
            bus.attach(trace)
        self.trace = trace
        self.bus = bus
        self.obs_scope = obs_scope
        if bus is not None and core.bus is None:
            core.bus = bus
        self.clock = 0
        self.contexts: list[TaskContext | None] = [None] * MAX_TASKS
        self.current: int | None = None
        #: Extra cycles spent on interrupt backup / restore transfers.
        self.backup_cycles = 0
        self.restore_cycles = 0
        self.num_switches = 0
        #: Fault machinery: the injection plan (None = no fault code runs),
        #: checkpoint rollbacks performed, watchdog deadline misses seen.
        self.faults = faults
        self.num_rollbacks = 0
        self.num_deadline_misses = 0
        if faults is not None and core.ddr.faults is None:
            core.ddr.attach_faults(faults, bus)
        #: QoS machinery (all three are None/off on the pre-QoS fast path).
        self.qos = qos
        self.admission = admission
        #: The runtime's invariant monitor, when one rides the bus: the fast
        #: path brackets event replay in its stretch mode so a whole batch
        #: is checked with one aggregate pass instead of per-event dispatch.
        self.monitor = monitor
        self._edf = qos is not None and qos.edf_tiebreak
        self._detect_inversion = qos is not None and qos.detect_inversion
        self.num_inversions = 0
        self._inversions_seen: set[tuple[int, int]] = set()
        #: Optional hook called as ``on_complete(task_id, job)`` whenever a
        #: job finishes (the ROS layer uses it to schedule callbacks).
        self.on_complete: Callable[[int, JobRecord], None] | None = None

    # -- task management -----------------------------------------------------

    def attach_task(
        self,
        task_id: int,
        compiled: CompiledNetwork,
        vi_mode: str = "vi",
        *,
        deadline_cycles: int | None = None,
        priority: int | None = None,
    ) -> TaskContext:
        """Bind a compiled network to a priority slot (0 = highest).

        ``deadline_cycles`` arms the per-job watchdog: a job whose
        request-to-complete turnaround exceeds it gets a typed
        :class:`~repro.faults.plan.DeadlineMissed` outcome (and a
        ``deadline_miss`` event), without aborting the run.

        ``priority`` sets the criticality level independently of the slot
        index (default: the slot index, the hardware's strict ordering).
        Equal-priority slots never preempt each other; with the QoS layer's
        EDF tie-break they are picked by earliest absolute deadline.
        """
        if not 0 <= task_id < MAX_TASKS:
            raise IauError(f"task_id must be in [0, {MAX_TASKS}), got {task_id}")
        if self.contexts[task_id] is not None:
            raise IauError(f"task slot {task_id} already attached")
        if self.mode == "cpu" and vi_mode != "none":
            # The CPU-like discipline needs no virtual instructions.
            vi_mode = "none"
        context = TaskContext(
            task_id=task_id,
            compiled=compiled,
            program=compiled.program_for(vi_mode),
            priority=priority,
            deadline_cycles=deadline_cycles,
        )
        self.contexts[task_id] = context
        return context

    def context(self, task_id: int) -> TaskContext:
        context = self.contexts[task_id]
        if context is None:
            raise IauError(f"no task attached at slot {task_id}")
        return context

    def request(self, task_id: int, at_cycle: int | None = None) -> JobRecord:
        """A software thread asks for one inference on its task slot.

        ``at_cycle`` back-dates the request to its true arrival time when the
        caller delivers it mid-instruction (response latency is measured from
        arrival, exactly as a hardware interrupt line would be timed).
        """
        record = JobRecord(
            task_id=task_id,
            request_cycle=self.clock if at_cycle is None else at_cycle,
        )
        context = self.context(task_id)
        if self.admission is not None and not self.admission.admit(
            context, record, clock=self.clock
        ):
            # Denied (record.outcome carries the typed AdmissionDenied) or
            # parked by the BLOCK policy (admitted when a slot frees).
            return record
        self._enqueue(context, record)
        return record

    def _enqueue(self, context: TaskContext, record: JobRecord) -> None:
        context.enqueue(record)
        if self.bus is not None:
            self._emit(
                EventKind.JOB_SUBMIT,
                task_id=context.task_id,
                request_cycle=record.request_cycle,
            )

    def _release_parked(self, context: TaskContext) -> None:
        """Admit BLOCK-policy requests now that the queue has room."""
        if self.admission is None:
            return
        released = self.admission.release_parked(context)
        while released is not None:
            self._enqueue(context, released)
            released = self.admission.release_parked(context)

    def _emit(self, kind: EventKind, **kwargs: Any) -> None:
        """Emit one bus event stamped at the IAU clock (callers gate on bus)."""
        bus = self.bus
        assert bus is not None  # every call site checks the bus first
        if self.obs_scope is not None:
            kwargs["scope"] = self.obs_scope
        cycle = kwargs.pop("cycle", self.clock)
        task_id = kwargs.pop("task_id", None)
        layer_id = kwargs.pop("layer_id", None)
        duration = kwargs.pop("duration", 0)
        bus.emit(
            kind,
            cycle=cycle,
            task_id=task_id,
            layer_id=layer_id,
            duration=duration,
            **kwargs,
        )

    # -- scheduling ---------------------------------------------------------

    def _rank(self, context: TaskContext) -> tuple[float, ...]:
        """Arbitration key: lower sorts first.

        Strict (priority, slot) by default — identical to the hardware's
        slot-order scan.  With the QoS EDF tie-break, equal-priority slots
        are ordered by the head job's absolute deadline (laxity order for
        equal-length jobs), undeclared deadlines last.
        """
        if self._edf:
            return (context.priority, context.head_deadline(), context.task_id)
        return (context.priority, context.task_id)

    def _highest_runnable(self) -> TaskContext | None:
        best: TaskContext | None = None
        best_key: tuple[float, ...] | None = None
        for context in self.contexts:
            if context is None or not context.runnable:
                continue
            key = self._rank(context)
            if best_key is None or key < best_key:
                best, best_key = context, key
        return best

    def _preempting_task(self, current: TaskContext) -> TaskContext | None:
        """The strictly-higher-priority runnable task that would win the
        core, or None.  Equal-priority peers never preempt each other."""
        best: TaskContext | None = None
        best_key: tuple[float, ...] | None = None
        for context in self.contexts:
            if (
                context is None
                or context is current
                or not context.runnable
                or context.priority >= current.priority
            ):
                continue
            key = self._rank(context)
            if best_key is None or key < best_key:
                best, best_key = context, key
        return best

    @property
    def idle(self) -> bool:
        return self._highest_runnable() is None

    # -- execution ------------------------------------------------------------

    def step(self) -> bool:
        """Translate + execute one instruction; False when nothing is runnable."""
        if self.current is None:
            context = self._highest_runnable()
            if context is None:
                return False
            self._switch_in(context)
        context = self.context(self.current)

        if context.instr_index >= len(context.program):
            self._complete_job(context)
            return True

        instruction = context.program[context.instr_index]
        fetch = fetch_cycles(self.config)
        self.clock += fetch
        context.busy_cycles += fetch

        if self._detect_inversion:
            self._check_inversion(context)

        if self.mode == "cpu" and self._maybe_cpu_preempt(context):
            return True

        if instruction.is_virtual:
            self._handle_virtual(context, instruction)
        else:
            self._handle_real(context, instruction)
        return True

    def run_until_idle(self, max_steps: int = 100_000_000) -> None:
        """Drain every queued job (no new arrivals)."""
        for _ in range(max_steps):
            if not self.step():
                return
        raise IauError(f"IAU did not go idle within {max_steps} steps")

    # -- horizon-batched fast path --------------------------------------------

    #: Stretches shorter than this are not worth the batching overhead.
    _MIN_BATCH = MIN_BATCH

    def _fast_path_ok(self, context: TaskContext) -> bool:
        """True when the run is provably uninterruptible from here.

        Timing-only, the task mid-stream clean (not replaying recovery
        loads, no pending SAVE rewriting) and no strictly-higher-priority
        task runnable.  Arrivals are handled by the caller-provided horizon.

        Armed features no longer bail the fast path outright (see
        ``docs/static-analysis.md``, the INT rule family):

        * a :class:`FaultPlan` is intersected per batch with the static
          fault-opportunity table and its fire oracle
          (``ProgramMeta.stop_for_faults``) — the only dynamic requirement
          is that no SECDED flip is pending, because the next load of the
          flipped region would detect and correct it mid-stretch (events +
          array mutation the meta templates cannot express);
        * inversion detection is per-step a no-op whenever no
          higher-priority task is runnable — guaranteed here and unchanged
          for the whole batch, since arrivals bound the horizon;
        * the invariant monitor sees the replayed stream, which is
          byte-identical to what ``step()`` would emit (checked in its
          aggregate stretch mode, proven equivalent per-event).
        """
        if (
            self.core.functional
            or context.in_recovery
            or context.save_id != NO_SAVE_ID
            or self._preempting_task(context) is not None
        ):
            return False
        return self.faults is None or self.core.ddr.pending_flip_count == 0

    def run_batched(self, horizon: int | None = None) -> bool:
        """Retire a whole uninterruptible stretch of instructions at once.

        Cycle-exact and event-exact against :meth:`step`: the clock,
        :class:`~repro.accel.core.CoreStats`, ``busy_cycles`` and buffer
        bookkeeping advance in aggregate from metadata precomputed on the
        compiled network, and an armed bus receives the identical event
        stream.  Falls back to a single :meth:`step` whenever the fast path
        cannot engage (armed features, recovery state, a runnable
        higher-priority task, or a stretch too short to matter).

        ``horizon`` bounds the batch to instructions that *start* strictly
        before it — the caller's next scheduled arrival, after which
        delivery (and hence pre-emption eligibility) must be re-evaluated.
        Returns False when nothing is runnable, like :meth:`step`.
        """
        if self.current is None:
            context = self._highest_runnable()
            if context is None:
                return False
            self._switch_in(context)
        context = self.context(self.current)

        index = context.instr_index
        if index >= len(context.program):
            self._complete_job(context)
            return True
        if not self._fast_path_ok(context):
            return self.step()

        meta = context.compiled.execution_meta(context.program)
        base = self.clock - meta.cum[index]
        stop = meta.stop_for_horizon(index, base, horizon)
        if self.faults is not None:
            # Intersect with the fire oracle: the batch may not reach the
            # instruction hosting the first possible fault fire.
            stop = min(stop, meta.stop_for_faults(index, self.faults))
        # A batch may only end where no accumulator / output section is in
        # flight, so a later step() finds exactly the state it expects.
        boundary = meta.boundary_at_or_before(stop)
        if boundary - index < self._MIN_BATCH:
            return self.step()

        if self.bus is not None:
            self._replay_events(context, meta, index, boundary)
        delta = meta.cum[boundary] - meta.cum[index]
        self.clock += delta
        context.busy_cycles += delta
        context.instr_index = boundary
        data_tiles, weight_tile = meta.tiles_at(boundary)
        self.core.retire_batch(
            meta.batch_stats(index, boundary), data_tiles, weight_tile
        )
        if self.faults is not None:
            # Land every site's RNG stream on the position the step-wise
            # path would have reached: burn the known-safe draws the batch
            # skipped (the oracle vouched none of them fires).
            for site, count in meta.opportunity_counts(index, boundary).items():
                self.faults.burn(site, count)
        return True

    def _replay_events(
        self, context: TaskContext, meta: ProgramMeta, start: int, stop: int
    ) -> None:
        """Emit the exact DDR_BURST / INSTR_RETIRE stream step() would."""
        bus = self.bus
        assert bus is not None  # callers gate on an armed bus
        monitor = self.monitor
        if monitor is not None:
            # Batch-aggregate invariant checking: the monitor buffers the
            # replayed stretch and verifies it in one pass on exit (falling
            # back to per-event dispatch whenever the aggregate proof does
            # not apply), instead of paying full dispatch per event.
            monitor.enter_stretch()
        base = self.clock - meta.cum[start]
        fetch = meta.fetch
        scope: dict[str, str] = (
            {} if self.obs_scope is None else {"scope": self.obs_scope}
        )
        for j in range(start, stop):
            spec = meta.events[j]
            if spec is None:
                continue  # a discarded virtual instruction emits nothing
            layer_id, opcode_name, cycles, direction, region, nbytes = spec
            cycle = base + meta.cum[j] + fetch
            if direction is not None:
                # Mirror the step-wise path exactly: _execute() advances the
                # bus (max-only) and the core stamps the burst at the *bus*
                # clock, which on a shared multi-core bus may already sit
                # past this core's local clock.
                bus.advance(cycle)
                bus.emit(
                    EventKind.DDR_BURST,
                    layer_id=layer_id,
                    duration=cycles,
                    direction=direction,
                    opcode=opcode_name,
                    bytes=nbytes,
                    region=region,
                )
            bus.emit(
                EventKind.INSTR_RETIRE,
                cycle=cycle,
                task_id=context.task_id,
                layer_id=layer_id,
                duration=cycles,
                opcode=opcode_name,
                program_index=j,
                **scope,
            )
        if monitor is not None:
            monitor.exit_stretch()

    # -- snapshot/restore ------------------------------------------------------

    def capture_state(self) -> dict[str, Any]:
        """Picklable mid-run state: clock, counters, and every task slot."""
        return {
            "clock": self.clock,
            "current": self.current,
            "backup_cycles": self.backup_cycles,
            "restore_cycles": self.restore_cycles,
            "num_switches": self.num_switches,
            "num_rollbacks": self.num_rollbacks,
            "num_deadline_misses": self.num_deadline_misses,
            "num_inversions": self.num_inversions,
            "inversions_seen": set(self._inversions_seen),
            "contexts": {
                task_id: context.capture_state()
                for task_id, context in enumerate(self.contexts)
                if context is not None
            },
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        """Restore from a captured state; the same tasks must be attached."""
        attached = {
            task_id
            for task_id, context in enumerate(self.contexts)
            if context is not None
        }
        if attached != set(state["contexts"]):
            raise IauError(
                f"snapshot task slots {sorted(state['contexts'])} do not "
                f"match the attached slots {sorted(attached)}"
            )
        self.clock = state["clock"]
        self.current = state["current"]
        self.backup_cycles = state["backup_cycles"]
        self.restore_cycles = state["restore_cycles"]
        self.num_switches = state["num_switches"]
        self.num_rollbacks = state["num_rollbacks"]
        self.num_deadline_misses = state["num_deadline_misses"]
        self.num_inversions = state["num_inversions"]
        self._inversions_seen = set(state["inversions_seen"])
        for task_id, context_state in state["contexts"].items():
            context = self.contexts[task_id]
            assert context is not None  # slot membership validated above
            context.restore_state(context_state)

    # -- switching ------------------------------------------------------------

    def _switch_in(self, context: TaskContext) -> None:
        """Make ``context`` the running task, starting a queued job if needed."""
        if self.current == context.task_id:
            return
        self.current = context.task_id
        self.num_switches += 1
        resumed = context.active
        if not context.active:
            job = context.begin_next_job()
            job.start_cycle = self.clock
            if self.bus is not None:
                self._emit(
                    EventKind.JOB_START,
                    task_id=context.task_id,
                    request_cycle=job.request_cycle,
                    response_cycles=job.response_cycles,
                )
            self._release_parked(context)  # starting a job freed a queue slot
            if self.faults is not None and self.faults.fires(FaultSite.JOB_OVERRUN):
                stall = self.faults.overrun_cycles
                self.faults.record(
                    FaultSite.JOB_OVERRUN,
                    self.clock,
                    task_id=context.task_id,
                    stall_cycles=stall,
                )
                if self.bus is not None:
                    self._emit(
                        EventKind.FAULT_INJECT,
                        task_id=context.task_id,
                        site=FaultSite.JOB_OVERRUN.value,
                        duration=stall,
                        stall_cycles=stall,
                    )
                self.clock += stall
                context.busy_cycles += stall
        if resumed and context.checkpoint is not None:
            self._verify_checkpoint(context)
        if self.mode == "cpu" and context.snapshot is not None:
            # Restore every on-chip buffer from DDR.
            cycles = transfer_cycles(self.config, self.config.total_buffer_bytes)
            self.clock += cycles
            self.restore_cycles += cycles
            context.busy_cycles += cycles
            self.core.restore(context.snapshot)
            context.snapshot = None
        if resumed and self.bus is not None:
            self._emit(EventKind.PREEMPT_END, task_id=context.task_id)

    def _check_inversion(self, context: TaskContext) -> None:
        """Flag a lower-criticality job holding the core past a waiting
        higher-criticality job's slack (one event per waiting job)."""
        winner = self._preempting_task(context)
        if winner is None:
            return
        head = winner.head_job
        if head is None or winner.deadline_cycles is None:
            return
        estimate = self.admission.estimate(winner) if self.admission is not None else 0
        slack = head.request_cycle + winner.deadline_cycles - self.clock - estimate
        if slack >= 0:
            return
        key = (winner.task_id, head.request_cycle)
        if key in self._inversions_seen:
            return
        self._inversions_seen.add(key)
        self.num_inversions += 1
        if self.bus is not None:
            self._emit(
                EventKind.PRIORITY_INVERSION,
                task_id=winner.task_id,
                holder=context.task_id,
                slack_cycles=slack,
                request_cycle=head.request_cycle,
            )

    def _maybe_cpu_preempt(self, context: TaskContext) -> bool:
        """CPU-like discipline: check for a higher-priority task before every
        instruction, spilling the whole chip state on pre-emption."""
        winner = self._preempting_task(context)
        if winner is None:
            return False
        cycles = transfer_cycles(self.config, self.config.total_buffer_bytes)
        self.clock += cycles
        self.backup_cycles += cycles
        context.busy_cycles += cycles
        context.snapshot = self.core.snapshot()
        self.core.invalidate()
        self.current = None
        if self.bus is not None:
            self._emit(
                EventKind.PREEMPT_BEGIN,
                task_id=context.task_id,
                by=winner.task_id,
                backup_cycles=cycles,
            )
        return True

    def _complete_job(self, context: TaskContext) -> None:
        job = context.finish_job(self.clock)
        self.current = None
        # The head job this entry de-duplicated is done: drop it so
        # long-running periodic workloads don't grow the set without bound.
        self._inversions_seen.discard((context.task_id, job.request_cycle))
        if (
            context.deadline_cycles is not None
            and job.turnaround_cycles > context.deadline_cycles
        ):
            job.outcome = DeadlineMissed(
                task_id=context.task_id,
                deadline_cycles=context.deadline_cycles,
                turnaround_cycles=job.turnaround_cycles,
                request_cycle=job.request_cycle,
            )
            self.num_deadline_misses += 1
            if self.bus is not None:
                self._emit(
                    EventKind.DEADLINE_MISS,
                    task_id=context.task_id,
                    deadline_cycles=context.deadline_cycles,
                    turnaround_cycles=job.turnaround_cycles,
                )
        if self.bus is not None:
            self._emit(
                EventKind.JOB_COMPLETE,
                task_id=context.task_id,
                request_cycle=job.request_cycle,
                response_cycles=job.response_cycles,
                turnaround_cycles=job.turnaround_cycles,
            )
        if self.on_complete is not None:
            self.on_complete(context.task_id, job)

    # -- instruction handling -----------------------------------------------------

    def _handle_real(self, context: TaskContext, instruction: Instruction) -> None:
        if context.in_recovery:
            context.in_recovery = False
        if (
            instruction.opcode == Opcode.SAVE
            and instruction.save_id != NO_SAVE_ID
            and instruction.save_id == context.save_id
        ):
            rewritten = self._rewrite_save(context, instruction)
            context.clear_save_state()
            if rewritten is None:
                context.instr_index += 1
                return
            instruction = rewritten
        self._execute(context, instruction)
        context.instr_index += 1

    def _rewrite_save(
        self, context: TaskContext, instruction: Instruction
    ) -> Instruction | None:
        """Trim a SAVE by the channels its VIR_SAVE already stored."""
        remaining = instruction.chs - context.saved_chs
        if remaining < 0:
            raise IauError(
                f"task {context.task_id}: SaveLength {context.saved_chs} exceeds "
                f"SAVE window of {instruction.chs} channels"
            )
        if remaining == 0:
            return None  # everything already in DDR: drop the SAVE
        bytes_per_channel = instruction.length // instruction.chs
        return instruction.with_channel_range(
            ch0=instruction.ch0 + context.saved_chs,
            chs=remaining,
            length=bytes_per_channel * remaining,
        )

    def _handle_virtual(self, context: TaskContext, instruction: Instruction) -> None:
        is_recovery_load = instruction.opcode in (Opcode.VIR_LOAD_D, Opcode.VIR_LOAD_W)
        if context.in_recovery and is_recovery_load:
            # Resuming: materialize the recovery loads (this is t4).
            cycles = self._execute(context, instruction.materialized())
            self.restore_cycles += cycles
            if self.bus is not None:
                self._emit(
                    EventKind.VI_EXPAND,
                    cycle=self.clock - cycles,
                    task_id=context.task_id,
                    layer_id=instruction.layer_id,
                    duration=cycles,
                    phase="recovery",
                    opcode=instruction.opcode.name,
                )
            context.instr_index += 1
            return
        if context.in_recovery and not is_recovery_load:
            context.in_recovery = False

        can_switch = (
            instruction.is_switch_point
            and self._preempting_task(context) is not None
        )
        if self.faults is not None and instruction.is_switch_point:
            if can_switch and self.faults.fires(FaultSite.IAU_DROP_PREEMPT):
                # Interrupt line glitches low: the pending preemption is not
                # seen here; it fires at the next switch point instead.
                can_switch = False
                self._inject(
                    FaultSite.IAU_DROP_PREEMPT,
                    task_id=context.task_id,
                    program_index=context.instr_index,
                )
            elif not can_switch and self.faults.fires(FaultSite.IAU_SPURIOUS_PREEMPT):
                # Interrupt line glitches high: back up and switch away with
                # no higher-priority work, paying backup + recovery.
                can_switch = True
                self._inject(
                    FaultSite.IAU_SPURIOUS_PREEMPT,
                    task_id=context.task_id,
                    program_index=context.instr_index,
                )
        if not can_switch:
            context.instr_index += 1  # discard: no interrupt pending here
            return
        self._preempt_at(context, instruction)

    def _preempt_at(self, context: TaskContext, instruction: Instruction) -> None:
        """Perform the interrupt encoded by a virtual instruction."""
        backup_transfer_cycles = 0
        if instruction.opcode == Opcode.VIR_SAVE:
            already = context.saved_chs if context.save_id == instruction.save_id else 0
            backup_chs = instruction.chs - already
            if backup_chs > 0:
                bytes_per_channel = instruction.length // instruction.chs
                backup = instruction.materialized().with_channel_range(
                    ch0=instruction.ch0 + already,
                    chs=backup_chs,
                    length=bytes_per_channel * backup_chs,
                )
                backup_transfer_cycles = self._execute(context, backup)
                self.backup_cycles += backup_transfer_cycles
            context.save_id = instruction.save_id
            context.saved_chs = instruction.chs
            if self.faults is not None:
                self._take_checkpoint(context, instruction)
            context.instr_index += 1  # resume at the recovery loads that follow
            context.in_recovery = True
        elif instruction.opcode in (Opcode.VIR_LOAD_D, Opcode.VIR_LOAD_W):
            # Interrupt point after a SAVE: nothing to back up; on resume the
            # recovery loads (starting with this one) re-execute.
            context.in_recovery = True
        elif instruction.opcode == Opcode.VIR_BARRIER:
            context.instr_index += 1  # free switch point: nothing to recover
        else:  # pragma: no cover
            raise IauError(f"unexpected virtual opcode {instruction.opcode.name}")
        self.core.invalidate()
        self.current = None
        if self.bus is not None:
            winner = self._preempting_task(context)
            self._emit(
                EventKind.VI_EXPAND,
                cycle=self.clock - backup_transfer_cycles,
                task_id=context.task_id,
                layer_id=instruction.layer_id,
                duration=backup_transfer_cycles,
                phase="backup",
                opcode=instruction.opcode.name,
            )
            self._emit(
                EventKind.PREEMPT_BEGIN,
                task_id=context.task_id,
                by=None if winner is None else winner.task_id,
                backup_cycles=backup_transfer_cycles,
            )

    # -- checkpoints & fault helpers ------------------------------------------

    def _inject(self, site: FaultSite, **detail: Any) -> None:
        """Record one fired fault with the plan and mirror it on the bus."""
        assert self.faults is not None  # only an armed plan can fire
        self.faults.record(site, self.clock, **detail)
        if self.bus is not None:
            self._emit(EventKind.FAULT_INJECT, site=site.value, **detail)

    def _take_checkpoint(self, context: TaskContext, instruction: Instruction) -> None:
        """CRC the Vir_SAVE context just written to DDR (then maybe corrupt it).

        Called with ``instr_index`` still pointing at the VIR_SAVE.  The CRC
        covers the *whole* saved window ``[ch0, ch0 + chs)`` — including the
        part an earlier VIR_SAVE of the same section stored — because that is
        exactly what the recovery loads will read back.
        """
        layer = context.compiled.layer_config(instruction.layer_id)
        checkpoint = Checkpoint(
            instr_index=context.instr_index,
            save_id=context.save_id,
            saved_chs=context.saved_chs,
            region_name=layer.output_region,
            row0=instruction.row0,
            rows=instruction.rows,
            ch0=instruction.ch0,
            chs=instruction.chs,
            crc=0,
        )
        checkpoint.crc = self._checkpoint_crc(checkpoint)
        context.checkpoint = checkpoint
        assert self.faults is not None  # callers gate on an armed plan
        if self.faults.fires(FaultSite.CHECKPOINT_CORRUPT):
            self._corrupt_checkpoint(context, checkpoint)

    def _checkpoint_crc(self, checkpoint: Checkpoint) -> int:
        region = self.core.ddr.region(checkpoint.region_name)
        view = region.array[
            checkpoint.row0 : checkpoint.row0 + checkpoint.rows,
            :,
            checkpoint.ch0 : checkpoint.ch0 + checkpoint.chs,
        ]
        return zlib.crc32(np.ascontiguousarray(view).tobytes())

    def _corrupt_checkpoint(self, context: TaskContext, checkpoint: Checkpoint) -> None:
        """The backup burst writes a bad word with consistent ECC: only the
        checkpoint CRC can catch it, at the task's next resume."""
        region = self.core.ddr.region(checkpoint.region_name)
        view = region.array[
            checkpoint.row0 : checkpoint.row0 + checkpoint.rows,
            :,
            checkpoint.ch0 : checkpoint.ch0 + checkpoint.chs,
        ]
        assert self.faults is not None  # only an armed plan corrupts
        index = self.faults.draw_index(FaultSite.CHECKPOINT_CORRUPT, view.size)
        coords = np.unravel_index(index, view.shape)
        view[coords] = ~view[coords]
        self._inject(
            FaultSite.CHECKPOINT_CORRUPT,
            task_id=context.task_id,
            program_index=checkpoint.instr_index,
        )

    def _verify_checkpoint(self, context: TaskContext) -> None:
        """Verify the pending Vir_SAVE context on resume; roll back on mismatch.

        Retries are bounded per job by the plan's ``max_checkpoint_retries``;
        exhausting the budget raises :class:`~repro.errors.CheckpointError`
        (detected-fatal, never silent).
        """
        checkpoint = context.checkpoint
        assert checkpoint is not None  # the caller checks before verifying
        context.checkpoint = None
        if self._checkpoint_crc(checkpoint) == checkpoint.crc:
            checkpoint.verified = True
            context.good_checkpoint = checkpoint
            return
        if self.bus is not None:
            self._emit(
                EventKind.FAULT_DETECT,
                task_id=context.task_id,
                site=FaultSite.CHECKPOINT_CORRUPT.value,
                program_index=checkpoint.instr_index,
            )
        context.checkpoint_retries += 1
        if context.current_job is not None:
            # The retry count survives on the record even if the job later
            # completes (or the run dies): campaigns and the serving layer
            # read it from there, not from the transient context.
            context.current_job.checkpoint_retries = context.checkpoint_retries
        limit = self.faults.max_checkpoint_retries if self.faults is not None else 1
        if self.bus is not None:
            self._emit(
                EventKind.CHECKPOINT_RETRY,
                task_id=context.task_id,
                attempt=context.checkpoint_retries,
                budget=limit,
                program_index=checkpoint.instr_index,
            )
        if context.checkpoint_retries > limit:
            raise CheckpointError(
                f"task {context.task_id}: checkpoint at instruction "
                f"{checkpoint.instr_index} failed CRC verification "
                f"{context.checkpoint_retries} times (budget {limit})",
                attempts=context.checkpoint_retries,
            )
        self._rollback(context, checkpoint)

    def _rollback(self, context: TaskContext, failed: Checkpoint) -> None:
        """Re-execute from the last good checkpoint (or the job's start)."""
        good = context.good_checkpoint
        if good is not None and self._checkpoint_crc(good) != good.crc:
            # The corruption reaches into the rollback target itself.
            context.good_checkpoint = good = None
        if good is not None:
            context.instr_index = good.instr_index + 1
            context.save_id = good.save_id
            context.saved_chs = good.saved_chs
            context.in_recovery = True
        else:
            context.instr_index = 0
            context.clear_save_state()
            context.in_recovery = False
        self.core.invalidate()
        self.num_rollbacks += 1
        if self.bus is not None:
            self._emit(
                EventKind.FAULT_RECOVER,
                task_id=context.task_id,
                site=FaultSite.CHECKPOINT_CORRUPT.value,
                action="rollback",
                from_index=failed.instr_index,
                to_index=context.instr_index,
            )

    def _execute(self, context: TaskContext, instruction: Instruction) -> int:
        layer = context.compiled.layer_config(instruction.layer_id)
        if self.bus is not None:
            self.bus.advance(self.clock)  # stamp core-side DDR bursts correctly
        cycles = self.core.execute(instruction, layer)
        if self.bus is not None:
            self._emit(
                EventKind.INSTR_RETIRE,
                task_id=context.task_id,
                layer_id=instruction.layer_id,
                duration=cycles,
                opcode=instruction.opcode.name,
                program_index=context.instr_index,
            )
        self.clock += cycles
        context.busy_cycles += cycles
        return cycles
