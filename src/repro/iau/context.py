"""Per-task state of the Instruction Arrangement Unit.

The paper's IAU keeps, for each of four task slots: ``InstrAddr`` (resume
point), ``InputOffset``/``OutputOffset`` (software-configured I/O bases) and
``SaveID``/``SaveAddr``/``SaveLength`` (the interrupt-status registers that
drive SAVE rewriting).  Task 0 has the highest priority and is never
interrupted.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.compiler.compile import CompiledNetwork
from repro.errors import IauError
from repro.isa.instructions import NO_SAVE_ID
from repro.isa.program import Program


@dataclass
class JobRecord:
    """Lifecycle of one inference request on one task slot."""

    task_id: int
    request_cycle: int
    start_cycle: int | None = None
    complete_cycle: int | None = None

    @property
    def response_cycles(self) -> int:
        """Request-to-first-instruction latency (the paper's t_latency)."""
        if self.start_cycle is None:
            raise IauError("job has not started yet")
        return self.start_cycle - self.request_cycle

    @property
    def turnaround_cycles(self) -> int:
        if self.complete_cycle is None:
            raise IauError("job has not completed yet")
        return self.complete_cycle - self.request_cycle


@dataclass
class TaskContext:
    """One IAU task slot."""

    task_id: int
    compiled: CompiledNetwork
    program: Program
    #: InstrAddr — next instruction to translate.
    instr_index: int = 0
    #: Software-configured base offsets (modelled registers; the runtime
    #: writes input data directly into the task's input region instead).
    input_offset: int = 0
    output_offset: int = 0
    #: SaveID / SaveLength registers: channels already stored for a section.
    save_id: int = NO_SAVE_ID
    saved_chs: int = 0
    #: True while re-executing the virtual recovery loads after a resume.
    in_recovery: bool = False
    #: Whether a job is currently in flight on this slot.
    active: bool = False
    #: CPU-like interrupts snapshot the whole core state here.
    snapshot: object | None = None
    #: Pending (not yet started) requests.
    queue: deque[JobRecord] = field(default_factory=deque)
    #: The in-flight job's record.
    current_job: JobRecord | None = None
    #: Completed jobs, oldest first.
    completed: list[JobRecord] = field(default_factory=list)
    #: Cycles spent executing this task's instructions (incl. fetches).
    busy_cycles: int = 0

    @property
    def runnable(self) -> bool:
        return self.active or bool(self.queue)

    def enqueue(self, record: JobRecord) -> None:
        self.queue.append(record)

    def begin_next_job(self) -> JobRecord:
        if self.active:
            raise IauError(f"task {self.task_id} already has a job in flight")
        if not self.queue:
            raise IauError(f"task {self.task_id} has no queued job to begin")
        self.current_job = self.queue.popleft()
        self.active = True
        self.instr_index = 0
        self.in_recovery = False
        self.save_id = NO_SAVE_ID
        self.saved_chs = 0
        self.snapshot = None
        return self.current_job

    def finish_job(self, clock: int) -> JobRecord:
        if not self.active or self.current_job is None:
            raise IauError(f"task {self.task_id} has no job to finish")
        job = self.current_job
        job.complete_cycle = clock
        self.completed.append(job)
        self.current_job = None
        self.active = False
        self.instr_index = 0
        self.in_recovery = False
        self.save_id = NO_SAVE_ID
        self.saved_chs = 0
        self.snapshot = None
        return job

    def clear_save_state(self) -> None:
        self.save_id = NO_SAVE_ID
        self.saved_chs = 0
