"""Per-task state of the Instruction Arrangement Unit.

The paper's IAU keeps, for each of four task slots: ``InstrAddr`` (resume
point), ``InputOffset``/``OutputOffset`` (software-configured I/O bases) and
``SaveID``/``SaveAddr``/``SaveLength`` (the interrupt-status registers that
drive SAVE rewriting).  Task 0 has the highest priority and is never
interrupted.
"""

from __future__ import annotations

import copy
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.compiler.compile import CompiledNetwork
from repro.errors import IauError
from repro.faults.plan import DeadlineMissed
from repro.isa.instructions import NO_SAVE_ID
from repro.isa.program import Program


@dataclass
class JobRecord:
    """Lifecycle of one inference request on one task slot."""

    task_id: int
    request_cycle: int
    start_cycle: int | None = None
    complete_cycle: int | None = None
    #: True when the degradation policy ran this job on its down-tiered
    #: program variant.
    degraded: bool = False
    #: Typed completion outcome beyond plain success (e.g.
    #: :class:`~repro.faults.plan.DeadlineMissed`); ``None`` when nominal.
    outcome: object | None = None
    #: Checkpoint CRC verifications that failed (and were retried) while
    #: this job ran — campaigns assert the retry budget from here.
    checkpoint_retries: int = 0

    @property
    def deadline_missed(self) -> bool:
        """True only for a watchdog miss — other typed outcomes (e.g. an
        ``AdmissionDenied``) are not deadline misses."""
        return isinstance(self.outcome, DeadlineMissed)

    @property
    def response_cycles(self) -> int:
        """Request-to-first-instruction latency (the paper's t_latency)."""
        if self.start_cycle is None:
            raise IauError("job has not started yet")
        return self.start_cycle - self.request_cycle

    @property
    def turnaround_cycles(self) -> int:
        if self.complete_cycle is None:
            raise IauError("job has not completed yet")
        return self.complete_cycle - self.request_cycle


@dataclass
class Checkpoint:
    """CRC-guarded record of one Vir_SAVE interrupt context.

    Created when a VIR_SAVE backs up a partial section to DDR; verified
    against the DDR contents when the task resumes (Vir_LOAD path).  A
    verified checkpoint becomes the task's rollback target: re-execution
    restarts at ``instr_index + 1`` (the recovery loads) with the recorded
    ``save_id`` / ``saved_chs`` registers.
    """

    #: Program index of the VIR_SAVE this checkpoint was taken at.
    instr_index: int
    save_id: int
    saved_chs: int
    #: DDR region + slice the backed-up context occupies.
    region_name: str
    row0: int
    rows: int
    ch0: int
    chs: int
    #: CRC32 of the slice bytes at backup time.
    crc: int
    verified: bool = False


@dataclass
class TaskContext:
    """One IAU task slot."""

    task_id: int
    compiled: CompiledNetwork
    program: Program
    #: Criticality level (0 = highest).  Defaults to the slot index, which
    #: reproduces the hardware's strict slot-priority arbitration; giving two
    #: slots the same level makes them peers the QoS layer may EDF-order.
    priority: int | None = None
    #: InstrAddr — next instruction to translate.
    instr_index: int = 0
    #: Software-configured base offsets (modelled registers; the runtime
    #: writes input data directly into the task's input region instead).
    input_offset: int = 0
    output_offset: int = 0
    #: SaveID / SaveLength registers: channels already stored for a section.
    save_id: int = NO_SAVE_ID
    saved_chs: int = 0
    #: True while re-executing the virtual recovery loads after a resume.
    in_recovery: bool = False
    #: Whether a job is currently in flight on this slot.
    active: bool = False
    #: CPU-like interrupts snapshot the whole core state here.
    snapshot: object | None = None
    #: Pending (not yet started) requests.
    queue: deque[JobRecord] = field(default_factory=deque)
    #: The in-flight job's record.
    current_job: JobRecord | None = None
    #: Completed jobs, oldest first.
    completed: list[JobRecord] = field(default_factory=list)
    #: Cycles spent executing this task's instructions (incl. fetches).
    busy_cycles: int = 0
    #: Watchdog deadline (request -> complete bound, cycles); None disables.
    deadline_cycles: int | None = None
    #: Checkpoint awaiting CRC verification at the next resume.
    checkpoint: Checkpoint | None = None
    #: Last checkpoint whose CRC verified OK (the rollback target).
    good_checkpoint: Checkpoint | None = None
    #: Rollbacks performed for the current job (bounded by the fault plan).
    checkpoint_retries: int = 0
    #: Degradation: the program the job was attached with, the down-tiered
    #: variant, and whether the next job should use it.
    base_program: Program | None = None
    degraded_program: Program | None = None
    want_degraded: bool = False

    def __post_init__(self) -> None:
        self.base_program = self.program
        if self.priority is None:
            self.priority = self.task_id

    @property
    def runnable(self) -> bool:
        return self.active or bool(self.queue)

    @property
    def head_job(self) -> JobRecord | None:
        """The in-flight job, else the oldest queued one, else None."""
        if self.active:
            return self.current_job
        return self.queue[0] if self.queue else None

    def head_deadline(self) -> float:
        """Absolute deadline of the head job (inf when undeclared/idle)."""
        job = self.head_job
        if job is None or self.deadline_cycles is None:
            return float("inf")
        return job.request_cycle + self.deadline_cycles

    @property
    def pending_jobs(self) -> int:
        """Jobs queued or in flight (the degradation policy's load signal)."""
        return (1 if self.active else 0) + len(self.queue)

    def enqueue(self, record: JobRecord) -> None:
        self.queue.append(record)

    def begin_next_job(self) -> JobRecord:
        if self.active:
            raise IauError(f"task {self.task_id} already has a job in flight")
        if not self.queue:
            raise IauError(f"task {self.task_id} has no queued job to begin")
        self.current_job = self.queue.popleft()
        self.active = True
        if self.want_degraded and self.degraded_program is not None:
            self.program = self.degraded_program
            self.current_job.degraded = True
        else:
            self.program = self.base_program
        self.instr_index = 0
        self.in_recovery = False
        self.save_id = NO_SAVE_ID
        self.saved_chs = 0
        self.snapshot = None
        self.checkpoint = None
        self.good_checkpoint = None
        self.checkpoint_retries = 0
        return self.current_job

    def finish_job(self, clock: int) -> JobRecord:
        if not self.active or self.current_job is None:
            raise IauError(f"task {self.task_id} has no job to finish")
        job = self.current_job
        job.complete_cycle = clock
        self.completed.append(job)
        self.current_job = None
        self.active = False
        self.instr_index = 0
        self.in_recovery = False
        self.save_id = NO_SAVE_ID
        self.saved_chs = 0
        self.snapshot = None
        self.checkpoint = None
        self.good_checkpoint = None
        self.checkpoint_retries = 0
        return job

    def clear_save_state(self) -> None:
        self.save_id = NO_SAVE_ID
        self.saved_chs = 0

    # -- snapshot/restore ---------------------------------------------------

    def variant_key(self, program: Program) -> str:
        """The vi-mode key of ``program`` within this task's compiled network.

        Programs are captured *by reference key*, not by value: the restore
        side resolves the key against its own (identical) compiled network,
        which keeps snapshots small and guarantees the restored context runs
        the exact Program object its ``execution_meta`` cache is keyed on.
        """
        for key, candidate in self.compiled.programs.items():
            if candidate is program:
                return key
        raise IauError(
            f"task {self.task_id}: program is not a variant of its compiled "
            "network (cannot snapshot a hand-built program)"
        )

    def capture_state(self) -> dict[str, Any]:
        """Picklable mid-run state of this slot (registers, queue, jobs)."""
        # One deepcopy call preserves identity links between the queue, the
        # in-flight record and the completed list (memoised copy).
        jobs = copy.deepcopy(
            {
                "queue": list(self.queue),
                "current_job": self.current_job,
                "completed": self.completed,
            }
        )
        return {
            "program": self.variant_key(self.program),
            "base_program": self.variant_key(self.base_program),
            "degraded_program": (
                None
                if self.degraded_program is None
                else self.variant_key(self.degraded_program)
            ),
            "priority": self.priority,
            "instr_index": self.instr_index,
            "input_offset": self.input_offset,
            "output_offset": self.output_offset,
            "save_id": self.save_id,
            "saved_chs": self.saved_chs,
            "in_recovery": self.in_recovery,
            "active": self.active,
            "snapshot": copy.deepcopy(self.snapshot),
            "jobs": jobs,
            "busy_cycles": self.busy_cycles,
            "deadline_cycles": self.deadline_cycles,
            "checkpoints": copy.deepcopy((self.checkpoint, self.good_checkpoint)),
            "checkpoint_retries": self.checkpoint_retries,
            "want_degraded": self.want_degraded,
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        """Restore this slot from a captured state (copied, reusable)."""
        self.program = self.compiled.program_for(state["program"])
        self.base_program = self.compiled.program_for(state["base_program"])
        self.degraded_program = (
            None
            if state["degraded_program"] is None
            else self.compiled.program_for(state["degraded_program"])
        )
        self.priority = state["priority"]
        self.instr_index = state["instr_index"]
        self.input_offset = state["input_offset"]
        self.output_offset = state["output_offset"]
        self.save_id = state["save_id"]
        self.saved_chs = state["saved_chs"]
        self.in_recovery = state["in_recovery"]
        self.active = state["active"]
        self.snapshot = copy.deepcopy(state["snapshot"])
        jobs = copy.deepcopy(state["jobs"])
        self.queue = deque(jobs["queue"])
        self.current_job = jobs["current_job"]
        self.completed = jobs["completed"]
        self.busy_cycles = state["busy_cycles"]
        self.deadline_cycles = state["deadline_cycles"]
        self.checkpoint, self.good_checkpoint = copy.deepcopy(state["checkpoints"])
        self.checkpoint_retries = state["checkpoint_retries"]
        self.want_degraded = state["want_degraded"]
