"""Virtual-instruction insertion (the paper's compilation contribution).

Given the original LOAD/CALC/SAVE sequence, this pass:

1. assigns a ``save_id`` to every SAVE,
2. inserts an interrupt point **after every CALC_F** that is not immediately
   drained by its SAVE — a ``VIR_SAVE`` (backup of finalized-but-unsaved
   results, credited against the upcoming SAVE via its ``save_id``) followed
   by ``VIR_LOAD_D`` clones of the live input-tile loads (recovery),
3. inserts an interrupt point **after every SAVE** — ``VIR_LOAD_D`` recovery
   clones when the tile continues, or a free ``VIR_BARRIER`` when the next
   real instruction reloads anyway (next tile / next layer / end of program),

exactly the "interruptible after SAVE or CALC_F" policy of paper §IV-C, which
makes the extra interrupt cost *recovery-only* (t_cost = t4).

A second entry point builds the **layer-by-layer baseline**: interrupt points
only at layer boundaries (``VIR_BARRIER`` after each layer's last SAVE).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.errors import CompileError
from repro.isa.instructions import FLAG_SWITCH_POINT, NO_SAVE_ID, Instruction
from repro.isa.opcodes import Opcode

#: save_id values wrap below NO_SAVE_ID; pairing is always adjacent (a
#: VIR_SAVE is consumed by the very next SAVE) so reuse after wrap is safe.
_SAVE_ID_LIMIT = NO_SAVE_ID - 1


@dataclass(frozen=True)
class ViPolicy:
    """Interrupt-position selection (the paper's "selects the optimized
    interrupt positions in the original instruction sequence").

    The reference policy (the defaults) inserts a point after *every* CALC_F
    and SAVE.  ``calc_f_stride`` keeps only every k-th CALC_F point per layer
    — fewer points mean fewer virtual-instruction fetches (lower
    no-interrupt degradation) at the price of longer worst-case response.
    The post-SAVE and layer-boundary points are structural (their recovery
    information cannot be reconstructed later) and are always kept.
    """

    calc_f_stride: int = 1

    def __post_init__(self) -> None:
        if self.calc_f_stride < 1:
            raise CompileError(
                f"calc_f_stride must be >= 1, got {self.calc_f_stride}"
            )


#: Insert an interrupt point at every legal position (the paper's method).
DEFAULT_VI_POLICY = ViPolicy()


def insert_virtual_instructions(
    instructions: Sequence[Instruction],
    policy: ViPolicy = DEFAULT_VI_POLICY,
) -> list[Instruction]:
    """Produce the VI-ISA sequence from the original ISA (paper's VI method)."""
    annotated = _assign_save_ids(instructions)
    next_save = _next_save_indices(annotated)

    result: list[Instruction] = []
    active_loads: dict[int, Instruction] = {}
    current_layer = -1
    calc_f_count = 0
    for index, instruction in enumerate(annotated):
        if instruction.layer_id != current_layer:
            current_layer = instruction.layer_id
            active_loads.clear()
            calc_f_count = 0
        result.append(instruction)

        if instruction.opcode == Opcode.LOAD_D:
            # A new tile (or add-operand / channel-chunk) load supersedes the
            # previous one in the same operand slot.
            active_loads[instruction.flags] = instruction
            continue

        if instruction.opcode == Opcode.CALC_F:
            calc_f_count += 1
            following = annotated[index + 1] if index + 1 < len(annotated) else None
            if following is not None and following.opcode == Opcode.SAVE:
                continue  # the SAVE right after is itself an interrupt point
            if calc_f_count % policy.calc_f_stride != 0:
                continue  # thinned out by the selection policy
            save_index = next_save[index]
            if save_index is None:
                raise CompileError(
                    f"CALC_F at {index} has no covering SAVE — malformed lowering"
                )
            result.append(_vir_save_for(instruction, annotated[save_index]))
            # The trailing recovery loads are NOT switch points: the VIR_SAVE
            # is the entry to this interrupt point and owns the backup.
            result.extend(_recovery_loads(active_loads, switch_point=False))
            continue

        if instruction.opcode == Opcode.SAVE:
            following = annotated[index + 1] if index + 1 < len(annotated) else None
            if following is None:
                continue  # end of program: nothing left to pre-empt
            same_layer = following.layer_id == instruction.layer_id
            if same_layer and following.opcode != Opcode.LOAD_D:
                # After a SAVE nothing needs backup; the first recovery load
                # is the switch point and the rest replay behind it.
                result.extend(_recovery_loads(active_loads, switch_point=True))
            else:
                # Next instruction reloads its own state: a free barrier.
                result.append(
                    Instruction(
                        opcode=Opcode.VIR_BARRIER,
                        layer_id=instruction.layer_id,
                        flags=FLAG_SWITCH_POINT,
                    )
                )
    return result


def insert_layer_barriers(instructions: Sequence[Instruction]) -> list[Instruction]:
    """The layer-by-layer baseline: interrupt points only between layers."""
    result: list[Instruction] = []
    for instruction in instructions:
        result.append(instruction)
        if instruction.opcode == Opcode.SAVE and instruction.is_last_save_of_layer:
            result.append(
                Instruction(
                    opcode=Opcode.VIR_BARRIER,
                    layer_id=instruction.layer_id,
                    flags=FLAG_SWITCH_POINT,
                )
            )
    return result


def _assign_save_ids(instructions: Sequence[Instruction]) -> list[Instruction]:
    annotated: list[Instruction] = []
    counter = 0
    for instruction in instructions:
        if instruction.opcode == Opcode.SAVE:
            annotated.append(replace(instruction, save_id=counter))
            counter = (counter + 1) % _SAVE_ID_LIMIT
        else:
            annotated.append(instruction)
    return annotated


def _next_save_indices(instructions: Sequence[Instruction]) -> list[int | None]:
    """For each index, the index of the next SAVE at or after it."""
    next_save: list[int | None] = [None] * len(instructions)
    upcoming: int | None = None
    for index in range(len(instructions) - 1, -1, -1):
        if instructions[index].opcode == Opcode.SAVE:
            upcoming = index
        next_save[index] = upcoming
    return next_save


def _vir_save_for(calc_f: Instruction, save: Instruction) -> Instruction:
    """VIR_SAVE backing up all finalized groups of ``save``'s section so far."""
    finalized_chs = calc_f.ch0 + calc_f.chs - save.ch0
    if finalized_chs <= 0 or save.chs <= 0:
        raise CompileError(
            f"CALC_F channels [{calc_f.ch0}, {calc_f.ch0 + calc_f.chs}) fall outside "
            f"covering SAVE section [{save.ch0}, {save.ch0 + save.chs})"
        )
    bytes_per_channel = save.length // save.chs
    return Instruction(
        opcode=Opcode.VIR_SAVE,
        layer_id=save.layer_id,
        save_id=save.save_id,
        ddr_addr=save.ddr_addr,
        length=bytes_per_channel * finalized_chs,
        row0=save.row0,
        rows=save.rows,
        ch0=save.ch0,
        chs=finalized_chs,
        flags=FLAG_SWITCH_POINT,
    )


def _recovery_loads(
    active_loads: dict[int, Instruction], switch_point: bool
) -> list[Instruction]:
    """VIR_LOAD_D clones of the live tile loads, in load order.

    When ``switch_point`` is set, the *first* clone carries the switch-point
    flag (the pack must be entered from its head so every operand reloads).
    """
    clones = [
        replace(load, opcode=Opcode.VIR_LOAD_D)
        for load in sorted(active_loads.values(), key=lambda load: load.flags)
    ]
    if switch_point and clones:
        clones[0] = replace(clones[0], flags=clones[0].flags | FLAG_SWITCH_POINT)
    return clones
