"""Lowering: network graph -> layer configs -> original ISA.

This is the "original compiler" stage of the paper's Fig. 1(c): it translates
the network topology plus quantization information into the original
(non-interruptible) LOAD/CALC/SAVE sequence.  The virtual-instruction pass
(:mod:`repro.compiler.vi_pass`) then decorates that sequence.
"""

from __future__ import annotations

from repro.compiler.allocator import NetworkLayout
from repro.compiler.layer_config import LayerConfig
from repro.compiler.tiling import LayerPlan, plan_layer
from repro.compiler.weights import DEFAULT_SHIFT, LayerQuantization
from repro.errors import CompileError
from repro.hw.config import AcceleratorConfig
from repro.isa.instructions import (
    FLAG_BIAS,
    FLAG_LAST_SAVE_OF_LAYER,
    FLAG_OPERAND_B,
    FLAG_RELU,
    Instruction,
)
from repro.isa.opcodes import Opcode
from repro.nn.graph import NetworkGraph
from repro.nn.layers import (
    Add,
    Conv2d,
    DepthwiseConv2d,
    FullyConnected,
    GlobalPool,
    Input,
    Pool2d,
)


def build_layer_configs(
    graph: NetworkGraph,
    layout: NetworkLayout,
    quantization: dict[str, LayerQuantization],
) -> list[LayerConfig]:
    """Assign layer ids and translate each graph layer to a LayerConfig."""
    configs: list[LayerConfig] = []
    for layer in graph.layers:
        if isinstance(layer, Input):
            continue
        layer_id = len(configs)
        (in_shape, *rest) = graph.input_shapes_of(layer)
        out_shape = graph.shapes[layer.name]
        input_region = layout.feature_regions[layer.inputs[0]]
        output_region = layout.feature_regions[layer.name]
        shift = quantization[layer.name].shift if layer.name in quantization else DEFAULT_SHIFT
        common = dict(
            layer_id=layer_id,
            name=layer.name,
            in_shape=in_shape,
            out_shape=out_shape,
            input_region=input_region,
            output_region=output_region,
        )
        if isinstance(layer, Conv2d):
            weight_region, bias_region = layout.parameter_regions[layer.name]
            configs.append(
                LayerConfig(
                    kind="conv",
                    kernel=layer.kernel,
                    stride=layer.stride,
                    padding=layer.padding,
                    relu=layer.relu,
                    bias=layer.bias,
                    shift=shift,
                    weight_region=weight_region,
                    bias_region=bias_region,
                    **common,
                )
            )
        elif isinstance(layer, DepthwiseConv2d):
            weight_region, bias_region = layout.parameter_regions[layer.name]
            configs.append(
                LayerConfig(
                    kind="depthwise",
                    kernel=layer.kernel,
                    stride=layer.stride,
                    padding=layer.padding,
                    relu=layer.relu,
                    bias=layer.bias,
                    shift=shift,
                    weight_region=weight_region,
                    bias_region=bias_region,
                    **common,
                )
            )
        elif isinstance(layer, FullyConnected):
            # FC == convolution whose kernel is the full input extent.
            weight_region, bias_region = layout.parameter_regions[layer.name]
            configs.append(
                LayerConfig(
                    kind="conv",
                    kernel=(in_shape.height, in_shape.width),
                    stride=(1, 1),
                    padding=(0, 0),
                    relu=layer.relu,
                    bias=layer.bias,
                    shift=shift,
                    weight_region=weight_region,
                    bias_region=bias_region,
                    **common,
                )
            )
        elif isinstance(layer, Pool2d):
            configs.append(
                LayerConfig(
                    kind="pool",
                    kernel=layer.kernel,
                    stride=layer.stride,
                    padding=layer.padding,
                    mode=layer.mode,
                    **common,
                )
            )
        elif isinstance(layer, Add):
            (second_shape,) = rest
            configs.append(
                LayerConfig(
                    kind="add",
                    relu=layer.relu,
                    in2_shape=second_shape,
                    input2_region=layout.feature_regions[layer.inputs[1]],
                    **common,
                )
            )
        elif isinstance(layer, GlobalPool):
            configs.append(
                LayerConfig(kind="global", mode=layer.mode, gem_p=layer.p, **common)
            )
        else:
            raise CompileError(f"layer {layer.name!r}: no lowering for {layer.kind}")
    return configs


def lower_network(
    config: AcceleratorConfig,
    layer_configs: list[LayerConfig],
    layout: NetworkLayout,
) -> tuple[list[Instruction], list[LayerPlan]]:
    """Emit the original-ISA sequence for the whole network."""
    instructions: list[Instruction] = []
    plans: list[LayerPlan] = []
    for layer in layer_configs:
        plan = plan_layer(config, layer)
        plans.append(plan)
        instructions.extend(_lower_layer(config, layer, plan, layout))
    if not instructions:
        raise CompileError("network lowered to an empty instruction stream")
    return instructions, plans


def _lower_layer(
    config: AcceleratorConfig,
    layer: LayerConfig,
    plan: LayerPlan,
    layout: NetworkLayout,
) -> list[Instruction]:
    ddr = layout.ddr
    input_base = ddr.region(layer.input_region).base
    output_base = ddr.region(layer.output_region).base
    weight_base = ddr.region(layer.weight_region).base if layer.weight_region else 0
    out_width = layer.out_shape.width
    emitted: list[Instruction] = []

    saves: list[int] = []  # indices of SAVE instructions (to flag the last one)
    for tile in plan.tiles:
        emitted.extend(_tile_loads(layer, tile, input_base, ddr))
        for stripe in tile.stripes:
            for section in stripe.sections:
                for group in section.groups:
                    emitted.extend(
                        _blob_instructions(config, layer, stripe, group, weight_base)
                    )
                saves.append(len(emitted))
                emitted.append(
                    Instruction(
                        opcode=Opcode.SAVE,
                        layer_id=layer.layer_id,
                        ddr_addr=output_base,
                        length=stripe.out_rows * out_width * section.chs,
                        row0=stripe.out_row0,
                        rows=stripe.out_rows,
                        ch0=section.ch0,
                        chs=section.chs,
                    )
                )
    last_save = saves[-1]
    emitted[last_save] = Instruction(
        opcode=Opcode.SAVE,
        layer_id=layer.layer_id,
        ddr_addr=emitted[last_save].ddr_addr,
        length=emitted[last_save].length,
        row0=emitted[last_save].row0,
        rows=emitted[last_save].rows,
        ch0=emitted[last_save].ch0,
        chs=emitted[last_save].chs,
        flags=FLAG_LAST_SAVE_OF_LAYER,
    )
    return emitted


def _tile_loads(layer: LayerConfig, tile, input_base: int, ddr) -> list[Instruction]:
    """LOAD_D instruction(s) bringing a tile's input rows on chip."""
    width = layer.in_shape.width
    loads = [
        Instruction(
            opcode=Opcode.LOAD_D,
            layer_id=layer.layer_id,
            ddr_addr=input_base,
            length=tile.in_rows * width * tile.in_chs,
            row0=tile.in_row0,
            rows=tile.in_rows,
            ch0=tile.in_ch0,
            chs=tile.in_chs,
        )
    ]
    if layer.kind == "add":
        second_base = ddr.region(layer.input2_region).base
        loads.append(
            Instruction(
                opcode=Opcode.LOAD_D,
                layer_id=layer.layer_id,
                ddr_addr=second_base,
                length=tile.in_rows * width * tile.in_chs,
                row0=tile.in_row0,
                rows=tile.in_rows,
                ch0=tile.in_ch0,
                chs=tile.in_chs,
                flags=FLAG_OPERAND_B,
            )
        )
    return loads


def _blob_instructions(
    config: AcceleratorConfig,
    layer: LayerConfig,
    stripe,
    group,
    weight_base: int,
) -> list[Instruction]:
    """LOAD_W + CALC_I*/CALC_F for one CalcBlob."""
    final_flags = (FLAG_RELU if layer.relu else 0) | (FLAG_BIAS if layer.bias else 0)
    common = dict(
        layer_id=layer.layer_id,
        row0=stripe.out_row0,
        rows=stripe.out_rows,
        ch0=group.ch0,
        chs=group.chs,
    )
    emitted: list[Instruction] = []

    if layer.kind == "conv":
        kh, kw = layer.kernel
        for chunk_index, (chunk0, chunk_len) in enumerate(group.weight_chunks):
            weight_bytes = kh * kw * chunk_len * group.chs
            if chunk_index == 0 and layer.bias:
                weight_bytes += 4 * group.chs
            emitted.append(
                Instruction(
                    opcode=Opcode.LOAD_W,
                    ddr_addr=weight_base,
                    length=weight_bytes,
                    in_ch0=chunk0,
                    in_chs=chunk_len,
                    **common,
                )
            )
            chunk_steps = [
                (start, min(config.para_in, chunk0 + chunk_len - start))
                for start in range(chunk0, chunk0 + chunk_len, config.para_in)
            ]
            for step_index, (in_ch0, in_chs) in enumerate(chunk_steps):
                is_last_chunk = chunk_index == len(group.weight_chunks) - 1
                is_final = is_last_chunk and step_index == len(chunk_steps) - 1
                emitted.append(
                    Instruction(
                        opcode=Opcode.CALC_F if is_final else Opcode.CALC_I,
                        in_ch0=in_ch0,
                        in_chs=in_chs,
                        shift=layer.shift if is_final else 0,
                        flags=final_flags if is_final else 0,
                        **common,
                    )
                )
        return emitted

    if layer.kind == "depthwise":
        kh, kw = layer.kernel
        weight_bytes = kh * kw * group.chs + (4 * group.chs if layer.bias else 0)
        emitted.append(
            Instruction(
                opcode=Opcode.LOAD_W,
                ddr_addr=weight_base,
                length=weight_bytes,
                in_ch0=group.ch0,
                in_chs=group.chs,
                **common,
            )
        )
        emitted.append(
            Instruction(
                opcode=Opcode.CALC_F,
                in_ch0=group.ch0,
                in_chs=group.chs,
                shift=layer.shift,
                flags=final_flags,
                **common,
            )
        )
        return emitted

    # pool / add / global: one CALC_F over the group's own channels.
    emitted.append(
        Instruction(
            opcode=Opcode.CALC_F,
            in_ch0=group.ch0,
            in_chs=group.chs,
            shift=0,
            flags=FLAG_RELU if (layer.kind == "add" and layer.relu) else 0,
            **common,
        )
    )
    return emitted
