"""Compile-time statistics used by examples and the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.compile import CompiledNetwork
from repro.hw.timing import blob_cycles, calc_cycles, transfer_cycles
from repro.isa.opcodes import Opcode


@dataclass(frozen=True)
class ProgramStats:
    """Instruction-count and estimated-cycle breakdown of one program."""

    instructions: int
    virtual: int
    loads: int
    calcs: int
    saves: int
    estimated_cycles: int


def program_stats(compiled: CompiledNetwork, vi_mode: str = "vi") -> ProgramStats:
    """Count instructions and estimate straight-line cycles for a program."""
    program = compiled.program_for(vi_mode)
    loads = calcs = saves = 0
    cycles = 0
    config = compiled.config
    for instruction in program:
        if instruction.is_virtual:
            continue
        if instruction.opcode in (Opcode.LOAD_W, Opcode.LOAD_D):
            loads += 1
            cycles += transfer_cycles(config, instruction.length)
        elif instruction.is_calc:
            calcs += 1
            layer = compiled.layer_config(instruction.layer_id)
            if layer.kind == "global":
                cycles += layer.in_shape.height * layer.in_shape.width
            else:
                cycles += calc_cycles(config, layer.out_shape.width, layer.kernel)
        elif instruction.opcode == Opcode.SAVE:
            saves += 1
            cycles += transfer_cycles(config, instruction.length)
    cycles += config.instruction_fetch_cycles * len(program)
    return ProgramStats(
        instructions=len(program),
        virtual=program.num_virtual(),
        loads=loads,
        calcs=calcs,
        saves=saves,
        estimated_cycles=cycles,
    )


def per_layer_worst_wait(compiled: CompiledNetwork) -> dict[str, int]:
    """Worst-case VI-method wait (one CalcBlob, Eq. 1 numerator) per conv layer."""
    waits: dict[str, int] = {}
    for layer in compiled.layer_configs:
        if layer.kind != "conv":
            continue
        waits[layer.name] = blob_cycles(
            compiled.config,
            layer.in_channels,
            layer.out_shape.width,
            layer.kernel,
        )
    return waits
