"""Compiler: graph -> DDR layout -> original ISA -> VI-ISA."""

from repro.compiler.allocator import NetworkLayout, allocate_network
from repro.compiler.cache import (
    CACHE_ENV_VAR,
    CacheEntry,
    CacheStats,
    CompileCache,
    cache_key,
    compiler_fingerprint,
    default_cache,
)
from repro.compiler.compile import VI_MODES, CompiledNetwork, compile_network
from repro.compiler.layer_config import LAYER_KINDS, LayerConfig
from repro.compiler.lowering import build_layer_configs, lower_network
from repro.compiler.report import ProgramStats, per_layer_worst_wait, program_stats
from repro.compiler.tiling import (
    GroupPlan,
    LayerPlan,
    SectionPlan,
    StripePlan,
    TilePlan,
    plan_layer,
)
from repro.compiler.vi_pass import (
    DEFAULT_VI_POLICY,
    ViPolicy,
    insert_layer_barriers,
    insert_virtual_instructions,
)
from repro.compiler.weights import (
    ACTIVATION_FRAC_BITS,
    DEFAULT_SHIFT,
    LayerQuantization,
    initialize_parameters,
)

__all__ = [
    "ACTIVATION_FRAC_BITS",
    "CACHE_ENV_VAR",
    "CacheEntry",
    "CacheStats",
    "CompileCache",
    "CompiledNetwork",
    "cache_key",
    "compiler_fingerprint",
    "default_cache",
    "DEFAULT_SHIFT",
    "DEFAULT_VI_POLICY",
    "ViPolicy",
    "GroupPlan",
    "LAYER_KINDS",
    "LayerConfig",
    "LayerPlan",
    "LayerQuantization",
    "NetworkLayout",
    "ProgramStats",
    "SectionPlan",
    "StripePlan",
    "TilePlan",
    "VI_MODES",
    "allocate_network",
    "build_layer_configs",
    "compile_network",
    "initialize_parameters",
    "insert_layer_barriers",
    "insert_virtual_instructions",
    "lower_network",
    "per_layer_worst_wait",
    "plan_layer",
    "program_stats",
]
