"""Synthetic weight generation and quantization for compiled networks.

The paper's flow consumes trained Caffe models; interrupt behaviour is
independent of the weight values, so this reproduction generates seeded
He-initialised weights, calibrates an 8-bit fixed-point format per layer
(as Angel-Eye's quantizer does on the trained model) and writes the
quantized codes into the weight/bias DDR regions.

All activations use one shared 8-bit format (``ACTIVATION_FRAC_BITS``
fractional bits), so the requantization shift of a layer is simply its
weight format's fractional bit count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compiler.allocator import NetworkLayout
from repro.nn.graph import NetworkGraph
from repro.nn.layers import Conv2d, DepthwiseConv2d, FullyConnected
from repro.quant.calibrate import choose_format
from repro.quant.fixed_point import ACTIVATION_FRAC_BITS, FixedPointFormat

#: Default shift when weights are left as zeros (timing-only compiles).
DEFAULT_SHIFT = 7


@dataclass(frozen=True)
class LayerQuantization:
    """Quantization decision for one weighted layer."""

    weight_format: FixedPointFormat
    shift: int


def initialize_parameters(
    graph: NetworkGraph,
    layout: NetworkLayout,
    mode: str = "random",
    seed: int = 0,
    percentile: float = 99.9,
) -> dict[str, LayerQuantization]:
    """Fill weight/bias regions; returns the per-layer quantization table.

    ``mode='random'`` generates and quantizes He-initialised weights;
    ``mode='zeros'`` leaves regions zeroed (fastest — used for timing-only
    experiments where data content is irrelevant).  ``percentile`` is the
    calibration coverage: 100 covers every weight (max-abs), lower values
    trade outlier clipping for one more bit of resolution.
    """
    if mode not in ("random", "zeros"):
        raise ValueError(f"mode must be 'random' or 'zeros', got {mode!r}")
    rng = np.random.default_rng(seed)
    table: dict[str, LayerQuantization] = {}
    for layer in graph.layers:
        if layer.name not in layout.parameter_regions:
            continue
        weight_region, bias_region = layout.parameter_regions[layer.name]
        weights = layout.ddr.region(weight_region).array
        biases = layout.ddr.region(bias_region).array
        if mode == "zeros":
            table[layer.name] = LayerQuantization(
                weight_format=FixedPointFormat(DEFAULT_SHIFT), shift=DEFAULT_SHIFT
            )
            continue
        fan_in = _fan_in(layer, weights.shape)
        real_weights = rng.normal(0.0, np.sqrt(2.0 / fan_in), size=weights.shape)
        weight_format = choose_format(real_weights, percentile=percentile)
        weights[...] = weight_format.quantize(real_weights)

        # Bias in accumulator scale: frac bits = activation + weight fracs.
        acc_frac = ACTIVATION_FRAC_BITS + weight_format.frac_bits
        real_bias = rng.normal(0.0, 0.1, size=biases.shape)
        biases[...] = np.rint(real_bias * 2.0**acc_frac).astype(np.int64).astype(np.int32)

        # Activations in == activations out => shift == weight frac bits.
        shift = max(weight_format.frac_bits, 0)
        table[layer.name] = LayerQuantization(weight_format=weight_format, shift=shift)
    return table


def _fan_in(layer, weight_shape: tuple[int, ...]) -> int:
    if isinstance(layer, Conv2d):
        kh, kw = layer.kernel
        return max(1, kh * kw * layer.in_channels)
    if isinstance(layer, DepthwiseConv2d):
        kh, kw = layer.kernel
        return max(1, kh * kw)
    if isinstance(layer, FullyConnected):
        return max(1, int(np.prod(weight_shape[:-1])))
    raise ValueError(f"layer {layer.name!r} has no weights")  # pragma: no cover
