"""DDR layout for a compiled network.

Every accelerator-visible tensor gets a named region:

* ``<net>/input`` — the network input feature map (written by the host),
* ``<net>/<layer>/out`` — each layer's output feature map,
* ``<net>/<layer>/weights`` and ``<net>/<layer>/bias`` — parameters.

Regions are backed by real numpy arrays so the functional simulation operates
on actual data; the base addresses are what the instruction stream carries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.ddr import Ddr
from repro.nn.graph import NetworkGraph
from repro.nn.layers import Conv2d, DepthwiseConv2d, FullyConnected, Input


@dataclass(frozen=True)
class NetworkLayout:
    """The allocated DDR plus the region names the compiler wired up."""

    ddr: Ddr
    input_region: str
    #: layer name -> feature map region name.
    feature_regions: dict[str, str]
    #: layer name -> (weight region, bias region) for weighted layers.
    parameter_regions: dict[str, tuple[str, str]]


def allocate_network(graph: NetworkGraph, base_addr: int = 0, capacity: int = 1 << 32) -> NetworkLayout:
    """Allocate all DDR regions for ``graph`` starting at ``base_addr``."""
    ddr = Ddr(capacity=capacity, base=base_addr)
    prefix = graph.name

    input_region = f"{prefix}/input"
    shape = graph.input_shape
    ddr.allocate(input_region, (shape.height, shape.width, shape.channels), np.int8)

    feature_regions: dict[str, str] = {graph.input_layer.name: input_region}
    parameter_regions: dict[str, tuple[str, str]] = {}
    for layer in graph.layers:
        if isinstance(layer, Input):
            continue
        out_shape = graph.shapes[layer.name]
        region = f"{prefix}/{layer.name}/out"
        ddr.allocate(region, (out_shape.height, out_shape.width, out_shape.channels), np.int8)
        feature_regions[layer.name] = region

        weight_shape = _weight_shape(graph, layer)
        if weight_shape is not None:
            weight_region = f"{prefix}/{layer.name}/weights"
            bias_region = f"{prefix}/{layer.name}/bias"
            ddr.allocate(weight_region, weight_shape, np.int8)
            ddr.allocate(bias_region, (out_shape.channels,), np.int32)
            parameter_regions[layer.name] = (weight_region, bias_region)

    return NetworkLayout(
        ddr=ddr,
        input_region=input_region,
        feature_regions=feature_regions,
        parameter_regions=parameter_regions,
    )


def _weight_shape(graph: NetworkGraph, layer) -> tuple[int, ...] | None:
    """DDR weight array shape for a layer, or None if weight-less.

    Convolutions store ``(kh, kw, cin, cout)``; depthwise ``(kh, kw, c)``;
    fully-connected layers are lowered as convolutions whose kernel is the
    input's full spatial extent, so they store ``(h, w, cin, cout)``.
    """
    if isinstance(layer, Conv2d):
        kh, kw = layer.kernel
        return (kh, kw, layer.in_channels, layer.out_channels)
    if isinstance(layer, DepthwiseConv2d):
        kh, kw = layer.kernel
        return (kh, kw, layer.in_channels)
    if isinstance(layer, FullyConnected):
        (src_shape,) = graph.input_shapes_of(layer)
        return (src_shape.height, src_shape.width, src_shape.channels, layer.out_features)
    return None
