"""Tiling: split each layer into tiles, stripes, sections and CalcBlobs.

The schedule hierarchy mirrors the paper's Fig. "singlesave":

* **Tile** — a span of output rows whose *input* rows fit in the on-chip data
  buffer.  The tile's input is loaded once (``LOAD_D``) and shared by all the
  CalcBlobs below it ("input feature maps are loaded by one CalcBlob and
  shared across subsequent CalcBlobs").
* **Stripe** — ``Para_height`` output rows inside a tile, the spatial grain of
  one CALC instruction.
* **Section** — a run of consecutive output-channel groups within a stripe
  whose finalized results fit the output buffer; one ``SAVE`` drains a section.
* **CalcBlob** — one (stripe x output-channel group): ``ceil(Ch_in/Para_in)``
  CALC instructions, all `CALC_I` except the final `CALC_F` (paper §IV-A).

Weights for a blob may be split into input-channel chunks when a full
``K x K x Ch_in x Para_out`` slice exceeds the weight buffer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.layer_config import LayerConfig
from repro.errors import CompileError
from repro.hw.config import AcceleratorConfig
from repro.units import ceil_div


@dataclass(frozen=True)
class GroupPlan:
    """One CalcBlob: an output-channel group within a stripe."""

    ch0: int
    chs: int
    #: (in_ch0, in_chs) weight chunks; empty for weight-less layers.
    weight_chunks: tuple[tuple[int, int], ...]


@dataclass(frozen=True)
class SectionPlan:
    """Consecutive groups drained by a single SAVE."""

    ch0: int
    chs: int
    groups: tuple[GroupPlan, ...]


@dataclass(frozen=True)
class StripePlan:
    """Para_height output rows processed back to back."""

    out_row0: int
    out_rows: int
    sections: tuple[SectionPlan, ...]


@dataclass(frozen=True)
class TilePlan:
    """Output-row span whose input rows are resident on chip together."""

    out_row0: int
    out_rows: int
    in_row0: int
    in_rows: int
    #: Channel window of the input resident for this tile (all channels for
    #: conv/pool/add; a chunk for channel-tiled global pooling).
    in_ch0: int
    in_chs: int
    stripes: tuple[StripePlan, ...]


@dataclass(frozen=True)
class LayerPlan:
    """Complete schedule of one layer."""

    layer_id: int
    tiles: tuple[TilePlan, ...]

    def num_blobs(self) -> int:
        return sum(
            len(section.groups)
            for tile in self.tiles
            for stripe in tile.stripes
            for section in stripe.sections
        )

    def num_saves(self) -> int:
        return sum(len(stripe.sections) for tile in self.tiles for stripe in tile.stripes)


def plan_layer(config: AcceleratorConfig, layer: LayerConfig) -> LayerPlan:
    """Build the tile/stripe/section/blob schedule for ``layer``."""
    if layer.kind == "global":
        return _plan_global(config, layer)
    return _plan_spatial(config, layer)


# -- spatial layers (conv / depthwise / pool / add) ---------------------------


def _plan_spatial(config: AcceleratorConfig, layer: LayerConfig) -> LayerPlan:
    out_h = layer.out_shape.height
    bytes_per_input_row = layer.in_shape.width * layer.in_shape.channels
    if layer.kind == "add":
        # Both operands share the data buffer.
        bytes_per_input_row *= 2

    tiles: list[TilePlan] = []
    row = 0
    while row < out_h:
        tile_rows = _max_tile_rows(config, layer, row, bytes_per_input_row)
        in_row0, in_rows = layer.input_rows_for(row, tile_rows)
        stripes = tuple(
            _plan_stripe(config, layer, stripe_row0, min(config.para_height, row + tile_rows - stripe_row0))
            for stripe_row0 in range(row, row + tile_rows, config.para_height)
        )
        tiles.append(
            TilePlan(
                out_row0=row,
                out_rows=tile_rows,
                in_row0=in_row0,
                in_rows=in_rows,
                in_ch0=0,
                in_chs=layer.in_shape.channels,
                stripes=stripes,
            )
        )
        row += tile_rows
    return LayerPlan(layer_id=layer.layer_id, tiles=tuple(tiles))


def _max_tile_rows(
    config: AcceleratorConfig, layer: LayerConfig, out_row0: int, bytes_per_input_row: int
) -> int:
    """Largest stripe-aligned output-row count whose input span fits on chip."""
    remaining = layer.out_shape.height - out_row0
    cap = config.max_stripes_per_tile * config.para_height
    best = 0
    rows = config.para_height
    while rows <= min(remaining + config.para_height - 1, cap):
        candidate = min(rows, remaining)
        _, in_rows = layer.input_rows_for(out_row0, candidate)
        if in_rows * bytes_per_input_row > config.data_buffer_bytes:
            break
        best = candidate
        if candidate == remaining:
            break
        rows += config.para_height
    if best == 0:
        _, min_in_rows = layer.input_rows_for(out_row0, min(config.para_height, remaining))
        raise CompileError(
            f"layer {layer.name!r}: even one stripe needs "
            f"{min_in_rows * bytes_per_input_row} bytes of input, data buffer is "
            f"{config.data_buffer_bytes} — hardware too small for this layer"
        )
    return best


def _plan_stripe(
    config: AcceleratorConfig, layer: LayerConfig, out_row0: int, out_rows: int
) -> StripePlan:
    bytes_per_out_channel = out_rows * layer.out_shape.width
    groups_per_section = max(
        1, config.output_buffer_bytes // max(1, bytes_per_out_channel * config.para_out)
    )
    groups_per_section = min(groups_per_section, config.max_groups_per_save)
    if bytes_per_out_channel * min(config.para_out, layer.out_channels) > config.output_buffer_bytes:
        raise CompileError(
            f"layer {layer.name!r}: one output-channel group of a stripe "
            f"({bytes_per_out_channel * config.para_out} bytes) exceeds the output buffer"
        )

    sections: list[SectionPlan] = []
    group_starts = list(range(0, layer.out_channels, config.para_out))
    for section_start in range(0, len(group_starts), groups_per_section):
        starts = group_starts[section_start : section_start + groups_per_section]
        groups = tuple(
            GroupPlan(
                ch0=ch0,
                chs=min(config.para_out, layer.out_channels - ch0),
                weight_chunks=_weight_chunks(config, layer, min(config.para_out, layer.out_channels - ch0)),
            )
            for ch0 in starts
        )
        ch0 = groups[0].ch0
        chs = groups[-1].ch0 + groups[-1].chs - ch0
        sections.append(SectionPlan(ch0=ch0, chs=chs, groups=groups))
    return StripePlan(out_row0=out_row0, out_rows=out_rows, sections=tuple(sections))


def _weight_chunks(
    config: AcceleratorConfig, layer: LayerConfig, group_chs: int
) -> tuple[tuple[int, int], ...]:
    """Split a blob's input channels so each weight slice fits the buffer."""
    if layer.kind == "depthwise":
        # One filter per channel: the chunk *is* the group's channel window.
        return ((0, group_chs),)
    if not layer.has_weights:
        return ()
    kh, kw = layer.kernel
    in_channels = layer.in_channels
    bytes_per_in_channel = kh * kw * group_chs
    max_chunk = config.weight_buffer_bytes // max(1, bytes_per_in_channel)
    max_chunk = (max_chunk // config.para_in) * config.para_in
    if max_chunk <= 0:
        raise CompileError(
            f"layer {layer.name!r}: a {kh}x{kw}x{config.para_in}x{group_chs} weight "
            f"slice exceeds the {config.weight_buffer_bytes}-byte weight buffer"
        )
    chunks = []
    start = 0
    while start < in_channels:
        size = min(max_chunk, in_channels - start)
        chunks.append((start, size))
        start += size
    return tuple(chunks)


# -- global pooling ------------------------------------------------------------


def _plan_global(config: AcceleratorConfig, layer: LayerConfig) -> LayerPlan:
    """Global pooling: channels are independent, so tile over channels.

    Each tile loads an ``H x W x chunk`` slice and reduces it; the single
    output row is drained per section.
    """
    spatial_bytes = layer.in_shape.height * layer.in_shape.width
    max_channels = config.data_buffer_bytes // max(1, spatial_bytes)
    max_channels = (max_channels // config.para_out) * config.para_out
    if max_channels <= 0:
        raise CompileError(
            f"layer {layer.name!r}: a single-channel {layer.in_shape.height}x"
            f"{layer.in_shape.width} slice exceeds the data buffer"
        )

    tiles: list[TilePlan] = []
    channels = layer.in_shape.channels
    start = 0
    while start < channels:
        chunk = min(max_channels, channels - start)
        groups = tuple(
            GroupPlan(ch0=ch0, chs=min(config.para_out, start + chunk - ch0), weight_chunks=())
            for ch0 in range(start, start + chunk, config.para_out)
        )
        section = SectionPlan(ch0=start, chs=chunk, groups=groups)
        stripe = StripePlan(out_row0=0, out_rows=1, sections=(section,))
        tiles.append(
            TilePlan(
                out_row0=0,
                out_rows=1,
                in_row0=0,
                in_rows=layer.in_shape.height,
                in_ch0=start,
                in_chs=chunk,
                stripes=(stripe,),
            )
        )
        start += chunk
    return LayerPlan(layer_id=layer.layer_id, tiles=tuple(tiles))


def check_blob_count(config: AcceleratorConfig, layer: LayerConfig) -> int:
    """Expected CALC count of one blob (Eq. 1's Ch_in/Para_in factor)."""
    if layer.kind in ("conv",):
        return ceil_div(layer.in_channels, config.para_in)
    return 1
