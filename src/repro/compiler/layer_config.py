"""Per-layer execution descriptors shared by compiler, simulator and IAU.

A :class:`LayerConfig` is the static configuration the accelerator needs for
one layer: what the CALC datapath computes, the shapes involved, and which
DDR regions hold the operands.  In the real design these live in per-layer
configuration words of the instruction stream; here they form a table indexed
by the ``layer_id`` field of every instruction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CompileError
from repro.nn.tensor import TensorShape

#: Datapath operations a layer can map to.
LAYER_KINDS = ("conv", "depthwise", "pool", "add", "global")


@dataclass(frozen=True)
class LayerConfig:
    """Static accelerator-side description of one network layer."""

    layer_id: int
    name: str
    kind: str
    in_shape: TensorShape
    out_shape: TensorShape
    input_region: str
    output_region: str
    kernel: tuple[int, int] = (1, 1)
    stride: tuple[int, int] = (1, 1)
    padding: tuple[int, int] = (0, 0)
    relu: bool = False
    bias: bool = False
    shift: int = 0
    #: pool: "max"/"avg"; global: "max"/"avg"/"gem".
    mode: str = ""
    gem_p: float = 3.0
    in2_shape: TensorShape | None = None
    input2_region: str | None = None
    weight_region: str | None = None
    bias_region: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in LAYER_KINDS:
            raise CompileError(f"layer {self.name!r}: unknown kind {self.kind!r}")
        if self.kind == "add" and (self.in2_shape is None or self.input2_region is None):
            raise CompileError(f"add layer {self.name!r} needs a second operand")
        if self.kind in ("conv", "depthwise") and self.weight_region is None:
            raise CompileError(f"{self.kind} layer {self.name!r} needs a weight region")
        if self.shift < 0:
            raise CompileError(f"layer {self.name!r}: negative requantization shift")

    @property
    def has_weights(self) -> bool:
        return self.weight_region is not None

    @property
    def in_channels(self) -> int:
        return self.in_shape.channels

    @property
    def out_channels(self) -> int:
        return self.out_shape.channels

    def input_rows_for(self, out_row0: int, out_rows: int) -> tuple[int, int]:
        """Input row span (clamped to the feature map) that a window of
        output rows ``[out_row0, out_row0+out_rows)`` reads."""
        if self.kind == "global":
            return 0, self.in_shape.height
        if self.kind == "add":
            return out_row0, out_rows
        sh = self.stride[0]
        kh = self.kernel[0]
        ph = self.padding[0]
        start = out_row0 * sh - ph
        stop = (out_row0 + out_rows - 1) * sh - ph + kh
        start = max(start, 0)
        stop = min(stop, self.in_shape.height)
        if stop <= start:
            raise CompileError(
                f"layer {self.name!r}: output rows [{out_row0}, {out_row0 + out_rows}) "
                f"read no valid input rows"
            )
        return start, stop - start
