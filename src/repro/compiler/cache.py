"""Persistent on-disk compile cache for cross-process warm start.

The compiled VI-ISA program is a *static deployment artefact* (the paper's
Fig. 1(c)): for a fixed network graph, accelerator config and compiler
version the compile is a pure function, so its result can be built once and
reused by every process that ever serves that workload.  This module is the
content-addressed store that makes the reuse cross-process:

* **key** — a SHA-256 over a canonical description of the network graph,
  the :class:`~repro.hw.config.AcceleratorConfig`, every compile parameter
  that shapes the artefact (base address, weight mode/seed, VI policy,
  quantization percentile, verify gate) and the compiler fingerprint
  (package version + cache format).  Any delta in any input produces a new
  key — invalidation is automatic, stale entries are simply never read.
* **value** — the pickled :class:`~repro.compiler.compile.CompiledNetwork`
  (layout, layer configs, plans, quantization, all vi-mode programs) plus
  the precomputed :class:`~repro.iau.fastpath.ProgramMeta` prefix sums, so
  ``execution_meta`` is warm from the very first job of a fresh process.
* **format** — the snapshot idiom proven by :mod:`repro.serve.snapshot`:
  a magic + CRC32 header over the payload, written atomically
  (tmp + fsync + ``os.replace``), so concurrent farm/gateway workers can
  share one cache directory; a reader never sees a torn entry, and racing
  writers simply last-write-win an identical artefact.
* **failure policy** — a missing, truncated, bit-flipped or
  version-mismatched entry is a *miss*, never an error: the caller falls
  back to a fresh compile and overwrites the bad entry.

Wiring: pass ``cache=CompileCache(dir)`` to
:func:`~repro.compiler.compile.compile_network` /
:func:`~repro.runtime.system.compile_tasks`, or set the
``REPRO_COMPILE_CACHE`` environment variable to a directory so farm and
gateway worker subprocesses pick the cache up without any plumbing.
``python -m repro.compiler.cache`` warms, lists, garbage-collects and
clears a cache directory (see ``--help``).

Layout (big-endian)::

    offset  size  field
    ------  ----  --------------------------------------------------
    0       8     magic  b"INCACCHE"
    8       2     format version (this module's VERSION)
    10      2     flags (reserved, 0)
    12      4     CRC32 of the payload bytes
    16      8     payload length in bytes
    24      n     payload: pickle of {"meta", "body", "programs", "plans"}

``meta`` is a small mapping (key, graph/config names, instruction count,
creation time, compiler fingerprint) readable without decompressing the
artefact — what ``entries()``/the CLI ``ls`` report.  ``body`` is a
zlib-compressed pickle of the network shell (layout, layer configs,
quantization) plus its precomputed metas; ``programs`` maps each vi-mode
to its own zlib-compressed pickled :class:`~repro.isa.program.Program`
and ``plans`` holds the tiling plans the same way.  Both hydrate lazily:
a serving worker runs one program variant and never reads the plans, so
most of the artefact stays compressed on the warm path.
"""

from __future__ import annotations

import argparse
import copy
import hashlib
import io
import os
import pickle
import struct
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator, Mapping

import numpy as np

from repro.compiler.vi_pass import DEFAULT_VI_POLICY
from repro.obs.events import EventKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.compiler.compile import CompiledNetwork
    from repro.hw.config import AcceleratorConfig
    from repro.iau.fastpath import ProgramMeta
    from repro.nn.graph import NetworkGraph
    from repro.obs.bus import EventBus

MAGIC = b"INCACCHE"
#: Bumped whenever the entry format *or* the pickled artefact layout
#: changes incompatibly; part of the key, so old entries become unreachable
#: rather than unreadable.  v2: :class:`ProgramMeta` grew the per-site
#: fault-opportunity prefix sums armed batching depends on — a v1 meta
#: would silently batch through fault fires, so v1 entries must degrade to
#: a clean miss.
VERSION = 2

#: Environment variable naming the default cache directory.  When set,
#: every :func:`~repro.compiler.compile.compile_network` call without an
#: explicit ``cache=`` goes through it — including farm measure workers and
#: gateway worker subprocesses, which inherit the parent's environment.
CACHE_ENV_VAR = "REPRO_COMPILE_CACHE"

_HEADER = struct.Struct(">8sHHIQ")
_SUFFIX = ".inca"

#: Program variants whose :class:`ProgramMeta` is precomputed at store time
#: (the deployment artefact's fast path is warm from the first job; the
#: other variants rebuild lazily as before).
DEFAULT_META_MODES = ("vi",)


def compiler_fingerprint() -> str:
    """Version stamp invalidating every entry on a compiler change."""
    import repro

    return f"repro-{repro.__version__}/cache-v{VERSION}"


def _describe_graph(graph: "NetworkGraph") -> list[str]:
    """Canonical, content-complete text form of a network graph.

    Layer and shape dataclass reprs contain only field values (no object
    identities), so the description is stable across processes and runs.
    """
    lines = [f"graph {graph.name!r} ({len(graph.layers)} layers)"]
    for layer in graph.layers:
        lines.append(f"  layer {layer!r}")
    for name, shape in graph.shapes.items():
        lines.append(f"  shape {name!r} -> {shape!r}")
    return lines


def cache_key(
    graph: "NetworkGraph",
    config: "AcceleratorConfig",
    *,
    base_addr: int = 0,
    weights: str = "random",
    seed: int = 0,
    vi_policy: Any = DEFAULT_VI_POLICY,
    weight_percentile: float = 99.9,
    verify_mode: str = "structural",
) -> str:
    """Content hash addressing one compiled artefact.

    Mirrors every :func:`~repro.compiler.compile.compile_network` parameter
    that shapes the output, plus :func:`compiler_fingerprint`.  Two compiles
    share a key iff they are guaranteed to produce bit-identical artefacts.
    """
    parts = [f"fingerprint {compiler_fingerprint()}"]
    parts += _describe_graph(graph)
    parts += [
        f"config {config!r}",
        f"base_addr {base_addr}",
        f"weights {weights!r}",
        f"seed {seed}",
        f"vi_policy {vi_policy!r}",
        f"weight_percentile {weight_percentile!r}",
        f"verify {verify_mode!r}",
    ]
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()


@dataclass
class CacheStats:
    """Per-process counters of one :class:`CompileCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    store_failures: int = 0
    corrupt: int = 0
    hit_seconds: float = 0.0
    miss_seconds: float = 0.0

    def format(self) -> str:
        return (
            f"hits={self.hits} misses={self.misses} stores={self.stores} "
            f"store_failures={self.store_failures} corrupt={self.corrupt} "
            f"hit_s={self.hit_seconds:.3f} miss_s={self.miss_seconds:.3f}"
        )


@dataclass(frozen=True)
class CacheEntry:
    """One stored artefact's cheap-to-read identity (header + meta only)."""

    path: str
    key: str
    graph: str
    config: str
    instructions: int
    payload_bytes: int
    created_unix: float
    fingerprint: str

    @property
    def age_s(self) -> float:
        return max(0.0, time.time() - self.created_unix)


class _LazyPrograms(dict):
    """``vi_mode -> Program`` mapping that hydrates variants on demand.

    A cache load hands back three pickled program blobs; most consumers
    only ever run one variant (the farm runs ``"vi"``), so the other blobs
    stay compressed until first access — and a dispatcher that prices jobs
    off the stored :class:`ProgramMeta` never unpickles *any* of them; its
    forked measure workers hydrate their own variant in parallel.
    ``on_hydrate`` fires once per variant as it materializes (the cache
    uses it to prime the network's ``execution_meta``).  Whole-mapping
    views (iteration, ``items``/``keys``/``values``, equality, pickling)
    hydrate everything first, so the mapping is indistinguishable from the
    plain dict a fresh compile produces.
    """

    def __init__(self, blobs: Mapping[str, bytes], on_hydrate: Any = None):
        super().__init__()
        self._blobs = dict(blobs)
        self._on_hydrate = on_hydrate

    def _hydrate(self, key: str) -> None:
        blob = self._blobs.pop(key, None)
        if blob is not None:
            program = pickle.loads(zlib.decompress(blob))
            super().__setitem__(key, program)
            if self._on_hydrate is not None:
                self._on_hydrate(key, program)

    def _hydrate_all(self) -> None:
        for key in list(self._blobs):
            self._hydrate(key)

    def __getitem__(self, key: str):
        if not super().__contains__(key):
            self._hydrate(key)
        return super().__getitem__(key)

    def get(self, key: str, default: Any = None) -> Any:
        try:
            return self[key]
        except KeyError:
            return default

    def __contains__(self, key: object) -> bool:
        return super().__contains__(key) or key in self._blobs

    def __len__(self) -> int:
        return super().__len__() + len(self._blobs)

    def __iter__(self) -> Iterator[str]:
        self._hydrate_all()
        return super().__iter__()

    def keys(self):  # type: ignore[override]
        self._hydrate_all()
        return super().keys()

    def items(self):  # type: ignore[override]
        self._hydrate_all()
        return super().items()

    def values(self):  # type: ignore[override]
        self._hydrate_all()
        return super().values()

    def __eq__(self, other: object) -> bool:
        self._hydrate_all()
        if isinstance(other, _LazyPrograms):
            other._hydrate_all()
        return super().__eq__(other)

    __hash__ = None  # type: ignore[assignment]

    def __reduce__(self):
        # Pickles (and deep-copies) as the plain dict it stands in for.
        self._hydrate_all()
        return (dict, (dict(super().items()),))


def _zeros(shape: tuple, dtype: str) -> np.ndarray:
    """Reconstructor for zero arrays elided by :class:`_BodyPickler`."""
    return np.zeros(shape, dtype=np.dtype(dtype))


class _BodyPickler(pickle.Pickler):
    """Pickler that stores all-zero numpy buffers as (shape, dtype) only.

    A timing-mode compile (``weights='zeros'``, the farm default) leaves
    the multi-MiB DDR image entirely zero; shipping those bytes through
    zlib and back is most of an entry's body cost on both sides.  Eliding
    them keeps the artefact bit-identical — ``np.zeros`` rebuilds the
    exact buffer — while random-weight compiles pass through untouched.
    """

    def reducer_override(self, obj: Any):
        if (
            isinstance(obj, np.ndarray)
            and obj.nbytes >= 4096
            and not obj.dtype.hasobject
            and obj.flags.c_contiguous
            and not obj.any()
        ):
            return (_zeros, (obj.shape, obj.dtype.str))
        return NotImplemented


def _dumps_body(document: Any) -> bytes:
    buffer = io.BytesIO()
    _BodyPickler(buffer, protocol=pickle.HIGHEST_PROTOCOL).dump(document)
    return buffer.getvalue()


class _LazyPlans(list):
    """Tiling-plan list that hydrates from its compressed blob on first use.

    ``CompiledNetwork.plans`` is a compiler- and test-facing artefact
    (tiling inspection); the runtime never reads it, so a warm load keeps
    it compressed until something actually looks.  Any observation
    (length, indexing, iteration, equality, pickling) hydrates the whole
    list, after which it is indistinguishable from the plain list a fresh
    compile produces.
    """

    def __init__(self, blob: bytes):
        super().__init__()
        self._blob: bytes | None = blob

    def _hydrate(self) -> None:
        if self._blob is not None:
            blob, self._blob = self._blob, None
            super().extend(pickle.loads(zlib.decompress(blob)))

    def __len__(self) -> int:
        self._hydrate()
        return super().__len__()

    def __getitem__(self, index):
        self._hydrate()
        return super().__getitem__(index)

    def __iter__(self):
        self._hydrate()
        return super().__iter__()

    def __reversed__(self):
        self._hydrate()
        return super().__reversed__()

    def __contains__(self, item: object) -> bool:
        self._hydrate()
        return super().__contains__(item)

    def __eq__(self, other: object) -> bool:
        self._hydrate()
        if isinstance(other, _LazyPlans):
            other._hydrate()
        return super().__eq__(other)

    __hash__ = None  # type: ignore[assignment]

    def __reduce__(self):
        # Pickles (and deep-copies) as the plain list it stands in for.
        self._hydrate()
        return (list, (list(iter(self)),))


class CompileCache:
    """A content-addressed directory of compiled networks.

    Safe to share between concurrent processes: writes are atomic
    (tmp + fsync + rename) and every read validates magic, version and
    CRC32 before unpickling.  All read-path failures degrade to a miss.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        bus: "EventBus | None" = None,
        meta_modes: tuple[str, ...] = DEFAULT_META_MODES,
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: Optional obs bus: COMPILE_CACHE_HIT / COMPILE_CACHE_MISS events
        #: (cycle 0 — compile time is host time, not simulated time).
        self.bus = bus
        self.meta_modes = tuple(meta_modes)
        self.stats = CacheStats()

    # -- paths -------------------------------------------------------------

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}{_SUFFIX}"

    def _paths(self) -> Iterator[Path]:
        yield from sorted(self.root.glob(f"*{_SUFFIX}"))

    # -- store -------------------------------------------------------------

    def store(self, key: str, network: "CompiledNetwork") -> Path | None:
        """Write one compiled artefact atomically; returns its path.

        The program variants are pickled as separate compressed blobs so a
        loader can hydrate only the variant it runs (a farm worker needs
        ``"vi"`` alone; the others decompress on first access).  This is
        where most of the warm-start win comes from: instruction tuples
        dominate deserialization cost and two of the three variants are
        usually never touched.

        Never raises on I/O trouble (a read-only or full cache directory
        must not break the compile that just succeeded): failures count in
        ``stats.store_failures`` and return ``None``.
        """
        metas = {
            mode: network.execution_meta(network.programs[mode])
            for mode in self.meta_modes
            if mode in network.programs
        }
        programs = {
            mode: zlib.compress(
                pickle.dumps(program, protocol=pickle.HIGHEST_PROTOCOL), 3
            )
            for mode, program in network.programs.items()
        }
        plans = zlib.compress(
            pickle.dumps(list(network.plans), protocol=pickle.HIGHEST_PROTOCOL), 3
        )
        # Shallow clone with programs and plans detached: the body then
        # carries layout/configs/quantization only (instructions and tiling
        # plans are flat records with no references into the rest of the
        # artefact, so splitting them out loses no shared structure).
        shell = copy.copy(network)
        shell.programs = {}
        shell.plans = []
        body = zlib.compress(_dumps_body({"network": shell, "metas": metas}), 3)
        meta = {
            "key": key,
            "graph": network.graph.name,
            "config": network.config.name,
            "instructions": len(network.programs["vi"]),
            "created_unix": time.time(),
            "fingerprint": compiler_fingerprint(),
        }
        payload = pickle.dumps(
            {"meta": meta, "body": body, "programs": programs, "plans": plans},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        header = _HEADER.pack(MAGIC, VERSION, 0, zlib.crc32(payload), len(payload))
        path = self.path_for(key)
        tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
        try:
            with open(tmp, "wb") as handle:
                handle.write(header)
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except OSError:
            self.stats.store_failures += 1
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            return None
        self.stats.stores += 1
        return path

    # -- load --------------------------------------------------------------

    def _read_document(self, path: Path) -> Mapping[str, Any] | None:
        """Validated outer document of one entry, or ``None`` on anything."""
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        if len(raw) < _HEADER.size:
            self.stats.corrupt += 1
            return None
        magic, version, _flags, crc, length = _HEADER.unpack_from(raw)
        payload = raw[_HEADER.size :]
        if (
            magic != MAGIC
            or version != VERSION
            or len(payload) != length
            or zlib.crc32(payload) != crc
        ):
            self.stats.corrupt += 1
            return None
        try:
            document = pickle.loads(payload)
        except Exception:
            self.stats.corrupt += 1
            return None
        if not isinstance(document, dict) or "body" not in document:
            self.stats.corrupt += 1
            return None
        return document

    def load(self, key: str) -> "CompiledNetwork | None":
        """The cached artefact for ``key``, or ``None`` (always a miss,
        never an error).  The stored :class:`ProgramMeta` objects land in
        the network's mode-keyed meta table immediately (so cycle
        estimates are warm without touching any program); program variants
        and tiling plans hydrate lazily on first access, and hydrating a
        variant primes its ``execution_meta`` as a side effect."""
        document = self._read_document(self.path_for(key))
        if document is None:
            return None
        meta = document.get("meta", {})
        if meta.get("fingerprint") != compiler_fingerprint():
            return None  # copied in from another build: recompile
        try:
            blobs = document["programs"]
            inner = pickle.loads(zlib.decompress(document["body"]))
            network: "CompiledNetwork" = inner["network"]
            metas: dict[str, "ProgramMeta"] = inner["metas"]

            def _prime(mode: str, program: Any) -> None:
                stored = metas.get(mode)
                if stored is not None:
                    network.prime_execution_meta(program, stored)

            network.programs = _LazyPrograms(blobs, on_hydrate=_prime)
            network.plans = _LazyPlans(document["plans"])
            network._mode_metas = dict(metas)
        except Exception:
            self.stats.corrupt += 1
            return None
        return network

    def probe(self, key: str) -> CacheEntry | None:
        """Header + meta of one entry without deserializing the artefact."""
        path = self.path_for(key)
        document = self._read_document(path)
        if document is None:
            return None
        return self._entry(path, document)

    def _entry(self, path: Path, document: Mapping[str, Any]) -> CacheEntry:
        meta = document.get("meta", {})
        return CacheEntry(
            path=str(path),
            key=str(meta.get("key", path.stem)),
            graph=str(meta.get("graph", "?")),
            config=str(meta.get("config", "?")),
            instructions=int(meta.get("instructions", 0)),
            payload_bytes=path.stat().st_size,
            created_unix=float(meta.get("created_unix", 0.0)),
            fingerprint=str(meta.get("fingerprint", "?")),
        )

    # -- bookkeeping hooks (called by compile_network) ----------------------

    def note_hit(self, key: str, *, graph: str, config: str, seconds: float) -> None:
        self.stats.hits += 1
        self.stats.hit_seconds += seconds
        if self.bus is not None:
            self.bus.emit(
                EventKind.COMPILE_CACHE_HIT,
                cycle=0,
                key=key,
                graph=graph,
                config=config,
                seconds=seconds,
            )

    def note_miss(
        self, key: str, *, graph: str, config: str, seconds: float, stored: bool
    ) -> None:
        self.stats.misses += 1
        self.stats.miss_seconds += seconds
        if self.bus is not None:
            self.bus.emit(
                EventKind.COMPILE_CACHE_MISS,
                cycle=0,
                key=key,
                graph=graph,
                config=config,
                seconds=seconds,
                stored=stored,
            )

    # -- inspection / maintenance -------------------------------------------

    def entries(self) -> list[CacheEntry]:
        """Every readable entry (corrupt files are skipped, not raised)."""
        found = []
        for path in self._paths():
            document = self._read_document(path)
            if document is not None:
                found.append(self._entry(path, document))
        return found

    def gc(
        self,
        *,
        max_entries: int | None = None,
        max_bytes: int | None = None,
        max_age_s: float | None = None,
    ) -> list[str]:
        """Remove entries beyond the given budgets; returns removed paths.

        Unreadable entries and stale ``.tmp`` leftovers are always removed.
        Age uses the stored creation stamp; size/count budgets evict oldest
        first.
        """
        removed: list[str] = []
        for leftover in sorted(self.root.glob(f"*{_SUFFIX}.tmp.*")):
            leftover.unlink(missing_ok=True)
            removed.append(str(leftover))
        keep: list[CacheEntry] = []
        for path in self._paths():
            document = self._read_document(path)
            if document is None:
                path.unlink(missing_ok=True)
                removed.append(str(path))
                continue
            entry = self._entry(path, document)
            if max_age_s is not None and entry.age_s > max_age_s:
                path.unlink(missing_ok=True)
                removed.append(str(path))
                continue
            keep.append(entry)
        keep.sort(key=lambda entry: entry.created_unix)  # oldest first
        while keep and (
            (max_entries is not None and len(keep) > max_entries)
            or (
                max_bytes is not None
                and sum(entry.payload_bytes for entry in keep) > max_bytes
            )
        ):
            victim = keep.pop(0)
            Path(victim.path).unlink(missing_ok=True)
            removed.append(victim.path)
        return removed

    def clear(self) -> int:
        """Remove every entry (and tmp leftover); returns the count."""
        count = 0
        for path in list(self.root.glob(f"*{_SUFFIX}")) + list(
            self.root.glob(f"*{_SUFFIX}.tmp.*")
        ):
            path.unlink(missing_ok=True)
            count += 1
        return count


# -- environment default ----------------------------------------------------

#: One CompileCache per directory per process, so stats accumulate and the
#: mkdir happens once.
_DEFAULT_CACHES: dict[str, CompileCache] = {}


def default_cache() -> CompileCache | None:
    """The process-wide cache named by ``REPRO_COMPILE_CACHE`` (or None).

    Read on every compile, so flipping the variable mid-process (tests,
    notebooks) takes effect immediately.
    """
    root = os.environ.get(CACHE_ENV_VAR)
    if not root:
        return None
    cache = _DEFAULT_CACHES.get(root)
    if cache is None:
        cache = CompileCache(root)
        _DEFAULT_CACHES[root] = cache
    return cache


# -- CLI ---------------------------------------------------------------------

#: Zoo builders callable with no arguments — the warmable service models.
WARMABLE_MODELS = (
    "tiny_cnn",
    "tiny_conv",
    "tiny_residual",
    "medium_layer_net",
    "mobilenet_v1",
    "darknet19",
)

_CONFIG_NAMES = ("big", "small", "worked_example")


def _configs_for(name: str) -> list["AcceleratorConfig"]:
    from repro.hw.config import AcceleratorConfig

    if name == "all":
        return [getattr(AcceleratorConfig, item)() for item in _CONFIG_NAMES]
    if name not in _CONFIG_NAMES:
        raise SystemExit(
            f"unknown config {name!r}; choose from {_CONFIG_NAMES + ('all',)}"
        )
    return [getattr(AcceleratorConfig, name)()]


def _cmd_warm(cache: CompileCache, args: argparse.Namespace) -> int:
    from repro.compiler.compile import compile_network
    from repro.farm.node import build_graph

    models = args.model or list(WARMABLE_MODELS)
    for config in _configs_for(args.config):
        for model in models:
            graph = build_graph(model)
            before = cache.stats.hits
            start = time.perf_counter()
            compile_network(
                graph, config, weights=args.weights, seed=args.seed, cache=cache
            )
            verb = "hit  " if cache.stats.hits > before else "store"
            print(
                f"{verb} {model:<18} {config.name:<16} "
                f"{(time.perf_counter() - start) * 1e3:8.1f} ms"
            )
    print(f"cache {cache.root}: {cache.stats.format()}")
    return 0


def _cmd_ls(cache: CompileCache, args: argparse.Namespace) -> int:
    entries = cache.entries()
    if not entries:
        print(f"cache {cache.root}: empty")
        return 0
    print(f"cache {cache.root}: {len(entries)} entries")
    print(f"{'key':<16} {'graph':<20} {'config':<16} {'instrs':>8} {'KiB':>9} {'age':>8}")
    for entry in sorted(entries, key=lambda e: (e.graph, e.config)):
        print(
            f"{entry.key[:16]:<16} {entry.graph:<20} {entry.config:<16} "
            f"{entry.instructions:>8} {entry.payload_bytes / 1024:>9.1f} "
            f"{entry.age_s:>7.0f}s"
        )
    return 0


def _cmd_gc(cache: CompileCache, args: argparse.Namespace) -> int:
    removed = cache.gc(
        max_entries=args.max_entries,
        max_bytes=args.max_bytes,
        max_age_s=args.max_age_s,
    )
    print(f"removed {len(removed)} file(s)")
    for path in removed:
        print(f"  {path}")
    return 0


def _cmd_clear(cache: CompileCache, args: argparse.Namespace) -> int:
    print(f"removed {cache.clear()} file(s)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.compiler.cache",
        description="Warm, inspect and maintain a persistent compile cache.",
    )
    parser.add_argument(
        "--dir",
        default=os.environ.get(CACHE_ENV_VAR),
        help=f"cache directory (default: ${CACHE_ENV_VAR})",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    warm = sub.add_parser("warm", help="compile zoo models into the cache")
    warm.add_argument(
        "--model",
        action="append",
        choices=WARMABLE_MODELS,
        help="model to warm (repeatable; default: all warmable models)",
    )
    warm.add_argument(
        "--config",
        default="big",
        help="accelerator config: big, small, worked_example or all",
    )
    warm.add_argument("--weights", default="zeros", choices=("zeros", "random"))
    warm.add_argument("--seed", type=int, default=0)
    warm.set_defaults(run=_cmd_warm)

    ls = sub.add_parser("ls", help="list cache entries")
    ls.set_defaults(run=_cmd_ls)

    gc = sub.add_parser("gc", help="evict entries beyond the given budgets")
    gc.add_argument("--max-entries", type=int, default=None)
    gc.add_argument("--max-bytes", type=int, default=None)
    gc.add_argument("--max-age-s", type=float, default=None)
    gc.set_defaults(run=_cmd_gc)

    clear = sub.add_parser("clear", help="remove every entry")
    clear.set_defaults(run=_cmd_clear)

    args = parser.parse_args(argv)
    if not args.dir:
        parser.error(f"no cache directory: pass --dir or set ${CACHE_ENV_VAR}")
    return args.run(CompileCache(args.dir), args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
