"""End-to-end compilation driver.

``compile_network`` reproduces the paper's Fig. 1(c) pipeline:

1. quantize the model (synthetic weights stand in for the trained Caffe model),
2. allocate the DDR layout,
3. lower topology + quantization to the original ISA,
4. run the virtual-instruction pass,

yielding a :class:`CompiledNetwork` holding the DDR image, the layer-config
table and three program variants: ``"none"`` (original ISA), ``"vi"`` (the
paper's VI-ISA) and ``"layer"`` (the layer-by-layer interrupt baseline).
"""

from __future__ import annotations

import time
import weakref
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.compiler.allocator import NetworkLayout, allocate_network
from repro.compiler.layer_config import LayerConfig
from repro.compiler.lowering import build_layer_configs, lower_network
from repro.compiler.tiling import LayerPlan
from repro.compiler.vi_pass import (
    DEFAULT_VI_POLICY,
    ViPolicy,
    insert_layer_barriers,
    insert_virtual_instructions,
)
from repro.compiler.weights import LayerQuantization, initialize_parameters
from repro.errors import CompileError
from repro.hw.config import AcceleratorConfig
from repro.isa.program import Program
from repro.isa.validate import validate_program
from repro.nn.graph import NetworkGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.compiler.cache import CompileCache

#: Program variants a compile produces.
VI_MODES = ("none", "vi", "layer")


@dataclass
class CompiledNetwork:
    """Everything needed to run one network on the simulated accelerator."""

    graph: NetworkGraph
    config: AcceleratorConfig
    layout: NetworkLayout
    layer_configs: list[LayerConfig]
    plans: list[LayerPlan]
    quantization: dict[str, LayerQuantization]
    programs: dict[str, Program]
    _configs_by_id: dict[int, LayerConfig] = field(init=False)
    _meta_cache: dict = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._configs_by_id = {cfg.layer_id: cfg for cfg in self.layer_configs}
        self._meta_cache = {}
        #: Mode-keyed ProgramMeta table, filled by the on-disk compile
        #: cache at load time.  Unlike ``_meta_cache`` it is keyed by
        #: vi-mode name, not program identity, so consumers can read
        #: precomputed totals without materializing the program itself.
        self._mode_metas = {}

    # -- program access ----------------------------------------------------

    @property
    def program(self) -> Program:
        """The interruptible VI-ISA program (the paper's deployment artefact)."""
        return self.programs["vi"]

    def program_for(self, vi_mode: str) -> Program:
        if vi_mode not in self.programs:
            raise CompileError(f"unknown vi_mode {vi_mode!r}; choose from {VI_MODES}")
        return self.programs[vi_mode]

    def layer_config(self, layer_id: int) -> LayerConfig:
        try:
            return self._configs_by_id[layer_id]
        except KeyError:
            raise CompileError(
                f"network {self.graph.name!r} has no layer id {layer_id}"
            ) from None

    def execution_meta(self, program: Program):
        """Fast-path metadata of ``program`` on this network's accelerator.

        Built lazily and cached for the lifetime of the *program*, so every
        system simulating the same workload shares one O(n) precomputation
        (see :mod:`repro.iau.fastpath`).  The cache holds weak references:
        when a program dies, its entry (and the ``ProgramMeta`` it pinned)
        is evicted, so transient programs cannot accumulate — and an id
        reused by the allocator can never alias a dead entry.
        """
        entry = self._meta_cache.get(id(program))
        if entry is not None and entry[0]() is program:
            return entry[1]
        from repro.iau.fastpath import build_program_meta

        meta = build_program_meta(self, program)
        self.prime_execution_meta(program, meta)
        return meta

    def cached_execution_meta(self, program: Program):
        """The already-built/primed meta of ``program``, or ``None``.

        A peek that never triggers the O(n) precomputation — consumers that
        only *prefer* the meta (e.g. the cycle estimator) use this to avoid
        building one they would use a single field of.
        """
        entry = self._meta_cache.get(id(program))
        if entry is not None and entry[0]() is program:
            return entry[1]
        return None

    def cached_mode_meta(self, vi_mode: str):
        """The stored meta of the ``vi_mode`` variant, or ``None``.

        Served from the mode-keyed table the on-disk compile cache fills at
        load time, so it never materializes the program — the peek behind
        O(1) warm-start cycle estimates (see
        :func:`~repro.estimate.estimate_service_cycles`).
        """
        return self._mode_metas.get(vi_mode)

    def prime_execution_meta(self, program: Program, meta) -> None:
        """Install precomputed fast-path metadata for ``program``.

        Used by the on-disk compile cache to make ``execution_meta`` warm
        from the first job of a fresh process; also the sole writer of the
        internal meta cache.
        """
        key = id(program)
        cache = self._meta_cache

        def _evict(ref: weakref.ref) -> None:
            entry = cache.get(key)
            # Only drop the entry this ref owns: by the time the callback
            # runs, the id may already name a different, live program.
            if entry is not None and entry[0] is ref:
                del cache[key]

        cache[key] = (weakref.ref(program, _evict), meta)

    # -- pickling ------------------------------------------------------------

    def __getstate__(self) -> dict:
        # Weak references and the id-keyed caches do not survive a process
        # boundary; both rebuild cheaply (or are re-primed by the cache).
        state = dict(self.__dict__)
        state.pop("_meta_cache", None)
        state.pop("_configs_by_id", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._configs_by_id = {cfg.layer_id: cfg for cfg in self.layer_configs}
        self._meta_cache = {}
        self.__dict__.setdefault("_mode_metas", {})

    # -- host-side I/O -------------------------------------------------------

    @property
    def input_region(self) -> str:
        return self.layout.input_region

    @property
    def output_region(self) -> str:
        return self.layout.feature_regions[self.graph.output_layer.name]

    def set_input(self, data: np.ndarray) -> None:
        """Write an int8 HWC input feature map into DDR."""
        region = self.layout.ddr.region(self.input_region)
        data = np.asarray(data)
        if data.shape != region.array.shape:
            raise CompileError(
                f"input shape {data.shape} does not match network input "
                f"{region.array.shape}"
            )
        region.array[...] = data.astype(np.int8)

    def get_output(self) -> np.ndarray:
        """Read the network output feature map back from DDR."""
        return self.layout.ddr.region(self.output_region).array.copy()

    # -- reporting -------------------------------------------------------------

    def num_interrupt_points(self) -> int:
        return self.program.num_virtual()

    def report(self) -> str:
        vi = self.programs["vi"]
        original = self.programs["none"]
        lines = [
            f"compiled {self.graph.name!r} for {self.config.name}",
            f"  layers on accelerator : {len(self.layer_configs)}",
            f"  original instructions : {len(original)}",
            f"  VI-ISA instructions   : {len(vi)} "
            f"(+{len(vi) - len(original)} virtual, "
            f"{100.0 * (len(vi) - len(original)) / len(original):.1f}%)",
            f"  interrupt points      : {vi.num_virtual()}",
            f"  DDR footprint         : {self.layout.ddr.used_bytes / 1024 / 1024:.1f} MiB",
        ]
        return "\n".join(lines)


def compile_network(
    graph: NetworkGraph,
    config: AcceleratorConfig,
    base_addr: int = 0,
    weights: str = "random",
    seed: int = 0,
    validate: bool = True,
    vi_policy: ViPolicy = DEFAULT_VI_POLICY,
    weight_percentile: float = 99.9,
    verify: str | None = None,
    cache: "CompileCache | bool | None" = None,
) -> CompiledNetwork:
    """Compile ``graph`` for ``config``.

    ``weights='random'`` generates and quantizes seeded synthetic weights
    (needed for functional simulation); ``weights='zeros'`` skips generation
    for timing-only experiments.  ``base_addr`` offsets every DDR region so
    multiple compiled networks can share one address space.  ``vi_policy``
    controls interrupt-position selection (default: every legal point).

    ``verify`` selects the static-verification gate: ``"structural"`` runs
    the program-shape rules (the default when ``validate`` is true),
    ``"full"`` additionally runs the abstract-interpretation passes of
    :mod:`repro.verify` over the compiled artefact, and ``"off"`` skips
    verification entirely.  When ``verify`` is given it overrides the legacy
    ``validate`` flag.  Violations raise :class:`~repro.errors.ProgramError`
    carrying the full diagnostics report.

    ``cache`` is a :class:`~repro.compiler.cache.CompileCache`: a hit skips
    the whole pipeline (including verification — the artefact was verified
    under the same mode when it was stored; the mode is part of the key),
    a miss compiles as usual and stores the result.  The default ``None``
    uses the directory named by ``REPRO_COMPILE_CACHE`` when set; pass
    ``False`` to force a fresh compile even then.
    """
    mode = verify if verify is not None else ("structural" if validate else "off")
    if mode not in ("off", "structural", "full"):
        raise CompileError(
            f"unknown verify mode {mode!r}; choose 'off', 'structural' or 'full'"
        )
    if cache is None:
        from repro.compiler.cache import default_cache

        cache = default_cache()
    elif cache is False:
        cache = None
    key = ""
    start = 0.0
    if cache is not None:
        from repro.compiler.cache import cache_key

        key = cache_key(
            graph,
            config,
            base_addr=base_addr,
            weights=weights,
            seed=seed,
            vi_policy=vi_policy,
            weight_percentile=weight_percentile,
            verify_mode=mode,
        )
        start = time.perf_counter()
        hit = cache.load(key)
        if hit is not None:
            cache.note_hit(
                key,
                graph=graph.name,
                config=config.name,
                seconds=time.perf_counter() - start,
            )
            return hit
    layout = allocate_network(graph, base_addr=base_addr)
    quantization = initialize_parameters(
        graph, layout, mode=weights, seed=seed, percentile=weight_percentile
    )
    layer_configs = build_layer_configs(graph, layout, quantization)
    if not layer_configs:
        raise CompileError(f"network {graph.name!r} has no accelerator layers")
    original, plans = lower_network(config, layer_configs, layout)

    programs = {
        "none": Program(name=f"{graph.name}.orig", instructions=tuple(original)),
        "vi": Program(
            name=f"{graph.name}.vi",
            instructions=tuple(insert_virtual_instructions(original, vi_policy)),
        ),
        "layer": Program(
            name=f"{graph.name}.layer",
            instructions=tuple(insert_layer_barriers(original)),
        ),
    }
    if mode == "structural":
        for program in programs.values():
            validate_program(program)
    compiled = CompiledNetwork(
        graph=graph,
        config=config,
        layout=layout,
        layer_configs=layer_configs,
        plans=plans,
        quantization=quantization,
        programs=programs,
    )
    if mode == "full":
        # Imported lazily: repro.verify is a downstream consumer of the
        # compiler's types and must not be a hard import dependency here.
        from repro.verify.engine import verify_network

        verify_network(compiled).raise_if_errors()
    if cache is not None:
        stored = cache.store(key, compiled) is not None
        cache.note_miss(
            key,
            graph=graph.name,
            config=config.name,
            seconds=time.perf_counter() - start,
            stored=stored,
        )
    return compiled
