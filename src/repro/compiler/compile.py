"""End-to-end compilation driver.

``compile_network`` reproduces the paper's Fig. 1(c) pipeline:

1. quantize the model (synthetic weights stand in for the trained Caffe model),
2. allocate the DDR layout,
3. lower topology + quantization to the original ISA,
4. run the virtual-instruction pass,

yielding a :class:`CompiledNetwork` holding the DDR image, the layer-config
table and three program variants: ``"none"`` (original ISA), ``"vi"`` (the
paper's VI-ISA) and ``"layer"`` (the layer-by-layer interrupt baseline).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.compiler.allocator import NetworkLayout, allocate_network
from repro.compiler.layer_config import LayerConfig
from repro.compiler.lowering import build_layer_configs, lower_network
from repro.compiler.tiling import LayerPlan
from repro.compiler.vi_pass import (
    DEFAULT_VI_POLICY,
    ViPolicy,
    insert_layer_barriers,
    insert_virtual_instructions,
)
from repro.compiler.weights import LayerQuantization, initialize_parameters
from repro.errors import CompileError
from repro.hw.config import AcceleratorConfig
from repro.isa.program import Program
from repro.isa.validate import validate_program
from repro.nn.graph import NetworkGraph

#: Program variants a compile produces.
VI_MODES = ("none", "vi", "layer")


@dataclass
class CompiledNetwork:
    """Everything needed to run one network on the simulated accelerator."""

    graph: NetworkGraph
    config: AcceleratorConfig
    layout: NetworkLayout
    layer_configs: list[LayerConfig]
    plans: list[LayerPlan]
    quantization: dict[str, LayerQuantization]
    programs: dict[str, Program]
    _configs_by_id: dict[int, LayerConfig] = field(init=False)
    _meta_cache: dict = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._configs_by_id = {cfg.layer_id: cfg for cfg in self.layer_configs}
        self._meta_cache = {}

    # -- program access ----------------------------------------------------

    @property
    def program(self) -> Program:
        """The interruptible VI-ISA program (the paper's deployment artefact)."""
        return self.programs["vi"]

    def program_for(self, vi_mode: str) -> Program:
        if vi_mode not in self.programs:
            raise CompileError(f"unknown vi_mode {vi_mode!r}; choose from {VI_MODES}")
        return self.programs[vi_mode]

    def layer_config(self, layer_id: int) -> LayerConfig:
        try:
            return self._configs_by_id[layer_id]
        except KeyError:
            raise CompileError(
                f"network {self.graph.name!r} has no layer id {layer_id}"
            ) from None

    def execution_meta(self, program: Program):
        """Fast-path metadata of ``program`` on this network's accelerator.

        Built lazily and cached for the lifetime of the compiled network,
        so every system simulating the same workload shares one O(n)
        precomputation (see :mod:`repro.iau.fastpath`).
        """
        from repro.iau.fastpath import build_program_meta

        key = id(program)
        hit = self._meta_cache.get(key)
        if hit is None or hit[0] is not program:
            hit = (program, build_program_meta(self, program))
            self._meta_cache[key] = hit
        return hit[1]

    # -- host-side I/O -------------------------------------------------------

    @property
    def input_region(self) -> str:
        return self.layout.input_region

    @property
    def output_region(self) -> str:
        return self.layout.feature_regions[self.graph.output_layer.name]

    def set_input(self, data: np.ndarray) -> None:
        """Write an int8 HWC input feature map into DDR."""
        region = self.layout.ddr.region(self.input_region)
        data = np.asarray(data)
        if data.shape != region.array.shape:
            raise CompileError(
                f"input shape {data.shape} does not match network input "
                f"{region.array.shape}"
            )
        region.array[...] = data.astype(np.int8)

    def get_output(self) -> np.ndarray:
        """Read the network output feature map back from DDR."""
        return self.layout.ddr.region(self.output_region).array.copy()

    # -- reporting -------------------------------------------------------------

    def num_interrupt_points(self) -> int:
        return self.program.num_virtual()

    def report(self) -> str:
        vi = self.programs["vi"]
        original = self.programs["none"]
        lines = [
            f"compiled {self.graph.name!r} for {self.config.name}",
            f"  layers on accelerator : {len(self.layer_configs)}",
            f"  original instructions : {len(original)}",
            f"  VI-ISA instructions   : {len(vi)} "
            f"(+{len(vi) - len(original)} virtual, "
            f"{100.0 * (len(vi) - len(original)) / len(original):.1f}%)",
            f"  interrupt points      : {vi.num_virtual()}",
            f"  DDR footprint         : {self.layout.ddr.used_bytes / 1024 / 1024:.1f} MiB",
        ]
        return "\n".join(lines)


def compile_network(
    graph: NetworkGraph,
    config: AcceleratorConfig,
    base_addr: int = 0,
    weights: str = "random",
    seed: int = 0,
    validate: bool = True,
    vi_policy: ViPolicy = DEFAULT_VI_POLICY,
    weight_percentile: float = 99.9,
    verify: str | None = None,
) -> CompiledNetwork:
    """Compile ``graph`` for ``config``.

    ``weights='random'`` generates and quantizes seeded synthetic weights
    (needed for functional simulation); ``weights='zeros'`` skips generation
    for timing-only experiments.  ``base_addr`` offsets every DDR region so
    multiple compiled networks can share one address space.  ``vi_policy``
    controls interrupt-position selection (default: every legal point).

    ``verify`` selects the static-verification gate: ``"structural"`` runs
    the program-shape rules (the default when ``validate`` is true),
    ``"full"`` additionally runs the abstract-interpretation passes of
    :mod:`repro.verify` over the compiled artefact, and ``"off"`` skips
    verification entirely.  When ``verify`` is given it overrides the legacy
    ``validate`` flag.  Violations raise :class:`~repro.errors.ProgramError`
    carrying the full diagnostics report.
    """
    mode = verify if verify is not None else ("structural" if validate else "off")
    if mode not in ("off", "structural", "full"):
        raise CompileError(
            f"unknown verify mode {mode!r}; choose 'off', 'structural' or 'full'"
        )
    layout = allocate_network(graph, base_addr=base_addr)
    quantization = initialize_parameters(
        graph, layout, mode=weights, seed=seed, percentile=weight_percentile
    )
    layer_configs = build_layer_configs(graph, layout, quantization)
    if not layer_configs:
        raise CompileError(f"network {graph.name!r} has no accelerator layers")
    original, plans = lower_network(config, layer_configs, layout)

    programs = {
        "none": Program(name=f"{graph.name}.orig", instructions=tuple(original)),
        "vi": Program(
            name=f"{graph.name}.vi",
            instructions=tuple(insert_virtual_instructions(original, vi_policy)),
        ),
        "layer": Program(
            name=f"{graph.name}.layer",
            instructions=tuple(insert_layer_barriers(original)),
        ),
    }
    if mode == "structural":
        for program in programs.values():
            validate_program(program)
    compiled = CompiledNetwork(
        graph=graph,
        config=config,
        layout=layout,
        layer_configs=layer_configs,
        plans=plans,
        quantization=quantization,
        programs=programs,
    )
    if mode == "full":
        # Imported lazily: repro.verify is a downstream consumer of the
        # compiler's types and must not be a hard import dependency here.
        from repro.verify.engine import verify_network

        verify_network(compiled).raise_if_errors()
    return compiled
