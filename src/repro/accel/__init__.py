"""Cycle-approximate, functionally bit-exact accelerator simulator."""

from repro.accel.core import (
    AcceleratorCore,
    Accumulator,
    CoreStats,
    DataTile,
    OutputGroup,
    OutputSection,
    WeightTile,
)
from repro.accel.pipelined import (
    PipelinedSchedule,
    engine_busy_cycles,
    pipelined_schedule,
)
from repro.accel.trace import ExecutionTrace, TraceEvent

__all__ = [
    "AcceleratorCore",
    "Accumulator",
    "CoreStats",
    "DataTile",
    "ExecutionTrace",
    "OutputGroup",
    "OutputSection",
    "PipelinedSchedule",
    "TraceEvent",
    "WeightTile",
    "engine_busy_cycles",
    "pipelined_schedule",
]
