"""Single-task straight-line program runner (no IAU).

This is the *original*, non-interruptible accelerator of the paper's related
work: it fetches and executes one program front to back.  The multi-task
path goes through :mod:`repro.iau` instead; this runner provides the
baseline timing (and the functional ground for the bit-exactness tests).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accel.core import AcceleratorCore
from repro.accel.trace import ExecutionTrace
from repro.compiler.compile import CompiledNetwork
from repro.hw.timing import fetch_cycles
from repro.obs.bus import EventBus
from repro.obs.config import ObsConfig
from repro.obs.events import EventKind


@dataclass(frozen=True)
class RunResult:
    """Outcome of one straight-line program execution."""

    total_cycles: int
    compute_cycles: int
    fetch_cycles: int
    instructions: int

    def seconds(self, compiled: CompiledNetwork) -> float:
        return compiled.config.clock.cycles_to_s(self.total_cycles)


def run_program(
    compiled: CompiledNetwork,
    vi_mode: str = "none",
    functional: bool = True,
    input_map: np.ndarray | None = None,
    trace: ExecutionTrace | None = None,
    bus: EventBus | None = None,
) -> RunResult:
    """Execute one inference front to back; returns cycle totals.

    With ``vi_mode='none'`` this is the original accelerator.  Other modes
    execute the same real instructions but still pay the fetch cost of the
    (skipped) virtual instructions, which is exactly the no-interrupt
    overhead of deploying the VI-ISA.

    ``bus`` receives structured events (instruction retires, DDR bursts);
    ``trace`` is the legacy flat log, attached to the bus as a sink.
    """
    if input_map is not None:
        compiled.set_input(input_map)
    program = compiled.program_for(vi_mode)
    if trace is not None:
        if bus is None:
            bus = EventBus(record=False)
        bus.attach(trace)
    core = AcceleratorCore(
        compiled.config,
        compiled.layout.ddr,
        obs=ObsConfig(functional=functional),
        bus=bus,
    )

    clock = 0
    compute = 0
    fetched = 0
    executed = 0
    per_fetch = fetch_cycles(compiled.config)
    for index, instruction in enumerate(program):
        clock += per_fetch
        fetched += per_fetch
        if instruction.is_virtual:
            continue  # discarded: no interrupt is ever pending on this path
        layer = compiled.layer_config(instruction.layer_id)
        if bus is not None:
            bus.advance(clock)
        cycles = core.execute(instruction, layer)
        if bus is not None:
            bus.emit(
                EventKind.INSTR_RETIRE,
                cycle=clock,
                task_id=0,
                layer_id=instruction.layer_id,
                duration=cycles,
                opcode=instruction.opcode.name,
                program_index=index,
            )
        clock += cycles
        compute += cycles
        executed += 1
    return RunResult(
        total_cycles=clock,
        compute_cycles=compute,
        fetch_cycles=fetched,
        instructions=executed,
    )
