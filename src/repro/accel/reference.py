"""Golden whole-layer reference inference.

Evaluates a compiled network layer by layer with the reference quantized
operators (:mod:`repro.quant.qops`), reading the same weights the simulator
uses from the DDR regions.  The accelerator's tiled, interruptible execution
must match this output **bit-exactly** — that is the system's core
correctness invariant, enforced by the test suite for arbitrary interrupt
schedules.
"""

from __future__ import annotations

import numpy as np

from repro.compiler.compile import CompiledNetwork
from repro.errors import ExecutionError
from repro.quant import qops


def golden_inference(
    compiled: CompiledNetwork, input_map: np.ndarray
) -> dict[str, np.ndarray]:
    """Run the reference model; returns every layer's output by name."""
    input_map = np.asarray(input_map, dtype=np.int8)
    expected = compiled.graph.input_shape
    if input_map.shape != (expected.height, expected.width, expected.channels):
        raise ExecutionError(
            f"golden input shape {input_map.shape} != network input {expected}"
        )
    ddr = compiled.layout.ddr
    outputs: dict[str, np.ndarray] = {compiled.graph.input_layer.name: input_map}
    by_name = {cfg.name: cfg for cfg in compiled.layer_configs}

    for layer in compiled.graph.layers[1:]:
        cfg = by_name[layer.name]
        sources = [outputs[src] for src in layer.inputs]
        if cfg.kind == "conv":
            weights = ddr.region(cfg.weight_region).array
            bias = ddr.region(cfg.bias_region).array if cfg.bias else None
            result = qops.conv2d(
                sources[0], weights, bias, cfg.stride, cfg.padding, cfg.shift, cfg.relu
            )
        elif cfg.kind == "depthwise":
            weights = ddr.region(cfg.weight_region).array
            bias = ddr.region(cfg.bias_region).array if cfg.bias else None
            result = qops.depthwise_conv2d(
                sources[0], weights, bias, cfg.stride, cfg.padding, cfg.shift, cfg.relu
            )
        elif cfg.kind == "pool":
            result = qops.pool2d(sources[0], cfg.kernel, cfg.stride, cfg.padding, cfg.mode)
        elif cfg.kind == "add":
            result = qops.eltwise_add(sources[0], sources[1], cfg.relu)
        elif cfg.kind == "global":
            result = qops.global_pool(sources[0], cfg.mode, cfg.gem_p)
        else:  # pragma: no cover
            raise ExecutionError(f"no golden op for layer kind {cfg.kind!r}")
        outputs[layer.name] = result
    return outputs


def golden_output(compiled: CompiledNetwork, input_map: np.ndarray) -> np.ndarray:
    """The reference output feature map of the network."""
    return golden_inference(compiled, input_map)[compiled.graph.output_layer.name]
