"""Functional (bit-exact) tile arithmetic for the accelerator core.

These helpers compute exactly what one CALC instruction computes: a stripe of
``Para_height`` output rows across the full output width, for one output
channel group, from one input-channel step.  They share the datapath
semantics of :mod:`repro.quant.qops` (int64 accumulate, round-half-up shift,
int8 saturation) so a tiled, interrupted execution can be compared
bit-for-bit against the golden whole-layer reference.
"""

from __future__ import annotations

import numpy as np

from repro.compiler.layer_config import LayerConfig
from repro.errors import ExecutionError
from repro.quant.fixed_point import saturating_shift
from repro.quant.qops import global_pool


def gather_input_window(
    tile_array: np.ndarray,
    tile_row0: int,
    layer: LayerConfig,
    out_row0: int,
    out_rows: int,
    pad_value: int = 0,
) -> np.ndarray:
    """Assemble the padded input window a CALC stripe reads.

    Returns an array of shape ``(window_rows, W_in + 2*pw, tile_channels)``
    where ``window_rows = (out_rows-1)*sh + kh``; rows outside the image and
    the horizontal padding hold ``pad_value`` (0 for conv/avg-pool, -128 for
    max-pool so padding never wins the maximum).
    """
    sh = layer.stride[0]
    kh = layer.kernel[0]
    ph, pw = layer.padding
    in_h = layer.in_shape.height
    start = out_row0 * sh - ph
    window_rows = (out_rows - 1) * sh + kh

    channels = tile_array.shape[2]
    window = np.full(
        (window_rows, layer.in_shape.width + 2 * pw, channels), pad_value, dtype=np.int8
    )
    valid_start = max(start, 0)
    valid_stop = min(start + window_rows, in_h)
    if valid_stop <= valid_start:
        raise ExecutionError(
            f"layer {layer.name!r}: CALC window rows [{start}, {start + window_rows}) "
            f"have no overlap with the image"
        )
    tile_lo = valid_start - tile_row0
    tile_hi = valid_stop - tile_row0
    if tile_lo < 0 or tile_hi > tile_array.shape[0]:
        raise ExecutionError(
            f"layer {layer.name!r}: CALC needs input rows [{valid_start}, {valid_stop}) "
            f"but the resident tile holds [{tile_row0}, {tile_row0 + tile_array.shape[0]})"
        )
    window[valid_start - start : valid_stop - start, pw : pw + layer.in_shape.width, :] = (
        tile_array[tile_lo:tile_hi]
    )
    return window


def conv_step(
    acc: np.ndarray,
    window: np.ndarray,
    weights: np.ndarray,
    layer: LayerConfig,
    out_rows: int,
) -> None:
    """Accumulate one input-channel step of a convolution into ``acc``.

    ``window`` is the padded input for this step's channels; ``weights`` has
    shape ``(kh, kw, step_in_chs, group_chs)``.
    """
    kh, kw = layer.kernel
    sh, sw = layer.stride
    out_w = layer.out_shape.width
    w64 = weights.astype(np.int64)
    for dy in range(kh):
        for dx in range(kw):
            sub = window[
                dy : dy + (out_rows - 1) * sh + 1 : sh,
                dx : dx + (out_w - 1) * sw + 1 : sw,
                :,
            ]
            acc += np.tensordot(sub.astype(np.int64), w64[dy, dx], axes=([2], [0]))


def depthwise_step(
    window: np.ndarray,
    weights: np.ndarray,
    layer: LayerConfig,
    out_rows: int,
) -> np.ndarray:
    """Full depthwise accumulation for one channel group (single-step blobs)."""
    kh, kw = layer.kernel
    sh, sw = layer.stride
    out_w = layer.out_shape.width
    acc = np.zeros((out_rows, out_w, weights.shape[2]), dtype=np.int64)
    w64 = weights.astype(np.int64)
    for dy in range(kh):
        for dx in range(kw):
            sub = window[
                dy : dy + (out_rows - 1) * sh + 1 : sh,
                dx : dx + (out_w - 1) * sw + 1 : sw,
                :,
            ]
            acc += sub.astype(np.int64) * w64[dy, dx].reshape(1, 1, -1)
    return acc


def pool_step(window: np.ndarray, layer: LayerConfig, out_rows: int) -> np.ndarray:
    """Max/avg pooling of one stripe x channel group; returns int8."""
    kh, kw = layer.kernel
    sh, sw = layer.stride
    out_w = layer.out_shape.width
    stacked = np.stack(
        [
            window[
                dy : dy + (out_rows - 1) * sh + 1 : sh,
                dx : dx + (out_w - 1) * sw + 1 : sw,
                :,
            ]
            for dy in range(kh)
            for dx in range(kw)
        ],
        axis=0,
    )
    if layer.mode == "max":
        return stacked.max(axis=0).astype(np.int8)
    total = stacked.astype(np.int64).sum(axis=0)
    return (total // (kh * kw)).astype(np.int8)


def pool_pad_value(layer: LayerConfig) -> int:
    """Padding fill for a layer's input window."""
    if layer.kind == "pool" and layer.mode == "max":
        return -128
    return 0


def finalize(
    acc: np.ndarray,
    bias: np.ndarray | None,
    shift: int,
    relu: bool,
) -> np.ndarray:
    """CALC_F epilogue: bias add, requantization shift, saturation, ReLU."""
    acc = acc.astype(np.int64)
    if bias is not None:
        acc = acc + bias.astype(np.int64).reshape(1, 1, -1)
    out = saturating_shift(acc, shift)
    if relu:
        out = np.maximum(out, 0).astype(np.int8)
    return out


def eltwise_step(lhs: np.ndarray, rhs: np.ndarray, relu: bool) -> np.ndarray:
    """Residual addition of one stripe x channel group."""
    total = lhs.astype(np.int64) + rhs.astype(np.int64)
    out = np.clip(total, -128, 127).astype(np.int8)
    if relu:
        out = np.maximum(out, 0).astype(np.int8)
    return out


def global_step(tile_slice: np.ndarray, layer: LayerConfig) -> np.ndarray:
    """Global pooling of one channel group over the full spatial extent."""
    return global_pool(tile_slice, mode=layer.mode, p=layer.gem_p)
