"""Execution traces: what ran when, for latency analysis and debugging.

:class:`ExecutionTrace` predates the unified observability layer
(:mod:`repro.obs`) and is kept as a *thin adapter over the event bus*: it
is a bus sink that materialises ``INSTR_RETIRE`` events into the flat
:class:`TraceEvent` records its query helpers (and the timeline / Chrome
exporters built on them) always consumed.  New code should read bus events
or spans directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.isa.opcodes import Opcode

if TYPE_CHECKING:  # import cycle: obs is imported by accel.core at runtime
    from repro.obs.bus import EventBus
    from repro.obs.events import Event


@dataclass(frozen=True)
class TraceEvent:
    """One executed instruction with its time span (accelerator cycles)."""

    task_id: int
    program_index: int
    opcode: Opcode
    layer_id: int
    start_cycle: int
    cycles: int

    @property
    def end_cycle(self) -> int:
        return self.start_cycle + self.cycles


@dataclass
class ExecutionTrace:
    """An append-only instruction log with simple queries.

    Acts as an event-bus sink: attach it with ``bus.attach(trace)`` (or
    :meth:`from_bus`) and every ``INSTR_RETIRE`` event becomes a
    :class:`TraceEvent`.  Direct :meth:`record` calls still work for code
    that builds traces by hand.
    """

    events: list[TraceEvent] = field(default_factory=list)
    enabled: bool = True

    @classmethod
    def from_bus(cls, bus: "EventBus") -> "ExecutionTrace":
        """Create a trace subscribed to ``bus``."""
        trace = cls()
        bus.attach(trace)
        return trace

    def record(self, event: TraceEvent) -> None:
        if self.enabled:
            self.events.append(event)

    def handle(self, event: "Event") -> None:
        """Bus-sink hook: adapt instruction-retire events, ignore the rest."""
        from repro.obs.events import EventKind

        if event.kind is not EventKind.INSTR_RETIRE:
            return
        self.record(
            TraceEvent(
                task_id=event.task_id if event.task_id is not None else 0,
                program_index=int(event.data.get("program_index", -1)),
                opcode=Opcode[event.data["opcode"]],
                layer_id=event.layer_id if event.layer_id is not None else 0,
                start_cycle=event.cycle,
                cycles=event.duration,
            )
        )

    def __len__(self) -> int:
        return len(self.events)

    def for_task(self, task_id: int) -> list[TraceEvent]:
        return [event for event in self.events if event.task_id == task_id]

    def first_event_of_task(self, task_id: int) -> TraceEvent | None:
        for event in self.events:
            if event.task_id == task_id:
                return event
        return None

    def total_cycles(self) -> int:
        if not self.events:
            return 0
        return max(event.end_cycle for event in self.events)

    def busy_cycles(self, task_id: int | None = None) -> int:
        return sum(
            event.cycles
            for event in self.events
            if task_id is None or event.task_id == task_id
        )

    def layer_spans(self, task_id: int) -> dict[int, tuple[int, int]]:
        """layer_id -> (first start cycle, last end cycle) for one task."""
        spans: dict[int, tuple[int, int]] = {}
        for event in self.for_task(task_id):
            start, end = spans.get(event.layer_id, (event.start_cycle, event.end_cycle))
            spans[event.layer_id] = (min(start, event.start_cycle), max(end, event.end_cycle))
        return spans
