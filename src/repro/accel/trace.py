"""Execution traces: what ran when, for latency analysis and debugging."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import Opcode


@dataclass(frozen=True)
class TraceEvent:
    """One executed instruction with its time span (accelerator cycles)."""

    task_id: int
    program_index: int
    opcode: Opcode
    layer_id: int
    start_cycle: int
    cycles: int

    @property
    def end_cycle(self) -> int:
        return self.start_cycle + self.cycles


@dataclass
class ExecutionTrace:
    """An append-only event log with simple queries."""

    events: list[TraceEvent] = field(default_factory=list)
    enabled: bool = True

    def record(self, event: TraceEvent) -> None:
        if self.enabled:
            self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def for_task(self, task_id: int) -> list[TraceEvent]:
        return [event for event in self.events if event.task_id == task_id]

    def first_event_of_task(self, task_id: int) -> TraceEvent | None:
        for event in self.events:
            if event.task_id == task_id:
                return event
        return None

    def total_cycles(self) -> int:
        if not self.events:
            return 0
        return max(event.end_cycle for event in self.events)

    def busy_cycles(self, task_id: int | None = None) -> int:
        return sum(
            event.cycles
            for event in self.events
            if task_id is None or event.task_id == task_id
        )

    def layer_spans(self, task_id: int) -> dict[int, tuple[int, int]]:
        """layer_id -> (first start cycle, last end cycle) for one task."""
        spans: dict[int, tuple[int, int]] = {}
        for event in self.for_task(task_id):
            start, end = spans.get(event.layer_id, (event.start_cycle, event.end_cycle))
            spans[event.layer_id] = (min(start, event.start_cycle), max(end, event.end_cycle))
        return spans
