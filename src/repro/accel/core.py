"""The accelerator core: executes original-ISA instructions.

The core models the Angel-Eye-style datapath the IAU feeds: on-chip data /
weight / output buffers, a MAC array, and DMA to DDR.  It runs in two modes:

* **functional** — every CALC computes real int8 arithmetic on numpy arrays
  loaded from / stored to the DDR regions, so results can be compared
  bit-exactly against the golden layer reference (including across
  interrupts);
* **timing-only** — arithmetic is skipped but *all* buffer-state bookkeeping
  and coverage checks still run, so an incorrect interrupt recovery is caught
  even in the fast mode used for the large ResNet-101 experiments.

Cycle accounting follows :mod:`repro.hw.timing`.  The core knows nothing
about tasks or interrupts; it executes whatever the IAU hands it.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, replace

import numpy as np

from repro.accel import functional as fn
from repro.compiler.layer_config import LayerConfig
from repro.errors import ExecutionError
from repro.hw.config import AcceleratorConfig
from repro.hw.ddr import Ddr
from repro.hw.timing import calc_cycles, transfer_cycles
from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode
from repro.obs.bus import EventBus
from repro.obs.config import ObsConfig
from repro.obs.events import EventKind


@dataclass
class DataTile:
    """Input feature-map rows resident in the data buffer (one operand slot)."""

    layer_id: int
    row0: int
    rows: int
    ch0: int
    chs: int
    nbytes: int
    array: np.ndarray | None


@dataclass
class WeightTile:
    """One weight chunk resident in the weight buffer."""

    layer_id: int
    ch0: int
    chs: int
    in_ch0: int
    in_chs: int
    nbytes: int
    array: np.ndarray | None


@dataclass
class Accumulator:
    """Partial sums of the in-flight CalcBlob (CALC_I chain)."""

    layer_id: int
    row0: int
    rows: int
    ch0: int
    chs: int
    next_in_ch0: int
    array: np.ndarray | None


@dataclass
class OutputGroup:
    """Finalized results of one CalcBlob awaiting SAVE."""

    ch0: int
    chs: int
    nbytes: int
    array: np.ndarray | None


@dataclass
class OutputSection:
    """Finalized groups of the current stripe section."""

    layer_id: int
    row0: int
    rows: int
    groups: list[OutputGroup] = field(default_factory=list)

    @property
    def nbytes(self) -> int:
        return sum(group.nbytes for group in self.groups)


@dataclass
class CoreStats:
    """Aggregate execution counters."""

    instructions: int = 0
    cycles: int = 0
    load_cycles: int = 0
    calc_cycles: int = 0
    save_cycles: int = 0
    bytes_loaded: int = 0
    bytes_saved: int = 0


class AcceleratorCore:
    """Executes original-ISA instructions against DDR and on-chip buffers."""

    def __init__(
        self,
        config: AcceleratorConfig,
        ddr: Ddr,
        *,
        obs: ObsConfig | None = None,
        bus: EventBus | None = None,
    ):
        self.config = config
        self.ddr = ddr
        # A bare core defaults to functional execution (the bit-exact mode);
        # harnesses pass an explicit ObsConfig to opt into timing-only.
        self.obs = obs if obs is not None else ObsConfig(functional=True)
        self.functional = self.obs.functional
        self.bus = bus
        self.data_tiles: dict[int, DataTile] = {}
        self.weight_tile: WeightTile | None = None
        self.acc: Accumulator | None = None
        self.out: OutputSection | None = None
        self.stats = CoreStats()

    def _emit_burst(
        self, instruction: Instruction, direction: str, cycles: int, region: str
    ) -> None:
        """Report one DMA transfer on the bus (stamped at the bus clock)."""
        self.bus.emit(
            EventKind.DDR_BURST,
            layer_id=instruction.layer_id,
            duration=cycles,
            direction=direction,
            opcode=instruction.opcode.name,
            bytes=instruction.length,
            region=region,
        )

    # -- context switching support -------------------------------------------

    def snapshot(self):
        """Capture all on-chip state (the CPU-like interrupt's backup)."""
        return (
            dict(self.data_tiles),
            self.weight_tile,
            self.acc,
            self.out,
        )

    def restore(self, state) -> None:
        self.data_tiles, self.weight_tile, self.acc, self.out = state
        self.data_tiles = dict(self.data_tiles)

    def invalidate(self) -> None:
        """Drop all on-chip state (what a task switch does to the loser)."""
        self.data_tiles = {}
        self.weight_tile = None
        self.acc = None
        self.out = None

    @property
    def occupied_bytes(self) -> int:
        total = sum(tile.nbytes for tile in self.data_tiles.values())
        if self.weight_tile is not None:
            total += self.weight_tile.nbytes
        if self.out is not None:
            total += self.out.nbytes
        return total

    # -- snapshot/restore ------------------------------------------------------

    def capture_state(self) -> dict:
        """Picklable mid-run state: every on-chip buffer + the counters.

        Unlike the CPU-like :meth:`snapshot` (which aliases live tiles to
        model a hardware spill), this is a *deep* copy that stays valid
        after the core keeps running — the system-snapshot contract.
        """
        return {
            "buffers": copy.deepcopy(
                (self.data_tiles, self.weight_tile, self.acc, self.out)
            ),
            "stats": replace(self.stats),
        }

    def restore_state(self, state: dict) -> None:
        """Restore buffers and counters from a captured state (copied, so
        the same snapshot can be restored more than once)."""
        self.data_tiles, self.weight_tile, self.acc, self.out = copy.deepcopy(
            state["buffers"]
        )
        self.stats = replace(state["stats"])

    # -- execution ---------------------------------------------------------------

    def retire_batch(
        self,
        aggregates: dict,
        data_tiles: dict[int, DataTile],
        weight_tile: WeightTile | None,
    ) -> None:
        """Advance the core past a pre-validated instruction stretch.

        The IAU's horizon-batched fast path (timing-only, provably
        uninterruptible) retires many instructions at once: ``aggregates``
        carries the summed :class:`CoreStats` deltas, and the buffer
        bookkeeping jumps to the precomputed clean-boundary state (no
        accumulator or un-saved output section in flight there).
        """
        stats = self.stats
        stats.instructions += aggregates["instructions"]
        stats.cycles += aggregates["cycles"]
        stats.load_cycles += aggregates["load_cycles"]
        stats.calc_cycles += aggregates["calc_cycles"]
        stats.save_cycles += aggregates["save_cycles"]
        stats.bytes_loaded += aggregates["bytes_loaded"]
        stats.bytes_saved += aggregates["bytes_saved"]
        self.data_tiles = data_tiles
        self.weight_tile = weight_tile
        self.acc = None
        self.out = None

    def execute(self, instruction: Instruction, layer: LayerConfig) -> int:
        """Run one original-ISA instruction; returns its cycle count."""
        opcode = instruction.opcode
        if opcode == Opcode.LOAD_D:
            cycles = self._load_d(instruction, layer)
        elif opcode == Opcode.LOAD_W:
            cycles = self._load_w(instruction, layer)
        elif opcode in (Opcode.CALC_I, Opcode.CALC_F):
            cycles = self._calc(instruction, layer)
        elif opcode == Opcode.SAVE:
            cycles = self._save(instruction, layer)
        else:
            raise ExecutionError(
                f"accelerator received non-original opcode {opcode.name}; "
                f"virtual instructions must be consumed by the IAU"
            )
        self.stats.instructions += 1
        self.stats.cycles += cycles
        return cycles

    # -- loads -------------------------------------------------------------------

    def _load_d(self, instruction: Instruction, layer: LayerConfig) -> int:
        slot = 1 if instruction.operand_b else 0
        # A load for a new layer implicitly retires the previous layer's tiles.
        stale = [
            key
            for key, tile in self.data_tiles.items()
            if tile.layer_id != instruction.layer_id
        ]
        for key in stale:
            del self.data_tiles[key]

        other_bytes = sum(
            tile.nbytes for key, tile in self.data_tiles.items() if key != slot
        )
        if other_bytes + instruction.length > self.config.data_buffer_bytes:
            raise ExecutionError(
                f"layer {layer.name!r}: LOAD_D of {instruction.length} bytes "
                f"overflows the data buffer ({other_bytes} already resident)"
            )
        fault_cycles = 0
        if self.ddr.faults is not None:
            # ECC runs before the burst data leaves DDR.
            source_region = (
                layer.input2_region if instruction.operand_b else layer.input_region
            )
            fault_cycles = self.ddr.burst_faults(source_region, "load")
        array = None
        if self.functional:
            region_name = layer.input2_region if instruction.operand_b else layer.input_region
            source = self.ddr.region(region_name).array
            array = source[
                instruction.row0 : instruction.row0 + instruction.rows,
                :,
                instruction.ch0 : instruction.ch0 + instruction.chs,
            ].copy()
        if self.ddr.faults is not None:
            # Read-disturb lands after the in-flight data left DDR intact.
            self.ddr.read_disturb(
                layer.input2_region if instruction.operand_b else layer.input_region
            )
        self.data_tiles[slot] = DataTile(
            layer_id=instruction.layer_id,
            row0=instruction.row0,
            rows=instruction.rows,
            ch0=instruction.ch0,
            chs=instruction.chs,
            nbytes=instruction.length,
            array=array,
        )
        cycles = transfer_cycles(self.config, instruction.length) + fault_cycles
        self.stats.load_cycles += cycles
        self.stats.bytes_loaded += instruction.length
        if self.bus is not None:
            region = layer.input2_region if instruction.operand_b else layer.input_region
            self._emit_burst(instruction, "load", cycles, region)
        return cycles

    def _load_w(self, instruction: Instruction, layer: LayerConfig) -> int:
        if instruction.length > self.config.weight_buffer_bytes:
            raise ExecutionError(
                f"layer {layer.name!r}: LOAD_W of {instruction.length} bytes "
                f"overflows the weight buffer"
            )
        fault_cycles = 0
        if self.ddr.faults is not None:
            fault_cycles = self.ddr.burst_faults(layer.weight_region, "load")
        array = None
        if self.functional:
            # The tile must not alias DDR (matching _load_d): a host-side
            # weight update — or, with faults armed, an in-place ECC
            # correction or a fresh flip — must not reach an in-flight tile.
            weights = self.ddr.region(layer.weight_region).array
            if layer.kind == "depthwise":
                array = weights[
                    :, :, instruction.ch0 : instruction.ch0 + instruction.chs
                ].copy()
            else:
                array = weights[
                    :,
                    :,
                    instruction.in_ch0 : instruction.in_ch0 + instruction.in_chs,
                    instruction.ch0 : instruction.ch0 + instruction.chs,
                ].copy()
        if self.ddr.faults is not None:
            self.ddr.read_disturb(layer.weight_region)
        self.weight_tile = WeightTile(
            layer_id=instruction.layer_id,
            ch0=instruction.ch0,
            chs=instruction.chs,
            in_ch0=instruction.in_ch0,
            in_chs=instruction.in_chs,
            nbytes=instruction.length,
            array=array,
        )
        cycles = transfer_cycles(self.config, instruction.length) + fault_cycles
        self.stats.load_cycles += cycles
        self.stats.bytes_loaded += instruction.length
        if self.bus is not None:
            self._emit_burst(instruction, "load", cycles, layer.weight_region)
        return cycles

    # -- calc ------------------------------------------------------------------

    def _calc(self, instruction: Instruction, layer: LayerConfig) -> int:
        tile = self._require_tile(instruction, layer, slot=0)
        if layer.kind == "conv":
            result_cycles = self._calc_conv(instruction, layer, tile)
        elif layer.kind == "depthwise":
            result_cycles = self._calc_depthwise(instruction, layer, tile)
        elif layer.kind == "pool":
            result_cycles = self._calc_pool(instruction, layer, tile)
        elif layer.kind == "add":
            result_cycles = self._calc_add(instruction, layer, tile)
        elif layer.kind == "global":
            result_cycles = self._calc_global(instruction, layer, tile)
        else:  # pragma: no cover - LayerConfig validates kinds
            raise ExecutionError(f"unknown layer kind {layer.kind!r}")
        self.stats.calc_cycles += result_cycles
        return result_cycles

    def _require_tile(self, instruction: Instruction, layer: LayerConfig, slot: int) -> DataTile:
        tile = self.data_tiles.get(slot)
        if tile is None or tile.layer_id != instruction.layer_id:
            raise ExecutionError(
                f"layer {layer.name!r}: CALC with no input tile resident "
                f"(slot {slot}) — missing LOAD_D / interrupt recovery"
            )
        in_row0, in_rows = layer.input_rows_for(instruction.row0, instruction.rows)
        if in_row0 < tile.row0 or in_row0 + in_rows > tile.row0 + tile.rows:
            raise ExecutionError(
                f"layer {layer.name!r}: CALC needs input rows [{in_row0}, "
                f"{in_row0 + in_rows}) but tile holds [{tile.row0}, {tile.row0 + tile.rows})"
            )
        lo, hi = instruction.in_ch0, instruction.in_ch0 + instruction.in_chs
        if lo < tile.ch0 or hi > tile.ch0 + tile.chs:
            raise ExecutionError(
                f"layer {layer.name!r}: CALC needs input channels [{lo}, {hi}) but "
                f"tile holds [{tile.ch0}, {tile.ch0 + tile.chs})"
            )
        return tile

    def _require_weights(self, instruction: Instruction, layer: LayerConfig) -> WeightTile:
        weights = self.weight_tile
        if (
            weights is None
            or weights.layer_id != instruction.layer_id
            or weights.ch0 != instruction.ch0
            or weights.chs != instruction.chs
        ):
            raise ExecutionError(
                f"layer {layer.name!r}: CALC group [{instruction.ch0}, "
                f"{instruction.ch0 + instruction.chs}) has no matching weights resident"
            )
        if layer.kind == "conv":
            lo, hi = instruction.in_ch0, instruction.in_ch0 + instruction.in_chs
            if lo < weights.in_ch0 or hi > weights.in_ch0 + weights.in_chs:
                raise ExecutionError(
                    f"layer {layer.name!r}: CALC input channels [{lo}, {hi}) not in "
                    f"resident weight chunk [{weights.in_ch0}, "
                    f"{weights.in_ch0 + weights.in_chs})"
                )
        return weights

    def _calc_conv(self, instruction: Instruction, layer: LayerConfig, tile: DataTile) -> int:
        weights = self._require_weights(instruction, layer)
        is_final = instruction.opcode == Opcode.CALC_F
        blob_key = (
            instruction.layer_id,
            instruction.row0,
            instruction.rows,
            instruction.ch0,
            instruction.chs,
        )
        if instruction.in_ch0 == 0:
            acc_array = None
            if self.functional:
                acc_array = np.zeros(
                    (instruction.rows, layer.out_shape.width, instruction.chs),
                    dtype=np.int64,
                )
            self.acc = Accumulator(*blob_key, next_in_ch0=0, array=acc_array)
        acc = self.acc
        if (
            acc is None
            or (acc.layer_id, acc.row0, acc.rows, acc.ch0, acc.chs) != blob_key
            or acc.next_in_ch0 != instruction.in_ch0
        ):
            raise ExecutionError(
                f"layer {layer.name!r}: CALC at in_ch {instruction.in_ch0} does not "
                f"continue the in-flight accumulator — blob interrupted mid-chain?"
            )
        if self.functional:
            channel_lo = instruction.in_ch0 - tile.ch0
            window = fn.gather_input_window(
                tile.array[:, :, channel_lo : channel_lo + instruction.in_chs],
                tile.row0,
                layer,
                instruction.row0,
                instruction.rows,
            )
            weight_lo = instruction.in_ch0 - weights.in_ch0
            fn.conv_step(
                acc.array,
                window,
                weights.array[:, :, weight_lo : weight_lo + instruction.in_chs, :],
                layer,
                instruction.rows,
            )
        acc.next_in_ch0 = instruction.in_ch0 + instruction.in_chs
        if is_final:
            result = None
            if self.functional:
                bias = None
                if instruction.bias and layer.bias_region is not None:
                    bias = self.ddr.region(layer.bias_region).array[
                        instruction.ch0 : instruction.ch0 + instruction.chs
                    ]
                result = fn.finalize(acc.array, bias, instruction.shift, instruction.relu)
            self._append_output(instruction, layer, result)
            self.acc = None
        return calc_cycles(self.config, layer.out_shape.width, layer.kernel)

    def _calc_depthwise(self, instruction: Instruction, layer: LayerConfig, tile: DataTile) -> int:
        weights = self._require_weights(instruction, layer)
        result = None
        if self.functional:
            channel_lo = instruction.in_ch0 - tile.ch0
            window = fn.gather_input_window(
                tile.array[:, :, channel_lo : channel_lo + instruction.in_chs],
                tile.row0,
                layer,
                instruction.row0,
                instruction.rows,
            )
            acc = fn.depthwise_step(window, weights.array, layer, instruction.rows)
            bias = None
            if instruction.bias and layer.bias_region is not None:
                bias = self.ddr.region(layer.bias_region).array[
                    instruction.ch0 : instruction.ch0 + instruction.chs
                ]
            result = fn.finalize(acc, bias, instruction.shift, instruction.relu)
        self._append_output(instruction, layer, result)
        return calc_cycles(self.config, layer.out_shape.width, layer.kernel)

    def _calc_pool(self, instruction: Instruction, layer: LayerConfig, tile: DataTile) -> int:
        result = None
        if self.functional:
            channel_lo = instruction.in_ch0 - tile.ch0
            window = fn.gather_input_window(
                tile.array[:, :, channel_lo : channel_lo + instruction.in_chs],
                tile.row0,
                layer,
                instruction.row0,
                instruction.rows,
                pad_value=fn.pool_pad_value(layer),
            )
            result = fn.pool_step(window, layer, instruction.rows)
        self._append_output(instruction, layer, result)
        return calc_cycles(self.config, layer.out_shape.width, layer.kernel)

    def _calc_add(self, instruction: Instruction, layer: LayerConfig, tile: DataTile) -> int:
        second = self.data_tiles.get(1)
        if second is None or second.layer_id != instruction.layer_id:
            raise ExecutionError(
                f"layer {layer.name!r}: residual CALC with no second operand resident"
            )
        result = None
        if self.functional:
            row_lo = instruction.row0 - tile.row0
            ch_lo = instruction.in_ch0 - tile.ch0
            lhs = tile.array[
                row_lo : row_lo + instruction.rows,
                :,
                ch_lo : ch_lo + instruction.in_chs,
            ]
            row_lo2 = instruction.row0 - second.row0
            ch_lo2 = instruction.in_ch0 - second.ch0
            rhs = second.array[
                row_lo2 : row_lo2 + instruction.rows,
                :,
                ch_lo2 : ch_lo2 + instruction.in_chs,
            ]
            result = fn.eltwise_step(lhs, rhs, instruction.relu)
        self._append_output(instruction, layer, result)
        return calc_cycles(self.config, layer.out_shape.width, (1, 1))

    def _calc_global(self, instruction: Instruction, layer: LayerConfig, tile: DataTile) -> int:
        result = None
        if self.functional:
            ch_lo = instruction.in_ch0 - tile.ch0
            result = fn.global_step(
                tile.array[:, :, ch_lo : ch_lo + instruction.in_chs], layer
            )
        self._append_output(instruction, layer, result)
        return layer.in_shape.height * layer.in_shape.width + self.config.calc_overhead_cycles

    def _append_output(
        self, instruction: Instruction, layer: LayerConfig, result: np.ndarray | None
    ) -> None:
        key = (instruction.layer_id, instruction.row0, instruction.rows)
        if self.out is None or (self.out.layer_id, self.out.row0, self.out.rows) != key:
            self.out = OutputSection(
                layer_id=instruction.layer_id,
                row0=instruction.row0,
                rows=instruction.rows,
            )
        nbytes = instruction.rows * layer.out_shape.width * instruction.chs
        if self.out.nbytes + nbytes > self.config.output_buffer_bytes:
            raise ExecutionError(
                f"layer {layer.name!r}: finalized results overflow the output buffer "
                f"({self.out.nbytes} + {nbytes} bytes)"
            )
        self.out.groups.append(
            OutputGroup(ch0=instruction.ch0, chs=instruction.chs, nbytes=nbytes, array=result)
        )

    # -- save --------------------------------------------------------------------

    def _save(self, instruction: Instruction, layer: LayerConfig) -> int:
        if instruction.chs == 0:
            return 0  # fully pre-saved by a VIR_SAVE; the IAU normally drops these
        section = self.out
        key = (instruction.layer_id, instruction.row0, instruction.rows)
        if section is None or (section.layer_id, section.row0, section.rows) != key:
            raise ExecutionError(
                f"layer {layer.name!r}: SAVE rows [{instruction.row0}, "
                f"{instruction.row0 + instruction.rows}) but no matching finalized "
                f"section is resident"
            )
        lo, hi = instruction.ch0, instruction.ch0 + instruction.chs
        chosen = sorted(
            (group for group in section.groups if lo <= group.ch0 < hi),
            key=lambda group: group.ch0,
        )
        cursor = lo
        for group in chosen:
            if group.ch0 != cursor:
                raise ExecutionError(
                    f"layer {layer.name!r}: SAVE range [{lo}, {hi}) has a gap at "
                    f"channel {cursor}"
                )
            cursor = group.ch0 + group.chs
        if cursor != hi:
            raise ExecutionError(
                f"layer {layer.name!r}: SAVE range [{lo}, {hi}) only finalized up to "
                f"channel {cursor}"
            )
        if self.functional:
            target = self.ddr.region(layer.output_region).array
            for group in chosen:
                target[
                    instruction.row0 : instruction.row0 + instruction.rows,
                    :,
                    group.ch0 : group.ch0 + group.chs,
                ] = group.array
        for group in chosen:
            section.groups.remove(group)
        if not section.groups:
            self.out = None
        cycles = transfer_cycles(self.config, instruction.length)
        if self.ddr.faults is not None:
            # The burst rewrote the ECC words under the saved slice; only
            # then may the write disturb a cell.
            self.ddr.note_write(
                layer.output_region, instruction.row0, instruction.rows, lo, hi
            )
            cycles += self.ddr.burst_faults(layer.output_region, "save")
        self.stats.save_cycles += cycles
        self.stats.bytes_saved += instruction.length
        if self.bus is not None:
            self._emit_burst(instruction, "save", cycles, layer.output_region)
        return cycles
