"""Pipelined (double-buffered) execution timing.

The reference core serialises DMA and compute.  Real Angel-Eye overlaps
them: while the MAC array chews on blob N, the DMA engine prefetches the
data for blob N+1 into the second half of each double buffer.  This module
schedules a straight-line program onto two engines with in-order issue:

* a **DMA** instruction (LOAD_D / LOAD_W / SAVE) starts when the DMA engine
  is free, but no earlier than the retirement of the instruction ``window``
  positions behind it — the finite-buffering constraint double buffers
  impose (it cannot run arbitrarily far ahead);
* a **COMPUTE** instruction (CALC) starts when the compute engine is free
  and every earlier DMA load has landed;
* a **SAVE** additionally waits for every earlier CALC (its producers).

This is a timing model, not a functional one: results come from the serial
functional core, which computes the same values in either schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.isa.opcodes import Opcode

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids accel<->analysis cycle)
    from repro.compiler.compile import CompiledNetwork

_DMA = (Opcode.LOAD_D, Opcode.LOAD_W, Opcode.SAVE)


@dataclass(frozen=True)
class PipelinedSchedule:
    """Per-instruction spans of a pipelined execution."""

    network: str
    start: np.ndarray
    end: np.ndarray
    serial_cycles: int

    @property
    def total_cycles(self) -> int:
        return int(self.end[-1])

    @property
    def speedup(self) -> float:
        return self.serial_cycles / max(self.total_cycles, 1)


def pipelined_schedule(
    compiled: CompiledNetwork, vi_mode: str = "vi", window: int = 16
) -> PipelinedSchedule:
    """List-schedule the program onto DMA + compute engines.

    ``window`` is how many instructions the DMA engine may run ahead of the
    oldest unretired instruction — the double-buffer depth expressed at
    instruction granularity.
    """
    from repro.analysis.latency import instruction_cycles

    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    program = compiled.program_for(vi_mode)
    serial = instruction_cycles(compiled, vi_mode)
    fetch = compiled.config.instruction_fetch_cycles

    count = len(program)
    start = np.zeros(count, dtype=np.int64)
    end = np.zeros(count, dtype=np.int64)
    dma_free = 0
    compute_free = 0
    latest_load_end = 0
    latest_compute_end = 0
    previous_end = 0

    for index, instruction in enumerate(program):
        duration = int(serial[index])
        if instruction.is_virtual:
            # Front-end only: consumes fetch slots, never an engine.
            start[index] = previous_end
            end[index] = previous_end
            continue
        window_gate = int(end[index - window]) if index >= window else 0
        if instruction.opcode in _DMA:
            ready = max(dma_free, window_gate)
            if instruction.opcode == Opcode.SAVE:
                ready = max(ready, latest_compute_end)
            start[index] = ready
            end[index] = ready + duration
            dma_free = int(end[index])
            if instruction.opcode != Opcode.SAVE:
                latest_load_end = max(latest_load_end, int(end[index]))
        else:
            ready = max(compute_free, latest_load_end, window_gate)
            start[index] = ready
            end[index] = ready + duration
            compute_free = int(end[index])
            latest_compute_end = max(latest_compute_end, int(end[index]))
        previous_end = int(end[index])

    # Fetch bandwidth is shared: add the virtual instructions' fetch cost to
    # the critical path (they are never fully free).
    virtual_fetch = fetch * sum(1 for i in program if i.is_virtual)
    total = int(max(end)) + virtual_fetch
    end = end.copy()
    end[-1] = max(end[-1], total)
    return PipelinedSchedule(
        network=compiled.graph.name,
        start=start,
        end=end,
        serial_cycles=int(np.sum(serial)),
    )


def engine_busy_cycles(
    compiled: CompiledNetwork, vi_mode: str = "vi"
) -> tuple[int, int]:
    """(dma busy cycles, compute busy cycles) — the pipeline's lower bounds."""
    from repro.analysis.latency import instruction_cycles

    program = compiled.program_for(vi_mode)
    serial = instruction_cycles(compiled, vi_mode)
    dma = 0
    compute = 0
    for index, instruction in enumerate(program):
        if instruction.is_virtual:
            continue
        if instruction.opcode in _DMA:
            dma += int(serial[index])
        else:
            compute += int(serial[index])
    return dma, compute
