"""Multi-task system: composed DDR + core + IAU + timed request injection.

This is the full-system harness the experiments drive: several compiled
networks attached to priority slots, inference requests arriving at given
cycle times (from the ROS layer or from an experiment script), and the IAU
arbitrating the single accelerator between them.

Observability is configured with one keyword-only options object::

    system = MultiTaskSystem(config, obs=ObsConfig(events=True, metrics=True))
    ...
    system.run()
    print(system.spans(0)[0].format())   # per-job span tree
    print(system.summary())              # per-task text table

Request arrival disciplines are unified behind :meth:`submit` +
:class:`ArrivalPolicy` (the pre-2.0 ``submit_if_free`` / ``submit_periodic``
wrappers and the ``functional:`` / ``trace:`` constructor booleans were
removed in v2.0 — see the README's "Migrating to 2.0").
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass

from repro.accel.core import AcceleratorCore
from repro.accel.trace import ExecutionTrace
from repro.compiler.compile import CompiledNetwork, compile_network
from repro.errors import SchedulerError
from repro.faults.plan import DegradationPolicy, FaultPlan
from repro.hw.config import AcceleratorConfig
from repro.hw.ddr import Ddr
from repro.iau.context import JobRecord
from repro.iau.unit import Iau
from repro.obs.events import EventKind
from repro.nn.graph import NetworkGraph
from repro.obs.bus import EventBus
from repro.obs.config import ObsConfig
from repro.obs.export import summarize
from repro.obs.metrics import Metrics, MetricsSink
from repro.obs.spans import Span, job_spans
from repro.qos.admission import AdmissionController
from repro.qos.config import QosConfig
from repro.qos.monitor import InvariantMonitor
from repro.units import MIB


class ArrivalPolicy(enum.Enum):
    """How :meth:`MultiTaskSystem.submit` interprets a request."""

    #: Schedule one request at ``at_cycle`` (the default).
    AT = "at"
    #: Submit *now* only if the task has no pending or running work —
    #: the frame-dropping discipline soft-real-time nodes use.
    NOW_IF_FREE = "now_if_free"
    #: Schedule ``count`` requests ``period_cycles`` apart, starting at
    #: ``at_cycle``.
    PERIODIC = "periodic"


@dataclass(frozen=True, order=True)
class TimedRequest:
    """An inference request scheduled for a future cycle."""

    cycle: int
    sequence: int
    task_id: int


class SubmitSurface:
    """The :class:`ArrivalPolicy` request-injection surface.

    One implementation shared by :class:`MultiTaskSystem` and
    :class:`~repro.multicore.system.MultiCoreSystem`: subclasses provide
    the primitive hooks (attachment check, current clock, per-task
    busy/pending state, and the actual scheduling of one request) and
    inherit the full policy surface.
    """

    def _has_task(self, task_id: int) -> bool:
        raise NotImplementedError

    def _submit_clock(self) -> int:
        """The clock a NOW_IF_FREE request is stamped with."""
        raise NotImplementedError

    def _task_busy(self, task_id: int) -> bool:
        """Whether the task has work pending, queued, or running."""
        raise NotImplementedError

    def _schedule(self, task_id: int, at_cycle: int) -> None:
        raise NotImplementedError

    def submit(
        self,
        task_id: int,
        at_cycle: int = 0,
        *,
        policy: ArrivalPolicy = ArrivalPolicy.AT,
        period_cycles: int | None = None,
        count: int | None = None,
    ) -> bool:
        """Schedule inference request(s) for ``task_id``.

        * ``policy=AT`` (default) — one request at ``at_cycle``;
        * ``policy=NOW_IF_FREE`` — submit at the current clock unless the
          task already has work pending or running (returns whether the
          request was accepted);
        * ``policy=PERIODIC`` — ``count`` requests ``period_cycles`` apart,
          the first at ``at_cycle``.

        Returns True when at least one request was scheduled.
        """
        if not self._has_task(task_id):
            raise SchedulerError(f"no task attached at slot {task_id}")
        if policy is ArrivalPolicy.AT:
            if period_cycles is not None or count is not None:
                raise SchedulerError("period_cycles/count require policy=PERIODIC")
            self._schedule(task_id, at_cycle)
            return True
        if policy is ArrivalPolicy.NOW_IF_FREE:
            if period_cycles is not None or count is not None:
                raise SchedulerError("period_cycles/count require policy=PERIODIC")
            if self._task_busy(task_id):
                return False
            self._schedule(task_id, self._submit_clock())
            return True
        if policy is ArrivalPolicy.PERIODIC:
            if period_cycles is None or count is None:
                raise SchedulerError("policy=PERIODIC requires period_cycles and count")
            if period_cycles <= 0:
                raise SchedulerError(f"period must be positive, got {period_cycles}")
            if count <= 0:
                raise SchedulerError(f"count must be positive, got {count}")
            for index in range(count):
                self._schedule(task_id, at_cycle + index * period_cycles)
            return True
        raise SchedulerError(f"unknown arrival policy {policy!r}")  # pragma: no cover


class MultiTaskSystem(SubmitSurface):
    """One accelerator, up to four prioritised tasks, timed job arrivals."""

    def __init__(
        self,
        config: AcceleratorConfig,
        iau_mode: str = "virtual",
        *,
        obs: ObsConfig | None = None,
        faults: FaultPlan | None = None,
        degradation: DegradationPolicy | None = None,
        qos: QosConfig | None = None,
    ):
        self.config = config
        self.obs = obs if obs is not None else ObsConfig()
        self.ddr = Ddr()

        self.bus: EventBus | None = None
        self.metrics: Metrics | None = None
        self.trace: ExecutionTrace | None = None
        if self.obs.enabled:
            self.bus = EventBus(record=self.obs.events, sinks=self.obs.sinks)
            if self.obs.metrics:
                self.metrics = Metrics()
                self.bus.attach(MetricsSink(self.metrics))
            if self.obs.trace:
                self.trace = ExecutionTrace.from_bus(self.bus)

        #: QoS layer: admission controller + online invariant monitor
        #: (both None unless a QosConfig arms them — the pre-QoS fast path).
        self.qos = qos
        self.admission: AdmissionController | None = None
        self.monitor: InvariantMonitor | None = None
        if qos is not None and qos.wants_admission:
            self.admission = AdmissionController(qos, bus=self.bus)
        if qos is not None and qos.monitor:
            if self.bus is None:
                raise SchedulerError(
                    "qos.monitor needs the event bus: construct with "
                    "obs=ObsConfig(events=True)"
                )
            self.monitor = InvariantMonitor(mode=qos.monitor_mode, bus=self.bus)
            self.bus.attach(self.monitor)

        self.core = AcceleratorCore(config, self.ddr, obs=self.obs, bus=self.bus)
        self.iau = Iau(
            self.core,
            mode=iau_mode,
            bus=self.bus,
            faults=faults,
            qos=qos,
            admission=self.admission,
            monitor=self.monitor,
        )
        self.faults = faults
        self.degradation = degradation
        #: Requests shed by the degradation policy, per task.
        self.shed: dict[int, int] = {}
        self._requests: list[TimedRequest] = []
        self._sequence = 0
        self._task_ids: list[int] = []
        #: Undelivered requests per task (keeps NOW_IF_FREE O(1)).
        self._pending: dict[int, int] = {}

    # -- setup -------------------------------------------------------------

    def add_task(
        self,
        task_id: int,
        compiled: CompiledNetwork,
        vi_mode: str = "vi",
        *,
        deadline_cycles: int | None = None,
        priority: int | None = None,
    ) -> None:
        """Attach a compiled network at a priority slot and map its DDR."""
        for region in compiled.layout.ddr.regions():
            self.ddr.adopt(region)
        self.iau.attach_task(
            task_id,
            compiled,
            vi_mode=vi_mode,
            deadline_cycles=deadline_cycles,
            priority=priority,
        )
        self._task_ids.append(task_id)
        self._pending[task_id] = 0
        self.shed[task_id] = 0
        if self.monitor is not None:
            if (
                self.qos.admission is not None
                and task_id >= self.qos.min_task_id
            ):
                self.monitor.expect_queue_bound(task_id, self.qos.queue_depth)
            self.monitor.expect_deadline(task_id, deadline_cycles)
            for region in compiled.layout.ddr.regions():
                self.monitor.own_region(region.name, task_id)

    def set_deadline(self, task_id: int, cycles: int | None) -> None:
        """(Re)arm the per-job watchdog for an attached task."""
        self.iau.context(task_id).deadline_cycles = cycles
        if self.monitor is not None:
            self.monitor.expect_deadline(task_id, cycles)

    # -- request injection (submit() inherited from SubmitSurface) -----------

    def _has_task(self, task_id: int) -> bool:
        return task_id in self._task_ids

    def _submit_clock(self) -> int:
        return self.iau.clock

    def _task_busy(self, task_id: int) -> bool:
        return bool(self.iau.context(task_id).runnable or self._pending[task_id])

    def _schedule(self, task_id: int, at_cycle: int) -> None:
        if at_cycle < self.iau.clock:
            raise SchedulerError(
                f"cannot submit in the past (at {at_cycle}, clock {self.iau.clock})"
            )
        heapq.heappush(self._requests, TimedRequest(at_cycle, self._sequence, task_id))
        self._sequence += 1
        self._pending[task_id] += 1

    # -- simulation ---------------------------------------------------------------

    def _deliver_due(self) -> None:
        while self._requests and self._requests[0].cycle <= self.iau.clock:
            request = heapq.heappop(self._requests)
            self._pending[request.task_id] -= 1
            if self.degradation is not None and self._degrade(request):
                continue
            # Back-date to the true arrival: the request may become visible
            # only after the in-flight instruction retires, but its latency
            # clock starts when the interrupt line was raised.
            self.iau.request(request.task_id, at_cycle=request.cycle)

    def _degrade(self, request: TimedRequest) -> bool:
        """Apply the degradation policy to one arriving request.

        Returns True when the request was shed (not delivered).  May also
        flip the task between its full and down-tiered program depending on
        the backlog.
        """
        policy = self.degradation
        if request.task_id < policy.min_task_id:
            return False
        context = self.iau.context(request.task_id)
        backlog = context.pending_jobs
        if backlog >= policy.max_pending:
            self.shed[request.task_id] += 1
            if self.bus is not None:
                self.bus.emit(
                    EventKind.JOB_DEGRADED,
                    cycle=self.iau.clock,
                    task_id=request.task_id,
                    action="shed",
                    pending=backlog,
                )
            return True
        if policy.downtier_pending is not None:
            want = backlog >= policy.downtier_pending
            if want and not context.want_degraded:
                if context.degraded_program is None:
                    context.degraded_program = context.compiled.program_for(
                        policy.downtier_vi_mode
                    )
                if self.bus is not None:
                    self.bus.emit(
                        EventKind.JOB_DEGRADED,
                        cycle=self.iau.clock,
                        task_id=request.task_id,
                        action="downtier",
                        pending=backlog,
                    )
            context.want_degraded = want
        return False

    @property
    def done(self) -> bool:
        """True when every request has been delivered and every job drained."""
        return self.iau.idle and not self._requests

    @property
    def clock(self) -> int:
        return self.iau.clock

    def run(
        self,
        max_steps: int = 500_000_000,
        *,
        batched: bool = True,
        until_cycle: int | None = None,
    ) -> int:
        """Run until every request is delivered and every job drained.

        ``batched=True`` (the default) lets the IAU retire provably
        uninterruptible stretches in one step via
        :meth:`~repro.iau.unit.Iau.run_batched`, bounded by the next
        scheduled arrival; it is cycle- and event-exact against
        ``batched=False``, which forces the per-instruction ``step()`` loop
        (the differential-testing reference).

        ``until_cycle`` pauses the run at the first step boundary at or past
        that clock instead of draining — the serving layer's snapshot
        points.  A chunked run (repeated ``until_cycle`` calls) is cycle-
        and event-exact against one uninterrupted ``run()``; check
        :attr:`done` to distinguish a pause from completion.

        Returns the final clock (cycles).
        """
        steps = 0
        while True:
            if until_cycle is not None and self.iau.clock >= until_cycle:
                break
            self._deliver_due()
            if self.iau.idle:
                if not self._requests:
                    break
                # Fast-forward to the next arrival.
                self.iau.clock = max(self.iau.clock, self._requests[0].cycle)
                continue
            if batched:
                # The horizon is re-read every iteration: completions may
                # schedule new work (ROS callbacks) between batches.
                horizon = self._requests[0].cycle if self._requests else None
                if until_cycle is not None:
                    horizon = (
                        until_cycle if horizon is None else min(horizon, until_cycle)
                    )
                self.iau.run_batched(horizon)
            else:
                self.iau.step()
            steps += 1
            if steps > max_steps:
                raise SchedulerError(f"simulation did not finish in {max_steps} steps")
        if self.faults is not None and self.done:
            # End-of-run ECC scrub: latent DDR corruption must be corrected
            # (or escalate to EccError) before anyone reads results back.
            # A paused run keeps its pending flips — they are part of the
            # snapshot, and the final chunk scrubs exactly like one run.
            self.ddr.scrub()
        return self.iau.clock

    # -- snapshot/restore ------------------------------------------------------

    def _fingerprint(self) -> dict:
        """Structural identity a snapshot must match to be restorable here:
        the accelerator design, the attached task set (slot → program
        variant + length + regions), and which optional subsystems are
        armed.  All derived from construction arguments, never mutated by a
        run."""
        tasks = {}
        for task_id in self._task_ids:
            context = self.iau.context(task_id)
            tasks[task_id] = {
                "variant": context.variant_key(context.base_program),
                "instructions": len(context.base_program),
                "regions": sorted(
                    region.name for region in context.compiled.layout.ddr.regions()
                ),
            }
        return {
            "config": repr(self.config),
            "iau_mode": self.iau.mode,
            "tasks": tasks,
            "armed": {
                "bus": self.bus is not None,
                "metrics": self.metrics is not None,
                "trace": self.trace is not None,
                "monitor": self.monitor is not None,
                "admission": self.admission is not None,
                "faults": self.faults is not None,
                "degradation": self.degradation is not None,
                "functional": self.core.functional,
            },
        }

    def capture_state(self) -> dict:
        """Serialize the full mid-run state to one picklable dict.

        Covers the DDR contents, every on-chip buffer, the IAU task table,
        the scheduler bookkeeping (undelivered requests, sequence numbers,
        shed counts) and — when armed — the event stream, metrics,
        invariant monitor, admission controller and fault-plan RNGs, so
        :meth:`restore_state` on an identically-built system continues
        bit-exactly.  See :mod:`repro.serve.snapshot` for the on-disk
        format.
        """
        if self.iau.on_complete is not None:
            raise SchedulerError(
                "cannot snapshot a system with an on_complete hook: "
                "callback closures (e.g. ROS executors) are not serializable"
            )
        state: dict = {
            "fingerprint": self._fingerprint(),
            "ddr": self.ddr.capture_state(),
            "core": self.core.capture_state(),
            "iau": self.iau.capture_state(),
            "requests": list(self._requests),
            "sequence": self._sequence,
            "pending": dict(self._pending),
            "shed": dict(self.shed),
        }
        if self.bus is not None:
            state["bus"] = self.bus.capture_state()
        if self.metrics is not None:
            state["metrics"] = self.metrics.capture_state()
        if self.trace is not None:
            state["trace"] = list(self.trace.events)
        if self.monitor is not None:
            state["monitor"] = self.monitor.capture_state()
        if self.admission is not None:
            state["admission"] = self.admission.capture_state()
        if self.faults is not None:
            state["faults"] = self.faults.capture_state()
        return state

    def restore_state(self, state: dict) -> None:
        """Restore a captured state into this (identically-built) system.

        The snapshot's structural fingerprint must match exactly — same
        accelerator config, same task set and program variants, same armed
        subsystems — otherwise :class:`~repro.errors.SchedulerError` is
        raised before anything is touched.  The state dict itself is never
        mutated, so one snapshot can seed many restores.
        """
        fingerprint = self._fingerprint()
        if state.get("fingerprint") != fingerprint:
            raise SchedulerError(
                "snapshot does not fit this system: the accelerator config, "
                "attached task set, or armed subsystems differ from the "
                "capturing system"
            )
        self.ddr.restore_state(state["ddr"])
        self.core.restore_state(state["core"])
        self.iau.restore_state(state["iau"])
        self._requests = list(state["requests"])  # heap order is preserved
        self._sequence = state["sequence"]
        self._pending = dict(state["pending"])
        self.shed = dict(state["shed"])
        if self.bus is not None:
            self.bus.restore_state(state["bus"])
        if self.metrics is not None:
            self.metrics.restore_state(state["metrics"])
        if self.trace is not None:
            self.trace.events = list(state["trace"])
        if self.monitor is not None:
            self.monitor.restore_state(state["monitor"])
        if self.admission is not None:
            self.admission.restore_state(state["admission"])
        if self.faults is not None:
            self.faults.restore_state(state["faults"])

    # -- results -------------------------------------------------------------------

    def jobs(self, task_id: int) -> list[JobRecord]:
        return self.iau.context(task_id).completed

    def job(self, task_id: int, index: int = 0) -> JobRecord:
        completed = self.jobs(task_id)
        if index >= len(completed):
            raise SchedulerError(
                f"task {task_id} completed {len(completed)} job(s), wanted #{index}"
            )
        return completed[index]

    def spans(self, task_id: int | None = None) -> list[Span]:
        """Per-job span trees derived from the recorded events."""
        if self.bus is None:
            raise SchedulerError(
                "no events recorded: construct with obs=ObsConfig(events=True)"
            )
        return job_spans(self.bus, task_id)

    def summary(self) -> str:
        """Plain-text per-task observability summary."""
        if self.bus is None:
            raise SchedulerError(
                "no events recorded: construct with obs=ObsConfig(events=True)"
            )
        return summarize(self.bus)

    def seconds(self, cycles: int) -> float:
        return self.config.clock.cycles_to_s(cycles)


def compile_tasks(
    graphs: list[NetworkGraph],
    config: AcceleratorConfig,
    weights: str = "zeros",
    seed: int = 0,
    gap_bytes: int = 64 * MIB,
    cache=None,
) -> list[CompiledNetwork]:
    """Compile several networks into disjoint DDR windows.

    Each network gets its own base address so a :class:`MultiTaskSystem` can
    adopt all regions into one flat address space.  ``cache`` is forwarded
    to :func:`~repro.compiler.compile.compile_network` (each network is a
    separate cache entry — the base address is part of the key, so any
    prefix change re-keys the networks behind it).
    """
    compiled: list[CompiledNetwork] = []
    base = 0
    for index, graph in enumerate(graphs):
        network = compile_network(
            graph,
            config,
            base_addr=base,
            weights=weights,
            seed=seed + index,
            cache=cache,
        )
        compiled.append(network)
        base = _align_up(network.layout.ddr.base + network.layout.ddr.used_bytes + gap_bytes)
    return compiled


def _align_up(value: int, alignment: int = 1 * MIB) -> int:
    remainder = value % alignment
    return value if remainder == 0 else value + alignment - remainder
