"""Multi-task system: composed DDR + core + IAU + timed request injection.

This is the full-system harness the experiments drive: several compiled
networks attached to priority slots, inference requests arriving at given
cycle times (from the ROS layer or from an experiment script), and the IAU
arbitrating the single accelerator between them.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.accel.core import AcceleratorCore
from repro.accel.trace import ExecutionTrace
from repro.compiler.compile import CompiledNetwork, compile_network
from repro.errors import SchedulerError
from repro.hw.config import AcceleratorConfig
from repro.hw.ddr import Ddr
from repro.iau.context import JobRecord
from repro.iau.unit import Iau
from repro.nn.graph import NetworkGraph
from repro.units import MIB


@dataclass(frozen=True, order=True)
class TimedRequest:
    """An inference request scheduled for a future cycle."""

    cycle: int
    sequence: int
    task_id: int


class MultiTaskSystem:
    """One accelerator, up to four prioritised tasks, timed job arrivals."""

    def __init__(
        self,
        config: AcceleratorConfig,
        iau_mode: str = "virtual",
        functional: bool = False,
        trace: bool = False,
    ):
        self.config = config
        self.ddr = Ddr()
        self.core = AcceleratorCore(config, self.ddr, functional=functional)
        self.trace = ExecutionTrace() if trace else None
        self.iau = Iau(self.core, mode=iau_mode, trace=self.trace)
        self._requests: list[TimedRequest] = []
        self._sequence = 0
        self._task_ids: list[int] = []

    # -- setup -------------------------------------------------------------

    def add_task(self, task_id: int, compiled: CompiledNetwork, vi_mode: str = "vi") -> None:
        """Attach a compiled network at a priority slot and map its DDR."""
        for region in compiled.layout.ddr.regions():
            self.ddr.adopt(region)
        self.iau.attach_task(task_id, compiled, vi_mode=vi_mode)
        self._task_ids.append(task_id)

    # -- request injection ----------------------------------------------------

    def submit(self, task_id: int, at_cycle: int = 0) -> None:
        """Schedule one inference request for ``task_id`` at ``at_cycle``."""
        if task_id not in self._task_ids:
            raise SchedulerError(f"no task attached at slot {task_id}")
        if at_cycle < self.iau.clock:
            raise SchedulerError(
                f"cannot submit in the past (at {at_cycle}, clock {self.iau.clock})"
            )
        heapq.heappush(self._requests, TimedRequest(at_cycle, self._sequence, task_id))
        self._sequence += 1

    def submit_if_free(self, task_id: int) -> bool:
        """Submit a request *now* unless the task already has work pending.

        This is the frame-dropping discipline soft-real-time nodes use (the
        DSLAM PR node: process the newest frame when free, skip the rest).
        Returns True when the job was accepted.  Only meaningful for "now"
        submissions — the busy check reads the task's current state.
        """
        if task_id not in self._task_ids:
            raise SchedulerError(f"no task attached at slot {task_id}")
        context = self.iau.context(task_id)
        if context.runnable:
            return False
        if any(request.task_id == task_id for request in self._requests):
            return False
        self.submit(task_id, at_cycle=self.iau.clock)
        return True

    def submit_periodic(self, task_id: int, period_cycles: int, count: int, offset: int = 0) -> None:
        """Schedule ``count`` requests spaced ``period_cycles`` apart."""
        for index in range(count):
            self.submit(task_id, offset + index * period_cycles)

    # -- simulation ---------------------------------------------------------------

    def _deliver_due(self) -> None:
        while self._requests and self._requests[0].cycle <= self.iau.clock:
            request = heapq.heappop(self._requests)
            # Back-date to the true arrival: the request may become visible
            # only after the in-flight instruction retires, but its latency
            # clock starts when the interrupt line was raised.
            self.iau.request(request.task_id, at_cycle=request.cycle)

    def run(self, max_steps: int = 500_000_000) -> int:
        """Run until every request is delivered and every job drained.

        Returns the final clock (cycles).
        """
        steps = 0
        while True:
            self._deliver_due()
            if self.iau.idle:
                if not self._requests:
                    return self.iau.clock
                # Fast-forward to the next arrival.
                self.iau.clock = max(self.iau.clock, self._requests[0].cycle)
                continue
            self.iau.step()
            steps += 1
            if steps > max_steps:
                raise SchedulerError(f"simulation did not finish in {max_steps} steps")

    # -- results -------------------------------------------------------------------

    def jobs(self, task_id: int) -> list[JobRecord]:
        return self.iau.context(task_id).completed

    def job(self, task_id: int, index: int = 0) -> JobRecord:
        completed = self.jobs(task_id)
        if index >= len(completed):
            raise SchedulerError(
                f"task {task_id} completed {len(completed)} job(s), wanted #{index}"
            )
        return completed[index]

    def seconds(self, cycles: int) -> float:
        return self.config.clock.cycles_to_s(cycles)


def compile_tasks(
    graphs: list[NetworkGraph],
    config: AcceleratorConfig,
    weights: str = "zeros",
    seed: int = 0,
    gap_bytes: int = 64 * MIB,
) -> list[CompiledNetwork]:
    """Compile several networks into disjoint DDR windows.

    Each network gets its own base address so a :class:`MultiTaskSystem` can
    adopt all regions into one flat address space.
    """
    compiled: list[CompiledNetwork] = []
    base = 0
    for index, graph in enumerate(graphs):
        network = compile_network(
            graph, config, base_addr=base, weights=weights, seed=seed + index
        )
        compiled.append(network)
        base = _align_up(network.layout.ddr.base + network.layout.ddr.used_bytes + gap_bytes)
    return compiled


def _align_up(value: int, alignment: int = 1 * MIB) -> int:
    remainder = value % alignment
    return value if remainder == 0 else value + alignment - remainder
