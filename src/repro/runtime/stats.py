"""Scheduling statistics: response latencies, deadlines, degradation."""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.config import AcceleratorConfig
from repro.iau.context import JobRecord


@dataclass(frozen=True)
class TaskStats:
    """Aggregate per-task job statistics (all values in cycles)."""

    task_id: int
    jobs: int
    mean_response: float
    max_response: int
    mean_turnaround: float
    max_turnaround: int
    deadline_cycles: int | None = None
    deadline_misses: int = 0

    def mean_response_us(self, config: AcceleratorConfig) -> float:
        return config.clock.cycles_to_us(self.mean_response)

    def max_turnaround_us(self, config: AcceleratorConfig) -> float:
        return config.clock.cycles_to_us(self.max_turnaround)


def summarize_jobs(
    task_id: int,
    jobs: list[JobRecord],
    deadline_cycles: int | None = None,
) -> TaskStats:
    """Summarise a task's completed jobs; optionally check a deadline."""
    if not jobs:
        raise ValueError(f"task {task_id} completed no jobs")
    responses = [job.response_cycles for job in jobs]
    turnarounds = [job.turnaround_cycles for job in jobs]
    misses = 0
    if deadline_cycles is not None:
        misses = sum(1 for turnaround in turnarounds if turnaround > deadline_cycles)
    return TaskStats(
        task_id=task_id,
        jobs=len(jobs),
        mean_response=sum(responses) / len(responses),
        max_response=max(responses),
        mean_turnaround=sum(turnarounds) / len(turnarounds),
        max_turnaround=max(turnarounds),
        deadline_cycles=deadline_cycles,
        deadline_misses=misses,
    )


def degradation_percent(baseline_cycles: int, observed_cycles: int) -> float:
    """Slowdown of ``observed`` relative to ``baseline``, in percent."""
    if baseline_cycles <= 0:
        raise ValueError("baseline must be positive")
    return 100.0 * (observed_cycles - baseline_cycles) / baseline_cycles
