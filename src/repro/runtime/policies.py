"""Priority assignment and schedulability analysis for periodic CNN tasks.

The IAU gives four fixed-priority slots; *which* task gets which slot is a
software decision.  For periodic workloads the classic answer is
rate-monotonic assignment (shorter period => higher priority), and the
Liu & Layland utilisation bound plus response-time analysis predict whether
deadlines will hold before running a single simulation — which the tests
then confirm against the simulator.

The response-time analysis is adapted to INCA's pre-emption granularity:
a lower-priority task adds *blocking* of up to one interrupt-point gap (the
worst CalcBlob plus its backup), because the accelerator switches only at
virtual instructions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.compile import CompiledNetwork
from repro.compiler.report import per_layer_worst_wait
from repro.errors import SchedulerError


@dataclass(frozen=True)
class PeriodicTask:
    """One periodic inference workload."""

    name: str
    compiled: CompiledNetwork
    period_cycles: int
    execution_cycles: int

    def __post_init__(self) -> None:
        if self.period_cycles <= 0:
            raise SchedulerError(f"task {self.name!r}: period must be positive")
        if self.execution_cycles <= 0:
            raise SchedulerError(f"task {self.name!r}: execution time must be positive")

    @property
    def utilisation(self) -> float:
        return self.execution_cycles / self.period_cycles


def rate_monotonic_order(tasks: list[PeriodicTask]) -> list[PeriodicTask]:
    """Shorter period => higher priority (lower slot index)."""
    return sorted(tasks, key=lambda task: task.period_cycles)


def total_utilisation(tasks: list[PeriodicTask]) -> float:
    return sum(task.utilisation for task in tasks)


def liu_layland_bound(count: int) -> float:
    """The n(2^(1/n) - 1) sufficient schedulability bound."""
    if count <= 0:
        raise SchedulerError("need at least one task")
    return count * (2.0 ** (1.0 / count) - 1.0)


def worst_blocking_cycles(compiled: CompiledNetwork) -> int:
    """Worst non-pre-emptible stretch of one network under the VI method:
    the longest CalcBlob (Eq. 1's numerator) — a higher-priority arrival can
    wait at most this long for the running task to reach an interrupt point."""
    waits = per_layer_worst_wait(compiled)
    return max(waits.values()) if waits else 0


@dataclass(frozen=True)
class ResponseTimeResult:
    """Response-time analysis outcome for one task."""

    name: str
    response_cycles: int
    deadline_cycles: int

    @property
    def schedulable(self) -> bool:
        return self.response_cycles <= self.deadline_cycles


def response_time_analysis(
    tasks: list[PeriodicTask], max_iterations: int = 100
) -> list[ResponseTimeResult]:
    """Classic fixed-priority response-time iteration with VI blocking.

    ``tasks`` must already be in priority order (index 0 highest).  Deadline
    is the period (implicit-deadline model).
    """
    if len(tasks) > 4:
        raise SchedulerError("the IAU has four task slots")
    results = []
    for index, task in enumerate(tasks):
        higher = tasks[:index]
        lower = tasks[index + 1 :]
        blocking = max(
            (worst_blocking_cycles(candidate.compiled) for candidate in lower),
            default=0,
        )
        response = task.execution_cycles + blocking
        for _ in range(max_iterations):
            interference = sum(
                -(-response // other.period_cycles) * other.execution_cycles
                for other in higher
            )
            updated = task.execution_cycles + blocking + interference
            if updated == response:
                break
            response = updated
            if response > 100 * task.period_cycles:
                break  # clearly unschedulable; stop diverging
        results.append(
            ResponseTimeResult(
                name=task.name,
                response_cycles=response,
                deadline_cycles=task.period_cycles,
            )
        )
    return results


def is_schedulable(tasks: list[PeriodicTask]) -> bool:
    """Rate-monotonic order + response-time analysis verdict."""
    ordered = rate_monotonic_order(tasks)
    return all(result.schedulable for result in response_time_analysis(ordered))
