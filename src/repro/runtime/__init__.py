"""Multi-task runtime: timed requests, prioritised scheduling, statistics."""

from repro.runtime.policies import (
    PeriodicTask,
    ResponseTimeResult,
    is_schedulable,
    liu_layland_bound,
    rate_monotonic_order,
    response_time_analysis,
    total_utilisation,
    worst_blocking_cycles,
)
from repro.runtime.stats import TaskStats, degradation_percent, summarize_jobs
from repro.runtime.system import (
    ArrivalPolicy,
    MultiTaskSystem,
    TimedRequest,
    compile_tasks,
)

__all__ = [
    "ArrivalPolicy",
    "MultiTaskSystem",
    "PeriodicTask",
    "ResponseTimeResult",
    "TaskStats",
    "TimedRequest",
    "compile_tasks",
    "degradation_percent",
    "is_schedulable",
    "liu_layland_bound",
    "rate_monotonic_order",
    "response_time_analysis",
    "summarize_jobs",
    "total_utilisation",
    "worst_blocking_cycles",
]
