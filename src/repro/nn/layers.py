"""Layer definitions for the network IR.

Each layer knows how to infer its output shape from its input shapes and how
to report its parameter/MAC counts.  These are the only properties the INCA
compiler needs; actual numeric evaluation lives in :mod:`repro.quant.qops`
and :mod:`repro.accel.functional`.

The set of layers mirrors what the paper's workloads use: plain and
depthwise convolution (VGG / ResNet / MobileNet), pooling, residual addition,
fully-connected heads, and the GeM generalised-mean pooling used by the place
recognition network.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import GraphError
from repro.nn.tensor import TensorShape, conv_output_hw


def _pair(value: int | tuple[int, int]) -> tuple[int, int]:
    if isinstance(value, tuple):
        if len(value) != 2:
            raise GraphError(f"expected an (h, w) pair, got {value!r}")
        return value
    return (value, value)


@dataclass(frozen=True)
class Layer:
    """Base class for all IR layers.

    ``name`` is unique within a graph.  ``inputs`` lists the producer layer
    names; the input layer has none.
    """

    name: str
    inputs: tuple[str, ...] = field(default=(), kw_only=True)

    @property
    def kind(self) -> str:
        return type(self).__name__

    @property
    def arity(self) -> int:
        """Number of inputs this layer expects."""
        return 1

    def output_shape(self, input_shapes: list[TensorShape]) -> TensorShape:
        raise NotImplementedError

    def num_params(self) -> int:
        """Number of learned parameters (weights + biases)."""
        return 0

    def num_macs(self, input_shapes: list[TensorShape]) -> int:
        """Multiply-accumulate operations for one inference."""
        return 0

    def _check_arity(self, input_shapes: list[TensorShape]) -> None:
        if len(input_shapes) != self.arity:
            raise GraphError(
                f"layer {self.name!r} ({self.kind}) expects {self.arity} input(s), "
                f"got {len(input_shapes)}"
            )


@dataclass(frozen=True)
class Input(Layer):
    """Graph entry point carrying the network input shape."""

    shape: TensorShape = field(kw_only=True)

    @property
    def arity(self) -> int:
        return 0

    def output_shape(self, input_shapes: list[TensorShape]) -> TensorShape:
        self._check_arity(input_shapes)
        return self.shape


@dataclass(frozen=True)
class Conv2d(Layer):
    """Standard 2-D convolution, optionally fused with bias + ReLU.

    Batch-norm in the source models is assumed folded into the weights, the
    standard deployment transformation the paper's toolchain (Angel-Eye's
    quantizing compiler) performs.
    """

    out_channels: int = field(kw_only=True)
    kernel: tuple[int, int] = field(kw_only=True)
    stride: tuple[int, int] = field(default=(1, 1), kw_only=True)
    padding: tuple[int, int] = field(default=(0, 0), kw_only=True)
    relu: bool = field(default=True, kw_only=True)
    bias: bool = field(default=True, kw_only=True)
    in_channels: int = field(default=0, kw_only=True)  # filled by the graph

    def __post_init__(self) -> None:
        if self.out_channels <= 0:
            raise GraphError(f"conv {self.name!r}: out_channels must be positive")
        kh, kw = _pair(self.kernel)
        object.__setattr__(self, "kernel", (kh, kw))
        object.__setattr__(self, "stride", _pair(self.stride))
        object.__setattr__(self, "padding", _pair(self.padding))

    def output_shape(self, input_shapes: list[TensorShape]) -> TensorShape:
        self._check_arity(input_shapes)
        (src,) = input_shapes
        out_h, out_w = conv_output_hw(src.height, src.width, self.kernel, self.stride, self.padding)
        return TensorShape(out_h, out_w, self.out_channels)

    def num_params(self) -> int:
        kh, kw = self.kernel
        weights = kh * kw * self.in_channels * self.out_channels
        return weights + (self.out_channels if self.bias else 0)

    def num_macs(self, input_shapes: list[TensorShape]) -> int:
        out = self.output_shape(input_shapes)
        kh, kw = self.kernel
        return out.height * out.width * out.channels * kh * kw * self.in_channels


@dataclass(frozen=True)
class DepthwiseConv2d(Layer):
    """Depthwise convolution (one filter per channel), as in MobileNet."""

    kernel: tuple[int, int] = field(kw_only=True)
    stride: tuple[int, int] = field(default=(1, 1), kw_only=True)
    padding: tuple[int, int] = field(default=(0, 0), kw_only=True)
    relu: bool = field(default=True, kw_only=True)
    bias: bool = field(default=True, kw_only=True)
    in_channels: int = field(default=0, kw_only=True)

    def __post_init__(self) -> None:
        object.__setattr__(self, "kernel", _pair(self.kernel))
        object.__setattr__(self, "stride", _pair(self.stride))
        object.__setattr__(self, "padding", _pair(self.padding))

    @property
    def out_channels(self) -> int:
        return self.in_channels

    def output_shape(self, input_shapes: list[TensorShape]) -> TensorShape:
        self._check_arity(input_shapes)
        (src,) = input_shapes
        out_h, out_w = conv_output_hw(src.height, src.width, self.kernel, self.stride, self.padding)
        return TensorShape(out_h, out_w, src.channels)

    def num_params(self) -> int:
        kh, kw = self.kernel
        return kh * kw * self.in_channels + (self.in_channels if self.bias else 0)

    def num_macs(self, input_shapes: list[TensorShape]) -> int:
        out = self.output_shape(input_shapes)
        kh, kw = self.kernel
        return out.height * out.width * out.channels * kh * kw


@dataclass(frozen=True)
class Pool2d(Layer):
    """Max or average pooling."""

    kernel: tuple[int, int] = field(kw_only=True)
    stride: tuple[int, int] = field(default=(2, 2), kw_only=True)
    padding: tuple[int, int] = field(default=(0, 0), kw_only=True)
    mode: str = field(default="max", kw_only=True)

    def __post_init__(self) -> None:
        object.__setattr__(self, "kernel", _pair(self.kernel))
        object.__setattr__(self, "stride", _pair(self.stride))
        object.__setattr__(self, "padding", _pair(self.padding))
        if self.mode not in ("max", "avg"):
            raise GraphError(f"pool {self.name!r}: mode must be 'max' or 'avg', got {self.mode!r}")

    def output_shape(self, input_shapes: list[TensorShape]) -> TensorShape:
        self._check_arity(input_shapes)
        (src,) = input_shapes
        out_h, out_w = conv_output_hw(src.height, src.width, self.kernel, self.stride, self.padding)
        return TensorShape(out_h, out_w, src.channels)


@dataclass(frozen=True)
class Add(Layer):
    """Element-wise residual addition (ResNet shortcut), with optional ReLU."""

    relu: bool = field(default=True, kw_only=True)

    @property
    def arity(self) -> int:
        return 2

    def output_shape(self, input_shapes: list[TensorShape]) -> TensorShape:
        self._check_arity(input_shapes)
        lhs, rhs = input_shapes
        if lhs != rhs:
            raise GraphError(
                f"add {self.name!r}: operand shapes differ ({lhs} vs {rhs})"
            )
        return lhs


@dataclass(frozen=True)
class GlobalPool(Layer):
    """Global spatial pooling to a 1x1 map. ``mode='gem'`` is generalised-mean
    pooling with exponent ``p`` — the retrieval head of the paper's PR network
    (GeM, Radenovic et al.)."""

    mode: str = field(default="avg", kw_only=True)
    p: float = field(default=3.0, kw_only=True)

    def __post_init__(self) -> None:
        if self.mode not in ("avg", "max", "gem"):
            raise GraphError(f"global pool {self.name!r}: bad mode {self.mode!r}")
        if self.mode == "gem" and self.p <= 0:
            raise GraphError(f"global pool {self.name!r}: GeM exponent must be positive")

    def output_shape(self, input_shapes: list[TensorShape]) -> TensorShape:
        self._check_arity(input_shapes)
        (src,) = input_shapes
        return TensorShape(1, 1, src.channels)


@dataclass(frozen=True)
class FullyConnected(Layer):
    """Dense layer on a flattened feature map (whitening/classifier heads)."""

    out_features: int = field(kw_only=True)
    relu: bool = field(default=False, kw_only=True)
    bias: bool = field(default=True, kw_only=True)
    in_features: int = field(default=0, kw_only=True)

    def __post_init__(self) -> None:
        if self.out_features <= 0:
            raise GraphError(f"fc {self.name!r}: out_features must be positive")

    def output_shape(self, input_shapes: list[TensorShape]) -> TensorShape:
        self._check_arity(input_shapes)
        return TensorShape(1, 1, self.out_features)

    def num_params(self) -> int:
        return self.in_features * self.out_features + (self.out_features if self.bias else 0)

    def num_macs(self, input_shapes: list[TensorShape]) -> int:
        return self.in_features * self.out_features


#: Layers that the compiler maps onto the accelerator's CALC datapath.
COMPUTE_LAYER_KINDS = ("Conv2d", "DepthwiseConv2d", "FullyConnected")
