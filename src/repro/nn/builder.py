"""Fluent builder for :class:`~repro.nn.graph.NetworkGraph`.

The model zoo uses this to express architectures compactly::

    b = GraphBuilder("tiny", input_shape=TensorShape(32, 32, 3))
    b.conv("conv1", out_channels=16, kernel=3, padding=1)
    b.pool("pool1", kernel=2, stride=2)
    net = b.build()

Unless an explicit ``after=`` is given, each call chains onto the previously
added layer.
"""

from __future__ import annotations

from repro.errors import GraphError
from repro.nn.graph import NetworkGraph
from repro.nn.layers import (
    Add,
    Conv2d,
    DepthwiseConv2d,
    FullyConnected,
    GlobalPool,
    Input,
    Layer,
    Pool2d,
)
from repro.nn.tensor import TensorShape


class GraphBuilder:
    """Incrementally assemble a layer DAG, then :meth:`build` it."""

    def __init__(self, name: str, input_shape: TensorShape, input_name: str = "input"):
        self.name = name
        self._layers: list[Layer] = [Input(input_name, shape=input_shape)]
        self._tail = input_name

    # -- plumbing ----------------------------------------------------------

    @property
    def tail(self) -> str:
        """Name of the most recently added layer (the implicit wiring point)."""
        return self._tail

    def _add(self, layer: Layer) -> str:
        if any(existing.name == layer.name for existing in self._layers):
            raise GraphError(f"builder {self.name!r}: duplicate layer {layer.name!r}")
        self._layers.append(layer)
        self._tail = layer.name
        return layer.name

    def _source(self, after: str | None) -> str:
        return self._tail if after is None else after

    # -- layer helpers -------------------------------------------------------

    def conv(
        self,
        name: str,
        out_channels: int,
        kernel: int | tuple[int, int],
        stride: int | tuple[int, int] = 1,
        padding: int | tuple[int, int] = 0,
        relu: bool = True,
        after: str | None = None,
    ) -> str:
        return self._add(
            Conv2d(
                name,
                inputs=(self._source(after),),
                out_channels=out_channels,
                kernel=kernel if isinstance(kernel, tuple) else (kernel, kernel),
                stride=stride if isinstance(stride, tuple) else (stride, stride),
                padding=padding if isinstance(padding, tuple) else (padding, padding),
                relu=relu,
            )
        )

    def depthwise(
        self,
        name: str,
        kernel: int | tuple[int, int] = 3,
        stride: int | tuple[int, int] = 1,
        padding: int | tuple[int, int] = 1,
        relu: bool = True,
        after: str | None = None,
    ) -> str:
        return self._add(
            DepthwiseConv2d(
                name,
                inputs=(self._source(after),),
                kernel=kernel if isinstance(kernel, tuple) else (kernel, kernel),
                stride=stride if isinstance(stride, tuple) else (stride, stride),
                padding=padding if isinstance(padding, tuple) else (padding, padding),
                relu=relu,
            )
        )

    def pool(
        self,
        name: str,
        kernel: int | tuple[int, int] = 2,
        stride: int | tuple[int, int] = 2,
        padding: int | tuple[int, int] = 0,
        mode: str = "max",
        after: str | None = None,
    ) -> str:
        return self._add(
            Pool2d(
                name,
                inputs=(self._source(after),),
                kernel=kernel if isinstance(kernel, tuple) else (kernel, kernel),
                stride=stride if isinstance(stride, tuple) else (stride, stride),
                padding=padding if isinstance(padding, tuple) else (padding, padding),
                mode=mode,
            )
        )

    def add(self, name: str, lhs: str, rhs: str, relu: bool = True) -> str:
        return self._add(Add(name, inputs=(lhs, rhs), relu=relu))

    def global_pool(self, name: str, mode: str = "avg", p: float = 3.0, after: str | None = None) -> str:
        return self._add(GlobalPool(name, inputs=(self._source(after),), mode=mode, p=p))

    def fc(self, name: str, out_features: int, relu: bool = False, after: str | None = None) -> str:
        return self._add(
            FullyConnected(name, inputs=(self._source(after),), out_features=out_features, relu=relu)
        )

    # -- finish --------------------------------------------------------------

    def build(self) -> NetworkGraph:
        return NetworkGraph.from_layers(self.name, self._layers)
