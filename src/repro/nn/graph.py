"""Network graph: a DAG of layers with shape inference.

A :class:`NetworkGraph` is the unit the compiler consumes.  It owns:

* the layer table (ordered, names unique),
* inferred output shapes for every layer,
* convenience queries (topological order, producers/consumers, totals).

Graphs are immutable once built; use :class:`repro.nn.builder.GraphBuilder`
to construct one.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import GraphError
from repro.nn.layers import Conv2d, DepthwiseConv2d, FullyConnected, Input, Layer
from repro.nn.tensor import TensorShape


@dataclass(frozen=True)
class NetworkGraph:
    """An immutable, shape-checked layer DAG.

    ``layers`` is in topological order (producers before consumers) and
    ``shapes`` maps layer name to its inferred output shape.
    """

    name: str
    layers: tuple[Layer, ...]
    shapes: dict[str, TensorShape]

    # -- construction -----------------------------------------------------

    @classmethod
    def from_layers(cls, name: str, layers: list[Layer]) -> "NetworkGraph":
        """Validate wiring, topologically sort, infer shapes, fill in the
        derived ``in_channels`` / ``in_features`` fields."""
        if not layers:
            raise GraphError(f"network {name!r} has no layers")
        by_name: dict[str, Layer] = {}
        for layer in layers:
            if layer.name in by_name:
                raise GraphError(f"duplicate layer name {layer.name!r} in network {name!r}")
            by_name[layer.name] = layer

        for layer in layers:
            for src in layer.inputs:
                if src not in by_name:
                    raise GraphError(
                        f"layer {layer.name!r} consumes unknown layer {src!r}"
                    )
            if len(layer.inputs) != layer.arity:
                raise GraphError(
                    f"layer {layer.name!r} ({layer.kind}) expects {layer.arity} "
                    f"input(s), wired with {len(layer.inputs)}"
                )

        ordered = _topological_sort(name, layers)
        shapes: dict[str, TensorShape] = {}
        resolved: list[Layer] = []
        for layer in ordered:
            input_shapes = [shapes[src] for src in layer.inputs]
            layer = _resolve_derived_fields(layer, input_shapes)
            shapes[layer.name] = layer.output_shape(input_shapes)
            resolved.append(layer)

        n_inputs = sum(1 for layer in resolved if isinstance(layer, Input))
        if n_inputs != 1:
            raise GraphError(f"network {name!r} must have exactly 1 Input layer, has {n_inputs}")
        return cls(name=name, layers=tuple(resolved), shapes=shapes)

    # -- queries ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.layers)

    def layer(self, name: str) -> Layer:
        for candidate in self.layers:
            if candidate.name == name:
                return candidate
        raise GraphError(f"network {self.name!r} has no layer {name!r}")

    @property
    def input_layer(self) -> Input:
        for layer in self.layers:
            if isinstance(layer, Input):
                return layer
        raise GraphError(f"network {self.name!r} has no Input layer")  # pragma: no cover

    @property
    def input_shape(self) -> TensorShape:
        return self.input_layer.shape

    @property
    def output_layer(self) -> Layer:
        """The unique layer nobody consumes."""
        consumed = {src for layer in self.layers for src in layer.inputs}
        sinks = [layer for layer in self.layers if layer.name not in consumed]
        if len(sinks) != 1:
            raise GraphError(
                f"network {self.name!r} has {len(sinks)} output layers "
                f"({[s.name for s in sinks]}); expected exactly 1"
            )
        return sinks[0]

    @property
    def output_shape(self) -> TensorShape:
        return self.shapes[self.output_layer.name]

    def consumers(self, name: str) -> list[Layer]:
        return [layer for layer in self.layers if name in layer.inputs]

    def input_shapes_of(self, layer: Layer) -> list[TensorShape]:
        return [self.shapes[src] for src in layer.inputs]

    def conv_layers(self) -> list[Conv2d | DepthwiseConv2d]:
        """All convolution layers in topological order (what the accelerator runs)."""
        return [
            layer
            for layer in self.layers
            if isinstance(layer, (Conv2d, DepthwiseConv2d))
        ]

    def total_params(self) -> int:
        return sum(layer.num_params() for layer in self.layers)

    def total_macs(self) -> int:
        return sum(
            layer.num_macs(self.input_shapes_of(layer)) for layer in self.layers
        )

    def summary(self) -> str:
        """Human-readable per-layer table (name, kind, output shape, MACs)."""
        lines = [f"network {self.name}: {len(self.layers)} layers"]
        for layer in self.layers:
            macs = layer.num_macs(self.input_shapes_of(layer))
            lines.append(
                f"  {layer.name:<24} {layer.kind:<16} -> {self.shapes[layer.name]!s:<14}"
                f" {macs / 1e6:10.2f} MMACs"
            )
        lines.append(
            f"  total: {self.total_params() / 1e6:.2f} M params, "
            f"{2 * self.total_macs() / 1e9:.2f} GOPs"
        )
        return "\n".join(lines)


def _resolve_derived_fields(layer: Layer, input_shapes: list[TensorShape]) -> Layer:
    """Fill ``in_channels`` / ``in_features`` from the producer's shape."""
    if isinstance(layer, (Conv2d, DepthwiseConv2d)):
        (src,) = input_shapes
        return replace(layer, in_channels=src.channels)
    if isinstance(layer, FullyConnected):
        (src,) = input_shapes
        return replace(layer, in_features=src.num_elements)
    return layer


def _topological_sort(graph_name: str, layers: list[Layer]) -> list[Layer]:
    """Kahn's algorithm; raises :class:`GraphError` on cycles."""
    by_name = {layer.name: layer for layer in layers}
    in_degree = {layer.name: len(layer.inputs) for layer in layers}
    consumers: dict[str, list[str]] = {layer.name: [] for layer in layers}
    for layer in layers:
        for src in layer.inputs:
            consumers[src].append(layer.name)

    # Seed with zero-in-degree nodes in declaration order for determinism.
    ready = [layer.name for layer in layers if in_degree[layer.name] == 0]
    ordered: list[Layer] = []
    while ready:
        current = ready.pop(0)
        ordered.append(by_name[current])
        for consumer in consumers[current]:
            in_degree[consumer] -= 1
            if in_degree[consumer] == 0:
                ready.append(consumer)
    if len(ordered) != len(layers):
        stuck = sorted(name for name, deg in in_degree.items() if deg > 0)
        raise GraphError(f"network {graph_name!r} contains a cycle through {stuck}")
    return ordered
