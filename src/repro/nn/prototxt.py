"""Caffe prototxt import/export (the paper's model input format).

The paper's toolchain consumes ``*.prototxt``/``*.caffemodel`` files.  This
module reads the topology subset those deployments use — Convolution,
ReLU (folded into its producer, as the deployment quantizer does), Pooling
(incl. global), Eltwise SUM, InnerProduct, Input — and writes networks back
out, so models round-trip through the format the original flow used.

The parser handles the prototxt grammar generically (nested ``key { ... }``
blocks, ``key: value`` fields, repeated keys) rather than pattern-matching
specific layers, so real-world files with extra parameters degrade
gracefully (unknown layer types raise a clear error; unknown fields are
ignored).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.errors import GraphError
from repro.nn.graph import NetworkGraph
from repro.nn.layers import (
    Add,
    Conv2d,
    DepthwiseConv2d,
    FullyConnected,
    GlobalPool,
    Input,
    Layer,
    Pool2d,
)
from repro.nn.tensor import TensorShape


# -- generic prototxt grammar ---------------------------------------------------


@dataclass
class Block:
    """One ``{ ... }`` block: scalar fields and nested blocks, both repeatable."""

    fields: dict[str, list[str]] = field(default_factory=dict)
    blocks: dict[str, list["Block"]] = field(default_factory=dict)

    def first(self, key: str, default: str | None = None) -> str | None:
        values = self.fields.get(key)
        return values[0] if values else default

    def integer(self, key: str, default: int | None = None) -> int | None:
        value = self.first(key)
        return _int(value, key) if value is not None else default

    def block(self, key: str) -> "Block | None":
        blocks = self.blocks.get(key)
        return blocks[0] if blocks else None


def _int(value: str, context: str) -> int:
    try:
        return int(value)
    except ValueError:
        raise GraphError(f"prototxt field {context!r}: {value!r} is not an integer") from None


def tokenize(text: str) -> list[str]:
    """Split prototxt into tokens; braces and colons separate, comments drop."""
    tokens: list[str] = []
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0]
        line = line.replace("{", " { ").replace("}", " } ").replace(":", " : ")
        tokens.extend(line.split())
    return tokens


def parse_block(tokens: list[str], position: int = 0, top: bool = True) -> tuple[Block, int]:
    """Parse tokens into a :class:`Block`; returns (block, next position)."""
    block = Block()
    while position < len(tokens):
        token = tokens[position]
        if token == "}":
            if top:
                raise GraphError("unbalanced '}' in prototxt")
            return block, position + 1
        key = token
        position += 1
        if position >= len(tokens):
            raise GraphError(f"prototxt ends after key {key!r}")
        if tokens[position] == ":":
            position += 1
            if position >= len(tokens):
                raise GraphError(f"prototxt ends after '{key}:'")
            value = tokens[position].strip('"')
            block.fields.setdefault(key, []).append(value)
            position += 1
        elif tokens[position] == "{":
            nested, position = parse_block(tokens, position + 1, top=False)
            block.blocks.setdefault(key, []).append(nested)
        else:
            raise GraphError(
                f"expected ':' or '{{' after {key!r}, got {tokens[position]!r}"
            )
    if not top:
        raise GraphError("prototxt ends inside a block")
    return block, position


# -- prototxt -> NetworkGraph ---------------------------------------------------


def parse_prototxt(text: str) -> NetworkGraph:
    """Build a :class:`NetworkGraph` from prototxt text."""
    root, _ = parse_block(tokenize(text))
    name = root.first("name", "prototxt_net")

    layers: list[Layer] = []
    index_of: dict[str, int] = {}
    #: Caffe "top" name -> producing layer name in our graph.
    top_to_layer: dict[str, str] = {}

    def append(layer: Layer, tops: list[str]) -> None:
        index_of[layer.name] = len(layers)
        layers.append(layer)
        for top in tops:
            top_to_layer[top] = layer.name

    input_name = root.first("input")
    if input_name is not None:
        dims = [_int(v, "input_dim") for v in root.fields.get("input_dim", [])]
        if len(dims) != 4:
            raise GraphError("top-level input needs 4 input_dim entries (N, C, H, W)")
        append(Input(input_name, shape=TensorShape(dims[2], dims[3], dims[1])), [input_name])

    for spec in root.blocks.get("layer", []):
        layer_type = spec.first("type")
        layer_name = spec.first("name")
        if layer_type is None or layer_name is None:
            raise GraphError("every layer needs 'name' and 'type'")
        bottoms = [
            _resolve(top_to_layer, bottom, layer_name)
            for bottom in spec.fields.get("bottom", [])
        ]
        tops = spec.fields.get("top", [layer_name])

        if layer_type == "ReLU":
            # Fold into the producer, exactly as the deployment flow does.
            if not bottoms:
                raise GraphError(f"ReLU {layer_name!r} has no bottom to fuse into")
            producer = bottoms[0]
            position = index_of[producer]
            folded = layers[position]
            if not hasattr(folded, "relu"):
                raise GraphError(
                    f"ReLU {layer_name!r} follows {folded.kind}, which cannot fuse it"
                )
            layers[position] = replace(folded, relu=True)
            for top in tops:
                top_to_layer[top] = producer
            continue

        append(_convert_layer(layer_type, layer_name, spec, bottoms), tops)
    return NetworkGraph.from_layers(name, layers)


def load_prototxt(path: str | Path) -> NetworkGraph:
    return parse_prototxt(Path(path).read_text())


def _resolve(top_to_layer: dict[str, str], bottom: str, consumer: str) -> str:
    try:
        return top_to_layer[bottom]
    except KeyError:
        raise GraphError(
            f"layer {consumer!r} consumes unknown bottom {bottom!r}"
        ) from None


def _convert_layer(layer_type: str, layer_name: str, spec: Block, bottoms: list[str]) -> Layer:
    if layer_type == "Input":
        param = spec.block("input_param")
        shape_block = param.block("shape") if param else None
        dims = [_int(v, "dim") for v in (shape_block.fields.get("dim", []) if shape_block else [])]
        if len(dims) != 4:
            raise GraphError(f"Input layer {layer_name!r} needs 4 shape dims")
        return Input(layer_name, shape=TensorShape(dims[2], dims[3], dims[1]))

    if not bottoms:
        raise GraphError(f"layer {layer_name!r} ({layer_type}) needs at least one bottom")

    if layer_type == "Convolution":
        param = spec.block("convolution_param")
        if param is None:
            raise GraphError(f"conv {layer_name!r} missing convolution_param")
        num_output = param.integer("num_output")
        if num_output is None:
            raise GraphError(f"conv {layer_name!r} missing num_output")
        kernel = param.integer("kernel_size", 1)
        stride = param.integer("stride", 1)
        pad = param.integer("pad", 0)
        group = param.integer("group", 1)
        bias = param.first("bias_term", "true").lower() != "false"
        if group > 1 and group == num_output:
            return DepthwiseConv2d(
                layer_name,
                inputs=(bottoms[0],),
                kernel=(kernel, kernel),
                stride=(stride, stride),
                padding=(pad, pad),
                relu=False,
                bias=bias,
            )
        if group > 1:
            raise GraphError(
                f"conv {layer_name!r}: grouped convolution (group={group}) is only "
                f"supported in its depthwise form (group == num_output)"
            )
        return Conv2d(
            layer_name,
            inputs=(bottoms[0],),
            out_channels=num_output,
            kernel=(kernel, kernel),
            stride=(stride, stride),
            padding=(pad, pad),
            relu=False,
            bias=bias,
        )

    if layer_type == "Pooling":
        param = spec.block("pooling_param")
        if param is None:
            raise GraphError(f"pool {layer_name!r} missing pooling_param")
        mode = "max" if param.first("pool", "MAX").upper() == "MAX" else "avg"
        if param.first("global_pooling", "false").lower() == "true":
            return GlobalPool(layer_name, inputs=(bottoms[0],), mode=mode)
        kernel = param.integer("kernel_size", 2)
        stride = param.integer("stride", kernel)
        pad = param.integer("pad", 0)
        return Pool2d(
            layer_name,
            inputs=(bottoms[0],),
            kernel=(kernel, kernel),
            stride=(stride, stride),
            padding=(pad, pad),
            mode=mode,
        )

    if layer_type == "Eltwise":
        param = spec.block("eltwise_param")
        operation = (param.first("operation", "SUM") if param else "SUM").upper()
        if operation != "SUM":
            raise GraphError(f"eltwise {layer_name!r}: only SUM is supported")
        if len(bottoms) != 2:
            raise GraphError(f"eltwise {layer_name!r} needs exactly 2 bottoms")
        return Add(layer_name, inputs=(bottoms[0], bottoms[1]), relu=False)

    if layer_type == "InnerProduct":
        param = spec.block("inner_product_param")
        if param is None:
            raise GraphError(f"fc {layer_name!r} missing inner_product_param")
        num_output = param.integer("num_output")
        if num_output is None:
            raise GraphError(f"fc {layer_name!r} missing num_output")
        return FullyConnected(
            layer_name,
            inputs=(bottoms[0],),
            out_features=num_output,
            bias=param.first("bias_term", "true").lower() != "false",
        )

    raise GraphError(f"unsupported prototxt layer type {layer_type!r}")


# -- NetworkGraph -> prototxt ---------------------------------------------------


def to_prototxt(graph: NetworkGraph) -> str:
    """Render a network back to prototxt (round-trips through the parser)."""
    lines = [f'name: "{graph.name}"']
    for layer in graph.layers:
        lines.extend(_render_layer(graph, layer))
    return "\n".join(lines) + "\n"


def save_prototxt(graph: NetworkGraph, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(to_prototxt(graph))
    return path


def _render_layer(graph: NetworkGraph, layer: Layer) -> list[str]:
    if isinstance(layer, Input):
        shape = layer.shape
        return [
            "layer {",
            f'  name: "{layer.name}"',
            '  type: "Input"',
            f'  top: "{layer.name}"',
            "  input_param { shape { dim: 1 dim: %d dim: %d dim: %d } }"
            % (shape.channels, shape.height, shape.width),
            "}",
        ]

    bottoms = [f'  bottom: "{src}"' for src in layer.inputs]
    head = ["layer {", f'  name: "{layer.name}"']
    tail = [f'  top: "{layer.name}"', "}"]
    relu_suffix: list[str] = []
    if getattr(layer, "relu", False):
        relu_suffix = [
            "layer {",
            f'  name: "{layer.name}_relu"',
            '  type: "ReLU"',
            f'  bottom: "{layer.name}"',
            f'  top: "{layer.name}"',
            "}",
        ]

    if isinstance(layer, Conv2d):
        body = [
            '  type: "Convolution"',
            *bottoms,
            "  convolution_param { num_output: %d kernel_size: %d stride: %d pad: %d"
            " bias_term: %s }"
            % (
                layer.out_channels,
                layer.kernel[0],
                layer.stride[0],
                layer.padding[0],
                "true" if layer.bias else "false",
            ),
        ]
    elif isinstance(layer, DepthwiseConv2d):
        body = [
            '  type: "Convolution"',
            *bottoms,
            "  convolution_param { num_output: %d kernel_size: %d stride: %d pad: %d"
            " group: %d bias_term: %s }"
            % (
                layer.in_channels,
                layer.kernel[0],
                layer.stride[0],
                layer.padding[0],
                layer.in_channels,
                "true" if layer.bias else "false",
            ),
        ]
    elif isinstance(layer, Pool2d):
        body = [
            '  type: "Pooling"',
            *bottoms,
            "  pooling_param { pool: %s kernel_size: %d stride: %d pad: %d }"
            % (layer.mode.upper(), layer.kernel[0], layer.stride[0], layer.padding[0]),
        ]
    elif isinstance(layer, GlobalPool):
        mode = "MAX" if layer.mode == "max" else "AVE"
        body = [
            '  type: "Pooling"',
            *bottoms,
            "  pooling_param { pool: %s global_pooling: true }" % mode,
        ]
    elif isinstance(layer, Add):
        body = ['  type: "Eltwise"', *bottoms, "  eltwise_param { operation: SUM }"]
    elif isinstance(layer, FullyConnected):
        body = [
            '  type: "InnerProduct"',
            *bottoms,
            "  inner_product_param { num_output: %d bias_term: %s }"
            % (layer.out_features, "true" if layer.bias else "false"),
        ]
    else:
        raise GraphError(f"no prototxt rendering for {layer.kind}")
    return head + body + tail + relu_suffix
