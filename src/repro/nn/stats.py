"""Per-network statistics used by reports and the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.graph import NetworkGraph
from repro.nn.layers import Conv2d, DepthwiseConv2d


@dataclass(frozen=True)
class LayerStats:
    """Shape/size facts about one convolution layer."""

    name: str
    kind: str
    in_height: int
    in_width: int
    in_channels: int
    out_height: int
    out_width: int
    out_channels: int
    kernel: tuple[int, int]
    stride: tuple[int, int]
    macs: int
    params: int


def conv_layer_stats(graph: NetworkGraph) -> list[LayerStats]:
    """Collect :class:`LayerStats` for every conv layer in topological order."""
    rows: list[LayerStats] = []
    for layer in graph.conv_layers():
        (src_shape,) = graph.input_shapes_of(layer)
        out_shape = graph.shapes[layer.name]
        rows.append(
            LayerStats(
                name=layer.name,
                kind=layer.kind,
                in_height=src_shape.height,
                in_width=src_shape.width,
                in_channels=src_shape.channels,
                out_height=out_shape.height,
                out_width=out_shape.width,
                out_channels=out_shape.channels,
                kernel=layer.kernel,
                stride=layer.stride,
                macs=layer.num_macs([src_shape]),
                params=layer.num_params(),
            )
        )
    return rows


def network_gops(graph: NetworkGraph) -> float:
    """Total operations (2 ops per MAC) in GOPs, as the paper quotes
    (SuperPoint: 39 GOPs, GeM/ResNet-101: 192 GOPs)."""
    return 2.0 * graph.total_macs() / 1e9


def heaviest_layer(graph: NetworkGraph) -> LayerStats:
    """The conv layer with the most MACs (dominates layer-by-layer latency)."""
    rows = conv_layer_stats(graph)
    if not rows:
        raise ValueError(f"network {graph.name!r} has no conv layers")
    return max(rows, key=lambda row: row.macs)


def is_depthwise(stats: LayerStats) -> bool:
    return stats.kind == DepthwiseConv2d.__name__


def is_pointwise(stats: LayerStats) -> bool:
    return stats.kind == Conv2d.__name__ and stats.kernel == (1, 1)
