"""Tensor shape arithmetic for the network IR.

The accelerator (and the paper) think of activations as *feature maps*:
``height x width x channels``.  All shape inference in the compiler is done on
:class:`TensorShape` values; no actual tensor data is attached to the graph.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GraphError


@dataclass(frozen=True, order=True)
class TensorShape:
    """Shape of a feature map: ``height x width x channels``.

    >>> TensorShape(480, 640, 3).num_elements
    921600
    """

    height: int
    width: int
    channels: int

    def __post_init__(self) -> None:
        for field_name in ("height", "width", "channels"):
            value = getattr(self, field_name)
            if not isinstance(value, int) or value <= 0:
                raise GraphError(
                    f"TensorShape.{field_name} must be a positive int, got {value!r}"
                )

    @property
    def num_elements(self) -> int:
        return self.height * self.width * self.channels

    @property
    def hw(self) -> tuple[int, int]:
        """Spatial extent ``(height, width)``."""
        return (self.height, self.width)

    def num_bytes(self, bytes_per_element: int = 1) -> int:
        """Storage footprint; the accelerator uses 8-bit activations."""
        if bytes_per_element <= 0:
            raise GraphError(f"bytes_per_element must be positive, got {bytes_per_element}")
        return self.num_elements * bytes_per_element

    def with_channels(self, channels: int) -> "TensorShape":
        return TensorShape(self.height, self.width, channels)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.height}x{self.width}x{self.channels}"


def conv_output_hw(
    in_h: int, in_w: int, kernel: tuple[int, int], stride: tuple[int, int], padding: tuple[int, int]
) -> tuple[int, int]:
    """Spatial output size of a convolution / pooling window.

    Uses the standard floor formula ``(in + 2*pad - k) // stride + 1``.

    >>> conv_output_hw(480, 640, (7, 7), (2, 2), (3, 3))
    (240, 320)
    """
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    if kh <= 0 or kw <= 0:
        raise GraphError(f"kernel must be positive, got {kernel}")
    if sh <= 0 or sw <= 0:
        raise GraphError(f"stride must be positive, got {stride}")
    if ph < 0 or pw < 0:
        raise GraphError(f"padding must be non-negative, got {padding}")
    out_h = (in_h + 2 * ph - kh) // sh + 1
    out_w = (in_w + 2 * pw - kw) // sw + 1
    if out_h <= 0 or out_w <= 0:
        raise GraphError(
            f"window {kernel} stride {stride} pad {padding} produces empty output "
            f"from {in_h}x{in_w}"
        )
    return out_h, out_w
