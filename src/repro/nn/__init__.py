"""Network IR: tensor shapes, layers, and the shape-checked layer DAG."""

from repro.nn.builder import GraphBuilder
from repro.nn.graph import NetworkGraph
from repro.nn.layers import (
    Add,
    Conv2d,
    DepthwiseConv2d,
    FullyConnected,
    GlobalPool,
    Input,
    Layer,
    Pool2d,
)
from repro.nn.stats import LayerStats, conv_layer_stats, heaviest_layer, network_gops
from repro.nn.tensor import TensorShape, conv_output_hw

__all__ = [
    "Add",
    "Conv2d",
    "DepthwiseConv2d",
    "FullyConnected",
    "GlobalPool",
    "GraphBuilder",
    "Input",
    "Layer",
    "LayerStats",
    "NetworkGraph",
    "Pool2d",
    "TensorShape",
    "conv_layer_stats",
    "conv_output_hw",
    "heaviest_layer",
    "network_gops",
]
