"""Exporters: Chrome trace, JSON lines, plain-text summary.

All three consume the same bus event stream (`EventBus` or a plain event
list), so any instrumented run — single task, preemptive multi-task,
multi-core, full DSLAM — exports the same way.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.obs.bus import EventBus
from repro.obs.events import Event, EventKind
from repro.obs.spans import job_spans
from repro.units import Frequency

#: Events rendered as Chrome duration ('X') rows when they span time.
_DURATION_KINDS = frozenset({EventKind.INSTR_RETIRE, EventKind.DDR_BURST, EventKind.VI_EXPAND})


def _as_events(events: Iterable[Event] | EventBus) -> list[Event]:
    if isinstance(events, EventBus):
        return events.events
    return list(events)


# -- Chrome trace ----------------------------------------------------------


def events_to_chrome(events: Iterable[Event] | EventBus, clock: Frequency) -> list[dict]:
    """Convert bus events to Chrome trace events (one row per task).

    Instructions, DDR bursts and VI expansions become complete ('X') events;
    everything else (job lifecycle, preemption begin/end, ROS messages)
    becomes thread-scoped instants ('i') so the schedule, its interrupt
    points and the middleware traffic line up on one zoomable timeline.
    """
    rows: list[dict] = []
    for event in _as_events(events):
        tid = event.task_id if event.task_id is not None else 99
        args: dict[str, object] = {"cycle": event.cycle, **event.data}
        if event.layer_id is not None:
            args["layer_id"] = event.layer_id
        if event.kind in _DURATION_KINDS and event.duration > 0:
            name = str(event.data.get("opcode", event.kind.value))
            rows.append(
                {
                    "name": name,
                    "cat": event.kind.value,
                    "ph": "X",
                    "ts": clock.cycles_to_us(event.cycle),
                    "dur": clock.cycles_to_us(event.duration),
                    "pid": 0,
                    "tid": tid,
                    "args": {**args, "cycles": event.duration},
                }
            )
        else:
            rows.append(
                {
                    "name": event.kind.value,
                    "cat": event.kind.value,
                    "ph": "i",
                    "s": "t",
                    "ts": clock.cycles_to_us(event.cycle),
                    "pid": 0,
                    "tid": tid,
                    "args": args,
                }
            )
    return rows


def write_chrome_trace_events(
    events: Iterable[Event] | EventBus, clock: Frequency, path: str | Path
) -> Path:
    """Write a chrome://tracing / Perfetto JSON file from bus events."""
    path = Path(path)
    payload = {
        "traceEvents": events_to_chrome(events, clock),
        "displayTimeUnit": "ns",
        "metadata": {"tool": "repro (INCA reproduction)", "clock_hz": clock.hz},
    }
    path.write_text(json.dumps(payload))
    return path


# -- JSON lines ------------------------------------------------------------


def events_to_jsonl(events: Iterable[Event] | EventBus) -> str:
    """One JSON object per line, in emission order."""
    return "\n".join(json.dumps(event.to_dict()) for event in _as_events(events))


def write_jsonl(events: Iterable[Event] | EventBus, path: str | Path) -> Path:
    path = Path(path)
    text = events_to_jsonl(events)
    path.write_text(text + "\n" if text else "")
    return path


def read_jsonl(path: str | Path) -> list[dict]:
    """Parse a JSONL export back into dicts (the round-trip helper)."""
    return [
        json.loads(line)
        for line in Path(path).read_text().splitlines()
        if line.strip()
    ]


# -- plain-text summary ----------------------------------------------------


def summarize(source) -> str:
    """Render a per-task summary table from any instrumented source.

    ``source`` may be an :class:`EventBus`, a plain event list, or any
    object exposing a ``bus`` attribute (e.g. a ``MultiTaskSystem``).
    """
    bus = getattr(source, "bus", None)
    events = _as_events(bus if isinstance(bus, EventBus) else source)
    if not events:
        return "(no events recorded)"

    task_ids = sorted({e.task_id for e in events if e.task_id is not None})
    spans = {task: job_spans(events, task) for task in task_ids}
    header = ["task", "jobs", "instrs", "busy cyc", "preempts", "vi exp",
              "mean resp", "max resp"]
    table: list[list[str]] = []
    for task in task_ids:
        per_task = [e for e in events if e.task_id == task]
        instrs = sum(1 for e in per_task if e.kind is EventKind.INSTR_RETIRE)
        busy = sum(e.duration for e in per_task if e.kind is EventKind.INSTR_RETIRE)
        preempts = sum(1 for e in per_task if e.kind is EventKind.PREEMPT_BEGIN)
        expansions = sum(1 for e in per_task if e.kind is EventKind.VI_EXPAND)
        responses = [
            e.data["response_cycles"]
            for e in per_task
            if e.kind is EventKind.JOB_COMPLETE and "response_cycles" in e.data
        ]
        table.append(
            [
                str(task),
                str(len(spans[task])),
                str(instrs),
                str(busy),
                str(preempts),
                str(expansions),
                f"{sum(responses) / len(responses):.0f}" if responses else "-",
                str(max(responses)) if responses else "-",
            ]
        )

    lines = _format_table(header, table, title="Observability summary (cycles)")
    loads = sum(
        int(e.data.get("bytes", 0))
        for e in events
        if e.kind is EventKind.DDR_BURST and e.data.get("direction") == "load"
    )
    saves = sum(
        int(e.data.get("bytes", 0))
        for e in events
        if e.kind is EventKind.DDR_BURST and e.data.get("direction") == "save"
    )
    published = sum(1 for e in events if e.kind is EventKind.ROS_PUBLISH)
    lines += f"\nDDR traffic: {loads} bytes loaded, {saves} bytes saved"
    if published:
        delivered = sum(1 for e in events if e.kind is EventKind.ROS_DELIVER)
        lines += f"\nROS: {published} messages published, {delivered} deliveries"
        queue_drops = sum(1 for e in events if e.kind is EventKind.ROS_QUEUE_DROP)
        retries = sum(1 for e in events if e.kind is EventKind.ROS_RETRY)
        acks = sum(1 for e in events if e.kind is EventKind.ROS_ACK)
        if queue_drops or retries or acks:
            lines += (
                f"; {queue_drops} queue drop(s), {retries} retry(ies), "
                f"{acks} ack(s)"
            )
    denied = sum(1 for e in events if e.kind is EventKind.ADMISSION_DENY)
    inversions = sum(1 for e in events if e.kind is EventKind.PRIORITY_INVERSION)
    violations = sum(1 for e in events if e.kind is EventKind.INVARIANT_VIOLATION)
    if denied or inversions or violations:
        lines += (
            f"\nQoS: {denied} admission denial(s), "
            f"{inversions} priority inversion(s), "
            f"{violations} invariant violation(s)"
        )
    injected = sum(1 for e in events if e.kind is EventKind.FAULT_INJECT)
    misses = sum(1 for e in events if e.kind is EventKind.DEADLINE_MISS)
    degraded = sum(1 for e in events if e.kind is EventKind.JOB_DEGRADED)
    if injected:
        detected = sum(1 for e in events if e.kind is EventKind.FAULT_DETECT)
        recovered = sum(1 for e in events if e.kind is EventKind.FAULT_RECOVER)
        lines += (
            f"\nFaults: {injected} injected, {detected} detected, "
            f"{recovered} recovered"
        )
        if misses or degraded:
            lines += f"; {misses} deadline miss(es), {degraded} degradation action(s)"
    elif misses or degraded:
        # Degradation acts without a fault plan too (pure overload shedding).
        lines += (
            f"\nDegradation: {misses} deadline miss(es), "
            f"{degraded} degradation action(s)"
        )
    down = sum(1 for e in events if e.kind is EventKind.NODE_DOWN)
    suspect = sum(1 for e in events if e.kind is EventKind.NODE_SUSPECT)
    migrated = sum(1 for e in events if e.kind is EventKind.JOB_MIGRATED)
    hedges = sum(1 for e in events if e.kind is EventKind.HEDGE_DISPATCH)
    switches = sum(1 for e in events if e.kind is EventKind.MODE_SWITCH)
    measure_retries = sum(1 for e in events if e.kind is EventKind.MEASURE_RETRY)
    if down or suspect or migrated or hedges or switches or measure_retries:
        won = sum(1 for e in events if e.kind is EventKind.HEDGE_WIN)
        wasted = sum(1 for e in events if e.kind is EventKind.HEDGE_WASTED)
        lines += (
            f"\nFarm resilience: {down} node(s) down, {suspect} suspect "
            f"transition(s), {migrated} job(s) migrated, {hedges} hedge(s) "
            f"({won} won, {wasted} wasted), {switches} mode switch(es), "
            f"{measure_retries} measure retry(ies)"
        )
    return lines


def _format_table(header: list[str], rows: list[list[str]], title: str) -> str:
    widths = [
        max(len(header[col]), *(len(row[col]) for row in rows)) if rows else len(header[col])
        for col in range(len(header))
    ]

    def render(cells: list[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    out = [title, render(header), render(["-" * width for width in widths])]
    out.extend(render(row) for row in rows)
    return "\n".join(out)
