"""Lightweight metrics registry: counters, gauges, histograms.

Instruments are keyed by ``(name, labels)`` — labels are the free-form
dimensions (``task=1``, ``layer=3``, ``direction="load"``) that the
scheduler-quality analyses slice by.  A :class:`MetricsSink` attached to the
event bus maintains the standard instruments automatically; code can also
update instruments directly for domain-specific signals.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from repro.obs.events import Event, EventKind

#: A label set in canonical (hashable) form.
LabelKey = tuple[tuple[str, object], ...]


def _label_key(labels: dict[str, object]) -> LabelKey:
    return tuple(sorted(labels.items()))


@dataclass
class Counter:
    """Monotonically increasing count (events, cycles, bytes)."""

    value: int = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount


@dataclass
class Gauge:
    """Last-write-wins instantaneous value (queue depth, buffer bytes)."""

    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


@dataclass
class Histogram:
    """Distribution summary with exact values retained (simulations are
    small enough that reservoir sampling would only add noise)."""

    values: list[float] = field(default_factory=list)

    def record(self, value: float) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        if not self.values:
            raise ValueError("histogram is empty")
        return self.total / len(self.values)

    @property
    def min(self) -> float:
        if not self.values:
            raise ValueError("histogram is empty")
        return min(self.values)

    @property
    def max(self) -> float:
        if not self.values:
            raise ValueError("histogram is empty")
        return max(self.values)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``p`` in [0, 100]."""
        if not self.values:
            raise ValueError("histogram is empty")
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        ordered = sorted(self.values)
        rank = max(0, min(len(ordered) - 1, round(p / 100.0 * (len(ordered) - 1))))
        return ordered[rank]


class Metrics:
    """Registry of named, labelled instruments."""

    def __init__(self) -> None:
        self._counters: dict[tuple[str, LabelKey], Counter] = {}
        self._gauges: dict[tuple[str, LabelKey], Gauge] = {}
        self._histograms: dict[tuple[str, LabelKey], Histogram] = {}

    def counter(self, name: str, **labels: object) -> Counter:
        key = (name, _label_key(labels))
        if key not in self._counters:
            self._counters[key] = Counter()
        return self._counters[key]

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = (name, _label_key(labels))
        if key not in self._gauges:
            self._gauges[key] = Gauge()
        return self._gauges[key]

    def histogram(self, name: str, **labels: object) -> Histogram:
        key = (name, _label_key(labels))
        if key not in self._histograms:
            self._histograms[key] = Histogram()
        return self._histograms[key]

    # -- snapshot/restore --------------------------------------------------

    def capture_state(self) -> dict:
        """Picklable deep copy of every instrument (system snapshots)."""
        return copy.deepcopy(
            {
                "counters": self._counters,
                "gauges": self._gauges,
                "histograms": self._histograms,
            }
        )

    def restore_state(self, state: dict) -> None:
        """Replace all instruments with a captured state (copied, so the
        same snapshot can be restored more than once)."""
        state = copy.deepcopy(state)
        self._counters = state["counters"]
        self._gauges = state["gauges"]
        self._histograms = state["histograms"]

    # -- aggregation -------------------------------------------------------

    def counter_total(self, name: str, **labels: object) -> int:
        """Sum a counter across every label set matching ``labels``."""
        wanted = set(labels.items())
        return sum(
            counter.value
            for (counter_name, label_key), counter in self._counters.items()
            if counter_name == name and wanted <= set(label_key)
        )

    def snapshot(self) -> dict[str, dict[str, object]]:
        """All instruments as plain data, keyed ``name{k=v,...}``."""

        def fmt(name: str, label_key: LabelKey) -> str:
            if not label_key:
                return name
            inner = ",".join(f"{key}={value}" for key, value in label_key)
            return f"{name}{{{inner}}}"

        result: dict[str, dict[str, object]] = {"counters": {}, "gauges": {}, "histograms": {}}
        for (name, labels), counter in sorted(self._counters.items()):
            result["counters"][fmt(name, labels)] = counter.value
        for (name, labels), gauge in sorted(self._gauges.items()):
            result["gauges"][fmt(name, labels)] = gauge.value
        for (name, labels), histogram in sorted(self._histograms.items()):
            result["histograms"][fmt(name, labels)] = {
                "count": histogram.count,
                "mean": histogram.mean if histogram.count else None,
                "min": histogram.min if histogram.count else None,
                "max": histogram.max if histogram.count else None,
            }
        return result


class MetricsSink:
    """Bus sink maintaining the standard instruments.

    Standard signals: ``instructions`` / ``busy_cycles`` (per task, layer),
    ``ddr_bytes`` / ``ddr_bursts`` (per direction), ``preemptions`` /
    ``vi_expansions`` (per task), ``jobs`` and the ``response_cycles`` /
    ``turnaround_cycles`` histograms (per task), ``ros_published`` /
    ``ros_delivered`` (per topic), ``faults_injected`` / ``faults_detected``
    / ``faults_recovered`` (per site), ``jobs_degraded`` (per task, action)
    and ``deadline_misses`` (per task).
    """

    def __init__(self, metrics: Metrics):
        self.metrics = metrics

    def handle(self, event: Event) -> None:
        metrics = self.metrics
        kind = event.kind
        if kind is EventKind.INSTR_RETIRE:
            metrics.counter("instructions", task=event.task_id).inc()
            metrics.counter(
                "busy_cycles", task=event.task_id, layer=event.layer_id
            ).inc(event.duration)
        elif kind is EventKind.DDR_BURST:
            direction = event.data.get("direction", "?")
            metrics.counter("ddr_bursts", direction=direction).inc()
            metrics.counter("ddr_bytes", direction=direction).inc(
                int(event.data.get("bytes", 0))
            )
        elif kind is EventKind.PREEMPT_BEGIN:
            metrics.counter("preemptions", task=event.task_id).inc()
        elif kind is EventKind.VI_EXPAND:
            metrics.counter(
                "vi_expansions", task=event.task_id, phase=event.data.get("phase", "?")
            ).inc()
        elif kind is EventKind.JOB_COMPLETE:
            metrics.counter("jobs", task=event.task_id).inc()
            response = event.data.get("response_cycles")
            if response is not None:
                metrics.histogram("response_cycles", task=event.task_id).record(response)
            turnaround = event.data.get("turnaround_cycles")
            if turnaround is not None:
                metrics.histogram("turnaround_cycles", task=event.task_id).record(
                    turnaround
                )
        elif kind is EventKind.ROS_PUBLISH:
            metrics.counter("ros_published", topic=event.data.get("topic", "?")).inc()
        elif kind is EventKind.ROS_DELIVER:
            metrics.counter("ros_delivered", topic=event.data.get("topic", "?")).inc()
        elif kind is EventKind.FAULT_INJECT:
            metrics.counter("faults_injected", site=event.data.get("site", "?")).inc()
        elif kind is EventKind.FAULT_DETECT:
            metrics.counter("faults_detected", site=event.data.get("site", "?")).inc()
        elif kind is EventKind.FAULT_RECOVER:
            metrics.counter("faults_recovered", site=event.data.get("site", "?")).inc()
        elif kind is EventKind.CHECKPOINT_RETRY:
            metrics.counter("checkpoint_retries", task=event.task_id).inc()
        elif kind is EventKind.JOB_DEGRADED:
            metrics.counter(
                "jobs_degraded",
                task=event.task_id,
                action=event.data.get("action", "?"),
            ).inc()
        elif kind is EventKind.DEADLINE_MISS:
            metrics.counter("deadline_misses", task=event.task_id).inc()
