"""Per-job spans derived from the event stream.

A span is a named ``[start_cycle, end_cycle]`` interval with children — the
cross-layer view the raw :class:`JobRecord` fields cannot give.  Each job
span nests what happened *inside* the job:

* ``layer`` children — the accelerator-level per-layer execution windows
  (from ``INSTR_RETIRE`` events);
* ``preemption`` children — IAU-level intervals where the job had lost the
  accelerator (``PREEMPT_BEGIN`` → ``PREEMPT_END``);
* ``vi`` children — virtual-instruction expansions (backup / recovery).

ROS activity is grouped separately by :func:`ros_spans` (publishes with
their per-subscriber deliveries), since messages are not bound to one task.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.obs.bus import EventBus
from repro.obs.events import Event, EventKind


@dataclass
class Span:
    """A named interval with nested children (all times in cycles)."""

    name: str
    kind: str
    start_cycle: int
    end_cycle: int
    task_id: int | None = None
    children: list["Span"] = field(default_factory=list)
    data: dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> int:
        return self.end_cycle - self.start_cycle

    def find(self, kind: str) -> list["Span"]:
        """All direct children of one kind."""
        return [child for child in self.children if child.kind == kind]

    def format(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [
            f"{pad}{self.name} [{self.start_cycle}, {self.end_cycle}] "
            f"({self.duration} cycles)"
        ]
        for child in self.children:
            lines.append(child.format(indent + 1))
        return "\n".join(lines)


def _as_events(events: Iterable[Event] | EventBus) -> list[Event]:
    if isinstance(events, EventBus):
        return events.events
    return list(events)


def job_spans(
    events: Iterable[Event] | EventBus, task_id: int | None = None
) -> list[Span]:
    """Build one span per completed job, oldest first.

    ``task_id`` filters to one task slot; by default every task's jobs are
    returned (sorted by start cycle).
    """
    spans: list[Span] = []
    open_jobs: dict[int, Span] = {}
    open_layers: dict[int, dict[int, Span]] = {}
    open_preemptions: dict[int, Span] = {}
    job_counts: dict[int, int] = {}

    for event in _as_events(events):
        task = event.task_id
        if task is None or (task_id is not None and task != task_id):
            continue
        if event.kind is EventKind.JOB_START:
            index = job_counts.get(task, 0)
            job_counts[task] = index + 1
            open_jobs[task] = Span(
                name=f"task{task}/job{index}",
                kind="job",
                start_cycle=event.cycle,
                end_cycle=event.cycle,
                task_id=task,
                data={"job_index": index, **event.data},
            )
            open_layers[task] = {}
        elif task in open_jobs:
            job = open_jobs[task]
            if event.kind is EventKind.INSTR_RETIRE and event.layer_id is not None:
                layers = open_layers[task]
                layer = layers.get(event.layer_id)
                if layer is None:
                    layers[event.layer_id] = Span(
                        name=f"layer{event.layer_id}",
                        kind="layer",
                        start_cycle=event.cycle,
                        end_cycle=event.end_cycle,
                        task_id=task,
                    )
                else:
                    layer.start_cycle = min(layer.start_cycle, event.cycle)
                    layer.end_cycle = max(layer.end_cycle, event.end_cycle)
            elif event.kind is EventKind.VI_EXPAND:
                job.children.append(
                    Span(
                        name=f"vi/{event.data.get('phase', '?')}",
                        kind="vi",
                        start_cycle=event.cycle,
                        end_cycle=event.end_cycle,
                        task_id=task,
                        data=dict(event.data),
                    )
                )
            elif event.kind is EventKind.PREEMPT_BEGIN:
                open_preemptions[task] = Span(
                    name="preempted",
                    kind="preemption",
                    start_cycle=event.cycle,
                    end_cycle=event.cycle,
                    task_id=task,
                    data=dict(event.data),
                )
            elif event.kind is EventKind.PREEMPT_END:
                preemption = open_preemptions.pop(task, None)
                if preemption is not None:
                    preemption.end_cycle = event.cycle
                    job.children.append(preemption)
            elif event.kind is EventKind.JOB_COMPLETE:
                job.end_cycle = event.cycle
                job.data.update(event.data)
                job.children.extend(open_layers.pop(task, {}).values())
                job.children.sort(key=lambda span: (span.start_cycle, span.kind))
                spans.append(job)
                del open_jobs[task]
    spans.sort(key=lambda span: span.start_cycle)
    return spans


def ros_spans(events: Iterable[Event] | EventBus) -> list[Span]:
    """One span per published message, deliveries nested as children."""
    spans: list[Span] = []
    for event in _as_events(events):
        if event.kind is EventKind.ROS_PUBLISH:
            spans.append(
                Span(
                    name=f"publish {event.data.get('topic', '?')}",
                    kind="ros",
                    start_cycle=event.cycle,
                    end_cycle=event.end_cycle,
                    data=dict(event.data),
                )
            )
        elif event.kind is EventKind.ROS_DELIVER and spans:
            last = spans[-1]
            if last.data.get("topic") == event.data.get("topic"):
                last.children.append(
                    Span(
                        name=f"deliver {event.data.get('topic', '?')}",
                        kind="ros_deliver",
                        start_cycle=event.cycle,
                        end_cycle=event.end_cycle,
                        data=dict(event.data),
                    )
                )
                last.end_cycle = max(last.end_cycle, event.end_cycle)
    return spans
