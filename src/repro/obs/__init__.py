"""Unified observability: event bus, metrics, spans, exporters.

One instrumentation path for the whole stack::

    from repro import AcceleratorConfig, MultiTaskSystem, ObsConfig, compile_tasks, summarize
    from repro.zoo import build_tiny_cnn, build_tiny_residual

    config = AcceleratorConfig.big()
    low, high = compile_tasks([build_tiny_cnn(), build_tiny_residual()], config)
    system = MultiTaskSystem(config, obs=ObsConfig(events=True, metrics=True))
    system.add_task(0, high)
    system.add_task(1, low)
    system.submit(1, at_cycle=0)
    system.submit(0, at_cycle=2_000)
    system.run()

    span = system.spans(0)[0]           # per-job span tree
    print(span.format())                # layers, preemptions, VI expansions
    print(summarize(system))            # plain-text per-task table

Exporters (:mod:`repro.obs.export`) write the same event stream as a
chrome://tracing JSON, as JSON lines, or as the summary table above.
"""

from repro.obs.bus import CallbackSink, EventBus, ListSink, NullSink, Sink
from repro.obs.config import ObsConfig
from repro.obs.events import Event, EventKind
from repro.obs.export import (
    events_to_chrome,
    events_to_jsonl,
    read_jsonl,
    summarize,
    write_chrome_trace_events,
    write_jsonl,
)
from repro.obs.metrics import Counter, Gauge, Histogram, Metrics, MetricsSink
from repro.obs.spans import Span, job_spans, ros_spans

__all__ = [
    "CallbackSink",
    "Counter",
    "Event",
    "EventBus",
    "EventKind",
    "Gauge",
    "Histogram",
    "ListSink",
    "Metrics",
    "MetricsSink",
    "NullSink",
    "ObsConfig",
    "Sink",
    "Span",
    "events_to_chrome",
    "events_to_jsonl",
    "job_spans",
    "read_jsonl",
    "ros_spans",
    "summarize",
    "write_chrome_trace_events",
    "write_jsonl",
]
