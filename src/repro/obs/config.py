"""The options object configuring execution + observability.

``ObsConfig`` replaced the bare ``functional: bool`` / ``trace: bool``
constructor flags that used to be threaded through :class:`AcceleratorCore`
and :class:`MultiTaskSystem` (the booleans were removed in v2.0 — see the
README's "Migrating to 2.0").  One immutable object answers every "what
should this run record?" question:

* ``functional`` — run real int8 arithmetic (vs timing-only);
* ``events`` — record structured events on the system's :class:`EventBus`;
* ``trace`` — maintain a legacy :class:`~repro.accel.trace.ExecutionTrace`
  (a thin adapter over the bus);
* ``metrics`` — maintain a :class:`~repro.obs.metrics.Metrics` registry;
* ``sinks`` — extra sinks attached to the bus (e.g. ``NullSink`` for
  overhead measurement, a streaming JSONL writer).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.bus import Sink


@dataclass(frozen=True)
class ObsConfig:
    """Execution-mode + instrumentation options (keyword-only everywhere)."""

    functional: bool = False
    events: bool = False
    trace: bool = False
    metrics: bool = False
    sinks: tuple[Sink, ...] = field(default_factory=tuple)

    @property
    def enabled(self) -> bool:
        """Whether any instrumentation (hence an event bus) is wanted."""
        return self.events or self.trace or self.metrics or bool(self.sinks)

    @classmethod
    def off(cls, functional: bool = False) -> ObsConfig:
        """No instrumentation at all (the zero-overhead default)."""
        return cls(functional=functional)

    @classmethod
    def full(cls, functional: bool = False) -> ObsConfig:
        """Everything on: events + legacy trace + metrics."""
        return cls(functional=functional, events=True, trace=True, metrics=True)
