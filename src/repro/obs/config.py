"""The options object configuring execution + observability.

``ObsConfig`` replaces the bare ``functional: bool`` / ``trace: bool``
constructor flags that used to be threaded through :class:`AcceleratorCore`
and :class:`MultiTaskSystem` (those booleans still work, with a
``DeprecationWarning``).  One immutable object now answers every "what
should this run record?" question:

* ``functional`` — run real int8 arithmetic (vs timing-only);
* ``events`` — record structured events on the system's :class:`EventBus`;
* ``trace`` — maintain a legacy :class:`~repro.accel.trace.ExecutionTrace`
  (a thin adapter over the bus);
* ``metrics`` — maintain a :class:`~repro.obs.metrics.Metrics` registry;
* ``sinks`` — extra sinks attached to the bus (e.g. ``NullSink`` for
  overhead measurement, a streaming JSONL writer).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from repro.obs.bus import Sink


@dataclass(frozen=True)
class ObsConfig:
    """Execution-mode + instrumentation options (keyword-only everywhere)."""

    functional: bool = False
    events: bool = False
    trace: bool = False
    metrics: bool = False
    sinks: tuple[Sink, ...] = field(default_factory=tuple)

    @property
    def enabled(self) -> bool:
        """Whether any instrumentation (hence an event bus) is wanted."""
        return self.events or self.trace or self.metrics or bool(self.sinks)

    @classmethod
    def off(cls, functional: bool = False) -> ObsConfig:
        """No instrumentation at all (the zero-overhead default)."""
        return cls(functional=functional)

    @classmethod
    def full(cls, functional: bool = False) -> ObsConfig:
        """Everything on: events + legacy trace + metrics."""
        return cls(functional=functional, events=True, trace=True, metrics=True)


def resolve_obs_config(
    obs: ObsConfig | None,
    functional: bool | None,
    trace: bool | None,
    *,
    owner: str,
    default_functional: bool = False,
) -> ObsConfig:
    """Merge the new options object with the deprecated boolean flags.

    Explicitly passed booleans win over ``obs`` (so old call sites behave
    identically) but raise a :class:`DeprecationWarning` naming the
    replacement.  ``stacklevel=3`` points at the caller of the constructor
    that called us.
    """
    if functional is None and trace is None:
        if obs is None:
            return ObsConfig(functional=default_functional)
        return obs
    deprecated = [
        f"{name}={value}"
        for name, value in (("functional", functional), ("trace", trace))
        if value is not None
    ]
    warnings.warn(
        f"{owner}({', '.join(deprecated)}) is deprecated; pass "
        f"obs=ObsConfig(...) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    base = obs if obs is not None else ObsConfig(functional=default_functional)
    replacements: dict[str, bool] = {}
    if functional is not None:
        replacements["functional"] = functional
    if trace is not None:
        replacements["trace"] = trace
    return ObsConfig(
        functional=replacements.get("functional", base.functional),
        events=base.events,
        trace=replacements.get("trace", base.trace),
        metrics=base.metrics,
        sinks=base.sinks,
    )
