"""The observability event taxonomy.

Every layer of the stack reports what it does as cycle-stamped
:class:`Event` records on one shared :class:`~repro.obs.bus.EventBus`:

======================  =====================================================
kind                    emitted by / meaning
======================  =====================================================
``INSTR_RETIRE``        IAU / runner — one real instruction executed
``VI_EXPAND``           IAU — a virtual instruction expanded into a backup
                        transfer (``phase="backup"``) or a recovery load
                        re-executed on resume (``phase="recovery"``)
``PREEMPT_BEGIN``       IAU — a running task lost the accelerator
``PREEMPT_END``         IAU — a preempted task got the accelerator back
``DDR_BURST``           accelerator core — one DMA transfer (LOAD/SAVE)
``JOB_SUBMIT``          IAU — an inference request reached a task slot
``JOB_START``           IAU — a queued job issued its first instruction
``JOB_COMPLETE``        IAU — a job retired its last instruction
``ROS_PUBLISH``         ROS executor — a message was published to a topic
``ROS_DELIVER``         ROS executor — one subscriber callback received it
``FAULT_INJECT``        fault plan — an injector fired (``site`` names it)
``FAULT_DETECT``        tolerance layer — a guard noticed corruption (ECC,
                        checkpoint CRC, watchdog)
``FAULT_RECOVER``       tolerance layer — the fault was repaired (ECC
                        correction, rollback to the last good checkpoint)
``CHECKPOINT_RETRY``    IAU — a Vir_SAVE checkpoint failed CRC verification
                        on resume and a bounded retry was consumed
                        (``attempt``/``budget`` count against the plan's
                        ``max_checkpoint_retries``)
``JOB_DEGRADED``        runtime — the degradation policy shed or down-tiered
                        a low-priority job under overload
``DEADLINE_MISS``       IAU watchdog — a job overran its deadline (the job's
                        record carries the typed ``DeadlineMissed`` outcome)
``ADMISSION_DENY``      QoS admission control — a request was rejected, shed
                        or parked (``reason`` / ``policy`` name the cause)
``PRIORITY_INVERSION``  IAU — a lower-criticality job held the core past a
                        higher-criticality job's slack
``ROS_QUEUE_DROP``      ROS executor — a backpressured topic dropped a
                        message (queue overflow, unreliable drop, or retry
                        timeout; ``reason`` distinguishes them)
``ROS_RETRY``           ROS executor — a reliable delivery attempt failed
                        and was rescheduled with exponential backoff
``ROS_ACK``             ROS executor — a backpressured delivery completed
                        (``latency`` is publish-to-deliver cycles)
``INVARIANT_VIOLATION`` online monitor (report mode) — a runtime invariant
                        did not hold (``check`` names it)
``NODE_SUSPECT``        farm health — a node missed its heartbeat window
                        while holding work (``stalled_cycles`` says how long)
``NODE_DOWN``           farm health — a node was declared dead (missed the
                        dead-after window, or a classified worker death)
``JOB_MIGRATED``        farm resilience — a job stranded on a dead node was
                        re-planned onto a surviving node
``HEDGE_DISPATCH``      farm resilience — an overdue job on a suspect node
                        was speculatively duplicated on a healthy node
``HEDGE_WIN``           farm resilience — a hedged job's first result landed
                        (``source`` says which copy won)
``HEDGE_WASTED``        farm resilience — the losing copy of a hedged job
                        completed after the winner and was discarded
``MODE_SWITCH``         farm resilience — MESC-style criticality mode change
                        (``mode`` is ``degraded``/``normal``; capacity drop
                        sheds low-criticality classes)
``MEASURE_RETRY``       farm measure phase — a crashed worker set was re-run
                        (``attempt``/``budget`` count the retry budget)
``COMPILE_CACHE_HIT``   compiler — a compile was satisfied from the on-disk
                        cache (``key``/``graph``/``config`` identify the
                        artefact, ``seconds`` is the load wall time)
``COMPILE_CACHE_MISS``  compiler — no usable cache entry; a fresh compile
                        ran (``seconds`` is compile wall time, ``stored``
                        says whether the result was written back)
======================  =====================================================

``cycle`` is the accelerator clock at emission and is non-decreasing within
one system's event stream (back-dated request times travel in ``data``,
never in the stamp).  Kind-specific payloads live in the ``data`` mapping so
every event serialises to one flat JSON object.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping


class EventKind(enum.Enum):
    """The closed set of event types the stack emits."""

    INSTR_RETIRE = "instr_retire"
    VI_EXPAND = "vi_expand"
    PREEMPT_BEGIN = "preempt_begin"
    PREEMPT_END = "preempt_end"
    DDR_BURST = "ddr_burst"
    JOB_SUBMIT = "job_submit"
    JOB_START = "job_start"
    JOB_COMPLETE = "job_complete"
    ROS_PUBLISH = "ros_publish"
    ROS_DELIVER = "ros_deliver"
    FAULT_INJECT = "fault_inject"
    FAULT_DETECT = "fault_detect"
    FAULT_RECOVER = "fault_recover"
    CHECKPOINT_RETRY = "checkpoint_retry"
    JOB_DEGRADED = "job_degraded"
    DEADLINE_MISS = "deadline_miss"
    ADMISSION_DENY = "admission_deny"
    PRIORITY_INVERSION = "priority_inversion"
    ROS_QUEUE_DROP = "ros_queue_drop"
    ROS_RETRY = "ros_retry"
    ROS_ACK = "ros_ack"
    INVARIANT_VIOLATION = "invariant_violation"
    NODE_SUSPECT = "node_suspect"
    NODE_DOWN = "node_down"
    JOB_MIGRATED = "job_migrated"
    HEDGE_DISPATCH = "hedge_dispatch"
    HEDGE_WIN = "hedge_win"
    HEDGE_WASTED = "hedge_wasted"
    MODE_SWITCH = "mode_switch"
    MEASURE_RETRY = "measure_retry"
    COMPILE_CACHE_HIT = "compile_cache_hit"
    COMPILE_CACHE_MISS = "compile_cache_miss"


@dataclass(frozen=True)
class Event:
    """One cycle-stamped observation.

    ``duration`` is non-zero for events that span time (instruction
    execution, DMA bursts); instantaneous events keep it at 0.
    """

    kind: EventKind
    cycle: int
    task_id: int | None = None
    layer_id: int | None = None
    duration: int = 0
    data: Mapping[str, Any] = field(default_factory=dict)

    @property
    def end_cycle(self) -> int:
        return self.cycle + self.duration

    def to_dict(self) -> dict[str, Any]:
        """Flatten to one JSON-serialisable dict (for the JSONL exporter)."""
        record: dict[str, Any] = {"kind": self.kind.value, "cycle": self.cycle}
        if self.task_id is not None:
            record["task_id"] = self.task_id
        if self.layer_id is not None:
            record["layer_id"] = self.layer_id
        if self.duration:
            record["duration"] = self.duration
        record.update(self.data)
        return record
