"""The event bus: one emission point, pluggable sinks.

Emitters (`Iau`, `AcceleratorCore`, the runtime, the ROS executor) hold a
bus reference that is ``None`` when observability is off, so the disabled
path costs one identity check per hook.  When a bus exists, ``emit``
constructs the :class:`~repro.obs.events.Event` and fans it out:

* to the bus's own in-memory list when ``record=True`` (the default the
  runtime uses — queries and exporters read ``bus.events``), and
* to every attached sink (``NullSink`` for overhead measurement,
  ``MetricsSink`` for the registry, a legacy ``ExecutionTrace``, …).

The bus carries the emitter's clock (``bus.cycle``, advanced by whoever
owns time — the IAU or the straight-line runner) so components that have no
clock of their own, like the accelerator core, still stamp correctly.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol

from repro.obs.events import Event, EventKind


class Sink(Protocol):
    """Anything that consumes events."""

    def handle(self, event: Event) -> None: ...


class NullSink:
    """Swallows every event: the disabled-but-wired path.

    Used to measure the cost of *emission itself*, separate from the cost
    of recording.  Cycle accounting never depends on instrumentation, so a
    run with a null sink matches an un-instrumented run cycle-for-cycle.
    """

    def handle(self, event: Event) -> None:
        pass


class ListSink:
    """Appends every event to a list (the default recording sink)."""

    def __init__(self) -> None:
        self.events: list[Event] = []

    def handle(self, event: Event) -> None:
        self.events.append(event)


class CallbackSink:
    """Adapts a plain callable into a sink."""

    def __init__(self, callback: Callable[[Event], None]):
        self._callback = callback

    def handle(self, event: Event) -> None:
        self._callback(event)


class EventBus:
    """Cycle-stamped structured event stream with attached sinks."""

    def __init__(self, record: bool = True, sinks: tuple[Sink, ...] = ()):
        self.cycle = 0
        self._record = record
        self.events: list[Event] = []
        self._sinks: list[Sink] = list(sinks)

    # -- wiring ------------------------------------------------------------

    def attach(self, sink: Sink) -> Sink:
        self._sinks.append(sink)
        return sink

    def detach(self, sink: Sink) -> None:
        self._sinks.remove(sink)

    @property
    def sinks(self) -> tuple[Sink, ...]:
        return tuple(self._sinks)

    # -- emission ----------------------------------------------------------

    def advance(self, cycle: int) -> None:
        """Move the bus clock forward (time owners call this; never back)."""
        if cycle > self.cycle:
            self.cycle = cycle

    def emit(
        self,
        kind: EventKind,
        cycle: int | None = None,
        task_id: int | None = None,
        layer_id: int | None = None,
        duration: int = 0,
        **data: Any,
    ) -> Event:
        """Record one event, stamped at ``cycle`` (default: the bus clock)."""
        if cycle is None:
            cycle = self.cycle
        else:
            self.advance(cycle)
        event = Event(
            kind=kind,
            cycle=cycle,
            task_id=task_id,
            layer_id=layer_id,
            duration=duration,
            data=data,
        )
        if self._record:
            self.events.append(event)
        for sink in self._sinks:
            sink.handle(event)
        return event

    # -- snapshot/restore --------------------------------------------------

    def capture_state(self) -> dict:
        """Picklable mid-run state: the clock and the recorded stream.

        Events are immutable, so the list is copied shallowly.  Sinks are
        wiring, not state — they are reattached by whoever rebuilds the
        system, and are *not* replayed on restore (their own state is
        captured by their owners, e.g. :class:`~repro.obs.metrics.Metrics`).
        """
        return {"cycle": self.cycle, "events": list(self.events)}

    def restore_state(self, state: dict) -> None:
        self.cycle = state["cycle"]
        self.events = list(state["events"])

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, *kinds: EventKind) -> list[Event]:
        wanted = set(kinds)
        return [event for event in self.events if event.kind in wanted]

    def for_task(self, task_id: int) -> list[Event]:
        return [event for event in self.events if event.task_id == task_id]
