"""Deterministic synthetic multi-tenant traffic for the serving farm.

A farm benchmark is only comparable across schedulers if every scheduler
sees the *identical* job stream, so generation is strictly deterministic:
each tenant owns a :class:`random.Random` seeded from ``(seed, tenant_id)``
and draws its own arrival process independently of every other tenant.
Adding, removing, or re-ordering tenants never perturbs another tenant's
arrivals.

Three arrival patterns cover the serving-traffic shapes that matter for
scheduling:

* ``poisson`` — memoryless arrivals at a constant mean rate (the M/G/N
  baseline);
* ``diurnal`` — a Poisson process whose rate follows a sinusoid (day/night
  load swing), implemented by thinning against the peak rate;
* ``bursty`` — an on/off modulated process (exponential on- and off-period
  lengths) that concentrates the same mean load into bursts, the pattern
  that exposes head-of-line blocking.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.errors import SchedulerError

PATTERNS = ("poisson", "diurnal", "bursty")


@dataclass(frozen=True)
class SloClass:
    """One service-level class: a priority rank, a token weight, a deadline.

    ``rank`` maps onto the IAU priority slot ordering (0 pre-empts
    everything else); ``weight`` is the PREMA-style token accrual rate the
    predictive scheduler uses (a gold job earns queue position faster than
    a bronze one); ``deadline_cycles`` is the end-to-end latency bound the
    SLO-attainment metric checks arrivals against.
    """

    name: str
    rank: int
    weight: float
    deadline_cycles: int

    def __post_init__(self):
        if self.rank < 0:
            raise SchedulerError(f"rank must be >= 0, got {self.rank}")
        if self.weight <= 0:
            raise SchedulerError(f"weight must be positive, got {self.weight}")
        if self.deadline_cycles <= 0:
            raise SchedulerError(
                f"deadline_cycles must be positive, got {self.deadline_cycles}"
            )


@dataclass(frozen=True)
class TenantSpec:
    """One traffic source: which service it calls and how often.

    ``mean_interarrival_cycles`` is the long-run mean gap for every pattern
    (the bursty/diurnal shapes redistribute the same mean load in time).
    """

    tenant_id: int
    service: int
    mean_interarrival_cycles: float
    pattern: str = "poisson"
    #: Diurnal swing depth in [0, 1): rate(t) = mean * (1 + depth*sin).
    diurnal_depth: float = 0.8
    #: Diurnal period (one synthetic "day") in cycles.
    diurnal_period_cycles: int = 10_000_000
    #: Mean lengths of the bursty on/off phases, in cycles.
    burst_on_cycles: float = 500_000.0
    burst_off_cycles: float = 1_500_000.0

    def __post_init__(self):
        if self.pattern not in PATTERNS:
            raise SchedulerError(
                f"pattern must be one of {PATTERNS}, got {self.pattern!r}"
            )
        if self.mean_interarrival_cycles <= 0:
            raise SchedulerError("mean_interarrival_cycles must be positive")
        if not 0 <= self.diurnal_depth < 1:
            raise SchedulerError("diurnal_depth must be in [0, 1)")


@dataclass(frozen=True, order=True)
class Job:
    """One inference request: who asked, for what, and when."""

    arrival_cycle: int
    job_id: int
    tenant_id: int
    service: int


@dataclass(frozen=True)
class TrafficSpec:
    """A reproducible day of traffic: tenants + horizon + seed."""

    tenants: tuple[TenantSpec, ...]
    duration_cycles: int
    seed: int = 0

    def __post_init__(self):
        if self.duration_cycles <= 0:
            raise SchedulerError("duration_cycles must be positive")
        seen = set()
        for tenant in self.tenants:
            if tenant.tenant_id in seen:
                raise SchedulerError(f"duplicate tenant_id {tenant.tenant_id}")
            seen.add(tenant.tenant_id)


def _tenant_rng(spec: TrafficSpec, tenant: TenantSpec) -> random.Random:
    # Integer mix, not hash(): stable across processes and interpreter runs.
    return random.Random(spec.seed * 1_000_003 + tenant.tenant_id)


def _poisson_arrivals(rng: random.Random, tenant: TenantSpec, horizon: int):
    t = rng.expovariate(1.0 / tenant.mean_interarrival_cycles)
    while t < horizon:
        yield int(t)
        t += rng.expovariate(1.0 / tenant.mean_interarrival_cycles)


def _diurnal_arrivals(rng: random.Random, tenant: TenantSpec, horizon: int):
    # Thinning: draw candidates at the peak rate, accept with probability
    # rate(t)/peak.  Exact for any bounded rate function.
    base_rate = 1.0 / tenant.mean_interarrival_cycles
    peak_rate = base_rate * (1.0 + tenant.diurnal_depth)
    omega = 2.0 * math.pi / tenant.diurnal_period_cycles
    t = rng.expovariate(peak_rate)
    while t < horizon:
        rate = base_rate * (1.0 + tenant.diurnal_depth * math.sin(omega * t))
        if rng.random() < rate / peak_rate:
            yield int(t)
        t += rng.expovariate(peak_rate)


def _bursty_arrivals(rng: random.Random, tenant: TenantSpec, horizon: int):
    # On/off modulation preserving the long-run mean: all arrivals land in
    # the "on" phases, at a rate scaled up by (on+off)/on.
    duty = tenant.burst_on_cycles / (tenant.burst_on_cycles + tenant.burst_off_cycles)
    on_rate = 1.0 / (tenant.mean_interarrival_cycles * duty)
    t = 0.0
    on = True
    while t < horizon:
        phase = rng.expovariate(
            1.0 / (tenant.burst_on_cycles if on else tenant.burst_off_cycles)
        )
        end = t + phase
        if on:
            arrival = t + rng.expovariate(on_rate)
            while arrival < min(end, horizon):
                yield int(arrival)
                arrival += rng.expovariate(on_rate)
        t = end
        on = not on


_GENERATORS = {
    "poisson": _poisson_arrivals,
    "diurnal": _diurnal_arrivals,
    "bursty": _bursty_arrivals,
}


def generate_jobs(spec: TrafficSpec) -> list[Job]:
    """The full, deterministic job stream of one traffic spec.

    Jobs are globally sorted by ``(arrival_cycle, tenant_id)`` and numbered
    in that order, so ``job_id`` is also the farm-wide FCFS order.
    """
    raw: list[tuple[int, int, int]] = []
    for tenant in spec.tenants:
        rng = _tenant_rng(spec, tenant)
        generator = _GENERATORS[tenant.pattern]
        for arrival in generator(rng, tenant, spec.duration_cycles):
            raw.append((arrival, tenant.tenant_id, tenant.service))
    raw.sort()
    return [
        Job(arrival_cycle=arrival, job_id=index, tenant_id=tenant_id, service=service)
        for index, (arrival, tenant_id, service) in enumerate(raw)
    ]
