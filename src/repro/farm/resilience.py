"""Farm resilience: health-monitored nodes, feedback re-planning, chaos.

The plain :meth:`~repro.farm.farm.Farm.serve` pipeline plans a whole day
up front and assumes every node survives it — one node lost mid-day kills
the run.  This module makes the farm survive exactly the interruptions
INCA's single accelerator survives, one level up:

* :class:`NodeHealth` — a per-node heartbeat state machine
  (``HEALTHY → SUSPECT → DEAD``) fed by measured progress each epoch and,
  optionally, by classified worker deaths from the serving gateway's
  journal (:func:`repro.serve.gateway.classify_exit`);
* :class:`FeedbackScheduler` — wraps any base
  :class:`~repro.farm.scheduler.Scheduler` with per-``(node, service)``
  EWMA corrections learned from measured completions, closing the
  plan→measure→re-plan loop;
* :func:`serve_resilient` — an incremental serving loop in fixed-size
  epochs: plan the epoch's arrivals on the *healthy* nodes, measure one
  epoch of simulated time per node, harvest completions (feeding the
  corrections and the heartbeats), then re-plan.  Jobs stranded on a dead
  node are migrated (re-planned from the death point onward — no time
  travel, exactly-once outcomes); overdue jobs on a *suspect* node are
  hedged (speculatively duplicated with first-result-wins dedup); and a
  MESC-style :class:`~repro.qos.config.ModeSwitchPolicy` sheds
  low-criticality classes when surviving capacity drops;
* :class:`ChaosPlan` — a seeded, deterministic fault plan at farm level:
  kill (or transiently hang) a node at a simulated cycle, SIGKILL a
  measure worker process, or poison a journaled snapshot;
* :func:`run_chaos_campaign` — replays one day under a set of chaos plans
  against the no-fault golden run and checks the hard invariants: zero
  lost jobs, zero duplicated outcomes, a gold-class attainment floor.
"""

from __future__ import annotations

import enum
import random
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Mapping, Sequence, TYPE_CHECKING

from repro.analysis.tables import format_table
from repro.errors import SchedulerError
from repro.farm.metrics import build_report, join_outcomes
from repro.farm.node import NodeJobResult, build_node_system
from repro.farm.scheduler import (
    Dispatch,
    FarmView,
    PredictiveScheduler,
    Scheduler,
)
from repro.farm.traffic import Job
from repro.obs.bus import EventBus
from repro.obs.events import EventKind
from repro.qos.config import ModeSwitchPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle (farm imports us)
    from repro.farm.farm import Farm


# -- node health -----------------------------------------------------------


class HealthState(enum.Enum):
    """One node's liveness as the farm can observe it."""

    HEALTHY = "healthy"
    SUSPECT = "suspect"
    DEAD = "dead"


class NodeHealth:
    """Heartbeat-driven health tracking for every node of a farm.

    A *beat* arrives once per epoch with the node's simulated clock and
    whether it holds unfinished work.  Progress (an advancing clock, or an
    idle node) is a heartbeat; a busy node whose clock froze is stalled —
    ``suspect_after_cycles`` of stall makes it ``SUSPECT`` (hedging
    territory), ``dead_after_cycles`` makes it ``DEAD`` (migration
    territory).  A suspect node that resumes progress returns to
    ``HEALTHY``; death is final.  :meth:`note_worker_death` feeds
    *classified* deaths (a gateway's ``worker_death`` journal events or a
    ``classify_exit`` string) and declares the node dead immediately — a
    SIGKILL is a better signal than a missed heartbeat.
    """

    def __init__(
        self,
        num_nodes: int,
        *,
        suspect_after_cycles: int,
        dead_after_cycles: int,
        bus: EventBus | None = None,
    ):
        if num_nodes < 1:
            raise SchedulerError(f"num_nodes must be >= 1, got {num_nodes}")
        if suspect_after_cycles <= 0:
            raise SchedulerError("suspect_after_cycles must be positive")
        if dead_after_cycles <= suspect_after_cycles:
            raise SchedulerError(
                "dead_after_cycles must exceed suspect_after_cycles"
            )
        self.num_nodes = num_nodes
        self.suspect_after_cycles = suspect_after_cycles
        self.dead_after_cycles = dead_after_cycles
        self.bus = bus
        self._state = [HealthState.HEALTHY] * num_nodes
        self._last_clock = [-1] * num_nodes
        self._last_progress = [0] * num_nodes
        #: ``(cycle, node, state)`` transition log, in observation order.
        self.transitions: list[tuple[int, int, HealthState]] = []

    def state(self, node: int) -> HealthState:
        return self._state[node]

    def alive(self, node: int) -> bool:
        return self._state[node] is not HealthState.DEAD

    def healthy_nodes(self) -> list[int]:
        return [
            node
            for node in range(self.num_nodes)
            if self._state[node] is HealthState.HEALTHY
        ]

    def alive_nodes(self) -> list[int]:
        return [node for node in range(self.num_nodes) if self.alive(node)]

    def _transition(self, node: int, state: HealthState, cycle: int, **data) -> None:
        self._state[node] = state
        self.transitions.append((cycle, node, state))
        if self.bus is not None:
            if state is HealthState.SUSPECT:
                self.bus.emit(EventKind.NODE_SUSPECT, cycle=cycle, node=node, **data)
            elif state is HealthState.DEAD:
                self.bus.emit(EventKind.NODE_DOWN, cycle=cycle, node=node, **data)

    def beat(self, node: int, *, clock: int, busy: bool, now: int) -> HealthState:
        """One epoch's observation of ``node``; returns its new state."""
        state = self._state[node]
        if state is HealthState.DEAD:
            return state
        if not busy or clock > self._last_clock[node]:
            self._last_clock[node] = clock
            self._last_progress[node] = now
            if state is HealthState.SUSPECT:
                self._transition(node, HealthState.HEALTHY, now)
            return self._state[node]
        stalled = now - self._last_progress[node]
        if stalled >= self.dead_after_cycles:
            self._transition(
                node, HealthState.DEAD, now,
                reason="missed_heartbeats", stalled_cycles=stalled,
            )
        elif stalled >= self.suspect_after_cycles and state is HealthState.HEALTHY:
            self._transition(
                node, HealthState.SUSPECT, now, stalled_cycles=stalled
            )
        return self._state[node]

    def note_worker_death(self, node: int, *, cycle: int, reason: str) -> None:
        """A classified worker death (gateway journal) — immediately DEAD."""
        if not 0 <= node < self.num_nodes:
            raise SchedulerError(f"no node {node} in a {self.num_nodes}-node farm")
        if self._state[node] is HealthState.DEAD:
            return
        self._transition(
            node, HealthState.DEAD, cycle, reason=f"worker_death: {reason}"
        )


# -- chaos plans -----------------------------------------------------------

KILL_NODE = "kill_node"
KILL_WORKER = "kill_worker"
POISON_SNAPSHOT = "poison_snapshot"

_CHAOS_KINDS = (KILL_NODE, KILL_WORKER, POISON_SNAPSHOT)

#: Environment variable naming the armed worker-kill directory (see
#: :meth:`ChaosPlan.arm_worker_kills` / ``repro.farm.node``).
CHAOS_DIR_ENV = "REPRO_FARM_CHAOS_DIR"


@dataclass(frozen=True)
class ChaosAction:
    """One planned fault.

    * ``kill_node`` — the node's host "dies" at simulated cycle
      ``at_cycle``: its simulation stops advancing and its unfinished work
      must be hedged/migrated.  A ``heal_cycle`` turns the death into a
      transient hang (a GC pause, a network partition): the node resumes
      at that cycle, having done no work in between.
    * ``kill_worker`` — SIGKILL the measure-phase worker *process* of this
      node ``count`` times (armed via :meth:`ChaosPlan.arm_worker_kills`;
      exercises the farm's retry budget and the gateway's recovery).
    * ``poison_snapshot`` — corrupt this node's journaled snapshot file
      (see :func:`poison_snapshot_file`) so a resuming worker must detect
      the corruption and fall back to a fresh start.
    """

    kind: str
    node: int
    at_cycle: int = 0
    heal_cycle: int | None = None
    count: int = 1

    def __post_init__(self):
        if self.kind not in _CHAOS_KINDS:
            raise SchedulerError(
                f"chaos kind must be one of {_CHAOS_KINDS}, got {self.kind!r}"
            )
        if self.node < 0:
            raise SchedulerError(f"node must be >= 0, got {self.node}")
        if self.at_cycle < 0:
            raise SchedulerError(f"at_cycle must be >= 0, got {self.at_cycle}")
        if self.heal_cycle is not None:
            if self.kind != KILL_NODE:
                raise SchedulerError("heal_cycle only applies to kill_node")
            if self.heal_cycle <= self.at_cycle:
                raise SchedulerError("heal_cycle must be after at_cycle")
        if self.count < 1:
            raise SchedulerError(f"count must be >= 1, got {self.count}")


@dataclass(frozen=True)
class ChaosPlan:
    """A deterministic set of planned faults for one serving run."""

    actions: tuple[ChaosAction, ...] = ()
    seed: int = 0

    def __post_init__(self):
        object.__setattr__(self, "actions", tuple(self.actions))
        kills = [a.node for a in self.actions if a.kind == KILL_NODE]
        if len(kills) != len(set(kills)):
            raise SchedulerError("at most one kill_node action per node")

    @classmethod
    def random_node_kills(
        cls,
        seed: int,
        *,
        num_nodes: int,
        kills: int,
        window: tuple[int, int],
    ) -> "ChaosPlan":
        """``kills`` distinct nodes killed at seeded cycles inside ``window``."""
        if not 0 <= kills <= num_nodes:
            raise SchedulerError(
                f"kills must be in [0, {num_nodes}], got {kills}"
            )
        lo, hi = window
        if not 0 <= lo < hi:
            raise SchedulerError(f"window must satisfy 0 <= lo < hi, got {window}")
        rng = random.Random(seed * 9_999_991 + kills)
        nodes = sorted(rng.sample(range(num_nodes), kills))
        actions = tuple(
            ChaosAction(KILL_NODE, node, at_cycle=rng.randrange(lo, hi))
            for node in nodes
        )
        return cls(actions=actions, seed=seed)

    def node_kills(self) -> dict[int, ChaosAction]:
        return {a.node: a for a in self.actions if a.kind == KILL_NODE}

    def worker_kills(self) -> dict[int, int]:
        kills: dict[int, int] = {}
        for action in self.actions:
            if action.kind == KILL_WORKER:
                kills[action.node] = kills.get(action.node, 0) + action.count
        return kills

    def poison_targets(self) -> list[ChaosAction]:
        return [a for a in self.actions if a.kind == POISON_SNAPSHOT]

    def arm_worker_kills(self, directory: str | Path) -> dict[str, str]:
        """Write per-node kill budgets the measure workers consume.

        Each ``kill_worker`` action becomes a ``kill-node-<n>`` count file;
        a worker process claiming one decrements it and dies by SIGKILL
        (see ``repro.farm.node``).  Returns the environment mapping the
        caller must apply (``{CHAOS_DIR_ENV: directory}``) for the kills
        to arm; an empty dict when the plan kills no workers.
        """
        kills = self.worker_kills()
        if not kills:
            return {}
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for node, count in kills.items():
            (directory / f"kill-node-{node}").write_text(str(count))
        return {CHAOS_DIR_ENV: str(directory)}


def poison_snapshot_file(path: str | Path, *, seed: int = 0) -> int:
    """Flip one deterministic payload byte of a snapshot file.

    Returns the flipped offset.  The CRC-checked snapshot format
    (:mod:`repro.serve.snapshot`) is guaranteed to detect the corruption;
    the serve worker then discards the snapshot and restarts the job from
    scratch instead of failing it (the ``poison_snapshot`` chaos story).
    """
    path = Path(path)
    blob = bytearray(path.read_bytes())
    header = 24
    if len(blob) <= header:
        raise SchedulerError(f"snapshot {path} too small to poison")
    offset = header + random.Random(seed).randrange(len(blob) - header)
    blob[offset] ^= 0xFF
    path.write_bytes(bytes(blob))
    return offset


# -- feedback scheduling ---------------------------------------------------


class FeedbackScheduler:
    """A :class:`Scheduler` that corrects its estimates from measurements.

    Wraps any base policy (default: the PREMA-style predictive scheduler)
    and maintains one EWMA correction factor per ``(node, service)``:
    :meth:`observe` feeds the measured residency of a completed job
    (dispatch→completion) against the static estimate the plan used, and
    :meth:`dispatch` hands the base policy a view whose estimates are
    scaled by the learned factors.  Used standalone it behaves like its
    base policy until fed; inside :func:`serve_resilient` it closes the
    incremental plan→measure→re-plan loop ROADMAP item 1 asks for.
    """

    def __init__(
        self,
        base: Scheduler | None = None,
        *,
        alpha: float = 0.4,
        initial_correction: Mapping[tuple[int, int], float] | None = None,
    ):
        if not 0.0 < alpha <= 1.0:
            raise SchedulerError(f"alpha must be in (0, 1], got {alpha}")
        self.base: Scheduler = base if base is not None else PredictiveScheduler()
        self.alpha = alpha
        self.name = f"feedback+{self.base.name}"
        self._correction: dict[tuple[int, int], float] = dict(
            initial_correction or {}
        )

    def correction(self, node: int, service: int) -> float:
        return self._correction.get((node, service), 1.0)

    def observe(
        self, node: int, service: int, *, estimated: int, measured: int
    ) -> None:
        """Feed one measured completion back into the correction table."""
        if estimated <= 0 or measured <= 0:
            return
        ratio = measured / estimated
        key = (node, service)
        previous = self._correction.get(key)
        self._correction[key] = (
            ratio
            if previous is None
            else previous + self.alpha * (ratio - previous)
        )

    def corrected_view(self, view: FarmView) -> FarmView:
        """``view`` with every estimate scaled by its learned correction."""
        rows = [
            [
                max(1, round(view.estimates[node][service]
                             * self.correction(node, service)))
                for service in range(len(view.estimates[node]))
            ]
            for node in range(view.num_nodes)
        ]
        return FarmView(
            view.num_nodes, view.slos, rows, available=view.available
        )

    def dispatch(self, jobs: Sequence[Job], view: FarmView) -> list[Dispatch]:
        return self.base.dispatch(jobs, self.corrected_view(view))


# -- the resilient serving loop --------------------------------------------


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs of the incremental serving loop.

    ``epoch_cycles`` is the re-planning cadence (and heartbeat period).
    ``suspect_after_cycles`` / ``dead_after_cycles`` default to one and
    three epochs of stalled progress.  ``hedge_grace_cycles`` is how far
    past its estimated completion a job on a *suspect* node may run before
    a speculative duplicate is dispatched (default: one epoch);
    ``max_hedges_per_epoch`` bounds the duplicated work.  ``mode_switch``
    arms MESC-style shedding of low-criticality classes when surviving
    capacity drops (see :class:`~repro.qos.config.ModeSwitchPolicy`).
    """

    epoch_cycles: int = 250_000
    suspect_after_cycles: int | None = None
    dead_after_cycles: int | None = None
    hedge: bool = True
    hedge_grace_cycles: int | None = None
    max_hedges_per_epoch: int = 8
    mode_switch: ModeSwitchPolicy | None = None
    max_epochs: int = 100_000

    def __post_init__(self):
        if self.epoch_cycles <= 0:
            raise SchedulerError("epoch_cycles must be positive")
        if self.max_hedges_per_epoch < 0:
            raise SchedulerError("max_hedges_per_epoch must be >= 0")
        if self.max_epochs <= 0:
            raise SchedulerError("max_epochs must be positive")

    @property
    def suspect_cycles(self) -> int:
        return self.suspect_after_cycles or self.epoch_cycles

    @property
    def dead_cycles(self) -> int:
        return self.dead_after_cycles or 3 * self.epoch_cycles

    @property
    def hedge_grace(self) -> int:
        return (
            self.hedge_grace_cycles
            if self.hedge_grace_cycles is not None
            else self.epoch_cycles
        )


@dataclass(frozen=True)
class NodeSummary:
    """One node's end-of-day ledger."""

    node: int
    state: HealthState
    final_cycle: int
    completed: int
    killed_at: int | None = None


@dataclass(frozen=True)
class ResilienceReport:
    """What the resilient loop did beyond serving: the failure ledger."""

    epochs: int
    nodes: tuple[NodeSummary, ...]
    migrations: int
    hedges_dispatched: int
    hedges_won: int
    hedges_wasted: int
    shed_jobs: int
    mode_switches: tuple[tuple[int, str], ...]
    capacity_fraction: float

    @property
    def nodes_lost(self) -> int:
        return sum(1 for n in self.nodes if n.state is HealthState.DEAD)

    def format(self) -> str:
        rows = [
            [
                summary.node,
                summary.state.value,
                summary.final_cycle,
                summary.completed,
                summary.killed_at if summary.killed_at is not None else "-",
            ]
            for summary in self.nodes
        ]
        table = format_table(
            ["node", "state", "final cyc", "completed", "killed at"],
            rows,
            title="farm resilience report",
        )
        switches = (
            ", ".join(f"{mode}@{cycle}" for cycle, mode in self.mode_switches)
            or "none"
        )
        table += (
            f"\nepochs: {self.epochs}; nodes lost: {self.nodes_lost}; "
            f"surviving capacity: {100 * self.capacity_fraction:.0f}%"
            f"\nmigrated: {self.migrations}; hedges: "
            f"{self.hedges_dispatched} dispatched / {self.hedges_won} won / "
            f"{self.hedges_wasted} wasted; shed: {self.shed_jobs}; "
            f"mode switches: {switches}"
        )
        return table


@dataclass(frozen=True)
class ResilientServeResult:
    """One resilient day: report, exactly-once outcomes, failure ledger."""

    report: "object"
    outcomes: tuple
    shed: tuple[Job, ...]
    dispatches: tuple[Dispatch, ...]
    resilience: ResilienceReport


@dataclass
class _InFlight:
    """One submitted copy of a job on one node."""

    job: Job
    dispatch_cycle: int
    estimate: int
    is_hedge: bool = False


class _LoopState:
    """Mutable bookkeeping of one :func:`serve_resilient` run."""

    def __init__(self, num_nodes: int, num_services: int):
        self.inflight: list[dict[int, deque[_InFlight]]] = [
            {service: deque() for service in range(num_services)}
            for _ in range(num_nodes)
        ]
        self.harvested: list[list[int]] = [
            [0] * num_services for _ in range(num_nodes)
        ]
        self.busy_est: list[int] = [0] * num_nodes
        self.completed: dict[int, NodeJobResult] = {}
        self.copies: dict[int, int] = {}
        self.hedged: set[int] = set()
        self.requeue: list[Job] = []
        self.shed: list[Job] = []
        self.dispatch_log: list[Dispatch] = []
        self.migrations = 0
        self.hedges_dispatched = 0
        self.hedges_won = 0
        self.hedges_wasted = 0
        self.mode = "normal"
        self.mode_switches: list[tuple[int, str]] = []

    def node_busy(self, node: int) -> bool:
        return any(queue for queue in self.inflight[node].values())


def _node_weights(view: FarmView) -> list[float]:
    """Per-node throughput proxy: inverse mean service estimate."""
    return [
        len(row) / sum(row) if sum(row) else 0.0 for row in view.estimates
    ]


def _capacity_fraction(view: FarmView, alive: Sequence[int]) -> float:
    weights = _node_weights(view)
    total = sum(weights)
    return sum(weights[node] for node in alive) / total if total else 0.0


def serve_resilient(
    farm: "Farm",
    jobs: Sequence[Job],
    *,
    resilience: ResilienceConfig | None = None,
    chaos: ChaosPlan | None = None,
) -> ResilientServeResult:
    """Serve a day through the incremental plan→measure→re-plan loop.

    Runs serially (node systems persist across epochs), so per-node obs
    is allowed.  ``chaos`` applies planned ``kill_node`` faults — worker
    and snapshot faults target the process-sharded paths and are ignored
    here.  The result's outcome set is exactly-once by construction: every
    arrival is either measured on some node or shed by the mode switch,
    and hedged duplicates are deduplicated first-result-wins before the
    join (which independently rejects duplicates).
    """
    cfg = resilience if resilience is not None else ResilienceConfig()
    num_nodes = len(farm.node_configs)
    num_services = len(farm.services)
    base_view = farm.view
    bus = farm.bus
    health = NodeHealth(
        num_nodes,
        suspect_after_cycles=cfg.suspect_cycles,
        dead_after_cycles=cfg.dead_cycles,
        bus=bus,
    )
    feedback = farm.scheduler if isinstance(farm.scheduler, FeedbackScheduler) else None
    inner: Scheduler = feedback.base if feedback is not None else farm.scheduler

    kills = chaos.node_kills() if chaos is not None else {}
    frozen: set[int] = set()  # killed, not (yet) healed: sim never advances
    healed: set[int] = set()

    systems = [
        build_node_system(config, farm.services, farm.vi_mode, obs=farm.obs)
        for config in farm.node_configs
    ]
    farm.node_systems = systems
    state = _LoopState(num_nodes, num_services)

    ordered = sorted(jobs, key=lambda job: (job.arrival_cycle, job.job_id))
    next_index = 0
    now = 0
    epochs = 0
    policy = cfg.mode_switch

    def corrected() -> FarmView:
        return feedback.corrected_view(base_view) if feedback else base_view

    def submit(node: int, job: Job, cycle: int, *, is_hedge: bool) -> None:
        estimate = corrected().estimate(node, job.service)
        systems[node].submit(job.service, cycle)
        state.inflight[node][job.service].append(
            _InFlight(job, cycle, estimate, is_hedge=is_hedge)
        )
        state.copies[job.job_id] = state.copies.get(job.job_id, 0) + 1
        state.busy_est[node] = max(state.busy_est[node], cycle + estimate)
        state.dispatch_log.append(Dispatch(job=job, node=node, dispatch_cycle=cycle))

    def migrate_dead_node(node: int, cycle: int) -> None:
        for service, queue in state.inflight[node].items():
            while queue:
                entry = queue.popleft()
                job_id = entry.job.job_id
                state.copies[job_id] -= 1
                if job_id in state.completed or state.copies[job_id] > 0:
                    continue  # a hedge copy already covers (or covered) it
                state.requeue.append(entry.job)
                state.migrations += 1
                if bus is not None:
                    bus.emit(
                        EventKind.JOB_MIGRATED,
                        cycle=cycle,
                        task_id=service,
                        job_id=job_id,
                        from_node=node,
                    )

    while len(state.completed) + len(state.shed) < len(jobs):
        epochs += 1
        if epochs > cfg.max_epochs:
            raise SchedulerError(
                f"resilient serve did not converge in {cfg.max_epochs} epochs "
                f"({len(jobs) - len(state.completed) - len(state.shed)} jobs "
                f"unaccounted)"
            )
        epoch_end = now + cfg.epoch_cycles
        # Idle fast-forward: nothing in flight, nothing to re-plan, next
        # arrival beyond this epoch — jump the epoch grid to it.
        if (
            not state.requeue
            and next_index < len(ordered)
            and not any(state.node_busy(node) for node in range(num_nodes))
        ):
            gap = ordered[next_index].arrival_cycle
            if gap >= epoch_end:
                epoch_end = (gap // cfg.epoch_cycles + 1) * cfg.epoch_cycles

        alive = health.alive_nodes()
        if not alive:
            raise SchedulerError(
                f"farm lost all {num_nodes} nodes with "
                f"{len(jobs) - len(state.completed) - len(state.shed)} jobs "
                f"unserved"
            )

        # -- mode switch (MESC): shed low-criticality work under capacity loss
        if policy is not None:
            fraction = _capacity_fraction(base_view, alive)
            if state.mode == "normal" and fraction < policy.capacity_threshold:
                state.mode = "degraded"
                state.mode_switches.append((now, "degraded"))
                if bus is not None:
                    bus.emit(
                        EventKind.MODE_SWITCH, cycle=now,
                        mode="degraded", capacity=fraction,
                    )
            elif (
                state.mode == "degraded"
                and policy.restore
                and fraction >= policy.capacity_threshold
            ):
                state.mode = "normal"
                state.mode_switches.append((now, "normal"))
                if bus is not None:
                    bus.emit(
                        EventKind.MODE_SWITCH, cycle=now,
                        mode="normal", capacity=fraction,
                    )

        # -- plan: this epoch's arrivals + migrated jobs onto healthy nodes
        batch = list(state.requeue)
        state.requeue = []
        while (
            next_index < len(ordered)
            and ordered[next_index].arrival_cycle < epoch_end
        ):
            batch.append(ordered[next_index])
            next_index += 1
        if state.mode == "degraded" and policy is not None:
            kept = []
            for job in batch:
                if base_view.slos[job.service].rank >= policy.shed_min_rank:
                    state.shed.append(job)
                    if bus is not None:
                        bus.emit(
                            EventKind.JOB_DEGRADED, cycle=now,
                            task_id=job.service, job_id=job.job_id,
                            action="mode_shed", tenant_id=job.tenant_id,
                        )
                else:
                    kept.append(job)
            batch = kept
        if batch:
            healthy = health.healthy_nodes()
            if not healthy:
                state.requeue = batch  # all survivors suspect: wait an epoch
            else:
                view = corrected()
                sub_view = FarmView(
                    len(healthy),
                    view.slos,
                    [view.estimates[node] for node in healthy],
                    available=[
                        max(state.busy_est[node], systems[node].clock, now)
                        for node in healthy
                    ],
                )
                batch.sort(key=lambda job: (job.arrival_cycle, job.job_id))
                plan = inner.dispatch(batch, sub_view)
                if len(plan) != len(batch):
                    raise SchedulerError(
                        f"scheduler {inner.name!r} planned {len(plan)} "
                        f"dispatches for {len(batch)} jobs"
                    )
                for entry in sorted(
                    plan, key=lambda d: (d.dispatch_cycle, d.job.job_id)
                ):
                    submit(
                        healthy[entry.node],
                        entry.job,
                        entry.dispatch_cycle,
                        is_hedge=False,
                    )

        # -- hedge: duplicate overdue work held by suspect nodes
        if cfg.hedge:
            hedges_left = cfg.max_hedges_per_epoch
            for node in range(num_nodes):
                if health.state(node) is not HealthState.SUSPECT:
                    continue
                for service, queue in state.inflight[node].items():
                    for entry in queue:
                        if hedges_left <= 0:
                            break
                        job_id = entry.job.job_id
                        if (
                            job_id in state.hedged
                            or job_id in state.completed
                            or state.copies.get(job_id, 0) > 1
                        ):
                            continue
                        if now < entry.dispatch_cycle + entry.estimate + cfg.hedge_grace:
                            continue
                        healthy = health.healthy_nodes()
                        if not healthy:
                            break
                        view = corrected()
                        target = min(
                            healthy,
                            key=lambda n: (
                                max(now, state.busy_est[n], systems[n].clock)
                                + view.estimate(n, service),
                                n,
                            ),
                        )
                        cycle = max(
                            now, state.busy_est[target], systems[target].clock
                        )
                        submit(target, entry.job, cycle, is_hedge=True)
                        state.hedged.add(job_id)
                        state.hedges_dispatched += 1
                        hedges_left -= 1
                        if bus is not None:
                            bus.emit(
                                EventKind.HEDGE_DISPATCH, cycle=now,
                                task_id=service, job_id=job_id,
                                from_node=node, to_node=target,
                            )

        # -- measure: one epoch of simulated time per surviving node
        for node in range(num_nodes):
            if not health.alive(node):
                continue
            kill = kills.get(node)
            if kill is not None and node not in healed:
                if kill.heal_cycle is not None and epoch_end > kill.heal_cycle:
                    # The hang ends inside this epoch: the node did nothing
                    # while frozen, so its clock jumps to the heal point.
                    healed.add(node)
                    frozen.discard(node)
                    system = systems[node]
                    system.iau.clock = max(system.iau.clock, kill.heal_cycle)
                elif node in frozen:
                    continue
                elif kill.at_cycle < epoch_end:
                    # Run up to the kill point, then freeze.
                    if systems[node].clock < kill.at_cycle:
                        systems[node].run(until_cycle=kill.at_cycle)
                    frozen.add(node)
                    continue
            systems[node].run(until_cycle=epoch_end)

        # -- harvest: join completions, feed corrections and heartbeats
        for node in range(num_nodes):
            if not health.alive(node):
                continue
            system = systems[node]
            for service in range(num_services):
                records = system.jobs(service)
                queue = state.inflight[node][service]
                while state.harvested[node][service] < len(records):
                    record = records[state.harvested[node][service]]
                    state.harvested[node][service] += 1
                    if not queue:
                        raise SchedulerError(
                            f"node {node} slot {service} completed a job "
                            f"the loop never submitted"
                        )
                    entry = queue.popleft()
                    if record.request_cycle != entry.dispatch_cycle:
                        raise SchedulerError(
                            f"node {node} slot {service}: dispatch/record "
                            f"order mismatch at job {entry.job.job_id}"
                        )
                    job_id = entry.job.job_id
                    state.copies[job_id] -= 1
                    if feedback is not None:
                        feedback.observe(
                            node,
                            service,
                            estimated=base_view.estimate(node, service),
                            measured=record.complete_cycle - entry.dispatch_cycle,
                        )
                    if job_id in state.completed:
                        state.hedges_wasted += 1
                        if bus is not None:
                            bus.emit(
                                EventKind.HEDGE_WASTED, cycle=epoch_end,
                                task_id=service, job_id=job_id, node=node,
                            )
                        continue
                    state.completed[job_id] = NodeJobResult(
                        job_id=job_id,
                        node=node,
                        service=service,
                        dispatch_cycle=entry.dispatch_cycle,
                        start_cycle=record.start_cycle,
                        complete_cycle=record.complete_cycle,
                    )
                    if job_id in state.hedged:
                        state.hedges_won += 1
                        if bus is not None:
                            bus.emit(
                                EventKind.HEDGE_WIN, cycle=epoch_end,
                                task_id=service, job_id=job_id, node=node,
                                source="hedge" if entry.is_hedge else "primary",
                            )
            was_alive = health.alive(node)
            new_state = health.beat(
                node,
                clock=system.clock,
                busy=state.node_busy(node),
                now=epoch_end,
            )
            if was_alive and new_state is HealthState.DEAD:
                migrate_dead_node(node, epoch_end)

        now = epoch_end

    # Hedge copies still in flight when the day completes are abandoned
    # redundant work: count them as wasted.
    for node in range(num_nodes):
        for queue in state.inflight[node].values():
            state.hedges_wasted += sum(1 for entry in queue if entry.is_hedge)

    results = [state.completed[job_id] for job_id in sorted(state.completed)]
    outcomes = join_outcomes(list(jobs), results, shed=state.shed)
    report = build_report(
        farm.scheduler.name,
        outcomes,
        [service.slo for service in farm.services],
        estimates=base_view.estimates,
        shed=state.shed,
    )
    per_node_completed = [0] * num_nodes
    for result in results:
        per_node_completed[result.node] += 1
    summary = tuple(
        NodeSummary(
            node=node,
            state=health.state(node),
            final_cycle=systems[node].clock,
            completed=per_node_completed[node],
            killed_at=kills[node].at_cycle if node in kills else None,
        )
        for node in range(num_nodes)
    )
    resilience_report = ResilienceReport(
        epochs=epochs,
        nodes=summary,
        migrations=state.migrations,
        hedges_dispatched=state.hedges_dispatched,
        hedges_won=state.hedges_won,
        hedges_wasted=state.hedges_wasted,
        shed_jobs=len(state.shed),
        mode_switches=tuple(state.mode_switches),
        capacity_fraction=_capacity_fraction(base_view, health.alive_nodes()),
    )
    return ResilientServeResult(
        report=report,
        outcomes=tuple(outcomes),
        shed=tuple(state.shed),
        dispatches=tuple(state.dispatch_log),
        resilience=resilience_report,
    )


# -- chaos campaigns -------------------------------------------------------


@dataclass(frozen=True)
class ChaosTrial:
    """One chaos plan's run, checked against the golden invariants."""

    plan: ChaosPlan
    result: ResilientServeResult
    lost_jobs: int
    duplicated_jobs: int
    gold_attainment: float
    gold_floor: float
    invariants_ok: bool


@dataclass(frozen=True)
class ChaosCampaignReport:
    """A golden run plus every chaos trial, with the invariant table."""

    golden: ResilientServeResult
    trials: tuple[ChaosTrial, ...]
    gold_class: str
    floor: float

    @property
    def all_ok(self) -> bool:
        return all(trial.invariants_ok for trial in self.trials)

    def format(self) -> str:
        golden_gold = self.golden.report.by_class(self.gold_class).attainment
        rows = [
            [
                "golden",
                self.golden.report.total_jobs,
                0,
                0,
                0,
                0,
                0,
                f"{100 * golden_gold:.2f}%",
                f"{100 * self.golden.report.overall_attainment:.2f}%",
                "-",
            ]
        ]
        for trial in self.trials:
            report = trial.result.report
            resilience = trial.result.resilience
            rows.append(
                [
                    f"chaos(seed={trial.plan.seed})",
                    report.total_jobs,
                    resilience.nodes_lost,
                    trial.lost_jobs,
                    trial.duplicated_jobs,
                    resilience.migrations,
                    resilience.hedges_dispatched,
                    f"{100 * trial.gold_attainment:.2f}%",
                    f"{100 * report.overall_attainment:.2f}%",
                    "ok" if trial.invariants_ok else "VIOLATED",
                ]
            )
        return format_table(
            [
                "run", "jobs", "nodes lost", "lost", "dup", "migrated",
                "hedged", f"{self.gold_class} att", "overall att", "invariants",
            ],
            rows,
            title=(
                f"chaos campaign — {self.gold_class} floor = "
                f"{100 * self.floor:.0f}% of golden"
            ),
        )


def run_chaos_campaign(
    farm_factory: Callable[[], "Farm"],
    jobs: Sequence[Job],
    plans: Sequence[ChaosPlan],
    *,
    resilience: ResilienceConfig | None = None,
    gold_class: str = "gold",
    floor: float = 0.9,
) -> ChaosCampaignReport:
    """Run one golden day and every chaos plan; check the hard invariants.

    ``farm_factory`` must build a *fresh* farm per run (scheduler state —
    learned corrections — must not leak between trials).  Invariants per
    trial: zero lost jobs (every arrival measured or shed), zero
    duplicated outcomes, and gold-class attainment at or above ``floor``
    times the golden run's.  Violations are reported, not raised — the
    caller (benchmark / CI) decides what gates.
    """
    golden = serve_resilient(farm_factory(), jobs, resilience=resilience)
    golden_gold = golden.report.by_class(gold_class).attainment
    all_ids = sorted(job.job_id for job in jobs)
    trials = []
    for plan in plans:
        result = serve_resilient(
            farm_factory(), jobs, resilience=resilience, chaos=plan
        )
        seen = sorted(
            [outcome.job_id for outcome in result.outcomes]
            + [job.job_id for job in result.shed]
        )
        lost = len(set(all_ids) - set(seen))
        duplicated = len(seen) - len(set(seen))
        gold_attainment = result.report.by_class(gold_class).attainment
        gold_floor = floor * golden_gold
        trials.append(
            ChaosTrial(
                plan=plan,
                result=result,
                lost_jobs=lost,
                duplicated_jobs=duplicated,
                gold_attainment=gold_attainment,
                gold_floor=gold_floor,
                invariants_ok=(
                    lost == 0
                    and duplicated == 0
                    and seen == all_ids
                    and gold_attainment >= gold_floor
                ),
            )
        )
    return ChaosCampaignReport(
        golden=golden, trials=tuple(trials), gold_class=gold_class, floor=floor
    )


__all__ = [
    "CHAOS_DIR_ENV",
    "ChaosAction",
    "ChaosCampaignReport",
    "ChaosPlan",
    "ChaosTrial",
    "FeedbackScheduler",
    "HealthState",
    "NodeHealth",
    "NodeSummary",
    "ResilienceConfig",
    "ResilienceReport",
    "ResilientServeResult",
    "poison_snapshot_file",
    "run_chaos_campaign",
    "serve_resilient",
]
