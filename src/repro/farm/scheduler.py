"""Farm schedulers: one protocol, three policies.

The dispatch phase is a *predictive* planner: it walks virtual time over
the job stream and decides, for every job, which accelerator runs it and
when it is handed over.  Its only model of node speed is the stable
estimator (:func:`repro.estimate.estimate_job_cycles` per ``(node,
service)`` pair) — the exact outcome is then measured by simulating every
node cycle-accurately with the dispatch plan (see
:mod:`repro.farm.farm`).

Three policies behind one :class:`Scheduler` protocol:

* :class:`FcfsScheduler` — one central FIFO queue; each job goes to the
  node that frees earliest.  Head-of-line blocking under bursts: a bronze
  job at the head delays every gold job behind it.
* :class:`StaticPartitionScheduler` — service ``k`` is pinned to node
  ``k % N`` (spatial isolation).  No cross-service interference, but no
  load sharing either.
* :class:`PredictiveScheduler` — PREMA-style token scheduling: a queued
  job accrues tokens at its SLO class's weight; at every dispatch point
  the richest job runs next, placed on the node with the *earliest
  estimated completion* (heterogeneity-aware: a busy fast node can beat a
  free slow one).  Token accrual bounds bronze starvation — wait buys
  priority.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

from repro.errors import SchedulerError
from repro.farm.traffic import Job, SloClass


@dataclass(frozen=True)
class Dispatch:
    """One planned hand-over: job → node at a cycle."""

    job: Job
    node: int
    dispatch_cycle: int


class FarmView:
    """What a scheduler may know about the farm: sizes and estimates.

    ``available`` is the cycle each node frees up (all zeros for a fresh
    day); the incremental feedback loop re-plans mid-day by handing the
    scheduler a view whose nodes are already busy.
    """

    def __init__(
        self,
        num_nodes: int,
        slos: Sequence[SloClass],
        estimates: Sequence[Sequence[int]],
        available: Sequence[int] | None = None,
    ):
        if num_nodes < 1:
            raise SchedulerError(f"num_nodes must be >= 1, got {num_nodes}")
        if len(estimates) != num_nodes:
            raise SchedulerError("estimates must have one row per node")
        if available is not None and len(available) != num_nodes:
            raise SchedulerError("available must have one entry per node")
        self.num_nodes = num_nodes
        #: SLO class per service index.
        self.slos = tuple(slos)
        #: ``estimates[node][service]`` — static cycles of one job.
        self.estimates = tuple(tuple(row) for row in estimates)
        #: Cycle each node becomes free (0 = free from the start).
        self.available = (
            tuple(available) if available is not None else (0,) * num_nodes
        )

    def estimate(self, node: int, service: int) -> int:
        return self.estimates[node][service]


@runtime_checkable
class Scheduler(Protocol):
    """The one interface the farm drives: a name and a dispatch plan."""

    name: str

    def dispatch(self, jobs: Sequence[Job], view: FarmView) -> list[Dispatch]:
        """Plan one hand-over per job; jobs arrive sorted by arrival."""
        ...


class FcfsScheduler:
    """Central FIFO queue, earliest-free node."""

    name = "fcfs"

    def dispatch(self, jobs: Sequence[Job], view: FarmView) -> list[Dispatch]:
        busy_until = list(view.available)
        plan: list[Dispatch] = []
        for job in jobs:
            node = min(range(view.num_nodes), key=lambda n: (busy_until[n], n))
            start = max(job.arrival_cycle, busy_until[node])
            busy_until[node] = start + view.estimate(node, job.service)
            plan.append(Dispatch(job=job, node=node, dispatch_cycle=start))
        return plan


class StaticPartitionScheduler:
    """Service ``k`` pinned to node ``k % N``; per-node FIFO."""

    name = "static-partition"

    def dispatch(self, jobs: Sequence[Job], view: FarmView) -> list[Dispatch]:
        busy_until = list(view.available)
        plan: list[Dispatch] = []
        for job in jobs:
            node = job.service % view.num_nodes
            start = max(job.arrival_cycle, busy_until[node])
            busy_until[node] = start + view.estimate(node, job.service)
            plan.append(Dispatch(job=job, node=node, dispatch_cycle=start))
        return plan


class PredictiveScheduler:
    """PREMA-style tokens + estimated-completion placement."""

    name = "predictive"

    def dispatch(self, jobs: Sequence[Job], view: FarmView) -> list[Dispatch]:
        busy_until = list(view.available)
        plan: list[Dispatch] = []
        # Token accrual is linear with one slope per service, so within a
        # service the oldest queued job always holds the most tokens: only
        # each service's head can win, making selection O(services).
        queues: dict[int, deque[Job]] = {}
        queued = 0
        pending = list(jobs)
        index = 0
        now = 0
        while index < len(pending) or queued:
            if not queued:
                # Fast-forward to the next arrival.
                now = max(now, pending[index].arrival_cycle)
            # A dispatch decision happens once some node is free; waiting
            # jobs keep accruing tokens until then.
            now = max(now, min(busy_until))
            while index < len(pending) and pending[index].arrival_cycle <= now:
                queues.setdefault(pending[index].service, deque()).append(
                    pending[index]
                )
                queued += 1
                index += 1
            if not queued:
                continue
            heads = [queue[0] for queue in queues.values() if queue]
            job = max(heads, key=lambda j: self._score(j, now, view))
            queues[job.service].popleft()
            queued -= 1
            node = min(
                range(view.num_nodes),
                key=lambda n: (
                    max(now, busy_until[n]) + view.estimate(n, job.service),
                    n,
                ),
            )
            start = max(now, busy_until[node])
            busy_until[node] = start + view.estimate(node, job.service)
            plan.append(Dispatch(job=job, node=node, dispatch_cycle=start))
        return plan

    @staticmethod
    def _score(job: Job, now: int, view: FarmView) -> tuple[float, int, int]:
        slo = view.slos[job.service]
        tokens = slo.weight * (now - job.arrival_cycle + 1)
        # Ties: more urgent class first, then oldest arrival.
        return (tokens, -slo.rank, -job.arrival_cycle)


BASELINES = (FcfsScheduler, StaticPartitionScheduler, PredictiveScheduler)
