"""Predictive multi-tenant accelerator farm (serving-scale INCA).

The single-robot stack runs one accelerator with up to four pre-emptible
tasks; this package scales the same machinery out: N simulated
accelerators (heterogeneous designs from the design-space grid), a
cluster dispatcher, deterministic synthetic tenant traffic, and three
schedulers behind one protocol — FCFS, static partition, and a
PREMA-style predictive scheduler driven by the stable cycle estimator.

Quickstart::

    from repro.farm import (
        Farm, FcfsScheduler, PredictiveScheduler, ServiceSpec, SloClass,
        TenantSpec, TrafficSpec, generate_jobs,
    )
    from repro.analysis.design_space import default_design_grid

    gold = SloClass("gold", rank=0, weight=8.0, deadline_cycles=200_000)
    best = SloClass("best-effort", rank=2, weight=1.0, deadline_cycles=2_000_000)
    services = [
        ServiceSpec("detect", "tiny_cnn", gold),
        ServiceSpec("embed", "tiny_residual", best),
    ]
    spec = TrafficSpec(
        tenants=(
            TenantSpec(0, service=0, mean_interarrival_cycles=40_000),
            TenantSpec(1, service=1, mean_interarrival_cycles=25_000, pattern="bursty"),
        ),
        duration_cycles=5_000_000,
        seed=7,
    )
    farm = Farm(default_design_grid(), services, PredictiveScheduler())
    result = farm.serve(generate_jobs(spec), max_workers=4)
    print(result.report.format())
"""

from repro.farm.farm import Farm, ServeResult
from repro.farm.resilience import (
    ChaosAction,
    ChaosCampaignReport,
    ChaosPlan,
    ChaosTrial,
    FeedbackScheduler,
    HealthState,
    NodeHealth,
    ResilienceConfig,
    ResilienceReport,
    ResilientServeResult,
    poison_snapshot_file,
    run_chaos_campaign,
    serve_resilient,
)
from repro.farm.metrics import (
    ClassReport,
    FarmReport,
    JobOutcome,
    build_report,
    join_outcomes,
    percentile,
)
from repro.farm.node import (
    NodeAssignment,
    NodeJobResult,
    ServiceSpec,
    build_node_system,
    run_assignment,
    simulate_node,
)
from repro.farm.scheduler import (
    Dispatch,
    FarmView,
    FcfsScheduler,
    PredictiveScheduler,
    Scheduler,
    StaticPartitionScheduler,
)
from repro.farm.traffic import (
    Job,
    SloClass,
    TenantSpec,
    TrafficSpec,
    generate_jobs,
)

__all__ = [
    "ChaosAction",
    "ChaosCampaignReport",
    "ChaosPlan",
    "ChaosTrial",
    "ClassReport",
    "Dispatch",
    "Farm",
    "FarmReport",
    "FarmView",
    "FcfsScheduler",
    "FeedbackScheduler",
    "HealthState",
    "Job",
    "JobOutcome",
    "NodeAssignment",
    "NodeHealth",
    "NodeJobResult",
    "PredictiveScheduler",
    "ResilienceConfig",
    "ResilienceReport",
    "ResilientServeResult",
    "Scheduler",
    "ServeResult",
    "ServiceSpec",
    "SloClass",
    "StaticPartitionScheduler",
    "TenantSpec",
    "TrafficSpec",
    "build_node_system",
    "build_report",
    "generate_jobs",
    "join_outcomes",
    "percentile",
    "poison_snapshot_file",
    "run_chaos_campaign",
    "serve_resilient",
    "simulate_node",
]
