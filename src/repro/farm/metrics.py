"""Farm-level serving metrics: latency percentiles and SLO attainment.

Latency here is *end-to-end*: from the job's arrival at the farm (traffic
time) to its measured completion on a node (simulated time), so queueing
at the dispatcher, queueing at the node, pre-emption, and VI overhead all
count.  Attainment checks that latency against the job's SLO class
deadline.  Percentiles use the nearest-rank definition — exact on small
counts, no interpolation surprises.

Two accounting extensions feed the resilience layer:

* **estimate error** — when the caller supplies the planning estimates,
  each class reports its plan-vs-measured residency delta
  (``measured service cycles - planned estimate``, signed; mean and p99),
  which is exactly the error the feedback scheduler corrects for;
* **shedding** — jobs a criticality mode switch dropped are counted per
  class and against attainment (a shed job is accounted, never lost, but
  it did not meet its SLO).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from repro.analysis.tables import format_table
from repro.errors import SchedulerError
from repro.farm.traffic import Job, SloClass


@dataclass(frozen=True)
class JobOutcome:
    """Arrival joined with its measured completion."""

    job_id: int
    tenant_id: int
    service: int
    node: int
    arrival_cycle: int
    dispatch_cycle: int
    complete_cycle: int

    @property
    def latency_cycles(self) -> int:
        return self.complete_cycle - self.arrival_cycle


def percentile(values: Sequence[int], p: float) -> int:
    """Nearest-rank percentile of a non-empty sequence.

    The rank is ``ceil(N * p / 100)`` computed in exact arithmetic: ``p``
    is taken at its *decimal* face value (``Fraction(str(p))``), so
    ``p=99.9`` means 999/1000 — not the nearest binary float, whose excess
    ~1e-14 would push the rank from 999 to 1000 at N=1000 under float
    multiply-then-ceil.
    """
    if not values:
        raise SchedulerError("percentile of an empty sequence")
    try:
        fraction = Fraction(str(p))
    except (ValueError, ZeroDivisionError):
        raise SchedulerError(f"p must be in (0, 100], got {p}") from None
    if not 0 < fraction <= 100:
        raise SchedulerError(f"p must be in (0, 100], got {p}")
    ordered = sorted(values)
    rank = math.ceil(len(ordered) * fraction / 100)
    return ordered[rank - 1]


@dataclass(frozen=True)
class ClassReport:
    """One SLO class's share of the day.

    ``jobs`` counts measured completions; ``shed`` counts jobs a mode
    switch dropped before dispatch.  Both count against attainment.  The
    error fields are plan-vs-measured service-time deltas (signed cycles,
    ``measured - estimate``) and are ``None`` when the caller did not
    supply planning estimates.
    """

    slo: SloClass
    jobs: int
    p50_cycles: int
    p99_cycles: int
    attained: int
    shed: int = 0
    err_mean_cycles: float | None = None
    err_p99_cycles: int | None = None

    @property
    def attainment(self) -> float:
        total = self.jobs + self.shed
        return self.attained / total if total else 1.0


@dataclass(frozen=True)
class FarmReport:
    """Per-class and overall serving quality of one scheduler run."""

    scheduler: str
    classes: tuple[ClassReport, ...]
    total_jobs: int
    makespan_cycles: int
    #: Worker processes that crashed during the measure phase and were
    #: retried on a fresh executor (0 on a clean day).
    worker_retries: int = 0
    #: Jobs shed by a criticality mode switch (accounted, not lost).
    total_shed: int = 0

    @property
    def overall_attainment(self) -> float:
        attained = sum(entry.attained for entry in self.classes)
        total = self.total_jobs + self.total_shed
        return attained / total if total else 1.0

    def by_class(self, name: str) -> ClassReport:
        for entry in self.classes:
            if entry.slo.name == name:
                return entry
        raise SchedulerError(f"no SLO class named {name!r}")

    def format(self) -> str:
        with_errors = any(
            entry.err_mean_cycles is not None for entry in self.classes
        )
        header = ["class", "jobs", "p50 cyc", "p99 cyc", "deadline"]
        if with_errors:
            header += ["mean err", "p99 err"]
        if self.total_shed:
            header.append("shed")
        header.append("SLO attained")
        rows = []
        for entry in self.classes:
            row = [
                entry.slo.name,
                entry.jobs,
                entry.p50_cycles if entry.jobs else "-",
                entry.p99_cycles if entry.jobs else "-",
                entry.slo.deadline_cycles,
            ]
            if with_errors:
                row += (
                    [f"{entry.err_mean_cycles:+.0f}", f"{entry.err_p99_cycles:+d}"]
                    if entry.err_mean_cycles is not None
                    else ["-", "-"]
                )
            if self.total_shed:
                row.append(entry.shed)
            row.append(f"{100 * entry.attainment:.2f}%")
            rows.append(row)
        overall = ["overall", self.total_jobs, "", "", ""]
        if with_errors:
            overall += ["", ""]
        if self.total_shed:
            overall.append(self.total_shed)
        overall.append(f"{100 * self.overall_attainment:.2f}%")
        rows.append(overall)
        table = format_table(
            header,
            rows,
            title=f"farm serving report — scheduler={self.scheduler}",
        )
        if self.worker_retries:
            table += f"\nworker retries: {self.worker_retries}"
        return table


def build_report(
    scheduler: str,
    outcomes: Sequence[JobOutcome],
    slos: Sequence[SloClass],
    *,
    worker_retries: int = 0,
    estimates: Sequence[Sequence[int]] | None = None,
    shed: Sequence[Job] = (),
) -> FarmReport:
    """Aggregate measured outcomes into the per-class report.

    ``slos`` is indexed by service (service ``k`` belongs to class
    ``slos[k]``); distinct services sharing one class object aggregate
    together.  ``estimates[node][service]`` (the scheduler's planning
    view) enables the plan-vs-measured error columns; ``shed`` lists jobs
    a mode switch dropped, counted per class against attainment.
    """
    by_class: dict[str, list[JobOutcome]] = {}
    class_of: dict[str, SloClass] = {}
    shed_by_class: dict[str, int] = {}
    for outcome in outcomes:
        slo = slos[outcome.service]
        by_class.setdefault(slo.name, []).append(outcome)
        class_of[slo.name] = slo
    for job in shed:
        slo = slos[job.service]
        class_of[slo.name] = slo
        by_class.setdefault(slo.name, [])
        shed_by_class[slo.name] = shed_by_class.get(slo.name, 0) + 1
    classes = []
    for name in sorted(by_class, key=lambda n: class_of[n].rank):
        slo = class_of[name]
        members = by_class[name]
        latencies = [outcome.latency_cycles for outcome in members]
        attained = sum(1 for lat in latencies if lat <= slo.deadline_cycles)
        err_mean: float | None = None
        err_p99: int | None = None
        if estimates is not None and members:
            errors = [
                (o.complete_cycle - o.dispatch_cycle)
                - estimates[o.node][o.service]
                for o in members
            ]
            err_mean = sum(errors) / len(errors)
            err_p99 = percentile(errors, 99)
        classes.append(
            ClassReport(
                slo=slo,
                jobs=len(latencies),
                p50_cycles=percentile(latencies, 50) if latencies else 0,
                p99_cycles=percentile(latencies, 99) if latencies else 0,
                attained=attained,
                shed=shed_by_class.get(name, 0),
                err_mean_cycles=err_mean,
                err_p99_cycles=err_p99,
            )
        )
    makespan = max((o.complete_cycle for o in outcomes), default=0)
    return FarmReport(
        scheduler=scheduler,
        classes=tuple(classes),
        total_jobs=len(outcomes),
        makespan_cycles=makespan,
        worker_retries=worker_retries,
        total_shed=len(shed),
    )


def join_outcomes(
    jobs: Sequence[Job], results: Sequence, *, shed: Sequence[Job] = ()
) -> list[JobOutcome]:
    """Join arrivals with node results by ``job_id`` (exactly once each).

    Every arrival must be accounted for exactly once — as a measured
    completion in ``results`` or as a mode-switch victim in ``shed``.
    Duplicate completions (e.g. both copies of a hedged dispatch reaching
    the join without first-result-wins dedup) raise ``SchedulerError``.
    """
    arrivals = {job.job_id: job for job in jobs}
    shed_ids = set()
    for job in shed:
        if job.job_id in shed_ids:
            raise SchedulerError(f"job {job.job_id} shed twice")
        if job.job_id not in arrivals:
            raise SchedulerError(f"shed record for unknown job {job.job_id}")
        shed_ids.add(job.job_id)
    outcomes: list[JobOutcome] = []
    seen: set[int] = set()
    for result in results:
        if result.job_id in seen:
            raise SchedulerError(f"job {result.job_id} completed twice")
        if result.job_id in shed_ids:
            raise SchedulerError(
                f"job {result.job_id} both shed and completed"
            )
        seen.add(result.job_id)
        job = arrivals.get(result.job_id)
        if job is None:
            raise SchedulerError(f"completion for unknown job {result.job_id}")
        outcomes.append(
            JobOutcome(
                job_id=job.job_id,
                tenant_id=job.tenant_id,
                service=job.service,
                node=result.node,
                arrival_cycle=job.arrival_cycle,
                dispatch_cycle=result.dispatch_cycle,
                complete_cycle=result.complete_cycle,
            )
        )
    if len(outcomes) + len(shed_ids) != len(jobs):
        raise SchedulerError(
            f"{len(jobs)} jobs arrived but {len(outcomes)} completed and "
            f"{len(shed_ids)} were shed"
        )
    outcomes.sort(key=lambda outcome: outcome.job_id)
    return outcomes
