"""Farm-level serving metrics: latency percentiles and SLO attainment.

Latency here is *end-to-end*: from the job's arrival at the farm (traffic
time) to its measured completion on a node (simulated time), so queueing
at the dispatcher, queueing at the node, pre-emption, and VI overhead all
count.  Attainment checks that latency against the job's SLO class
deadline.  Percentiles use the nearest-rank definition — exact on small
counts, no interpolation surprises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.tables import format_table
from repro.errors import SchedulerError
from repro.farm.traffic import Job, SloClass


@dataclass(frozen=True)
class JobOutcome:
    """Arrival joined with its measured completion."""

    job_id: int
    tenant_id: int
    service: int
    node: int
    arrival_cycle: int
    dispatch_cycle: int
    complete_cycle: int

    @property
    def latency_cycles(self) -> int:
        return self.complete_cycle - self.arrival_cycle


def percentile(values: Sequence[int], p: float) -> int:
    """Nearest-rank percentile of a non-empty sequence."""
    if not values:
        raise SchedulerError("percentile of an empty sequence")
    if not 0 < p <= 100:
        raise SchedulerError(f"p must be in (0, 100], got {p}")
    ordered = sorted(values)
    rank = max(1, -(-len(ordered) * p // 100))  # ceil without float error
    return ordered[int(rank) - 1]


@dataclass(frozen=True)
class ClassReport:
    """One SLO class's share of the day."""

    slo: SloClass
    jobs: int
    p50_cycles: int
    p99_cycles: int
    attained: int

    @property
    def attainment(self) -> float:
        return self.attained / self.jobs if self.jobs else 1.0


@dataclass(frozen=True)
class FarmReport:
    """Per-class and overall serving quality of one scheduler run."""

    scheduler: str
    classes: tuple[ClassReport, ...]
    total_jobs: int
    makespan_cycles: int
    #: Worker processes that crashed during the measure phase and were
    #: retried on a fresh executor (0 on a clean day).
    worker_retries: int = 0

    @property
    def overall_attainment(self) -> float:
        attained = sum(entry.attained for entry in self.classes)
        return attained / self.total_jobs if self.total_jobs else 1.0

    def by_class(self, name: str) -> ClassReport:
        for entry in self.classes:
            if entry.slo.name == name:
                return entry
        raise SchedulerError(f"no SLO class named {name!r}")

    def format(self) -> str:
        rows = [
            [
                entry.slo.name,
                entry.jobs,
                entry.p50_cycles,
                entry.p99_cycles,
                entry.slo.deadline_cycles,
                f"{100 * entry.attainment:.2f}%",
            ]
            for entry in self.classes
        ]
        rows.append(
            [
                "overall",
                self.total_jobs,
                "",
                "",
                "",
                f"{100 * self.overall_attainment:.2f}%",
            ]
        )
        table = format_table(
            ["class", "jobs", "p50 cyc", "p99 cyc", "deadline", "SLO attained"],
            rows,
            title=f"farm serving report — scheduler={self.scheduler}",
        )
        if self.worker_retries:
            table += f"\nworker retries: {self.worker_retries}"
        return table


def build_report(
    scheduler: str,
    outcomes: Sequence[JobOutcome],
    slos: Sequence[SloClass],
    *,
    worker_retries: int = 0,
) -> FarmReport:
    """Aggregate measured outcomes into the per-class report.

    ``slos`` is indexed by service (service ``k`` belongs to class
    ``slos[k]``); distinct services sharing one class object aggregate
    together.
    """
    by_class: dict[str, list[JobOutcome]] = {}
    class_of: dict[str, SloClass] = {}
    for outcome in outcomes:
        slo = slos[outcome.service]
        by_class.setdefault(slo.name, []).append(outcome)
        class_of[slo.name] = slo
    classes = []
    for name in sorted(by_class, key=lambda n: class_of[n].rank):
        slo = class_of[name]
        latencies = [outcome.latency_cycles for outcome in by_class[name]]
        attained = sum(1 for lat in latencies if lat <= slo.deadline_cycles)
        classes.append(
            ClassReport(
                slo=slo,
                jobs=len(latencies),
                p50_cycles=percentile(latencies, 50),
                p99_cycles=percentile(latencies, 99),
                attained=attained,
            )
        )
    makespan = max((o.complete_cycle for o in outcomes), default=0)
    return FarmReport(
        scheduler=scheduler,
        classes=tuple(classes),
        total_jobs=len(outcomes),
        makespan_cycles=makespan,
        worker_retries=worker_retries,
    )


def join_outcomes(
    jobs: Sequence[Job], results: Sequence
) -> list[JobOutcome]:
    """Join arrivals with node results by ``job_id`` (exactly once each)."""
    arrivals = {job.job_id: job for job in jobs}
    outcomes: list[JobOutcome] = []
    seen: set[int] = set()
    for result in results:
        if result.job_id in seen:
            raise SchedulerError(f"job {result.job_id} completed twice")
        seen.add(result.job_id)
        job = arrivals.get(result.job_id)
        if job is None:
            raise SchedulerError(f"completion for unknown job {result.job_id}")
        outcomes.append(
            JobOutcome(
                job_id=job.job_id,
                tenant_id=job.tenant_id,
                service=job.service,
                node=result.node,
                arrival_cycle=job.arrival_cycle,
                dispatch_cycle=result.dispatch_cycle,
                complete_cycle=result.complete_cycle,
            )
        )
    if len(outcomes) != len(jobs):
        raise SchedulerError(
            f"{len(jobs)} jobs arrived but {len(outcomes)} completed"
        )
    outcomes.sort(key=lambda outcome: outcome.job_id)
    return outcomes
