"""One farm node: exact simulation of a dispatch plan on one accelerator.

The dispatch phase (:mod:`repro.farm.scheduler`) plans with estimates;
this module measures.  Each node is an unchanged
:class:`~repro.runtime.system.MultiTaskSystem`: the farm's services map
onto IAU priority slots (slot = service index, priority = the service's
SLO rank), the planned hand-overs become timed ``submit()`` calls, and the
VI machinery provides pre-emption between SLO classes exactly as it does
on a single robot.

Everything here is picklable on purpose: :func:`simulate_node` is the
``ProcessPoolExecutor`` worker, so a hundred-thousand-job day shards
across one process per accelerator.  Workers receive model *names* (zoo
builders) rather than compiled networks — each worker recompiles locally,
which is cheaper than pickling layouts and keeps the payload tiny.
"""

from __future__ import annotations

from dataclasses import dataclass

import repro.zoo as zoo
from repro.errors import SchedulerError
from repro.hw.config import AcceleratorConfig
from repro.obs.config import ObsConfig
from repro.runtime.system import MultiTaskSystem, compile_tasks
from repro.farm.traffic import SloClass


@dataclass(frozen=True)
class ServiceSpec:
    """One served model + its SLO class (picklable worker payload)."""

    name: str
    #: Zoo builder suffix: ``"tiny_cnn"`` → :func:`repro.zoo.build_tiny_cnn`.
    model: str
    slo: SloClass


@dataclass(frozen=True)
class NodeAssignment:
    """Everything one worker needs: the accelerator, the services, the plan."""

    node: int
    config: AcceleratorConfig
    services: tuple[ServiceSpec, ...]
    #: ``(job_id, service, dispatch_cycle)`` in dispatch order.
    dispatches: tuple[tuple[int, int, int], ...]
    vi_mode: str = "vi"


@dataclass(frozen=True)
class NodeJobResult:
    """Exact measured lifecycle of one job on one node."""

    job_id: int
    node: int
    service: int
    dispatch_cycle: int
    start_cycle: int
    complete_cycle: int


def build_graph(model: str):
    """Resolve a zoo model name (``"tiny_cnn"``) to its network graph."""
    builder = getattr(zoo, f"build_{model}", None)
    if builder is None:
        raise SchedulerError(f"unknown zoo model {model!r}")
    return builder()


def build_node_system(
    config: AcceleratorConfig,
    services: tuple[ServiceSpec, ...],
    vi_mode: str = "vi",
    *,
    obs: ObsConfig | None = None,
) -> MultiTaskSystem:
    """One accelerator with every service attached at its slot."""
    if not services:
        raise SchedulerError("a node needs at least one service")
    graphs = [build_graph(service.model) for service in services]
    compiled = compile_tasks(graphs, config)
    system = MultiTaskSystem(config, obs=obs)
    for slot, (service, network) in enumerate(zip(services, compiled)):
        system.add_task(slot, network, vi_mode=vi_mode, priority=service.slo.rank)
    return system


def run_assignment(
    assignment: NodeAssignment,
    system: MultiTaskSystem,
) -> list[NodeJobResult]:
    """Submit the dispatch plan on a prepared system, run, join records.

    Within one node each service slot serves FIFO and dispatch cycles are
    monotone per slot, so completed records join with the plan by order.
    """
    per_slot: dict[int, list[tuple[int, int]]] = {}
    for job_id, service, cycle in assignment.dispatches:
        system.submit(service, cycle)
        per_slot.setdefault(service, []).append((job_id, cycle))
    system.run()
    results: list[NodeJobResult] = []
    for service, submitted in per_slot.items():
        completed = system.jobs(service)
        if len(completed) != len(submitted):
            raise SchedulerError(
                f"node {assignment.node} slot {service}: submitted "
                f"{len(submitted)} jobs but completed {len(completed)}"
            )
        for (job_id, cycle), record in zip(submitted, completed):
            if record.request_cycle != cycle:
                raise SchedulerError(
                    f"node {assignment.node} slot {service}: dispatch/record "
                    f"order mismatch at job {job_id}"
                )
            results.append(
                NodeJobResult(
                    job_id=job_id,
                    node=assignment.node,
                    service=service,
                    dispatch_cycle=cycle,
                    start_cycle=record.start_cycle,
                    complete_cycle=record.complete_cycle,
                )
            )
    return results


def simulate_node(assignment: NodeAssignment) -> list[NodeJobResult]:
    """The process-pool worker: rebuild, simulate, measure (obs off)."""
    system = build_node_system(
        assignment.config, assignment.services, assignment.vi_mode
    )
    return run_assignment(assignment, system)
