"""One farm node: exact simulation of a dispatch plan on one accelerator.

The dispatch phase (:mod:`repro.farm.scheduler`) plans with estimates;
this module measures.  Each node is an unchanged
:class:`~repro.runtime.system.MultiTaskSystem`: the farm's services map
onto IAU priority slots (slot = service index, priority = the service's
SLO rank), the planned hand-overs become timed ``submit()`` calls, and the
VI machinery provides pre-emption between SLO classes exactly as it does
on a single robot.

Everything here is picklable on purpose: :func:`simulate_node` is the
``ProcessPoolExecutor`` worker, so a hundred-thousand-job day shards
across one process per accelerator.  Workers receive model *names* (zoo
builders) rather than compiled networks — each worker compiles locally,
which keeps the dispatch payload tiny.  The compile itself is reused two
ways: within one process, :func:`compiled_for_services` memoizes
``compile_tasks`` by (config, model names) so epoch replays and measure
retries on the same node compile once; across processes, the on-disk
:mod:`repro.compiler.cache` (enabled via ``REPRO_COMPILE_CACHE``) makes
even the first compile of a fresh worker a cheap artefact load.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import repro.zoo as zoo
from repro.errors import SchedulerError
from repro.hw.config import AcceleratorConfig
from repro.obs.config import ObsConfig
from repro.runtime.system import MultiTaskSystem, compile_tasks
from repro.farm.traffic import SloClass


@dataclass(frozen=True)
class ServiceSpec:
    """One served model + its SLO class (picklable worker payload)."""

    name: str
    #: Zoo builder suffix: ``"tiny_cnn"`` → :func:`repro.zoo.build_tiny_cnn`.
    model: str
    slo: SloClass


@dataclass(frozen=True)
class NodeAssignment:
    """Everything one worker needs: the accelerator, the services, the plan."""

    node: int
    config: AcceleratorConfig
    services: tuple[ServiceSpec, ...]
    #: ``(job_id, service, dispatch_cycle)`` in dispatch order.
    dispatches: tuple[tuple[int, int, int], ...]
    vi_mode: str = "vi"


@dataclass(frozen=True)
class NodeJobResult:
    """Exact measured lifecycle of one job on one node."""

    job_id: int
    node: int
    service: int
    dispatch_cycle: int
    start_cycle: int
    complete_cycle: int


def build_graph(model: str):
    """Resolve a zoo model name (``"tiny_cnn"``) to its network graph."""
    builder = getattr(zoo, f"build_{model}", None)
    if builder is None:
        raise SchedulerError(f"unknown zoo model {model!r}")
    return builder()


#: Process-wide memo of :func:`compile_tasks` results keyed by
#: (config, model names).  Bounded LRU: a worker process only ever serves a
#: handful of node shapes, so a small cap keeps replays warm without
#: pinning every configuration a long campaign touches.
_COMPILE_MEMO: OrderedDict = OrderedDict()
_COMPILE_MEMO_MAX = 8


def compiled_for_services(
    config: AcceleratorConfig, services: tuple[ServiceSpec, ...]
) -> list:
    """The compiled networks for one node shape, compiled at most once per
    process.

    Safe to share across systems because farm measurement is timing-only:
    a timing run never writes weight or feature DDR regions, so adopting
    the same compiled networks into consecutive systems is free.  Callers
    that *do* mutate state (functional jobs) must compile fresh — see
    :func:`build_node_system`.
    """
    key = (config, tuple(service.model for service in services))
    hit = _COMPILE_MEMO.get(key)
    if hit is not None:
        _COMPILE_MEMO.move_to_end(key)
        return hit
    graphs = [build_graph(service.model) for service in services]
    compiled = compile_tasks(graphs, config)
    _COMPILE_MEMO[key] = compiled
    if len(_COMPILE_MEMO) > _COMPILE_MEMO_MAX:
        _COMPILE_MEMO.popitem(last=False)
    return compiled


def clear_compile_memo() -> None:
    """Drop the process-wide compile memo (benchmarks and tests)."""
    _COMPILE_MEMO.clear()


def build_node_system(
    config: AcceleratorConfig,
    services: tuple[ServiceSpec, ...],
    vi_mode: str = "vi",
    *,
    obs: ObsConfig | None = None,
) -> MultiTaskSystem:
    """One accelerator with every service attached at its slot."""
    if not services:
        raise SchedulerError("a node needs at least one service")
    if obs is not None and obs.functional:
        # Functional jobs write DDR (inputs, features): they need private
        # networks, never the shared memo.
        graphs = [build_graph(service.model) for service in services]
        compiled = compile_tasks(graphs, config)
    else:
        compiled = compiled_for_services(config, services)
    system = MultiTaskSystem(config, obs=obs)
    for slot, (service, network) in enumerate(zip(services, compiled)):
        system.add_task(slot, network, vi_mode=vi_mode, priority=service.slo.rank)
    return system


def submit_assignment(
    assignment: NodeAssignment,
    system: MultiTaskSystem,
) -> dict[int, list[tuple[int, int]]]:
    """Phase 1 of a replay: schedule every dispatch on a *fresh* system.

    Returns the per-slot ``(job_id, dispatch_cycle)`` expectations that
    :func:`collect_assignment` joins against.  Kept separate from the run
    so the serving layer can submit, then run in snapshot-bounded chunks
    (and a restored system — whose request heap rides in the snapshot —
    skips this phase entirely).
    """
    per_slot: dict[int, list[tuple[int, int]]] = {}
    for job_id, service, cycle in assignment.dispatches:
        system.submit(service, cycle)
        per_slot.setdefault(service, []).append((job_id, cycle))
    return per_slot


def expected_per_slot(
    assignment: NodeAssignment,
) -> dict[int, list[tuple[int, int]]]:
    """The join expectations alone (for a system restored from snapshot,
    whose pending requests were captured and must not be re-submitted)."""
    per_slot: dict[int, list[tuple[int, int]]] = {}
    for job_id, service, cycle in assignment.dispatches:
        per_slot.setdefault(service, []).append((job_id, cycle))
    return per_slot


def collect_assignment(
    assignment: NodeAssignment,
    system: MultiTaskSystem,
    per_slot: dict[int, list[tuple[int, int]]],
) -> list[NodeJobResult]:
    """Phase 2 of a replay: join completed records with the plan.

    Within one node each service slot serves FIFO and dispatch cycles are
    monotone per slot, so completed records join with the plan by order.
    """
    results: list[NodeJobResult] = []
    for service, submitted in per_slot.items():
        completed = system.jobs(service)
        if len(completed) != len(submitted):
            raise SchedulerError(
                f"node {assignment.node} slot {service}: submitted "
                f"{len(submitted)} jobs but completed {len(completed)}"
            )
        for (job_id, cycle), record in zip(submitted, completed):
            if record.request_cycle != cycle:
                raise SchedulerError(
                    f"node {assignment.node} slot {service}: dispatch/record "
                    f"order mismatch at job {job_id}"
                )
            results.append(
                NodeJobResult(
                    job_id=job_id,
                    node=assignment.node,
                    service=service,
                    dispatch_cycle=cycle,
                    start_cycle=record.start_cycle,
                    complete_cycle=record.complete_cycle,
                )
            )
    return results


def run_assignment(
    assignment: NodeAssignment,
    system: MultiTaskSystem,
) -> list[NodeJobResult]:
    """Submit the dispatch plan on a prepared system, run, join records."""
    per_slot = submit_assignment(assignment, system)
    system.run()
    return collect_assignment(assignment, system, per_slot)


def simulate_node(assignment: NodeAssignment) -> list[NodeJobResult]:
    """The process-pool worker: rebuild, simulate, measure (obs off)."""
    _maybe_crash_for_test(assignment)
    system = build_node_system(
        assignment.config, assignment.services, assignment.vi_mode
    )
    return run_assignment(assignment, system)


def _maybe_crash_for_test(assignment: NodeAssignment) -> None:
    """Deterministic worker-crash hooks for the farm's retry machinery.

    Two chaos channels, both inert unless their environment variable is
    set (never in production paths):

    * ``REPRO_FARM_CRASH_FILE`` — the first worker to claim the named file
      (atomic unlink) dies abruptly, once.  Node-agnostic.
    * ``REPRO_FARM_CHAOS_DIR`` — a directory of per-node kill budgets
      written by :meth:`~repro.farm.resilience.ChaosPlan.arm_worker_kills`:
      a worker whose assignment matches an armed ``kill-node-<n>`` file
      decrements the budget (unlinking at zero) and dies by real SIGKILL,
      exercising the exact signal path an OOM killer takes.
    """
    import os
    import signal

    sentinel = os.environ.get("REPRO_FARM_CRASH_FILE")
    if sentinel:
        try:
            os.unlink(sentinel)
        except FileNotFoundError:
            pass
        else:
            os._exit(113)  # simulated hard crash: no cleanup, no exception

    chaos_dir = os.environ.get("REPRO_FARM_CHAOS_DIR")
    if not chaos_dir:
        return
    budget = os.path.join(chaos_dir, f"kill-node-{assignment.node}")
    try:
        remaining = int(open(budget).read().strip() or "0")
    except (FileNotFoundError, ValueError):
        return
    if remaining <= 0:
        return
    # Claim one kill before dying so retries eventually get through.  The
    # claim is rename-based (atomic): concurrent duplicate workers for one
    # node cannot both decrement the same budget.
    claim = budget + ".claim"
    try:
        os.rename(budget, claim)
    except FileNotFoundError:
        return  # another worker claimed the budget first
    if remaining > 1:
        with open(claim, "w") as handle:
            handle.write(str(remaining - 1))
        os.rename(claim, budget)
    else:
        os.unlink(claim)
    os.kill(os.getpid(), signal.SIGKILL)
