"""The accelerator farm: heterogeneous nodes, one dispatcher, exact replay.

A :class:`Farm` serves up to four *services* (model + SLO class — one IAU
priority slot each) on N simulated accelerators with possibly different
:class:`~repro.hw.config.AcceleratorConfig` designs (e.g. the
design-space grid: small, big, high-bandwidth, 2x-parallel).  Serving one
day of traffic is two phases:

1. **Dispatch** — the pluggable :class:`~repro.farm.scheduler.Scheduler`
   plans every job's (node, hand-over cycle) using only the stable cycle
   estimator.  Sequential, fast, deterministic.
2. **Measure** — every node replays its share of the plan on an exact
   :class:`~repro.runtime.system.MultiTaskSystem`.  Nodes are independent
   once the plan is fixed, so this phase shards across worker processes
   (``max_workers``); the serial path is bit-identical and is the only
   mode that supports per-node observability (events cannot cross the
   process boundary).

The same traffic + same scheduler always produces the same report, which
is what makes scheduler comparisons meaningful.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.errors import SchedulerError
from repro.estimate import estimate_service_cycles
from repro.farm.metrics import FarmReport, JobOutcome, build_report, join_outcomes
from repro.farm.node import (
    NodeAssignment,
    NodeJobResult,
    ServiceSpec,
    build_node_system,
    compiled_for_services,
    run_assignment,
    simulate_node,
)
from repro.farm.scheduler import Dispatch, FarmView, Scheduler
from repro.farm.traffic import Job
from repro.hw.config import AcceleratorConfig
from repro.iau.unit import MAX_TASKS
from repro.obs.bus import EventBus
from repro.obs.config import ObsConfig
from repro.obs.events import EventKind
from repro.runtime.system import MultiTaskSystem

if TYPE_CHECKING:  # pragma: no cover - resilience imports this module
    from repro.farm.resilience import (
        ChaosPlan,
        ResilienceConfig,
        ResilientServeResult,
    )


@dataclass(frozen=True)
class ServeResult:
    """One scheduler's day: the plan, the measurements, the report."""

    report: FarmReport
    outcomes: tuple[JobOutcome, ...]
    dispatches: tuple[Dispatch, ...]


class Farm:
    """N heterogeneous accelerator nodes serving shared tenant traffic."""

    def __init__(
        self,
        node_configs: Sequence[AcceleratorConfig],
        services: Sequence[ServiceSpec],
        scheduler: Scheduler,
        *,
        vi_mode: str = "vi",
        obs: ObsConfig | None = None,
        measure_retries: int = 1,
        retry_backoff_s: float = 0.0,
    ):
        if not node_configs:
            raise SchedulerError("a farm needs at least one node")
        if not services:
            raise SchedulerError("a farm needs at least one service")
        if len(services) > MAX_TASKS:
            raise SchedulerError(
                f"at most {MAX_TASKS} services (IAU priority slots), "
                f"got {len(services)}"
            )
        if measure_retries < 0:
            raise SchedulerError(
                f"measure_retries must be >= 0, got {measure_retries}"
            )
        if retry_backoff_s < 0:
            raise SchedulerError(
                f"retry_backoff_s must be >= 0, got {retry_backoff_s}"
            )
        self.node_configs = tuple(node_configs)
        self.services = tuple(services)
        self.scheduler = scheduler
        self.vi_mode = vi_mode
        self.obs = obs
        #: Retry budget for crashed measure workers (attempts = 1 + retries).
        self.measure_retries = measure_retries
        #: Base of the exponential backoff between retry attempts (seconds).
        self.retry_backoff_s = retry_backoff_s
        #: Farm-level event bus (dispatcher's-eye view: retries, health,
        #: migrations, hedges, mode switches).  Distinct from per-node obs —
        #: node simulations never see it, and it is always on (cheap).
        self.bus = EventBus()
        #: Serial-mode node systems from the last serve() (obs inspection).
        self.node_systems: list[MultiTaskSystem] | None = None
        self._view = self._build_view()

    def _build_view(self) -> FarmView:
        """Estimate every (node, service) cost once, via the stable API.

        Compiles go through :func:`~repro.farm.node.compiled_for_services`,
        so nodes sharing one config share one compile, and a warm on-disk
        cache (``REPRO_COMPILE_CACHE``) turns the whole pass into artefact
        loads.
        """
        estimates = []
        for config in self.node_configs:
            compiled = compiled_for_services(config, tuple(self.services))
            row = [
                estimate_service_cycles(config, network, self.vi_mode)
                for network in compiled
            ]
            estimates.append(row)
            for network in compiled:
                # Materialize the served variant now, pre-fork: cache-loaded
                # networks keep program blobs compressed, and hydrating here
                # means measure workers inherit the decoded program instead
                # of each decoding its own copy.
                network.program_for(self.vi_mode)
        return FarmView(
            num_nodes=len(self.node_configs),
            slos=[service.slo for service in self.services],
            estimates=estimates,
        )

    @property
    def view(self) -> FarmView:
        return self._view

    def estimate(self, node: int, service: int) -> int:
        """Static cycles of one job of ``service`` on ``node``."""
        return self._view.estimate(node, service)

    def plan(self, jobs: Sequence[Job]) -> list[Dispatch]:
        """Phase 1 only: the scheduler's dispatch plan for a job stream."""
        for job in jobs:
            if not 0 <= job.service < len(self.services):
                raise SchedulerError(
                    f"job {job.job_id} wants service {job.service}, farm has "
                    f"{len(self.services)}"
                )
        plan = self.scheduler.dispatch(list(jobs), self._view)
        if len(plan) != len(jobs):
            raise SchedulerError(
                f"scheduler {self.scheduler.name!r} planned {len(plan)} "
                f"dispatches for {len(jobs)} jobs"
            )
        for dispatch in plan:
            if dispatch.dispatch_cycle < dispatch.job.arrival_cycle:
                raise SchedulerError(
                    f"scheduler {self.scheduler.name!r} dispatched job "
                    f"{dispatch.job.job_id} before it arrived"
                )
            if not 0 <= dispatch.node < len(self.node_configs):
                raise SchedulerError(
                    f"scheduler {self.scheduler.name!r} used node "
                    f"{dispatch.node}, farm has {len(self.node_configs)}"
                )
        return plan

    def _assignments(self, plan: Sequence[Dispatch]) -> list[NodeAssignment]:
        per_node: dict[int, list[tuple[int, int, int]]] = {}
        for dispatch in sorted(plan, key=lambda d: (d.dispatch_cycle, d.job.job_id)):
            per_node.setdefault(dispatch.node, []).append(
                (dispatch.job.job_id, dispatch.job.service, dispatch.dispatch_cycle)
            )
        return [
            NodeAssignment(
                node=node,
                config=self.node_configs[node],
                services=self.services,
                dispatches=tuple(dispatches),
                vi_mode=self.vi_mode,
            )
            for node, dispatches in sorted(per_node.items())
        ]

    def serve(
        self, jobs: Sequence[Job], *, max_workers: int | None = None
    ) -> ServeResult:
        """Both phases: plan, measure every node exactly, report.

        ``max_workers`` > 1 shards the measurement phase one process per
        node; the default (None → serial) is required when ``obs`` is set.
        """
        plan = self.plan(jobs)
        assignments = self._assignments(plan)
        retries = 0
        if max_workers is not None and max_workers > 1:
            if self.obs is not None:
                raise SchedulerError(
                    "per-node obs needs serial mode: events cannot cross "
                    "the worker-process boundary"
                )
            self.node_systems = None
            results, retries = self._measure_parallel(assignments, max_workers)
        else:
            results = self._measure_serial(assignments)
        outcomes = join_outcomes(list(jobs), results)
        report = build_report(
            self.scheduler.name,
            outcomes,
            [s.slo for s in self.services],
            worker_retries=retries,
            estimates=self._view.estimates,
        )
        return ServeResult(
            report=report, outcomes=tuple(outcomes), dispatches=tuple(plan)
        )

    def serve_resilient(
        self,
        jobs: Sequence[Job],
        *,
        resilience: "ResilienceConfig | None" = None,
        chaos: "ChaosPlan | None" = None,
    ) -> "ResilientServeResult":
        """Serve a day through the incremental plan→measure→re-plan loop.

        Unlike :meth:`serve`, the plan is not fixed up front: jobs are
        planned epoch by epoch on the nodes currently believed healthy,
        measured completions feed the scheduler's estimate corrections,
        dead nodes' work is migrated, and overdue work on suspect nodes is
        hedged.  See :mod:`repro.farm.resilience`.
        """
        from repro.farm.resilience import serve_resilient

        return serve_resilient(self, jobs, resilience=resilience, chaos=chaos)

    def serve_durable(
        self,
        jobs: Sequence[Job],
        gateway,
        *,
        snapshot_every_cycles: int = 50_000,
        deadline_s: float | None = None,
        timeout_s: float = 600.0,
    ) -> ServeResult:
        """Serve a day through a :class:`~repro.serve.gateway.ServeGateway`.

        Each node assignment becomes one journaled gateway job; workers
        checkpoint every ``snapshot_every_cycles`` simulated cycles, so a
        SIGKILLed worker resumes mid-replay instead of starting over.
        Gateway retries (crash recoveries) surface as ``worker_retries``
        on the report.  Results are bit-identical to :meth:`serve` — the
        replay is exact either way.
        """
        from repro.serve.worker import JobSpec

        plan = self.plan(jobs)
        assignments = self._assignments(plan)
        if self.obs is not None:
            raise SchedulerError(
                "durable serving shards across processes: per-node obs "
                "needs serial serve()"
            )
        self.node_systems = None
        job_ids = [
            gateway.submit(
                JobSpec(
                    assignment=assignment,
                    snapshot_every_cycles=snapshot_every_cycles,
                ),
                deadline_s=deadline_s,
            )
            for assignment in assignments
        ]
        results: list[NodeJobResult] = []
        retries = 0
        for job_id in job_ids:
            job_result = gateway.result(job_id, timeout=timeout_s)
            results.extend(job_result.records)
            retries += max(0, gateway.status(job_id).attempts - 1)
        outcomes = join_outcomes(list(jobs), results)
        report = build_report(
            self.scheduler.name,
            outcomes,
            [s.slo for s in self.services],
            worker_retries=retries,
            estimates=self._view.estimates,
        )
        return ServeResult(
            report=report, outcomes=tuple(outcomes), dispatches=tuple(plan)
        )

    def _measure_serial(
        self, assignments: Sequence[NodeAssignment]
    ) -> list[NodeJobResult]:
        self.node_systems = []
        results: list[NodeJobResult] = []
        for assignment in assignments:
            system = build_node_system(
                assignment.config,
                assignment.services,
                assignment.vi_mode,
                obs=self.obs,
            )
            self.node_systems.append(system)
            results.extend(run_assignment(assignment, system))
        return results

    def _measure_parallel(
        self, assignments: Sequence[NodeAssignment], max_workers: int
    ) -> tuple[list[NodeJobResult], int]:
        """Shard the measure phase; retry crashed workers up to the budget.

        A worker process that dies (OOM kill, segfaulting extension, bad
        luck) breaks its whole executor — every pending future poisons.
        The replay is deterministic and side-effect free, so failed
        assignments are re-run on a *fresh* executor up to
        ``measure_retries`` more times, sleeping
        ``retry_backoff_s * 2**attempt`` between attempts; each retried
        assignment emits a ``MEASURE_RETRY`` event on the farm bus and the
        total count is surfaced on the report.
        """
        workers = min(max_workers, len(assignments)) or 1
        results, failed = self._measure_attempt(assignments, workers)
        retries = 0
        for attempt in range(self.measure_retries):
            if not failed:
                break
            retries += len(failed)
            for assignment, error in failed:
                self.bus.emit(
                    EventKind.MEASURE_RETRY,
                    node=assignment.node,
                    attempt=attempt + 1,
                    error=repr(error),
                )
            if self.retry_backoff_s:
                time.sleep(self.retry_backoff_s * 2**attempt)
            retried, failed = self._measure_attempt(
                [assignment for assignment, _ in failed], workers
            )
            results.extend(retried)
        if failed:
            nodes = sorted(a.node for a, _ in failed)
            first_error = failed[0][1]
            raise SchedulerError(
                f"{len(failed)} node worker(s) failed after "
                f"{1 + self.measure_retries} attempt(s) (nodes {nodes}): "
                f"{first_error!r}"
            )
        return results, retries

    @staticmethod
    def _measure_attempt(
        assignments: Sequence[NodeAssignment], workers: int
    ) -> tuple[list[NodeJobResult], list[tuple[NodeAssignment, BaseException]]]:
        """One executor pass: completed node results + failed assignments."""
        results: list[NodeJobResult] = []
        failed: list[tuple[NodeAssignment, BaseException]] = []
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                (assignment, pool.submit(simulate_node, assignment))
                for assignment in assignments
            ]
            for assignment, future in futures:
                try:
                    results.extend(future.result())
                except Exception as exc:  # incl. BrokenExecutor (crashed worker)
                    failed.append((assignment, exc))
        return results, failed
