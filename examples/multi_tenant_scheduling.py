#!/usr/bin/env python
"""Multi-tenant scheduling: four ROS nodes sharing one CNN accelerator.

Beyond the paper's two-task DSLAM deployment, the IAU supports four priority
slots.  This example runs four periodic "ROS node" workloads of different
priorities and periods on one accelerator and reports per-task response
latency and deadline behaviour — the multi-tenant scenario the introduction
motivates (many developers' components sharing the accelerator without
knowing about each other).

Run:  python examples/multi_tenant_scheduling.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.hw.config import AcceleratorConfig
from repro.nn import GraphBuilder, TensorShape
from repro.obs import ObsConfig
from repro.runtime import ArrivalPolicy, MultiTaskSystem, compile_tasks, summarize_jobs


def make_workload(name: str, size: int, channels: int):
    """A small conv stack; size/channels set its duty length."""
    builder = GraphBuilder(name, input_shape=TensorShape(size, size, 8))
    builder.conv("conv1", out_channels=channels, kernel=3, padding=1)
    builder.conv("conv2", out_channels=channels, kernel=3, padding=1)
    builder.conv("conv3", out_channels=channels, kernel=1)
    return builder.build()


def main() -> None:
    config = AcceleratorConfig.big()
    graphs = [
        make_workload("safety_stop", 32, 16),     # priority 0: small & urgent
        make_workload("detector", 64, 32),        # priority 1
        make_workload("segmenter", 96, 32),       # priority 2
        make_workload("logger", 128, 48),         # priority 3: big & lazy
    ]
    compiled = compile_tasks(graphs, config, weights="zeros")

    system = MultiTaskSystem(config, iau_mode="virtual", obs=ObsConfig(events=True))
    periods_ms = [10.0, 25.0, 60.0, 200.0]
    counts = [40, 16, 7, 2]
    for task_id, (network, period_ms, count) in enumerate(zip(compiled, periods_ms, counts)):
        system.add_task(task_id, network, vi_mode="vi")
        system.submit(
            task_id,
            policy=ArrivalPolicy.PERIODIC,
            period_cycles=config.clock.us_to_cycles(period_ms * 1000),
            count=count,
        )

    total = system.run()
    print(f"simulated {config.clock.cycles_to_ms(total):.1f} ms of wall time "
          f"({total} cycles)\n")

    rows = []
    for task_id, (network, period_ms) in enumerate(zip(compiled, periods_ms)):
        deadline = config.clock.us_to_cycles(period_ms * 1000)
        stats = summarize_jobs(task_id, system.jobs(task_id), deadline_cycles=deadline)
        rows.append(
            [
                task_id,
                network.graph.name,
                stats.jobs,
                f"{config.clock.cycles_to_us(stats.mean_response):.1f} us",
                f"{config.clock.cycles_to_us(stats.max_response):.1f} us",
                f"{config.clock.cycles_to_ms(stats.max_turnaround):.2f} ms",
                stats.deadline_misses,
            ]
        )
    print(format_table(
        ["prio", "task", "jobs", "mean response", "max response", "max turnaround", "misses"],
        rows,
        title="four-tenant schedule on one accelerator (VI interrupts)",
    ))
    print(f"\ntask switches: {system.iau.num_switches}, "
          f"backup traffic: {system.iau.backup_cycles} cycles, "
          f"recovery traffic: {system.iau.restore_cycles} cycles")

    # The observability layer has the same story, per job: one span tree per
    # inference with its layers, pre-emptions, and VI save/restore work.
    print("\nfirst safety_stop job, as a span tree:")
    print(system.spans(0)[0].format())


if __name__ == "__main__":
    main()
