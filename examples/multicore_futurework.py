#!/usr/bin/env python
"""Multi-core multi-tasking — the paper's §VI future work, explored.

Deploys the DSLAM pair (high-priority FE at 20 fps + low-priority PR) on
three alternatives and prints the trade-off table:

* 1 pre-emptive core — the paper's INCA system,
* 2 cores with static task placement — spatial isolation,
* 2 cores with least-loaded dynamic dispatch.

Spatial isolation zeroes the FE response latency but strands silicon; the
single interruptible core runs at full utilisation for a response cost of
tens of microseconds.  Run with ``--small`` (default) for tiny stand-in
networks or ``--full`` for SuperPoint + GeM (minutes).
"""

from __future__ import annotations

import argparse

from repro.dslam.camera import frame_period_cycles
from repro.hw.config import AcceleratorConfig
from repro.interrupt import VIRTUAL_INSTRUCTION, run_alone
from repro.multicore import compare_deployments
from repro.nn import TensorShape
from repro.runtime import compile_tasks
from repro.zoo import build_gem, build_superpoint, build_tiny_cnn, build_tiny_conv


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="use the paper's SuperPoint/GeM workloads")
    args = parser.parse_args()

    config = AcceleratorConfig.big()
    if args.full:
        high_net = build_superpoint(TensorShape(120, 160, 1), head="detector")
        low_net = build_gem(TensorShape(480, 640, 3))
        high_count, low_count = 12, 2
    else:
        high_net, low_net = build_tiny_conv(), build_tiny_cnn()
        high_count, low_count = 20, 6

    print(f"compiling FE={high_net.name}, PR={low_net.name}...")
    high, low = compile_tasks([high_net, low_net], config, weights="zeros")

    if args.full:
        period = frame_period_cycles(config.clock.hz, 20.0)
    else:
        period = run_alone(high, VIRTUAL_INSTRUCTION) * 3

    result = compare_deployments(
        high, low, high_period_cycles=period, high_count=high_count, low_count=low_count
    )
    print()
    print(result.format())
    print()
    single = result.row("1-core (INCA, pre-emptive)")
    spatial = result.row("2-core (spatial isolation)")
    print(
        "takeaway: the second core buys "
        f"{single.high_mean_response_cycles / config.clock.hz * 1e6:.1f} us of FE "
        f"response latency at the cost of running at "
        f"{spatial.utilisation() * 100:.0f}% vs {single.utilisation() * 100:.0f}% utilisation."
    )


if __name__ == "__main__":
    main()
