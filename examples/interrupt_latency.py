#!/usr/bin/env python
"""Interrupt-latency study: the paper's Fig. barresult(a) on your terminal.

Interrupts a GeM/ResNet-101 place-recognition inference (480x640) with the
SuperPoint feature-extraction network at random positions, under all three
interrupt disciplines (CPU-like, layer-by-layer, virtual-instruction), and
prints response latency and extra cost per position.

This is the full-size experiment (~2 min of simulation).  Pass ``--small``
to run a scaled-down variant in a few seconds.

Run:  python examples/interrupt_latency.py [--small] [--positions N]
"""

from __future__ import annotations

import argparse

from repro.analysis import (
    bar_chart,
    experiment_interrupt_positions,
    experiment_latency_ratio,
)
from repro.interrupt.base import METHODS
from repro.hw.config import AcceleratorConfig
from repro.nn import TensorShape
from repro.runtime import compile_tasks
from repro.zoo import build_gem, build_resnet, build_superpoint


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--small", action="store_true",
                        help="use a ResNet-18 at 120x160 for a fast demo")
    parser.add_argument("--positions", type=int, default=12,
                        help="number of random interrupt positions (paper: 12)")
    args = parser.parse_args()

    config = AcceleratorConfig.big()
    if args.small:
        low_net = build_resnet("resnet18", TensorShape(120, 160, 3))
        high_net = build_superpoint(TensorShape(120, 160, 1), head="detector")
    else:
        low_net = build_gem(TensorShape(480, 640, 3))
        high_net = build_superpoint(TensorShape(480, 640, 1), head="detector")

    print(f"compiling {low_net.name} (low priority) and {high_net.name} "
          f"(high priority) for {config.name}...")
    low, high = compile_tasks([low_net, high_net], config, weights="zeros")
    print(low.report())
    print()

    result = experiment_interrupt_positions(low, high, num_positions=args.positions)
    print(result.format())

    print()
    print(
        bar_chart(
            [method.name for method in METHODS],
            [result.mean_response_us(method.name) for method in METHODS],
            title="mean interrupt response latency (the paper's Fig. barresult(a))",
            unit=" us",
            log_scale=True,
        )
    )

    ratio = experiment_latency_ratio(low)
    print()
    print(ratio.format())


if __name__ == "__main__":
    main()
