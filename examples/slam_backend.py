#!/usr/bin/env python
"""SLAM back end: drift, loop closure, pose-graph optimisation, map fusion.

A single robot drives a full lap of the arena with noisy visual odometry.
When it returns to its starting place, the place-recognition module detects
the re-visit; the loop-closure constraint feeds a 2-D pose-graph optimiser
that pulls the drifted trajectory back into shape.  Finally the corrected
trajectory and the landmark map are rendered as an ASCII map.

This exercises the SLAM substrates of the reproduction end to end —
camera model, feature extraction, VO, place codes, pose graph, map metrics.

Run:  python examples/slam_backend.py [--frames N] [--noise SIGMA]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.dslam import (
    Camera,
    CameraConfig,
    FeatureExtractor,
    FrontendConfig,
    PlaceEncoder,
    VisualOdometry,
    World,
    WorldConfig,
    absolute_trajectory_error,
    close_loops,
    perimeter_trajectory,
    relative_pose,
)
from repro.dslam.mapping import LandmarkMap, map_rmse
from repro.dslam.system import _to_local_frame
from repro.dslam.vo import transform_point
from repro.tools import render_map


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=80)
    parser.add_argument("--noise", type=float, default=0.06,
                        help="camera position noise (m)")
    args = parser.parse_args()

    world = World.generate(WorldConfig())
    camera = Camera(world, CameraConfig(position_noise=args.noise), seed=4)
    extractor = FeatureExtractor(FrontendConfig(min_score=0.0))
    encoder = PlaceEncoder()
    vo = VisualOdometry()

    # One full lap: the last frame re-visits the first frame's place.
    inset = 4.0
    perimeter = 2 * ((world.config.width - 2 * inset) + (world.config.height - 2 * inset))
    speed = perimeter / (args.frames / 20.0)
    truth = perimeter_trajectory(world, args.frames + 1, fps=20.0, speed=speed)
    truth_local = _to_local_frame(truth)

    codes = []
    for seq, pose in enumerate(truth):
        frame = camera.capture(pose, seq, 0)
        vo.update(extractor.extract(frame))
        codes.append(encoder.encode(frame))

    ate_before = absolute_trajectory_error(vo.trajectory, truth_local)
    print(f"VO after a {perimeter:.0f} m lap: ATE = {ate_before:.2f} m (drift)")

    # Loop closure: find the late frame most similar to frame 0.
    similarities = [float(codes[0] @ code) for code in codes]
    closing = int(np.argmax(similarities[args.frames // 2 :])) + args.frames // 2
    print(f"place recognition: frame {closing} matches frame 0 "
          f"(similarity {similarities[closing]:.2f})")

    constraint = relative_pose(truth_local[0], truth_local[closing])
    optimized = close_loops(vo.trajectory, [(0, closing, constraint)], loop_weight=50.0)
    ate_after = absolute_trajectory_error(optimized, truth_local)
    print(f"pose-graph optimisation: ATE {ate_before:.2f} m -> {ate_after:.2f} m")

    # Landmark map quality from the corrected trajectory is implicit in VO's
    # running estimates; report it against ground truth.
    landmark_map = LandmarkMap.from_estimates(vo.landmark_estimates)
    print(f"landmark map: {len(landmark_map)} landmarks, "
          f"RMSE {map_rmse(landmark_map, world, truth[0]):.2f} m")

    # Render: corrected trajectory back in world coordinates.
    origin = truth[0]
    corrected_world = [
        (*transform_point(origin, (pose[0], pose[1])), pose[2] + origin[2])
        for pose in optimized
    ]
    print()
    print(render_map(world, {"corrected": corrected_world}))


if __name__ == "__main__":
    main()
