#!/usr/bin/env python
"""Quickstart: compile a CNN, run it on the simulated accelerator, interrupt it.

This walks the whole INCA pipeline in under a minute:

1. build a small CNN with the graph builder,
2. compile it to the interruptible VI-ISA (quantized weights, DDR layout,
   tiling, virtual-instruction insertion),
3. run it functionally and check the output is bit-exact against the golden
   quantized reference,
4. pre-empt it mid-inference with a second, higher-priority network and show
   that both results are still bit-exact and how fast the accelerator
   responded.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import AcceleratorConfig, ObsConfig, compile_network
from repro.accel.reference import golden_output
from repro.accel.runner import run_program
from repro.runtime import MultiTaskSystem, compile_tasks
from repro.zoo import build_tiny_cnn, build_tiny_residual


def main() -> None:
    config = AcceleratorConfig.big()
    print(f"accelerator: {config.name}, Para in/out/height = "
          f"{config.para_in}/{config.para_out}/{config.para_height}\n")

    # 1-2. Build and compile.
    network = build_tiny_cnn()
    compiled = compile_network(network, config, weights="random", seed=0)
    print(compiled.report())

    # Dump the deployment artefact the paper loads into the FPGA's DDR.
    path = compiled.program.dump("/tmp/instruction.bin")
    print(f"\nVI-ISA dumped to {path} ({path.stat().st_size} bytes)")

    # 3. Single-task inference, checked bit-exactly.
    rng = np.random.default_rng(0)
    shape = network.input_shape
    image = rng.integers(-128, 128, size=(shape.height, shape.width, shape.channels),
                         dtype=np.int64).astype(np.int8)
    result = run_program(compiled, vi_mode="vi", functional=True, input_map=image)
    expected = golden_output(compiled, image)
    assert np.array_equal(compiled.get_output(), expected)
    print(f"\nsingle inference: {result.total_cycles} cycles "
          f"({config.clock.cycles_to_us(result.total_cycles):.1f} us), "
          f"output bit-exact vs golden reference: True")

    # 4. Pre-empt it with a higher-priority network.
    low, high = compile_tasks([build_tiny_cnn(), build_tiny_residual()], config,
                              weights="random", seed=1)
    low_image = image
    high_shape = high.graph.input_shape
    high_image = rng.integers(-128, 128,
                              size=(high_shape.height, high_shape.width, high_shape.channels),
                              dtype=np.int64).astype(np.int8)
    expected_low = golden_output(low, low_image)
    expected_high = golden_output(high, high_image)

    system = MultiTaskSystem(config, obs=ObsConfig(functional=True, events=True))
    system.add_task(0, high, vi_mode="vi")   # priority 0: never interrupted
    system.add_task(1, low, vi_mode="vi")    # priority 1: interruptible
    low.set_input(low_image)
    high.set_input(high_image)
    system.submit(1, at_cycle=0)
    system.submit(0, at_cycle=2_000)         # arrives mid-inference
    system.run()

    high_job = system.job(0)
    print(f"\npre-emption: high-priority request at cycle 2000 started after "
          f"{high_job.response_cycles} cycles "
          f"({config.clock.cycles_to_us(high_job.response_cycles):.2f} us)")
    assert np.array_equal(low.get_output(), expected_low)
    assert np.array_equal(high.get_output(), expected_high)
    print("both outputs bit-exact after the interrupt: True")

    # 5. Observability: the interrupted job as a span tree (layers, VI
    # save/restore, the pre-emption window).
    print("\nlow-priority job, as recorded by the event bus:")
    print(system.spans(1)[0].format())


if __name__ == "__main__":
    main()
