#!/usr/bin/env python
"""Two-agent DSLAM on the interruptible accelerator (the paper's §V-C).

Two robots explore a rectangular arena with pillars and central chairs (the
AirSim scene, modelled synthetically).  Each robot runs, on ONE simulated
Angel-Eye accelerator:

* SuperPoint feature extraction (task 0 — every 20 fps frame, hard deadline),
* GeM/ResNet-101 place recognition (task 1 — interruptible, runs when free).

FE pre-empts PR through the virtual-instruction mechanism, so FE never misses
a frame while PR completes one frame every 7~10 inputs — the paper's result.
Cross-agent place matches then merge the two maps.

Run:  python examples/dslam_two_agents.py [--frames N] [--small]
"""

from __future__ import annotations

import argparse

from repro.dslam import DslamScenario, run_dslam
from repro.hw.config import AcceleratorConfig
from repro.nn import TensorShape
from repro.runtime import compile_tasks
from repro.zoo import build_gem, build_superpoint, build_tiny_cnn, build_tiny_conv


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=40, help="frames per agent")
    parser.add_argument("--small", action="store_true",
                        help="replace the CNNs with tiny stand-ins (seconds)")
    args = parser.parse_args()

    config = AcceleratorConfig.big()
    if args.small:
        fe_net, pr_net = build_tiny_conv(), build_tiny_cnn()
        scenario = DslamScenario(num_frames=args.frames, fps=2000.0, speed=150.0)
    else:
        fe_net = build_superpoint(TensorShape(120, 160, 1), head="detector")
        pr_net = build_gem(TensorShape(480, 640, 3))
        scenario = DslamScenario(num_frames=args.frames, fps=20.0)

    print(f"compiling FE={fe_net.name} and PR={pr_net.name} for {config.name}...")
    fe, pr = compile_tasks([fe_net, pr_net], config, weights="zeros")

    print(f"simulating {args.frames} frames per agent at {scenario.fps:g} fps...\n")
    result = run_dslam(fe, pr, scenario)
    print(result.format())

    period_ms = config.clock.cycles_to_ms(result.frame_period_cycles)
    print(f"\nframe period: {period_ms:.1f} ms; FE mean response: "
          + ", ".join(
              f"{agent.name} {config.clock.cycles_to_us(agent.fe_mean_response_cycles):.1f} us"
              for agent in result.agents
          ))


if __name__ == "__main__":
    main()
