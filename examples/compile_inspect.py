#!/usr/bin/env python
"""Inspect what the INCA compiler produces for a network.

Shows, for a chosen model:

* the per-layer schedule (tiles / stripes / CalcBlobs),
* the original vs VI-ISA instruction mix,
* a disassembly of the first layer including the inserted virtual
  instructions (compare with the paper's Fig. "interexample"),
* where the interrupt points fall and what each would back up / recover.

Run:  python examples/compile_inspect.py [--model tiny_cnn|superpoint|resnet18]
"""

from __future__ import annotations

import argparse

from repro import AcceleratorConfig, compile_network
from repro.analysis import format_table
from repro.nn import TensorShape
from repro.zoo import build_resnet, build_superpoint, build_tiny_cnn


def build(model: str):
    if model == "tiny_cnn":
        return build_tiny_cnn()
    if model == "superpoint":
        return build_superpoint(TensorShape(120, 160, 1), head="detector")
    if model == "resnet18":
        return build_resnet("resnet18", TensorShape(120, 160, 3))
    raise SystemExit(f"unknown model {model!r}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="tiny_cnn",
                        choices=["tiny_cnn", "superpoint", "resnet18"])
    args = parser.parse_args()

    config = AcceleratorConfig.big()
    graph = build(args.model)
    compiled = compile_network(graph, config, weights="zeros")
    print(compiled.report())

    # Per-layer schedule summary.
    rows = []
    for layer, plan in zip(compiled.layer_configs, compiled.plans):
        stripes = sum(len(tile.stripes) for tile in plan.tiles)
        rows.append(
            [
                layer.name,
                layer.kind,
                str(layer.out_shape),
                len(plan.tiles),
                stripes,
                plan.num_blobs(),
                plan.num_saves(),
            ]
        )
    print()
    print(format_table(
        ["layer", "kind", "out shape", "tiles", "stripes", "CalcBlobs", "SAVEs"],
        rows,
        title="per-layer schedule",
    ))

    # Instruction mix.
    print()
    for mode in ("none", "vi", "layer"):
        program = compiled.program_for(mode)
        histogram = program.opcode_histogram()
        mix = ", ".join(
            f"{opcode.name}={count}" for opcode, count in sorted(histogram.items())
        )
        print(f"{mode:>6}: {len(program):6d} instructions  ({mix})")

    # Disassembly of the first layer with virtual instructions highlighted.
    program = compiled.program
    first, last = program.layer_span(0)
    print(f"\nVI-ISA disassembly of layer 0 ({compiled.layer_configs[0].name}), "
          f"instructions [{first}, {min(last, first + 40)}):")
    for index in range(first, min(last, first + 40)):
        instruction = program[index]
        marker = " <- interrupt point" if (instruction.is_virtual and instruction.is_switch_point) else ""
        virtual = "*" if instruction.is_virtual else " "
        print(f"  {index:5d} {virtual} {instruction}{marker}")


if __name__ == "__main__":
    main()
