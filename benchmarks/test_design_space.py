"""Design-space exploration on the FE workload (deployment-sizing study)."""

import pytest

from benchmarks.conftest import write_result
from repro.analysis.design_space import explore
from repro.nn import TensorShape
from repro.zoo import build_superpoint


@pytest.fixture(scope="module")
def dse_result():
    return explore(build_superpoint(TensorShape(120, 160, 1), head="detector"))


def test_dse_table(benchmark, dse_result):
    benchmark(dse_result.format)
    write_result("design_space_superpoint", dse_result.format())


def test_paper_config_meets_fe_rate(benchmark, dse_result):
    """The ZU9 configuration sustains well past the 20 fps camera."""
    benchmark(lambda: dse_result.points)
    zu9 = next(p for p in dse_result.points if p.config.name == "angel-eye-zu9")
    assert zu9.fps > 20.0


def test_speed_ordering(benchmark, dse_result):
    benchmark(lambda: dse_result.best_by_fps())
    by_name = {p.config.name: p for p in dse_result.points}
    assert by_name["angel-eye-small"].fps < by_name["angel-eye-zu9"].fps


def test_efficiency_favours_a_balanced_design(benchmark, dse_result):
    """fps/DSP peaks somewhere sensible — not at the biggest array when the
    workload can't feed it."""
    benchmark(lambda: dse_result.best_by_efficiency())
    best = dse_result.best_by_efficiency()
    assert best.fps_per_dsp > 0
