"""E3 — paper Table 1: the basic instruction set, regenerated from the ISA."""

from benchmarks.conftest import write_result
from repro.analysis import experiment_instruction_table
from repro.isa import INSTRUCTION_TABLE, Opcode


def test_e3_regenerate_table(benchmark):
    text = benchmark(experiment_instruction_table)
    write_result("e3_instruction_table", text)
    assert "CALC_I" in text and "Intermediate" in text


def test_e3_semantics_match_paper(benchmark):
    benchmark(lambda: len(INSTRUCTION_TABLE))
    by_opcode = {info.opcode: info for info in INSTRUCTION_TABLE}
    # LOAD/SAVE back up nothing; CALC_I must back up intermediate data.
    assert by_opcode[Opcode.LOAD_W].backup == "-"
    assert by_opcode[Opcode.SAVE].backup == "-"
    assert "Intermediate" in by_opcode[Opcode.CALC_I].backup
    assert by_opcode[Opcode.CALC_F].backup == "Final results"
    # Every opcode's recovery includes reloading weights and input data.
    for info in INSTRUCTION_TABLE:
        assert "Weight" in info.recovery and "Input data" in info.recovery
