"""E8 — abstract claim: multi-task support degrades performance <= 0.3 %.

With no interrupts in flight, the only cost of deploying the interruptible
VI-ISA is fetching (and discarding) the virtual instructions.  Measured on
the paper's two workloads.
"""

import pytest

from benchmarks.conftest import write_result
from repro.analysis import experiment_degradation


@pytest.fixture(scope="module")
def e8_result(paper_workloads):
    gem, superpoint_vga, superpoint_small = paper_workloads
    return experiment_degradation([gem, superpoint_vga, superpoint_small])


def test_e8_regenerate_table(benchmark, paper_workloads):
    gem, _, superpoint_small = paper_workloads
    result = benchmark.pedantic(
        lambda: experiment_degradation([superpoint_small]), rounds=1, iterations=1
    )
    assert result.rows


def test_e8_within_0_3_percent(benchmark, e8_result):
    benchmark(e8_result.worst_degradation)
    write_result("e8_degradation", e8_result.format())
    assert e8_result.worst_degradation() <= 0.3


def test_e8_every_network_positive_overhead(benchmark, e8_result):
    benchmark(lambda: [row.degradation_percent for row in e8_result.rows])
    """Virtual instructions can only add cycles, never remove them."""
    for row in e8_result.rows:
        assert row.vi_cycles >= row.baseline_cycles
