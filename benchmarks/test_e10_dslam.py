"""E10 — §V-C: the two-agent ROS DSLAM system on the interruptible accelerator.

20 fps cameras feed FE (high priority, every frame) and PR (low priority,
when free) on each agent's accelerator.  Paper: FE always completes (safety),
and "the PR process[es] one frame every 7~10 input frames"; place matches
between the agents merge the maps.
"""

import pytest

from benchmarks.conftest import write_result
from repro.dslam import DslamScenario, run_dslam


@pytest.fixture(scope="module")
def e10_result(paper_workloads):
    gem, _, superpoint_small = paper_workloads
    scenario = DslamScenario(num_frames=40, fps=20.0)
    return run_dslam(superpoint_small, gem, scenario)


def test_e10_regenerate(benchmark, paper_workloads):
    gem, _, superpoint_small = paper_workloads
    result = benchmark.pedantic(
        lambda: run_dslam(superpoint_small, gem, DslamScenario(num_frames=10, fps=20.0)),
        rounds=1,
        iterations=1,
    )
    assert result.agents


def test_e10_report(benchmark, e10_result):
    benchmark(e10_result.format)
    write_result("e10_dslam", e10_result.format())


def test_e10_fe_meets_every_deadline(benchmark, e10_result):
    benchmark(e10_result.total_deadline_misses)
    assert e10_result.total_deadline_misses() == 0
    for agent in e10_result.agents:
        assert agent.fe_jobs == 40


def test_e10_pr_cadence_7_to_10(benchmark, e10_result):
    benchmark(e10_result.mean_pr_gap)
    """The paper's headline DSLAM number."""
    assert 7.0 <= e10_result.mean_pr_gap() <= 10.0
    for agent in e10_result.agents:
        for gap in agent.pr_frame_gaps:
            assert 7 <= gap <= 10


def test_e10_maps_merge(benchmark, e10_result):
    benchmark(lambda: len(e10_result.matches))
    assert e10_result.matches
    assert e10_result.match_precision >= 0.9
    assert e10_result.merge is not None
    assert e10_result.merged_ate_meters is not None
    assert e10_result.merged_ate_meters < 1.0


def test_e10_vo_quality(benchmark, e10_result):
    benchmark(lambda: [a.ate_meters for a in e10_result.agents])
    for agent in e10_result.agents:
        assert agent.ate_meters < 0.5
